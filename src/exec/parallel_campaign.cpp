#include "ftspm/exec/parallel_campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>

#include "ftspm/exec/thread_pool.h"
#include "ftspm/fault/campaign_observer.h"
#include "ftspm/obs/event_log.h"
#include "ftspm/obs/metrics.h"
#include "ftspm/obs/trace_sink.h"
#include "ftspm/util/error.h"
#include "ftspm/util/json.h"

namespace ftspm::exec {

std::uint32_t ExecConfig::effective_jobs() const noexcept {
  return jobs == 0 ? default_jobs() : jobs;
}

std::uint32_t ExecConfig::effective_shards() const noexcept {
  return shards == 0 ? std::max<std::uint32_t>(effective_jobs(), 1) : shards;
}

std::uint64_t ExecConfig::effective_chunk_strikes() const noexcept {
  if (chunk_strikes < kCampaignBatchWidth) return chunk_strikes;
  const std::uint64_t rem = chunk_strikes % kCampaignBatchWidth;
  return rem == 0 ? chunk_strikes : chunk_strikes + (kCampaignBatchWidth - rem);
}

namespace {

/// Serializes the root progress callback across workers: counts are
/// globally aggregated, reported monotonically, and the completion
/// call fires exactly once.
class ProgressAggregator {
 public:
  ProgressAggregator(const CampaignConfig& root, std::uint64_t already_done)
      : root_(root), done_(already_done), last_reported_(already_done) {}

  void add(std::uint64_t strikes) {
    if (strikes == 0) return;
    const std::uint64_t done =
        done_.fetch_add(strikes, std::memory_order_relaxed) + strikes;
    if (root_.progress_interval == 0 || !root_.progress) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    if (done >= root_.strikes) return;  // completion is the coordinator's
    if (done - last_reported_ < root_.progress_interval) return;
    last_reported_ = done;
    root_.progress(done, root_.strikes);
  }

  std::uint64_t done() const noexcept {
    return done_.load(std::memory_order_relaxed);
  }

  /// Called once by the coordinator after the pool joined.
  void finish(bool complete) {
    if (!complete || root_.progress_interval == 0 || !root_.progress) return;
    root_.progress(root_.strikes, root_.strikes);
  }

 private:
  const CampaignConfig& root_;
  std::atomic<std::uint64_t> done_;
  std::mutex mutex_;
  std::uint64_t last_reported_;
};

/// Guards the shared checkpoint document and its file writes.
class CheckpointWriter {
 public:
  CheckpointWriter(CampaignCheckpoint cp, std::string path)
      : cp_(std::move(cp)), path_(std::move(path)),
        writes_(cp_.shards.size(), 0) {}

  bool active() const noexcept { return !path_.empty(); }

  void update(std::uint32_t shard_index, std::uint64_t shard_strikes,
              const CampaignShardState& state, bool flush) {
    if (!active()) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    cp_.shards[shard_index] =
        snapshot_shard_state(shard_index, shard_strikes, state);
    if (flush) {
      store_checkpoint(cp_, path_);
      ++writes_[shard_index];
    }
  }

  void flush() {
    if (!active()) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    store_checkpoint(cp_, path_);
  }

  /// Checkpoint writes triggered by `shard_index`. Deterministic for a
  /// fixed chunk/checkpoint-interval schedule; read after the join.
  std::uint64_t writes(std::uint32_t shard_index) const {
    return writes_[shard_index];
  }

 private:
  CampaignCheckpoint cp_;
  std::string path_;
  std::mutex mutex_;
  std::vector<std::uint64_t> writes_;
};

/// The live-telemetry emitter thread (see HeartbeatConfig). Reads the
/// per-shard progress slots the workers publish with relaxed stores and
/// appends one NDJSON record per interval; entirely off the hot path —
/// workers never wait on it, and I/O failures are reported once on
/// stderr instead of thrown.
class HeartbeatEmitter {
 public:
  HeartbeatEmitter(const HeartbeatConfig& config,
                   const std::vector<CampaignShard>& plan,
                   std::uint64_t already_done, std::uint64_t total_strikes,
                   std::uint64_t chunks_total,
                   const std::atomic<std::uint64_t>* shard_done,
                   const std::atomic<std::uint64_t>& chunks_done,
                   const ThreadPool& pool)
      : config_(config), plan_(plan), already_done_(already_done),
        total_strikes_(total_strikes), chunks_total_(chunks_total),
        shard_done_(shard_done), chunks_done_(chunks_done), pool_(pool),
        prev_done_(plan.size(), 0), start_(Clock::now()), prev_time_(start_) {
    out_.open(config.out_path, std::ios::binary | std::ios::app);
    FTSPM_REQUIRE(out_.good(), "cannot open heartbeat output '" +
                                   config.out_path + "'");
    for (std::size_t i = 0; i < plan_.size(); ++i)
      prev_done_[i] = shard_done_[i].load(std::memory_order_relaxed);
    thread_ = std::thread([this] { run(); });
  }

  ~HeartbeatEmitter() { stop(); }

  /// Emits the final beat and joins the emitter. Idempotent; also
  /// called from the destructor so an exception in the runner still
  /// shuts the thread down.
  void stop() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  using Clock = std::chrono::steady_clock;

  void run() {
    const auto interval =
        std::chrono::milliseconds(std::max<std::uint32_t>(
            config_.interval_ms, 1));
    beat(/*final=*/false);  // At least one record, however short the run.
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopped_) {
      if (cv_.wait_for(lock, interval, [this] { return stopped_; })) break;
      lock.unlock();
      beat(/*final=*/false);
      lock.lock();
    }
    lock.unlock();
    beat(/*final=*/true);
  }

  void beat(bool final) {
    const Clock::time_point now = Clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(now - start_).count();
    const double delta_s =
        std::chrono::duration<double>(now - prev_time_).count();
    std::uint64_t done = 0;
    JsonWriter w;
    w.begin_object()
        .field("schema", static_cast<std::uint64_t>(1))
        .field("event", "heartbeat")
        .field("final", final)
        .field("wall_ms", wall_ms);
    w.begin_array("shards");
    for (std::size_t i = 0; i < plan_.size(); ++i) {
      const std::uint64_t d = shard_done_[i].load(std::memory_order_relaxed);
      done += d;
      const double rate =
          delta_s > 0.0
              ? static_cast<double>(d - prev_done_[i]) / delta_s
              : 0.0;
      w.begin_object()
          .field("shard", static_cast<std::uint64_t>(i))
          .field("done", d)
          .field("total", plan_[i].config.strikes)
          .field("strikes_per_sec", rate)
          .end_object();
      prev_done_[i] = d;
    }
    w.end_array();
    const double elapsed_s = wall_ms / 1000.0;
    const double rate =
        elapsed_s > 0.0
            ? static_cast<double>(done - already_done_) / elapsed_s
            : 0.0;
    const double eta_s =
        rate > 0.0 ? static_cast<double>(total_strikes_ - done) / rate : 0.0;
    const std::uint64_t busy_ns = pool_.total_busy_ns();
    const double capacity_ns =
        elapsed_s * 1e9 * static_cast<double>(pool_.size());
    const double utilization =
        capacity_ns > 0.0
            ? std::min(static_cast<double>(busy_ns) / capacity_ns, 1.0)
            : 0.0;
    w.field("done", done)
        .field("total", total_strikes_)
        .field("strikes_per_sec", rate)
        .field("eta_s", eta_s)
        .field("chunks_done",
               chunks_done_.load(std::memory_order_relaxed))
        .field("chunks_total", chunks_total_)
        .field("jobs", static_cast<std::uint64_t>(pool_.size()))
        .field("pool_utilization", utilization)
        .end_object();
    prev_time_ = now;

    out_ << w.str() << '\n';
    out_.flush();
    if (!out_.good() && !write_failed_) {
      write_failed_ = true;
      std::fprintf(stderr, "warning: heartbeat write to '%s' failed\n",
                   config_.out_path.c_str());
    }
    if (config_.stderr_line) {
      const double pct =
          total_strikes_ != 0
              ? 100.0 * static_cast<double>(done) /
                    static_cast<double>(total_strikes_)
              : 100.0;
      std::fprintf(stderr,
                   "heartbeat: %5.1f%% (%llu/%llu strikes) %.0f strikes/s "
                   "eta %.0fs pool %.0f%%\n",
                   pct, static_cast<unsigned long long>(done),
                   static_cast<unsigned long long>(total_strikes_), rate,
                   eta_s, utilization * 100.0);
    }
  }

  const HeartbeatConfig& config_;
  const std::vector<CampaignShard>& plan_;
  const std::uint64_t already_done_;
  const std::uint64_t total_strikes_;
  const std::uint64_t chunks_total_;
  const std::atomic<std::uint64_t>* shard_done_;
  const std::atomic<std::uint64_t>& chunks_done_;
  const ThreadPool& pool_;
  std::vector<std::uint64_t> prev_done_;
  const Clock::time_point start_;
  Clock::time_point prev_time_;
  std::ofstream out_;
  bool write_failed_ = false;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopped_ = false;
};

/// Deterministic post-run observability: per-shard trace lanes and
/// pool-utilization wall timers. Emitted by the coordinator after the
/// pool joined, in shard order, so enabling observability never
/// perturbs (and never races with) the campaign. Campaign counters are
/// NOT emitted here: the per-strike observers already tallied them into
/// the per-shard delta registries, which the runner merges into the
/// root registry in shard order — keeping the merged snapshot
/// byte-identical to a serial run's.
void emit_observability(const std::vector<CampaignShard>& plan,
                        const std::vector<CampaignShardState>& states,
                        const ThreadPool& pool) {
  if (!obs::enabled()) return;
  obs::Registry& reg = obs::registry();
  // Wall-clock-only pool telemetry; excluded from default snapshots,
  // so deterministic dumps stay jobs-invariant.
  for (std::uint32_t w = 0; w < pool.size(); ++w)
    reg.timer("exec.worker" + std::to_string(w) + ".busy")
        .record_ns(pool.worker_busy_ns(w));

  obs::TraceEventSink* trace = obs::current_trace();
  if (trace == nullptr) return;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const obs::TraceEventSink::LaneId lane =
        trace->lane("exec", "shard" + std::to_string(i));
    const CampaignResult& p = states[i].partial;
    trace->complete(lane, "shard", 0, states[i].done,
                    {obs::TraceArg::num("masked", p.masked),
                     obs::TraceArg::num("dre", p.dre),
                     obs::TraceArg::num("due", p.due),
                     obs::TraceArg::num("sdc", p.sdc)});
  }
}

}  // namespace

ShardedRun run_sharded_campaign(const CampaignConfig& root,
                                const ExecConfig& exec, std::string_view kind,
                                std::uint64_t seed_salt,
                                const ShardChunkFn& run_chunk) {
  FTSPM_REQUIRE(static_cast<bool>(run_chunk), "a chunk runner is required");
  FTSPM_REQUIRE(exec.chunk_strikes >= 1, "chunk_strikes must be >= 1");
  const std::uint32_t jobs = exec.effective_jobs();
  const std::uint32_t shard_count = exec.effective_shards();
  const std::vector<CampaignShard> plan = make_shard_plan(root, shard_count);

  // Fresh per-shard states, or the checkpointed ones when resuming.
  // Each state carries its shard's CampaignScratch: one worker owns one
  // shard for the whole run, so the hot-loop scratch (hit buffer,
  // weight table) is reused across every chunk of that shard without
  // sharing or per-chunk allocation. Checkpoints neither save nor
  // restore scratch — it never affects results.
  std::vector<CampaignShardState> states;
  states.reserve(shard_count);
  CampaignCheckpoint cp;
  cp.root_seed = root.seed;
  cp.strikes = root.strikes;
  cp.shard_count = shard_count;
  cp.seed_salt = seed_salt;
  cp.kind = std::string(kind);
  if (!exec.resume_path.empty()) {
    cp = load_checkpoint(exec.resume_path);
    cp.validate_against(root, shard_count, seed_salt, kind);
    for (const ShardCheckpoint& s : cp.shards)
      states.push_back(restore_shard_state(s));
  } else {
    for (const CampaignShard& shard : plan) {
      states.push_back(begin_campaign_shard(shard.config.seed ^ seed_salt));
      cp.shards.push_back(
          snapshot_shard_state(shard.index, shard.config.strikes,
                               states.back()));
    }
  }

  std::vector<std::uint64_t> initial_done(shard_count);
  std::uint64_t already_done = 0;
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    initial_done[i] = states[i].done;
    already_done += states[i].done;
  }

  const std::string write_path = exec.checkpoint_path.empty()
                                     ? exec.resume_path
                                     : exec.checkpoint_path;
  CheckpointWriter checkpoints(std::move(cp), write_path);
  ProgressAggregator progress(root, already_done);
  std::atomic<bool> halted{false};

  // Simulated-time lifecycle records; coordinator-only, so the log for
  // a fixed (seed, strikes, shard_count, chunk schedule) is identical
  // regardless of --jobs.
  obs::EventLog* events = obs::enabled() ? obs::current_event_log() : nullptr;
  if (events != nullptr) {
    events->emit("phase_start", already_done,
                 {obs::TraceArg::str("kind", kind),
                  obs::TraceArg::num("shards",
                                     static_cast<std::uint64_t>(shard_count)),
                  obs::TraceArg::num("strikes", root.strikes),
                  obs::TraceArg::num("resumed_strikes", already_done)});
    for (std::uint32_t i = 0; i < shard_count; ++i)
      events->emit("shard_start", initial_done[i],
                   {obs::TraceArg::num("shard", static_cast<std::uint64_t>(i)),
                    obs::TraceArg::num("strikes", plan[i].config.strikes),
                    obs::TraceArg::num("done", initial_done[i]),
                    obs::TraceArg::num("seed", plan[i].config.seed)});
  }

  // Per-shard delta registries: workers run with registry() redirected
  // to their shard's delta so per-strike instrumentation keeps firing
  // without races; merged into the root in shard order after the join.
  std::vector<obs::Registry> shard_registries(shard_count);

  // Heartbeat feed: relaxed per-shard progress slots plus a global
  // chunk counter. Cheap enough to maintain unconditionally.
  const std::unique_ptr<std::atomic<std::uint64_t>[]> shard_done(
      new std::atomic<std::uint64_t>[shard_count]);
  std::atomic<std::uint64_t> chunks_done{0};
  std::uint64_t chunks_total = 0;
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    shard_done[i].store(initial_done[i], std::memory_order_relaxed);
    const std::uint64_t remaining = plan[i].config.strikes - initial_done[i];
    const std::uint64_t granule = exec.effective_chunk_strikes();
    chunks_total += (remaining + granule - 1) / granule;
  }

  // Wall-clock shard attribution (ExecConfig::shard_span): each worker
  // stamps its shard's task start and finish against a local epoch with
  // relaxed stores; the coordinator reads the stamps after the join.
  // Wall quantities only — never consulted by the counters.
  const auto span_epoch = std::chrono::steady_clock::now();
  const auto span_ns = [span_epoch] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - span_epoch)
            .count());
  };
  std::unique_ptr<std::atomic<std::uint64_t>[]> span_start;
  std::unique_ptr<std::atomic<std::uint64_t>[]> span_end;
  if (exec.shard_span) {
    span_start.reset(new std::atomic<std::uint64_t>[shard_count]);
    span_end.reset(new std::atomic<std::uint64_t>[shard_count]);
    for (std::uint32_t i = 0; i < shard_count; ++i) {
      span_start[i].store(0, std::memory_order_relaxed);
      span_end[i].store(0, std::memory_order_relaxed);
    }
  }

  // A caller-owned pool (ExecConfig::pool) lets a long-running service
  // amortize worker threads across requests; otherwise the run owns a
  // private pool sized by effective_jobs(). Either way the counters are
  // identical — concurrency never reaches the result.
  std::unique_ptr<ThreadPool> owned_pool;
  if (exec.pool == nullptr) owned_pool = std::make_unique<ThreadPool>(jobs);
  ThreadPool& pool = exec.pool != nullptr ? *exec.pool : *owned_pool;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(shard_count);
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    tasks.push_back([&, i] {
      // Workers must not touch the process-wide registry, trace, or
      // event log — counters go to the shard's delta registry and the
      // coordinator emits the single-writer sinks after the join.
      const obs::ThreadRegistryScope redirect(shard_registries[i]);
      const CampaignShard& shard = plan[i];
      CampaignShardState& state = states[i];
      if (span_start != nullptr)
        span_start[i].store(span_ns(), std::memory_order_relaxed);
      std::uint64_t since_checkpoint = 0;
      while (state.done < shard.config.strikes) {
        if (exec.halt_after != 0 &&
            progress.done() >= exec.halt_after) {
          halted.store(true, std::memory_order_relaxed);
          break;
        }
        if (exec.cancel != nullptr &&
            exec.cancel->load(std::memory_order_relaxed)) {
          halted.store(true, std::memory_order_relaxed);
          break;
        }
        const std::uint64_t before = state.done;
        run_chunk(shard, state, exec.effective_chunk_strikes());
        FTSPM_CHECK(state.done > before,
                    "campaign chunk runner made no progress");
        const std::uint64_t advanced = state.done - before;
        progress.add(advanced);
        shard_done[i].store(state.done, std::memory_order_relaxed);
        chunks_done.fetch_add(1, std::memory_order_relaxed);
        since_checkpoint += advanced;
        if (since_checkpoint >= exec.checkpoint_interval ||
            state.done == shard.config.strikes) {
          checkpoints.update(i, shard.config.strikes, state,
                             /*flush=*/checkpoints.active());
          since_checkpoint = 0;
        }
      }
      if (span_end != nullptr)
        span_end[i].store(span_ns(), std::memory_order_relaxed);
    });
  }
  {
    // The emitter joins (and writes its final beat) before results are
    // merged, even when a worker throws.
    std::unique_ptr<HeartbeatEmitter> heartbeat;
    if (exec.heartbeat.enabled())
      heartbeat = std::make_unique<HeartbeatEmitter>(
          exec.heartbeat, plan, already_done, root.strikes, chunks_total,
          shard_done.get(), chunks_done, pool);
    pool.run_all(std::move(tasks));
  }

  if (exec.shard_span)
    for (std::uint32_t i = 0; i < shard_count; ++i)
      exec.shard_span(i, span_start[i].load(std::memory_order_relaxed),
                      span_end[i].load(std::memory_order_relaxed));

  ShardedRun run;
  run.shard_results.reserve(shard_count);
  for (const CampaignShardState& state : states)
    run.shard_results.push_back(state.partial);
  run.merged = merge_shard_results(run.shard_results);
  run.complete = true;
  for (std::uint32_t i = 0; i < shard_count; ++i)
    if (states[i].done < plan[i].config.strikes) run.complete = false;

  // One final write so a halted (or freshly finished) run leaves a
  // consistent resume point on disk.
  for (std::uint32_t i = 0; i < shard_count; ++i)
    checkpoints.update(i, plan[i].config.strikes, states[i], /*flush=*/false);
  checkpoints.flush();

  progress.finish(run.complete);
  if (obs::enabled()) {
    // Shard-order merge of the per-shard counter deltas: the root
    // registry ends up byte-identical to a serial run's for any --jobs.
    obs::Registry& reg = obs::registry();
    for (const obs::Registry& shard_reg : shard_registries)
      reg.merge_from(shard_reg);
  }
  emit_observability(plan, states, pool);
  if (events != nullptr) {
    std::uint64_t total_done = 0;
    for (std::uint32_t i = 0; i < shard_count; ++i) {
      const CampaignResult& p = states[i].partial;
      total_done += states[i].done;
      events->emit("shard_end", states[i].done,
                   {obs::TraceArg::num("shard", static_cast<std::uint64_t>(i)),
                    obs::TraceArg::num("strikes", states[i].done),
                    obs::TraceArg::num("masked", p.masked),
                    obs::TraceArg::num("dre", p.dre),
                    obs::TraceArg::num("due", p.due),
                    obs::TraceArg::num("sdc", p.sdc)});
      if (checkpoints.active())
        events->emit("checkpoint", states[i].done,
                     {obs::TraceArg::num("shard",
                                         static_cast<std::uint64_t>(i)),
                      obs::TraceArg::num("writes", checkpoints.writes(i))});
    }
    const char* complete = run.complete ? "true" : "false";
    events->emit("phase_end", total_done,
                 {obs::TraceArg::str("kind", kind),
                  obs::TraceArg{"complete", complete},
                  obs::TraceArg::num("strikes", run.merged.strikes),
                  obs::TraceArg::num("masked", run.merged.masked),
                  obs::TraceArg::num("dre", run.merged.dre),
                  obs::TraceArg::num("due", run.merged.due),
                  obs::TraceArg::num("sdc", run.merged.sdc)});
  }
  return run;
}

namespace {

/// One private sensitivity grid per shard (empty when disabled). Like
/// the RecoveryShardSide vector, each slot is touched only by the
/// worker that owns the shard, so no synchronization is needed.
std::vector<SensitivityGrid> make_shard_grids(std::size_t shard_count,
                                              const SensitivityGrid& proto) {
  std::vector<SensitivityGrid> grids;
  if (!proto.active()) return grids;
  grids.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) grids.push_back(proto);
  return grids;
}

/// Shard-order merge of the per-shard grids into `merged`, mirroring
/// the delta-registry merge: counts end up identical to a serial run's
/// for any --jobs.
void merge_shard_grids(SensitivityGrid& merged,
                       const std::vector<SensitivityGrid>& grids) {
  if (grids.empty()) return;
  merged = grids.front();
  for (std::size_t i = 1; i < grids.size(); ++i)
    merged.merge_from(grids[i]);
}

}  // namespace

ShardedRun run_campaign_sharded(const std::vector<InjectionRegion>& regions,
                                const StrikeMultiplicityModel& strikes,
                                const CampaignConfig& config,
                                const ExecConfig& exec) {
  std::vector<SensitivityGrid> grids = make_shard_grids(
      exec.effective_shards(),
      exec.sensitivity_buckets != 0
          ? make_sensitivity_grid(regions, exec.sensitivity_buckets)
          : SensitivityGrid());
  ShardedRun run = run_sharded_campaign(
      config, exec, "static", /*seed_salt=*/0,
      [&](const CampaignShard& shard, CampaignShardState& state,
          std::uint64_t max_strikes) {
        // Tallies into the worker's per-shard delta registry (the shard
        // config has no progress callback — make_shard_plan cleared
        // it), merged post-join so counters match the serial run's.
        CampaignObserver observer(shard.config, "static");
        run_campaign_chunk(regions, strikes, shard.config, state, max_strikes,
                           obs::enabled() ? &observer : nullptr,
                           grids.empty() ? nullptr : &grids[shard.index]);
      });
  merge_shard_grids(run.sensitivity, grids);
  return run;
}

namespace {

/// Deterministic post-run observability for the recovery side of a
/// sharded campaign; mirrors emit_observability's contract (coordinator
/// only, after the join, shard order).
void emit_recovery_observability(const RecoveryShardedRun& run) {
  if (!obs::enabled()) return;
  emit_recovery_metrics(run.merged.recovery);

  obs::TraceEventSink* trace = obs::current_trace();
  if (trace == nullptr) return;
  for (std::size_t i = 0; i < run.shard_results.size(); ++i) {
    const obs::TraceEventSink::LaneId lane =
        trace->lane("recovery", "shard" + std::to_string(i));
    const RecoveryCounters& c = run.shard_results[i].recovery;
    trace->complete(lane, "recovery", 0, run.shard_results[i].strikes.strikes,
                    {obs::TraceArg::num("corrections", c.corrections),
                     obs::TraceArg::num("scrub_corrections",
                                        c.scrub_corrections),
                     obs::TraceArg::num("refetches", c.refetches),
                     obs::TraceArg::num("unrecoverable", c.unrecoverable)});
  }
}

}  // namespace

RecoveryShardedRun run_recovery_campaign_sharded(
    const std::vector<RecoveryRegion>& regions,
    const StrikeMultiplicityModel& strikes, const CampaignConfig& config,
    const RecoveryPolicy& policy, const ExecConfig& exec) {
  RecoveryShardedRun out;
  if (!policy.active()) {
    // Static semantics: reuse the static sharded path (including its
    // checkpoint support) and report empty recovery counters.
    std::vector<InjectionRegion> inject;
    inject.reserve(regions.size());
    for (const RecoveryRegion& r : regions) inject.push_back(r.inject);
    ShardedRun run = run_campaign_sharded(inject, strikes, config, exec);
    out.complete = run.complete;
    out.merged = RecoveryResult{run.merged, {}};
    out.shard_results.reserve(run.shard_results.size());
    for (const CampaignResult& shard : run.shard_results)
      out.shard_results.push_back(RecoveryResult{shard, {}});
    out.sensitivity = std::move(run.sensitivity);
    return out;
  }
  FTSPM_REQUIRE(exec.checkpoint_path.empty() && exec.resume_path.empty(),
                "recovery campaigns do not support checkpoint/resume: the "
                "live array images are not serialized");

  const LiveArrayCampaign campaign(regions, strikes, policy);
  // The runner owns the core shard states; the image/counter sides live
  // here, indexed by shard, touched only by that shard's worker.
  std::vector<RecoveryShardSide> sides(exec.effective_shards());
  std::vector<SensitivityGrid> grids = make_shard_grids(
      exec.effective_shards(),
      exec.sensitivity_buckets != 0
          ? make_sensitivity_grid(regions, exec.sensitivity_buckets)
          : SensitivityGrid());
  const ShardedRun run = run_sharded_campaign(
      config, exec, "recovery", LiveArrayCampaign::kSeedSalt,
      [&](const CampaignShard& shard, CampaignShardState& state,
          std::uint64_t max_strikes) {
        RecoveryShardSide& side = sides[shard.index];
        campaign.ensure_shard_images(side, shard.config.seed);
        CampaignObserver observer(shard.config, "recovery");
        campaign.run_chunk(shard.config, state, side, max_strikes,
                           obs::enabled() ? &observer : nullptr,
                           grids.empty() ? nullptr : &grids[shard.index]);
      });
  merge_shard_grids(out.sensitivity, grids);

  out.complete = run.complete;
  out.shard_results.reserve(run.shard_results.size());
  for (std::size_t i = 0; i < run.shard_results.size(); ++i)
    out.shard_results.push_back(
        RecoveryResult{run.shard_results[i], sides[i].counters});
  out.merged.strikes = run.merged;
  // Shard-order merge: even the floating-point energy sum is
  // reproducible across any jobs value.
  for (const RecoveryResult& shard : out.shard_results)
    out.merged.recovery.add(shard.recovery);
  emit_recovery_observability(out);
  return out;
}

}  // namespace ftspm::exec
