#include "ftspm/exec/parallel_campaign.h"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "ftspm/exec/thread_pool.h"
#include "ftspm/obs/metrics.h"
#include "ftspm/obs/trace_sink.h"
#include "ftspm/util/error.h"

namespace ftspm::exec {

std::uint32_t ExecConfig::effective_jobs() const noexcept {
  return jobs == 0 ? default_jobs() : jobs;
}

std::uint32_t ExecConfig::effective_shards() const noexcept {
  return shards == 0 ? std::max<std::uint32_t>(effective_jobs(), 1) : shards;
}

namespace {

/// Serializes the root progress callback across workers: counts are
/// globally aggregated, reported monotonically, and the completion
/// call fires exactly once.
class ProgressAggregator {
 public:
  ProgressAggregator(const CampaignConfig& root, std::uint64_t already_done)
      : root_(root), done_(already_done), last_reported_(already_done) {}

  void add(std::uint64_t strikes) {
    if (strikes == 0) return;
    const std::uint64_t done =
        done_.fetch_add(strikes, std::memory_order_relaxed) + strikes;
    if (root_.progress_interval == 0 || !root_.progress) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    if (done >= root_.strikes) return;  // completion is the coordinator's
    if (done - last_reported_ < root_.progress_interval) return;
    last_reported_ = done;
    root_.progress(done, root_.strikes);
  }

  std::uint64_t done() const noexcept {
    return done_.load(std::memory_order_relaxed);
  }

  /// Called once by the coordinator after the pool joined.
  void finish(bool complete) {
    if (!complete || root_.progress_interval == 0 || !root_.progress) return;
    root_.progress(root_.strikes, root_.strikes);
  }

 private:
  const CampaignConfig& root_;
  std::atomic<std::uint64_t> done_;
  std::mutex mutex_;
  std::uint64_t last_reported_;
};

/// Guards the shared checkpoint document and its file writes.
class CheckpointWriter {
 public:
  CheckpointWriter(CampaignCheckpoint cp, std::string path)
      : cp_(std::move(cp)), path_(std::move(path)) {}

  bool active() const noexcept { return !path_.empty(); }

  void update(std::uint32_t shard_index, std::uint64_t shard_strikes,
              const CampaignShardState& state, bool flush) {
    if (!active()) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    cp_.shards[shard_index] =
        snapshot_shard_state(shard_index, shard_strikes, state);
    if (flush) store_checkpoint(cp_, path_);
  }

  void flush() {
    if (!active()) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    store_checkpoint(cp_, path_);
  }

 private:
  CampaignCheckpoint cp_;
  std::string path_;
  std::mutex mutex_;
};

/// Deterministic post-run observability: per-shard counters, one trace
/// lane per shard, and pool-utilization telemetry. Emitted by the
/// coordinator after the pool joined, in shard order, so enabling
/// observability never perturbs (and never races with) the campaign.
void emit_observability(const std::vector<CampaignShard>& plan,
                        const std::vector<CampaignShardState>& states,
                        const std::vector<std::uint64_t>& initial_done,
                        const ThreadPool& pool) {
  if (!obs::enabled()) return;
  obs::Registry& reg = obs::registry();
  std::uint64_t executed = 0;
  std::uint64_t vulnerable = 0;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const CampaignResult& p = states[i].partial;
    executed += states[i].done - initial_done[i];
    vulnerable += p.due + p.sdc;
    const std::string prefix = "exec.shard" + std::to_string(i);
    reg.counter(prefix + ".strikes").add(states[i].done);
    reg.counter(prefix + ".vulnerable").add(p.due + p.sdc);
  }
  reg.counter("campaign.strikes").add(executed);
  reg.counter("campaign.vulnerable").add(vulnerable);
  reg.gauge("exec.pool.jobs").set(static_cast<double>(pool.size()));
  reg.counter("exec.campaign.shards").add(plan.size());
  for (std::uint32_t w = 0; w < pool.size(); ++w)
    reg.timer("exec.worker" + std::to_string(w) + ".busy")
        .record_ns(pool.worker_busy_ns(w));

  obs::TraceEventSink* trace = obs::current_trace();
  if (trace == nullptr) return;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const obs::TraceEventSink::LaneId lane =
        trace->lane("exec", "shard" + std::to_string(i));
    const CampaignResult& p = states[i].partial;
    trace->complete(lane, "shard", 0, states[i].done,
                    {obs::TraceArg::num("masked", p.masked),
                     obs::TraceArg::num("dre", p.dre),
                     obs::TraceArg::num("due", p.due),
                     obs::TraceArg::num("sdc", p.sdc)});
  }
}

}  // namespace

ShardedRun run_sharded_campaign(const CampaignConfig& root,
                                const ExecConfig& exec, std::string_view kind,
                                std::uint64_t seed_salt,
                                const ShardChunkFn& run_chunk) {
  FTSPM_REQUIRE(static_cast<bool>(run_chunk), "a chunk runner is required");
  FTSPM_REQUIRE(exec.chunk_strikes >= 1, "chunk_strikes must be >= 1");
  const std::uint32_t jobs = exec.effective_jobs();
  const std::uint32_t shard_count = exec.effective_shards();
  const std::vector<CampaignShard> plan = make_shard_plan(root, shard_count);

  // Fresh per-shard states, or the checkpointed ones when resuming.
  // Each state carries its shard's CampaignScratch: one worker owns one
  // shard for the whole run, so the hot-loop scratch (hit buffer,
  // weight table) is reused across every chunk of that shard without
  // sharing or per-chunk allocation. Checkpoints neither save nor
  // restore scratch — it never affects results.
  std::vector<CampaignShardState> states;
  states.reserve(shard_count);
  CampaignCheckpoint cp;
  cp.root_seed = root.seed;
  cp.strikes = root.strikes;
  cp.shard_count = shard_count;
  cp.seed_salt = seed_salt;
  cp.kind = std::string(kind);
  if (!exec.resume_path.empty()) {
    cp = load_checkpoint(exec.resume_path);
    cp.validate_against(root, shard_count, seed_salt, kind);
    for (const ShardCheckpoint& s : cp.shards)
      states.push_back(restore_shard_state(s));
  } else {
    for (const CampaignShard& shard : plan) {
      states.push_back(begin_campaign_shard(shard.config.seed ^ seed_salt));
      cp.shards.push_back(
          snapshot_shard_state(shard.index, shard.config.strikes,
                               states.back()));
    }
  }

  std::vector<std::uint64_t> initial_done(shard_count);
  std::uint64_t already_done = 0;
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    initial_done[i] = states[i].done;
    already_done += states[i].done;
  }

  const std::string write_path = exec.checkpoint_path.empty()
                                     ? exec.resume_path
                                     : exec.checkpoint_path;
  CheckpointWriter checkpoints(std::move(cp), write_path);
  ProgressAggregator progress(root, already_done);
  std::atomic<bool> halted{false};

  ThreadPool pool(jobs);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(shard_count);
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    tasks.push_back([&, i] {
      // Workers must not touch the process-wide registry or trace —
      // the coordinator emits everything deterministically after the
      // join.
      const obs::ThreadSuppressScope suppress;
      const CampaignShard& shard = plan[i];
      CampaignShardState& state = states[i];
      std::uint64_t since_checkpoint = 0;
      while (state.done < shard.config.strikes) {
        if (exec.halt_after != 0 &&
            progress.done() >= exec.halt_after) {
          halted.store(true, std::memory_order_relaxed);
          break;
        }
        const std::uint64_t before = state.done;
        run_chunk(shard, state, exec.chunk_strikes);
        FTSPM_CHECK(state.done > before,
                    "campaign chunk runner made no progress");
        const std::uint64_t advanced = state.done - before;
        progress.add(advanced);
        since_checkpoint += advanced;
        if (since_checkpoint >= exec.checkpoint_interval ||
            state.done == shard.config.strikes) {
          checkpoints.update(i, shard.config.strikes, state,
                             /*flush=*/checkpoints.active());
          since_checkpoint = 0;
        }
      }
    });
  }
  pool.run_all(std::move(tasks));

  ShardedRun run;
  run.shard_results.reserve(shard_count);
  for (const CampaignShardState& state : states)
    run.shard_results.push_back(state.partial);
  run.merged = merge_shard_results(run.shard_results);
  run.complete = true;
  for (std::uint32_t i = 0; i < shard_count; ++i)
    if (states[i].done < plan[i].config.strikes) run.complete = false;

  // One final write so a halted (or freshly finished) run leaves a
  // consistent resume point on disk.
  for (std::uint32_t i = 0; i < shard_count; ++i)
    checkpoints.update(i, plan[i].config.strikes, states[i], /*flush=*/false);
  checkpoints.flush();

  progress.finish(run.complete);
  emit_observability(plan, states, initial_done, pool);
  return run;
}

ShardedRun run_campaign_sharded(const std::vector<InjectionRegion>& regions,
                                const StrikeMultiplicityModel& strikes,
                                const CampaignConfig& config,
                                const ExecConfig& exec) {
  return run_sharded_campaign(
      config, exec, "static", /*seed_salt=*/0,
      [&](const CampaignShard& shard, CampaignShardState& state,
          std::uint64_t max_strikes) {
        run_campaign_chunk(regions, strikes, shard.config, state, max_strikes,
                           /*observer=*/nullptr);
      });
}

namespace {

/// Deterministic post-run observability for the recovery side of a
/// sharded campaign; mirrors emit_observability's contract (coordinator
/// only, after the join, shard order).
void emit_recovery_observability(const RecoveryShardedRun& run) {
  if (!obs::enabled()) return;
  obs::Registry& reg = obs::registry();
  const RecoveryCounters& m = run.merged.recovery;
  reg.counter("recovery.demand_reads").add(m.demand_reads);
  reg.counter("recovery.corrections").add(m.corrections);
  reg.counter("recovery.scrub_passes").add(m.scrub_passes);
  reg.counter("recovery.scrub_words").add(m.scrub_words);
  reg.counter("recovery.scrub_corrections").add(m.scrub_corrections);
  reg.counter("recovery.refetches").add(m.refetches);
  reg.counter("recovery.unrecoverable").add(m.unrecoverable);
  reg.counter("recovery.sdc_reads").add(m.sdc_reads);
  reg.counter("recovery.cycles").add(m.recovery_cycles);
  reg.gauge("recovery.energy_pj").set(m.recovery_energy_pj);

  obs::TraceEventSink* trace = obs::current_trace();
  if (trace == nullptr) return;
  for (std::size_t i = 0; i < run.shard_results.size(); ++i) {
    const obs::TraceEventSink::LaneId lane =
        trace->lane("recovery", "shard" + std::to_string(i));
    const RecoveryCounters& c = run.shard_results[i].recovery;
    trace->complete(lane, "recovery", 0, run.shard_results[i].strikes.strikes,
                    {obs::TraceArg::num("corrections", c.corrections),
                     obs::TraceArg::num("scrub_corrections",
                                        c.scrub_corrections),
                     obs::TraceArg::num("refetches", c.refetches),
                     obs::TraceArg::num("unrecoverable", c.unrecoverable)});
  }
}

}  // namespace

RecoveryShardedRun run_recovery_campaign_sharded(
    const std::vector<RecoveryRegion>& regions,
    const StrikeMultiplicityModel& strikes, const CampaignConfig& config,
    const RecoveryPolicy& policy, const ExecConfig& exec) {
  RecoveryShardedRun out;
  if (!policy.active()) {
    // Static semantics: reuse the static sharded path (including its
    // checkpoint support) and report empty recovery counters.
    std::vector<InjectionRegion> inject;
    inject.reserve(regions.size());
    for (const RecoveryRegion& r : regions) inject.push_back(r.inject);
    const ShardedRun run = run_campaign_sharded(inject, strikes, config, exec);
    out.complete = run.complete;
    out.merged = RecoveryResult{run.merged, {}};
    out.shard_results.reserve(run.shard_results.size());
    for (const CampaignResult& shard : run.shard_results)
      out.shard_results.push_back(RecoveryResult{shard, {}});
    return out;
  }
  FTSPM_REQUIRE(exec.checkpoint_path.empty() && exec.resume_path.empty(),
                "recovery campaigns do not support checkpoint/resume: the "
                "live array images are not serialized");

  const LiveArrayCampaign campaign(regions, strikes, policy);
  // The runner owns the core shard states; the image/counter sides live
  // here, indexed by shard, touched only by that shard's worker.
  std::vector<RecoveryShardSide> sides(exec.effective_shards());
  const ShardedRun run = run_sharded_campaign(
      config, exec, "recovery", LiveArrayCampaign::kSeedSalt,
      [&](const CampaignShard& shard, CampaignShardState& state,
          std::uint64_t max_strikes) {
        RecoveryShardSide& side = sides[shard.index];
        campaign.ensure_shard_images(side, shard.config.seed);
        campaign.run_chunk(shard.config, state, side, max_strikes,
                           /*observer=*/nullptr);
      });

  out.complete = run.complete;
  out.shard_results.reserve(run.shard_results.size());
  for (std::size_t i = 0; i < run.shard_results.size(); ++i)
    out.shard_results.push_back(
        RecoveryResult{run.shard_results[i], sides[i].counters});
  out.merged.strikes = run.merged;
  // Shard-order merge: even the floating-point energy sum is
  // reproducible across any jobs value.
  for (const RecoveryResult& shard : out.shard_results)
    out.merged.recovery.add(shard.recovery);
  emit_recovery_observability(out);
  return out;
}

}  // namespace ftspm::exec
