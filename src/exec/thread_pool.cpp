#include "ftspm/exec/thread_pool.h"

#include <chrono>

#include "ftspm/util/error.h"

namespace ftspm::exec {

std::uint32_t default_jobs() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : static_cast<std::uint32_t>(n);
}

ThreadPool::ThreadPool(std::uint32_t threads) {
  const std::uint32_t n = threads == 0 ? default_jobs() : threads;
  busy_ns_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  for (std::uint32_t i = 0; i < n; ++i)
    busy_ns_[i].store(0, std::memory_order_relaxed);
  workers_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  FTSPM_REQUIRE(static_cast<bool>(fn), "cannot submit an empty task");
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    FTSPM_CHECK(!stop_, "submit on a stopped pool");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  std::vector<std::future<void>> futures;
  futures.reserve(tasks.size());
  for (std::function<void()>& t : tasks) futures.push_back(submit(std::move(t)));
  // Wait for everything before rethrowing so no task is left running
  // with dangling references to the caller's frame.
  for (std::future<void>& f : futures) f.wait();
  for (std::future<void>& f : futures) f.get();
}

std::uint64_t ThreadPool::worker_busy_ns(std::uint32_t i) const noexcept {
  if (i >= workers_.size()) return 0;
  return busy_ns_[i].load(std::memory_order_relaxed);
}

std::uint64_t ThreadPool::total_busy_ns() const noexcept {
  std::uint64_t total = 0;
  for (std::uint32_t i = 0; i < workers_.size(); ++i)
    total += busy_ns_[i].load(std::memory_order_relaxed);
  return total;
}

void ThreadPool::worker_loop(std::uint32_t index) {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const auto start = std::chrono::steady_clock::now();
    task();  // exceptions land in the task's future
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start);
    busy_ns_[index].fetch_add(static_cast<std::uint64_t>(ns.count()),
                              std::memory_order_relaxed);
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) tasks.push_back([&fn, i] { fn(i); });
  pool.run_all(std::move(tasks));
}

}  // namespace ftspm::exec
