// ftspm/exec: deterministic campaign sharding and checkpoints.
//
// A root CampaignConfig splits into per-shard configs whose strike
// counts partition the root total and whose seeds come from
// Rng::derive_stream_seed(root_seed, shard_index). Because each shard
// is a pure function of its own config, the merged counters for a
// fixed (seed, strikes, shard_count) are bit-identical regardless of
// worker-thread count or shard completion order — and a one-shard plan
// keeps the root seed, reproducing today's serial results exactly.
//
// Checkpoints serialize each shard's progress (strikes done, partial
// counters, RNG state words) as one JSON document via ftspm/util/json.
// 64-bit quantities that can exceed a double's 53-bit mantissa (seeds,
// RNG words) travel as "0x..." hex strings; counters, which stay far
// below 2^53 in any feasible campaign, travel as plain numbers.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ftspm/fault/injector.h"

namespace ftspm::exec {

/// One slice of a root campaign: the shard's index and its derived
/// config (sliced strikes, stream seed, progress callback cleared —
/// the parallel runner owns progress reporting).
struct CampaignShard {
  std::uint32_t index = 0;
  CampaignConfig config;
};

/// Splits `root` into `shard_count` shards. Strikes divide as evenly
/// as possible (the first `strikes % shard_count` shards get one
/// extra); a single shard keeps the root seed verbatim, multi-shard
/// plans derive seed_i = Rng::derive_stream_seed(root.seed, i).
std::vector<CampaignShard> make_shard_plan(const CampaignConfig& root,
                                           std::uint32_t shard_count);

/// Sums per-shard counters. Associative and order-independent, but
/// callers pass shards in index order by convention.
CampaignResult merge_shard_results(const std::vector<CampaignResult>& parts);

/// Serialized progress of one shard.
struct ShardCheckpoint {
  std::uint32_t index = 0;
  std::uint64_t strikes = 0;  ///< The shard's total strike budget.
  std::uint64_t done = 0;
  CampaignResult partial;  ///< Counters over the `done` strikes.
  std::array<std::uint64_t, 4> rng_state{};
};

/// A whole campaign's resume point. The root fields identify which
/// campaign the shard states belong to; resuming validates them
/// against the caller's config before trusting the states.
struct CampaignCheckpoint {
  std::uint64_t root_seed = 0;
  std::uint64_t strikes = 0;  ///< Root total.
  std::uint32_t shard_count = 0;
  std::uint64_t seed_salt = 0;  ///< Kind-specific xor applied at seeding.
  std::string kind;             ///< "static", "temporal", ...
  std::vector<ShardCheckpoint> shards;

  bool complete() const noexcept;

  /// Throws ftspm::Error unless this checkpoint describes exactly the
  /// campaign (root, shard_count, salt, kind) — a checkpoint resumed
  /// under different parameters would silently produce wrong numbers.
  void validate_against(const CampaignConfig& root, std::uint32_t shards,
                        std::uint64_t salt, std::string_view kind) const;
};

/// Builds a shard's resumable state from its checkpoint.
CampaignShardState restore_shard_state(const ShardCheckpoint& cp);
/// Snapshots a shard's in-flight state for checkpointing.
ShardCheckpoint snapshot_shard_state(std::uint32_t index,
                                     std::uint64_t shard_strikes,
                                     const CampaignShardState& state);

std::string checkpoint_to_json(const CampaignCheckpoint& cp);
CampaignCheckpoint checkpoint_from_json(std::string_view text);

/// File round trip. store_checkpoint writes to `path + ".tmp"` then
/// renames, so a kill mid-write never corrupts an existing checkpoint.
void store_checkpoint(const CampaignCheckpoint& cp, const std::string& path);
CampaignCheckpoint load_checkpoint(const std::string& path);

}  // namespace ftspm::exec
