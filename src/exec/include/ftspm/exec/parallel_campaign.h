// ftspm/exec: the sharded campaign runner.
//
// Drives a set of campaign shards (see shard.h) across a ThreadPool in
// fixed-size chunks, aggregating progress thread-safely and writing
// JSON checkpoints so multi-hour campaigns survive a kill. The runner
// is campaign-kind agnostic: callers supply a chunk function that
// advances one shard's CampaignShardState, and the fault/core layers
// provide the static and temporal kinds on top.
//
// Determinism contract: for a fixed (seed, strikes, shard_count) the
// merged counters are bit-identical across any jobs value, any chunk
// size, and any suspend/resume schedule — each shard's sequence is a
// pure function of its derived seed, and the merge is a plain sum in
// shard order. Only shard_count changes results; shard_count == 1
// reproduces the serial campaign exactly.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "ftspm/exec/shard.h"
#include "ftspm/fault/recovery.h"
#include "ftspm/fault/sensitivity.h"
#include "ftspm/fault/strike_model.h"

namespace ftspm::exec {

class ThreadPool;

/// Opt-in wall-clock liveness stream for long sharded campaigns. A
/// dedicated emitter thread samples the runner's thread-safe progress
/// aggregation every `interval_ms` and appends one NDJSON heartbeat
/// record (per-shard strikes/sec, completed/total chunks, pool
/// utilization, ETA) to `out_path`. Heartbeats are nondeterministic by
/// design — they carry wall-clock quantities — so they live in their
/// own file and never appear in golden-compared artefacts. Workers only
/// publish relaxed atomic progress stores; the emitter never blocks
/// shard completion, and emits at least one record (plus a final one at
/// shutdown) even for runs shorter than the interval.
struct HeartbeatConfig {
  /// NDJSON destination; empty = heartbeat disabled.
  std::string out_path;
  /// Milliseconds between beats (clamped to >= 1).
  std::uint32_t interval_ms = 1000;
  /// Also print a human one-liner per beat to stderr.
  bool stderr_line = false;

  bool enabled() const noexcept { return !out_path.empty(); }
};

/// How to execute a sharded campaign. Results depend only on the shard
/// count (via the shard plan); everything else here is scheduling.
struct ExecConfig {
  /// Worker threads; 0 = hardware concurrency.
  std::uint32_t jobs = 1;
  /// Shard count; 0 = the effective jobs value. Pin this explicitly
  /// when comparing runs across different --jobs settings.
  std::uint32_t shards = 1;
  /// Write per-shard progress to this path (empty = no checkpointing).
  std::string checkpoint_path;
  /// Load progress from this path before running; continues writing to
  /// checkpoint_path, or back to this path when checkpoint_path is
  /// empty.
  std::string resume_path;
  /// Per-shard strikes between checkpoint writes.
  std::uint64_t checkpoint_interval = 1u << 20;
  /// Scheduling granule: strikes a worker runs between bookkeeping
  /// (progress, checkpoint, halt checks). Never affects results.
  std::uint64_t chunk_strikes = 1u << 16;
  /// Testing hook: stop scheduling new chunks once this many strikes
  /// completed globally (0 = run to completion). A halted run writes a
  /// final checkpoint and reports complete() == false.
  std::uint64_t halt_after = 0;
  /// Live telemetry (off unless out_path is set). Never affects
  /// results or deterministic artefacts.
  HeartbeatConfig heartbeat;
  /// Buckets per region of the per-shard sensitivity grids (see
  /// fault/sensitivity.h); 0 disables them. Each shard records into its
  /// own grid and the coordinator merges them in shard order, so the
  /// merged grid is jobs-invariant. A resumed run's grid covers only
  /// the strikes executed by this invocation (grids are not
  /// checkpointed). Never affects campaign counters.
  std::uint32_t sensitivity_buckets = 0;
  /// Run on this caller-owned pool instead of constructing a private
  /// one (the serve daemon schedules every admitted request onto one
  /// shared pool). Non-owning; must outlive the run. When set, `jobs`
  /// is ignored — concurrency is the pool's worker count. Never
  /// affects results: counters depend only on (seed, strikes, shards).
  ThreadPool* pool = nullptr;
  /// Cooperative cancellation: workers poll this flag at chunk
  /// granularity and stop scheduling further chunks once it reads
  /// true. A cancelled run writes its final checkpoint and reports
  /// complete() == false, exactly like a halt_after stop. Non-owning;
  /// may be flipped from any thread.
  const std::atomic<bool>* cancel = nullptr;
  /// Wall-clock shard attribution: when set, each worker stamps its
  /// shard's task start and finish (ns since the runner launched the
  /// tasks) with relaxed atomic stores, and the coordinator invokes
  /// this callback after the join, once per shard in shard order. The
  /// serve daemon turns these stamps into per-shard child spans of a
  /// request's wall-clock trace. Reporting only — wall quantities
  /// never reach the counters, so enabling it cannot perturb results.
  std::function<void(std::uint32_t shard, std::uint64_t start_ns,
                     std::uint64_t end_ns)>
      shard_span;

  std::uint32_t effective_jobs() const noexcept;
  std::uint32_t effective_shards() const noexcept;
  /// chunk_strikes rounded up to a whole number of campaign batch
  /// blocks (kCampaignBatchWidth) so workers hand the batched engine
  /// full blocks; tiny explicit granules (below one block) are kept
  /// verbatim. Like chunk_strikes itself, never affects results.
  std::uint64_t effective_chunk_strikes() const noexcept;
};

/// What a sharded run produced. `shard_results` holds per-shard
/// partial counters in shard order (partials when halted).
struct ShardedRun {
  CampaignResult merged;
  bool complete = true;
  std::vector<CampaignResult> shard_results;
  /// Shard-order merge of the per-shard sensitivity grids; inactive
  /// unless ExecConfig::sensitivity_buckets was set.
  SensitivityGrid sensitivity;
};

/// Advances `state` by at most `max_strikes` strikes of `shard`.
/// Called concurrently for different shards, never for the same shard;
/// implementations must touch only the shard's own state and shared
/// *read-only* context.
using ShardChunkFn = std::function<void(
    const CampaignShard& shard, CampaignShardState& state,
    std::uint64_t max_strikes)>;

/// Runs the sharded campaign described by (root, exec) with
/// kind-specific chunk execution. `seed_salt` is xored into each
/// shard's seed at generator construction (the temporal campaign's
/// historical salt); `kind` tags checkpoints so a static checkpoint
/// cannot resume a temporal campaign. Root progress callbacks fire
/// with globally aggregated strike counts, monotonically, completion
/// exactly once.
ShardedRun run_sharded_campaign(const CampaignConfig& root,
                                const ExecConfig& exec, std::string_view kind,
                                std::uint64_t seed_salt,
                                const ShardChunkFn& run_chunk);

/// The static injector campaign (fault/injector.h run_campaign),
/// sharded. merged counters with exec.shards == 1 match run_campaign
/// bit for bit.
ShardedRun run_campaign_sharded(const std::vector<InjectionRegion>& regions,
                                const StrikeMultiplicityModel& strikes,
                                const CampaignConfig& config,
                                const ExecConfig& exec);

/// What a sharded recovery campaign produced: merged strike and
/// recovery counters plus the per-shard partials, all in shard order.
struct RecoveryShardedRun {
  RecoveryResult merged;
  bool complete = true;
  std::vector<RecoveryResult> shard_results;
  /// Shard-order merge of the per-shard sensitivity grids; inactive
  /// unless ExecConfig::sensitivity_buckets was set.
  SensitivityGrid sensitivity;
};

/// The live-array recovery campaign (fault/recovery.h), sharded. Each
/// shard owns a private array image set seeded from its shard seed, so
/// shards stay independent and the merged counters depend only on
/// (seed, strikes, shard_count, policy) — never on --jobs. With
/// `!policy.active()` this delegates to run_campaign_sharded, matching
/// the static campaign bit for bit. Checkpoint/resume is rejected:
/// the array images are not serialized, so a resumed shard could not
/// reconstruct its state.
RecoveryShardedRun run_recovery_campaign_sharded(
    const std::vector<RecoveryRegion>& regions,
    const StrikeMultiplicityModel& strikes, const CampaignConfig& config,
    const RecoveryPolicy& policy, const ExecConfig& exec);

}  // namespace ftspm::exec
