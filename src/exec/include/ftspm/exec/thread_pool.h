// ftspm/exec: the worker pool.
//
// A fixed-size pool of worker threads draining one mutex-protected FIFO
// task queue. Deliberately minimal: campaigns and suites decompose into
// a known set of coarse tasks up front, so work stealing, priorities,
// and dynamic resizing buy nothing here. Exceptions thrown by a task
// are captured in its future and rethrown to the submitter —
// `run_all` rethrows the first failure in *task order*, keeping error
// reporting deterministic even when completion order is not.
//
// Determinism contract: the pool never influences results. Everything
// executed on it must be a pure function of its own inputs (campaign
// shards own their RNG; suite benchmarks are independent); the pool
// only decides *when* each task runs.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ftspm::exec {

/// Worker count for "auto" (jobs = 0): the hardware concurrency,
/// floored at 1 when the runtime cannot report it.
std::uint32_t default_jobs() noexcept;

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = default_jobs()).
  explicit ThreadPool(std::uint32_t threads = 0);
  /// Drains the queue, then joins every worker.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(workers_.size());
  }

  /// Enqueues `fn`; the returned future rethrows whatever `fn` threw.
  std::future<void> submit(std::function<void()> fn);

  /// Submits every task, waits for all of them, and rethrows the first
  /// (by task order) exception, if any.
  void run_all(std::vector<std::function<void()>> tasks);

  /// Cumulative wall-clock busy time of worker `i` (task execution
  /// only, not queue waits). Utilization telemetry for the pool
  /// metrics; wall-clock-derived, so callers must keep it out of
  /// deterministic snapshots (registry timers do this by default).
  std::uint64_t worker_busy_ns(std::uint32_t i) const noexcept;
  std::uint64_t total_busy_ns() const noexcept;

 private:
  void worker_loop(std::uint32_t index);

  std::vector<std::thread> workers_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> busy_ns_;
  std::deque<std::packaged_task<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Runs fn(i) for every i in [0, n) across the pool and waits for all
/// of them; exceptions are rethrown in index order.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace ftspm::exec
