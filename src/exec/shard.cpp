#include "ftspm/exec/shard.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "ftspm/util/error.h"
#include "ftspm/util/json.h"
#include "ftspm/util/rng.h"

namespace ftspm::exec {

namespace {

std::string hex_u64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t parse_hex_u64(const JsonValue& v, const char* what) {
  FTSPM_CHECK(v.is_string() && v.string.size() > 2 &&
                  v.string.compare(0, 2, "0x") == 0,
              std::string("checkpoint field '") + what +
                  "' must be a 0x-prefixed hex string");
  std::uint64_t out = 0;
  for (std::size_t i = 2; i < v.string.size(); ++i) {
    const char c = v.string[i];
    std::uint64_t digit;
    if (c >= '0' && c <= '9') digit = static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    else if (c >= 'A' && c <= 'F')
      digit = static_cast<std::uint64_t>(c - 'A' + 10);
    else
      throw Error(std::string("bad hex digit in checkpoint field '") + what +
                  "'");
    FTSPM_CHECK(out <= (~0ULL >> 4), "hex value overflows 64 bits");
    out = (out << 4) | digit;
  }
  return out;
}

std::uint64_t get_u64(const JsonValue& obj, const char* key) {
  const JsonValue& v = obj.at(key);
  FTSPM_CHECK(v.is_number() && v.number >= 0,
              std::string("checkpoint field '") + key +
                  "' must be a non-negative number");
  return static_cast<std::uint64_t>(v.number);
}

}  // namespace

std::vector<CampaignShard> make_shard_plan(const CampaignConfig& root,
                                           std::uint32_t shard_count) {
  FTSPM_REQUIRE(shard_count >= 1, "a campaign needs at least one shard");
  const std::uint64_t base = root.strikes / shard_count;
  const std::uint64_t extra = root.strikes % shard_count;
  std::vector<CampaignShard> plan;
  plan.reserve(shard_count);
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    CampaignShard shard;
    shard.index = i;
    shard.config = root;
    shard.config.strikes = base + (i < extra ? 1 : 0);
    // One shard reproduces the serial campaign bit for bit; only
    // genuine splits re-derive seeds.
    if (shard_count > 1)
      shard.config.seed = Rng::derive_stream_seed(root.seed, i);
    // Progress belongs to the coordinator, never to a worker.
    shard.config.progress_interval = 0;
    shard.config.progress = nullptr;
    plan.push_back(std::move(shard));
  }
  return plan;
}

CampaignResult merge_shard_results(const std::vector<CampaignResult>& parts) {
  CampaignResult merged;
  for (const CampaignResult& p : parts) {
    merged.strikes += p.strikes;
    merged.masked += p.masked;
    merged.dre += p.dre;
    merged.due += p.due;
    merged.sdc += p.sdc;
  }
  return merged;
}

bool CampaignCheckpoint::complete() const noexcept {
  for (const ShardCheckpoint& s : shards)
    if (s.done < s.strikes) return false;
  return true;
}

void CampaignCheckpoint::validate_against(const CampaignConfig& root,
                                          std::uint32_t shards_expected,
                                          std::uint64_t salt,
                                          std::string_view kind_expected) const {
  FTSPM_CHECK(root_seed == root.seed,
              "checkpoint was taken under a different seed");
  FTSPM_CHECK(strikes == root.strikes,
              "checkpoint was taken with a different strike budget");
  FTSPM_CHECK(shard_count == shards_expected,
              "checkpoint was taken with a different shard count");
  FTSPM_CHECK(seed_salt == salt,
              "checkpoint was taken with a different seed salt");
  FTSPM_CHECK(kind == kind_expected,
              "checkpoint belongs to a different campaign kind");
  FTSPM_CHECK(shards.size() == shard_count,
              "checkpoint shard list does not match its shard count");
  for (std::size_t i = 0; i < shards.size(); ++i) {
    FTSPM_CHECK(shards[i].index == i, "checkpoint shards out of order");
    FTSPM_CHECK(shards[i].done <= shards[i].strikes,
                "checkpoint shard overran its strike budget");
    FTSPM_CHECK(shards[i].partial.strikes == shards[i].done &&
                    shards[i].partial.masked + shards[i].partial.dre +
                            shards[i].partial.due + shards[i].partial.sdc ==
                        shards[i].done,
                "checkpoint shard counters disagree with its progress");
  }
}

CampaignShardState restore_shard_state(const ShardCheckpoint& cp) {
  CampaignShardState state;
  state.done = cp.done;
  state.partial = cp.partial;
  state.rng = Rng::from_state(cp.rng_state);
  return state;
}

ShardCheckpoint snapshot_shard_state(std::uint32_t index,
                                     std::uint64_t shard_strikes,
                                     const CampaignShardState& state) {
  ShardCheckpoint cp;
  cp.index = index;
  cp.strikes = shard_strikes;
  cp.done = state.done;
  cp.partial = state.partial;
  cp.rng_state = state.rng.state();
  return cp;
}

std::string checkpoint_to_json(const CampaignCheckpoint& cp) {
  JsonWriter w;
  w.begin_object();
  w.field("version", std::uint64_t{1});
  w.field("kind", cp.kind);
  w.field("root_seed", hex_u64(cp.root_seed));
  w.field("strikes", cp.strikes);
  w.field("shard_count", std::uint64_t{cp.shard_count});
  w.field("seed_salt", hex_u64(cp.seed_salt));
  w.begin_array("shards");
  for (const ShardCheckpoint& s : cp.shards) {
    w.begin_object();
    w.field("shard", std::uint64_t{s.index});
    w.field("strikes", s.strikes);
    w.field("done", s.done);
    w.field("masked", s.partial.masked);
    w.field("dre", s.partial.dre);
    w.field("due", s.partial.due);
    w.field("sdc", s.partial.sdc);
    w.begin_array("rng");
    for (std::uint64_t word : s.rng_state) w.element(hex_u64(word));
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

CampaignCheckpoint checkpoint_from_json(std::string_view text) {
  const JsonValue doc = parse_json(text);
  FTSPM_CHECK(doc.is_object(), "checkpoint document must be an object");
  FTSPM_CHECK(get_u64(doc, "version") == 1,
              "unsupported checkpoint version");
  CampaignCheckpoint cp;
  cp.kind = doc.at("kind").string;
  cp.root_seed = parse_hex_u64(doc.at("root_seed"), "root_seed");
  cp.strikes = get_u64(doc, "strikes");
  cp.shard_count = static_cast<std::uint32_t>(get_u64(doc, "shard_count"));
  cp.seed_salt = parse_hex_u64(doc.at("seed_salt"), "seed_salt");
  const JsonValue& shards = doc.at("shards");
  FTSPM_CHECK(shards.is_array(), "checkpoint 'shards' must be an array");
  cp.shards.reserve(shards.array.size());
  for (const JsonValue& s : shards.array) {
    ShardCheckpoint shard;
    shard.index = static_cast<std::uint32_t>(get_u64(s, "shard"));
    shard.strikes = get_u64(s, "strikes");
    shard.done = get_u64(s, "done");
    shard.partial.masked = get_u64(s, "masked");
    shard.partial.dre = get_u64(s, "dre");
    shard.partial.due = get_u64(s, "due");
    shard.partial.sdc = get_u64(s, "sdc");
    shard.partial.strikes = shard.done;
    const JsonValue& rng = s.at("rng");
    FTSPM_CHECK(rng.is_array() && rng.array.size() == 4,
                "checkpoint shard 'rng' must hold four state words");
    for (std::size_t i = 0; i < 4; ++i)
      shard.rng_state[i] = parse_hex_u64(rng.array[i], "rng");
    cp.shards.push_back(std::move(shard));
  }
  return cp;
}

void store_checkpoint(const CampaignCheckpoint& cp, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    FTSPM_CHECK(out.good(), "cannot open " + tmp);
    out << checkpoint_to_json(cp) << "\n";
    FTSPM_CHECK(out.good(), "write failed for " + tmp);
  }
  FTSPM_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
              "cannot move " + tmp + " into place");
}

CampaignCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path);
  FTSPM_CHECK(in.good(), "cannot open checkpoint " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return checkpoint_from_json(ss.str());
}

}  // namespace ftspm::exec
