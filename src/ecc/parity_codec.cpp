#include "ftspm/ecc/parity_codec.h"

#include "ftspm/util/bitops.h"
#include "ftspm/util/error.h"

namespace ftspm {

ParityWord ParityCodec::encode(std::uint64_t data) noexcept {
  ParityWord w;
  w.data = data;
  w.parity = static_cast<std::uint8_t>(parity64(data));
  return w;
}

DecodeResult ParityCodec::decode(const ParityWord& word) noexcept {
  DecodeResult r;
  r.data = word.data;
  const int total = parity64(word.data) ^ (word.parity & 1);
  r.status = (total == 0) ? DecodeStatus::Clean : DecodeStatus::Detected;
  return r;
}

PatternDecode ParityCodec::classify_pattern(
    std::uint64_t data_mask, std::uint8_t parity_mask) noexcept {
  // Parity never corrects, so the consumer always sees the raw error.
  const int syndrome = parity64(data_mask) ^ (parity_mask & 1);
  return PatternDecode{
      syndrome != 0 ? DecodeStatus::Detected : DecodeStatus::Clean, 0,
      data_mask};
}

// fold_parity / classify_pattern_batch live in parity_batch.cpp with
// the SIMD kernels and the shared backend dispatch.

void ParityCodec::flip_bit(ParityWord& word, std::uint32_t bit) {
  FTSPM_REQUIRE(bit < kCodewordBits, "parity codeword bit out of range");
  if (bit < 64) {
    word.data = ftspm::flip_bit(word.data, bit);
  } else {
    word.parity ^= 1;
  }
}

}  // namespace ftspm
