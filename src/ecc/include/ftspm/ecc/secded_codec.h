// Hsiao SEC-DED (72,64) codec.
//
// Eight check bits per 64-bit word. The parity-check matrix uses
// distinct odd-weight columns (the 56 weight-3 plus 8 of the weight-5
// 8-bit vectors for data bits; identity columns for check bits), the
// classic Hsiao construction. Properties exercised by tests and by the
// Monte-Carlo fault campaign:
//
//  * any single-bit error (data or check) is corrected;
//  * any double-bit error yields an even-weight non-zero syndrome and is
//    detected-uncorrectable;
//  * triple and higher errors are detected, miscorrected, or (rarely)
//    aliased to a clean syndrome — genuine silent corruption, exactly
//    the behaviour the paper's Eq. 7 charges to SDC.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "ftspm/ecc/codec.h"

namespace ftspm {

/// A stored SEC-DED word. Physical bit indices: 0..63 = data bits (LSB
/// first), 64..71 = check bits c0..c7.
struct SecDedWord {
  std::uint64_t data = 0;
  std::uint8_t check = 0;
};

class SecDedCodec {
 public:
  static constexpr std::uint32_t kDataBits = 64;
  static constexpr std::uint32_t kCheckBits = 8;
  static constexpr std::uint32_t kCodewordBits = 72;

  static SecDedWord encode(std::uint64_t data) noexcept;

  /// Full syndrome decode with single-bit correction.
  static DecodeResult decode(const SecDedWord& word) noexcept;

  /// Classifies an error pattern without touching stored data: folds the
  /// flipped bits' H-matrix columns into the syndrome and reads the
  /// decode outcome from a per-syndrome LUT. `data_mask` holds the
  /// flipped data bits (0..63), `check_mask` the flipped check bits
  /// c0..c7. Exactly equivalent to encode(x) -> flip -> decode for every
  /// x (linearity); this is the Monte-Carlo campaign's fast path, with
  /// encode/flip/decode kept as the oracle it is tested against.
  static PatternDecode classify_pattern(std::uint64_t data_mask,
                                        std::uint8_t check_mask) noexcept;

  /// What the Hsiao decode rule does for one 8-bit syndrome value: the
  /// decode status plus the data-bit correction mask it would apply.
  /// Row `s` of syndrome_table() fully determines the outcome of any
  /// error pattern folding to syndrome `s` (combined with the pattern's
  /// own data mask for the residual).
  struct SyndromeDecode {
    DecodeStatus status = DecodeStatus::Clean;
    std::uint64_t correction_mask = 0;
  };

  /// The 256-entry syndrome decode LUT classify_pattern reads, exposed
  /// so batch classifiers can map whole arrays of folded syndromes to
  /// outcomes without a per-pattern call.
  static const std::array<SyndromeDecode, 256>& syndrome_table() noexcept;

  // --- Batch entry points (docs/performance.md, "Batched classification").

  /// Folds `count` error patterns into their 8-bit syndromes:
  /// syndromes[i] = syndrome of (data_masks[i], check_masks[i]).
  /// Dispatches at runtime to the best available kernel — AVX2 or SSSE3
  /// `pshufb` nibble-table folds on x86, else the scalar byte-table
  /// kernel — all bit-identical (the SIMD kernels hand their tail to
  /// the scalar one). Safe to call concurrently.
  static void fold_syndromes(const std::uint64_t* data_masks,
                             const std::uint8_t* check_masks,
                             std::size_t count,
                             std::uint8_t* syndromes) noexcept;

  /// The scalar byte-table fold — always available, and the reference
  /// the SIMD kernels are pinned against in tests.
  static void fold_syndromes_scalar(const std::uint64_t* data_masks,
                                    const std::uint8_t* check_masks,
                                    std::size_t count,
                                    std::uint8_t* syndromes) noexcept;

  /// classify_pattern over arrays: out[i] == classify_pattern(
  /// data_masks[i], check_masks[i]) for every i, computed via
  /// fold_syndromes plus the syndrome LUT.
  static void classify_pattern_batch(const std::uint64_t* data_masks,
                                     const std::uint8_t* check_masks,
                                     std::size_t count,
                                     PatternDecode* out) noexcept;

  /// Name of the fold kernel fold_syndromes currently dispatches to:
  /// "avx2", "ssse3", or "scalar".
  static const char* fold_backend() noexcept;

  /// Forces the fold kernel: "auto" (re-resolve the best available),
  /// "scalar", "ssse3", or "avx2". Returns false — leaving the current
  /// kernel in place — when the request is unknown or the CPU (or an
  /// FTSPM_DISABLE_SIMD build) cannot honour it. All kernels produce
  /// identical syndromes; this only exists so tests and benchmarks can
  /// pin a path. Not for use while campaigns are running.
  static bool set_fold_backend(const char* name) noexcept;

  /// Recomputes the 8 check bits for `data`.
  static std::uint8_t compute_check(std::uint64_t data) noexcept;

  /// Flips physical bit `bit` (0..71) in place.
  static void flip_bit(SecDedWord& word, std::uint32_t bit);

  /// The H-matrix column (8-bit, odd weight) guarding data bit `i`.
  /// Exposed for tests that verify the Hsiao construction.
  static std::uint8_t column(std::uint32_t data_bit) noexcept;

 private:
  struct Tables;
  static const Tables& tables() noexcept;
};

}  // namespace ftspm
