// Hsiao SEC-DED (72,64) codec.
//
// Eight check bits per 64-bit word. The parity-check matrix uses
// distinct odd-weight columns (the 56 weight-3 plus 8 of the weight-5
// 8-bit vectors for data bits; identity columns for check bits), the
// classic Hsiao construction. Properties exercised by tests and by the
// Monte-Carlo fault campaign:
//
//  * any single-bit error (data or check) is corrected;
//  * any double-bit error yields an even-weight non-zero syndrome and is
//    detected-uncorrectable;
//  * triple and higher errors are detected, miscorrected, or (rarely)
//    aliased to a clean syndrome — genuine silent corruption, exactly
//    the behaviour the paper's Eq. 7 charges to SDC.
#pragma once

#include <array>
#include <cstdint>

#include "ftspm/ecc/codec.h"

namespace ftspm {

/// A stored SEC-DED word. Physical bit indices: 0..63 = data bits (LSB
/// first), 64..71 = check bits c0..c7.
struct SecDedWord {
  std::uint64_t data = 0;
  std::uint8_t check = 0;
};

class SecDedCodec {
 public:
  static constexpr std::uint32_t kDataBits = 64;
  static constexpr std::uint32_t kCheckBits = 8;
  static constexpr std::uint32_t kCodewordBits = 72;

  static SecDedWord encode(std::uint64_t data) noexcept;

  /// Full syndrome decode with single-bit correction.
  static DecodeResult decode(const SecDedWord& word) noexcept;

  /// Classifies an error pattern without touching stored data: folds the
  /// flipped bits' H-matrix columns into the syndrome and reads the
  /// decode outcome from a per-syndrome LUT. `data_mask` holds the
  /// flipped data bits (0..63), `check_mask` the flipped check bits
  /// c0..c7. Exactly equivalent to encode(x) -> flip -> decode for every
  /// x (linearity); this is the Monte-Carlo campaign's fast path, with
  /// encode/flip/decode kept as the oracle it is tested against.
  static PatternDecode classify_pattern(std::uint64_t data_mask,
                                        std::uint8_t check_mask) noexcept;

  /// Recomputes the 8 check bits for `data`.
  static std::uint8_t compute_check(std::uint64_t data) noexcept;

  /// Flips physical bit `bit` (0..71) in place.
  static void flip_bit(SecDedWord& word, std::uint32_t bit);

  /// The H-matrix column (8-bit, odd weight) guarding data bit `i`.
  /// Exposed for tests that verify the Hsiao construction.
  static std::uint8_t column(std::uint32_t data_bit) noexcept;

 private:
  struct Tables;
  static const Tables& tables() noexcept;
};

}  // namespace ftspm
