// Even-parity codec: one check bit per 64-bit word.
//
// Detects any odd number of bit flips; an even number of flips passes
// undetected (silent data corruption). This matches the paper's
// protection level (2): "a parity-protected SRAM" whose DUE probability
// is P(1 flip) and SDC probability is P(>=2 flips).
#pragma once

#include <cstddef>
#include <cstdint>

#include "ftspm/ecc/codec.h"

namespace ftspm {

/// A stored parity-protected word: 64 data bits + 1 even-parity bit.
/// Physical bit indices: 0..63 = data (LSB first), 64 = parity.
struct ParityWord {
  std::uint64_t data = 0;
  std::uint8_t parity = 0;  ///< Only bit 0 is meaningful.
};

class ParityCodec {
 public:
  static constexpr std::uint32_t kCodewordBits = 65;

  /// Encodes `data` with even parity (parity bit makes total popcount
  /// even).
  static ParityWord encode(std::uint64_t data) noexcept;

  /// Checks parity. Detected mismatch yields DecodeStatus::Detected with
  /// the raw (uncorrected) data; a clean check returns the data as-is.
  static DecodeResult decode(const ParityWord& word) noexcept;

  /// Classifies an error pattern without touching stored data: an odd
  /// number of flipped bits (data + parity) trips the check, an even
  /// number passes. `parity_mask` is 1 when the parity bit flipped.
  /// Equivalent to encode(x) -> flip -> decode for every x (linearity).
  static PatternDecode classify_pattern(std::uint64_t data_mask,
                                        std::uint8_t parity_mask) noexcept;

  /// Raw parity syndromes over arrays: out[i] ==
  /// parity64(data_masks[i]) ^ (parity_masks[i] & 1), always 0 or 1.
  /// The batched campaign engines consume this directly (a parity
  /// word's whole verdict is its syndrome bit); SSSE3/AVX2 kernels ride
  /// the same runtime dispatch as SecDedCodec::fold_syndromes — one
  /// set_fold_backend() call pins both (parity_batch.cpp).
  static void fold_parity(const std::uint64_t* data_masks,
                          const std::uint8_t* parity_masks,
                          std::size_t count, std::uint8_t* out) noexcept;

  /// classify_pattern over arrays: out[i] == classify_pattern(
  /// data_masks[i], parity_masks[i]) for every i. One fold_parity pass
  /// plus the trivial verdict expansion.
  static void classify_pattern_batch(const std::uint64_t* data_masks,
                                     const std::uint8_t* parity_masks,
                                     std::size_t count,
                                     PatternDecode* out) noexcept;

  /// Flips physical bit `bit` (0..64) in place. Used by fault injection.
  static void flip_bit(ParityWord& word, std::uint32_t bit);
};

}  // namespace ftspm
