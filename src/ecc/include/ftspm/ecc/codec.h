// Common vocabulary for the word-level error-protection codecs.
//
// These are real bit-level codecs, not probability tables: the
// Monte-Carlo fault injector flips physical bits in stored codewords and
// runs these decoders, which lets us validate the paper's analytic
// SDC/DUE probabilities (Eqs. 4-7) against actual code behaviour —
// including SEC-DED miscorrections on triple errors, which the analytic
// model lumps into "SDC".
#pragma once

#include <cstdint>
#include <optional>

namespace ftspm {

/// What the decoder reports for one word.
enum class DecodeStatus : std::uint8_t {
  Clean,      ///< Syndrome zero — word accepted as-is.
  Corrected,  ///< Single-bit error corrected (SEC-DED only).
  Detected,   ///< Error detected but not correctable (parity mismatch,
              ///< or a SEC-DED double/multi-error syndrome).
};

/// Decoder output: status plus the (possibly corrected) data word.
///
/// Note Clean does NOT imply the data is right — an even number of flips
/// defeats parity, and some >=3-bit flips alias to a zero or
/// single-bit SEC-DED syndrome. Ground-truth classification against the
/// originally written value is the fault module's job.
struct DecodeResult {
  DecodeStatus status = DecodeStatus::Clean;
  std::uint64_t data = 0;
  /// For Corrected: which codeword bit (0..71) was flipped back.
  std::optional<std::uint32_t> corrected_bit;
};

/// Data-independent decode outcome of a known *error pattern*.
///
/// Parity and Hsiao SEC-DED are linear codes: the syndrome of a received
/// word is the syndrome of its error pattern alone, so what the decoder
/// does — and whether its output equals the originally stored word —
/// depends only on which bits flipped, never on the data. classify_
/// pattern() exploits this to classify a strike with a handful of XORs
/// where the encode/flip/decode oracle re-encodes a full word; the two
/// are proven equivalent over every <=3-bit pattern by
/// tests/ecc/pattern_equivalence_test.cpp.
struct PatternDecode {
  DecodeStatus status = DecodeStatus::Clean;
  /// XOR the decoder applies to the received *data* bits (a single-bit
  /// correction mask; 0 for check-bit corrections and non-corrections).
  std::uint64_t correction_mask = 0;
  /// Residual data error the consumer sees: received ^ correction
  /// relative to the original word (= data_mask ^ correction_mask).
  std::uint64_t residual_mask = 0;

  /// The decoder's data output equals the originally stored word.
  bool data_intact() const noexcept { return residual_mask == 0; }
};

}  // namespace ftspm
