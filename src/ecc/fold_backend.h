// Internal: the resolved fold-backend kind shared by the batched ECC
// kernels. SecDedCodec::set_fold_backend / fold_backend own the
// user-visible dispatch state (secded_batch.cpp); the parity batch
// kernel (parity_batch.cpp) follows the same selection so a single
// set_fold_backend("scalar") pins every SIMD decision in the ECC layer
// — which is what the CI scalar-fold leg and the golden backend loops
// rely on. Not installed; include relatively from src/ecc only.
#pragma once

#include <cstdint>

namespace ftspm {
namespace detail {

enum class FoldBackendKind : std::uint8_t { Scalar, Ssse3, Avx2 };

/// The currently selected backend kind (resolving "auto" on first
/// use), always Scalar on non-x86 and -DFTSPM_DISABLE_SIMD builds.
FoldBackendKind fold_backend_kind() noexcept;

}  // namespace detail
}  // namespace ftspm
