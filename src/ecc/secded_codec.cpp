#include "ftspm/ecc/secded_codec.h"

#include <bit>

#include "ftspm/util/bitops.h"
#include "ftspm/util/error.h"

namespace ftspm {

struct SecDedCodec::Tables {
  // H-matrix column for each of the 64 data bits (odd weight, distinct,
  // and distinct from the identity columns used for check bits).
  std::array<std::uint8_t, 64> columns{};
  // For each data bit i, an 8-bit mask of which check equations include
  // it — identical to columns, kept under a second name for clarity.
  // syndrome -> codeword bit index + 1 (0 = no single-bit explanation).
  std::array<std::uint8_t, 256> syndrome_to_bit{};
  // syndrome -> full pattern-decode outcome: the Hsiao decode rule
  // (clean / single-bit correction / detected) plus the data-bit
  // correction mask, precomputed so classify_pattern is one table read.
  std::array<SyndromeDecode, 256> outcome{};

  Tables() {
    // Hsiao construction: take all 56 weight-3 bytes, then the first 8
    // weight-5 bytes, in increasing numeric order. Deterministic, so
    // encoded words are stable across builds and platforms.
    std::size_t n = 0;
    for (int v = 1; v < 256 && n < 56; ++v)
      if (std::popcount(static_cast<unsigned>(v)) == 3)
        columns[n++] = static_cast<std::uint8_t>(v);
    for (int v = 1; v < 256 && n < 64; ++v)
      if (std::popcount(static_cast<unsigned>(v)) == 5)
        columns[n++] = static_cast<std::uint8_t>(v);

    syndrome_to_bit.fill(0);
    for (std::uint32_t i = 0; i < 64; ++i)
      syndrome_to_bit[columns[i]] = static_cast<std::uint8_t>(i + 1);
    for (std::uint32_t j = 0; j < 8; ++j)
      syndrome_to_bit[1u << j] = static_cast<std::uint8_t>(64 + j + 1);

    for (std::size_t s = 0; s < outcome.size(); ++s) {
      if (s == 0) {
        outcome[s] = {DecodeStatus::Clean, 0};
      } else if (const std::uint8_t hit = syndrome_to_bit[s]; hit != 0) {
        // A corrected check bit (hit > 64) leaves the data untouched.
        const std::uint32_t bit = hit - 1u;
        outcome[s] = {DecodeStatus::Corrected, bit < 64 ? 1ULL << bit : 0};
      } else {
        outcome[s] = {DecodeStatus::Detected, 0};
      }
    }
  }
};

const SecDedCodec::Tables& SecDedCodec::tables() noexcept {
  static const Tables t;
  return t;
}

const std::array<SecDedCodec::SyndromeDecode, 256>&
SecDedCodec::syndrome_table() noexcept {
  return tables().outcome;
}

std::uint8_t SecDedCodec::column(std::uint32_t data_bit) noexcept {
  return tables().columns[data_bit & 63];
}

std::uint8_t SecDedCodec::compute_check(std::uint64_t data) noexcept {
  const auto& t = tables();
  std::uint8_t check = 0;
  std::uint64_t bits = data;
  while (bits != 0) {
    const int i = std::countr_zero(bits);
    check ^= t.columns[static_cast<std::size_t>(i)];
    bits &= bits - 1;
  }
  return check;
}

SecDedWord SecDedCodec::encode(std::uint64_t data) noexcept {
  return SecDedWord{data, compute_check(data)};
}

DecodeResult SecDedCodec::decode(const SecDedWord& word) noexcept {
  const auto& t = tables();
  DecodeResult r;
  r.data = word.data;
  const std::uint8_t syndrome =
      static_cast<std::uint8_t>(compute_check(word.data) ^ word.check);
  if (syndrome == 0) {
    r.status = DecodeStatus::Clean;
    return r;
  }
  // Hsiao decode rule: an odd-weight syndrome matching a column is
  // treated as the corresponding single-bit error; everything else is a
  // detected (assumed-double) error.
  const std::uint8_t hit = t.syndrome_to_bit[syndrome];
  if (hit != 0) {
    const std::uint32_t bit = hit - 1u;
    r.status = DecodeStatus::Corrected;
    r.corrected_bit = bit;
    if (bit < 64) r.data = ftspm::flip_bit(word.data, bit);
    // A corrected check bit leaves the data untouched.
    return r;
  }
  r.status = DecodeStatus::Detected;
  return r;
}

PatternDecode SecDedCodec::classify_pattern(std::uint64_t data_mask,
                                            std::uint8_t check_mask) noexcept {
  const auto& t = tables();
  std::uint8_t syndrome = check_mask;
  std::uint64_t bits = data_mask;
  while (bits != 0) {
    const int i = std::countr_zero(bits);
    syndrome ^= t.columns[static_cast<std::size_t>(i)];
    bits &= bits - 1;
  }
  const SyndromeDecode& o = t.outcome[syndrome];
  return PatternDecode{o.status, o.correction_mask,
                       data_mask ^ o.correction_mask};
}

void SecDedCodec::flip_bit(SecDedWord& word, std::uint32_t bit) {
  FTSPM_REQUIRE(bit < kCodewordBits, "SEC-DED codeword bit out of range");
  if (bit < 64) {
    word.data = ftspm::flip_bit(word.data, bit);
  } else {
    word.check = static_cast<std::uint8_t>(word.check ^ (1u << (bit - 64)));
  }
}

}  // namespace ftspm
