// Batched Hsiao SEC-DED syndrome folding.
//
// The batched campaign engine (src/fault) classifies most strikes with
// a couple of popcounts, but every word pattern touching >= 3 surviving
// bits still needs its real syndrome. Those patterns are collected into
// structure-of-arrays blocks and folded here, whole arrays at a time:
//
//  * scalar kernel: 8 byte-table lookups per pattern
//    (byte_fold[j][byte j of the data mask], XOR-reduced with the
//    check-bit mask) — branch-free, autovectorizable table code;
//  * SSSE3/AVX2 kernels: the same fold as `pshufb` nibble-table
//    lookups. 16 (SSSE3) or 32 (AVX2) patterns are byte-transposed in
//    registers with an unpack tree, each byte plane indexes a pair of
//    16-entry nibble tables, and the per-plane results XOR into the
//    syndrome vector. Tails (and non-x86 builds, and
//    -DFTSPM_DISABLE_SIMD=ON builds) run the scalar kernel, so every
//    path is bit-identical by construction — and pinned against
//    classify_pattern by tests/ecc/pattern_equivalence_test.cpp.
//
// Runtime dispatch picks the widest kernel the CPU supports once, on
// first use; tests pin a specific path via set_fold_backend().
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "ftspm/ecc/secded_codec.h"
#include "fold_backend.h"

#if defined(__x86_64__) || defined(__i386__)
#define FTSPM_X86 1
#include <immintrin.h>
#else
#define FTSPM_X86 0
#endif

namespace ftspm {

namespace {

/// Precomputed fold tables, all derived from the Hsiao H-matrix
/// columns. byte_fold[j][b] is the XOR of the columns guarding data
/// bits 8j..8j+7 selected by the bits of b; the nibble tables split the
/// same information for the 16-entry `pshufb` lookups (low nibble and
/// high nibble of byte plane j).
struct FoldTables {
  std::uint8_t byte_fold[8][256];
  alignas(32) std::uint8_t nibble_lo[8][16];
  alignas(32) std::uint8_t nibble_hi[8][16];

  FoldTables() {
    for (std::uint32_t j = 0; j < 8; ++j) {
      for (std::uint32_t b = 0; b < 256; ++b) {
        std::uint8_t fold = 0;
        for (std::uint32_t i = 0; i < 8; ++i)
          if (b & (1u << i)) fold ^= SecDedCodec::column(8 * j + i);
        byte_fold[j][b] = fold;
      }
      for (std::uint32_t n = 0; n < 16; ++n) {
        nibble_lo[j][n] = byte_fold[j][n];
        nibble_hi[j][n] = byte_fold[j][n << 4];
      }
    }
  }
};

const FoldTables& fold_tables() noexcept {
  static const FoldTables t;
  return t;
}

void fold_scalar(const std::uint64_t* data, const std::uint8_t* check,
                 std::size_t count, std::uint8_t* out) noexcept {
  const FoldTables& t = fold_tables();
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t d = data[i];
    std::uint8_t s = check[i];
    s = static_cast<std::uint8_t>(
        s ^ t.byte_fold[0][d & 0xff] ^ t.byte_fold[1][(d >> 8) & 0xff] ^
        t.byte_fold[2][(d >> 16) & 0xff] ^ t.byte_fold[3][(d >> 24) & 0xff] ^
        t.byte_fold[4][(d >> 32) & 0xff] ^ t.byte_fold[5][(d >> 40) & 0xff] ^
        t.byte_fold[6][(d >> 48) & 0xff] ^ t.byte_fold[7][(d >> 56) & 0xff]);
    out[i] = s;
  }
}

#if FTSPM_X86

// Byte-pair interleave: a register holding two words' bytes
// [w0..w7, w'0..w'7] becomes [w0,w'0, w1,w'1, ..., w7,w'7] — eight
// 16-bit units, unit j = byte plane j of the word pair. Three unpack
// levels (16/32/64-bit) over eight such registers then yield one full
// 16-byte plane per register, bytes in pattern order.
#define FTSPM_PAIR_SHUFFLE 0, 8, 1, 9, 2, 10, 3, 11, 4, 12, 5, 13, 6, 14, 7, 15

__attribute__((target("ssse3"))) void fold_ssse3(const std::uint64_t* data,
                                                 const std::uint8_t* check,
                                                 std::size_t count,
                                                 std::uint8_t* out) noexcept {
  const FoldTables& t = fold_tables();
  __m128i lo_tbl[8], hi_tbl[8];
  for (int j = 0; j < 8; ++j) {
    lo_tbl[j] = _mm_load_si128(
        reinterpret_cast<const __m128i*>(t.nibble_lo[j]));
    hi_tbl[j] = _mm_load_si128(
        reinterpret_cast<const __m128i*>(t.nibble_hi[j]));
  }
  const __m128i pair = _mm_setr_epi8(FTSPM_PAIR_SHUFFLE);
  const __m128i nib = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= count; i += 16) {
    __m128i r[8];
    for (int k = 0; k < 8; ++k)
      r[k] = _mm_shuffle_epi8(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i + 2 * k)),
          pair);
    // Planes p/q of words w..w+3 after level 1, w..w+7 after level 2,
    // all 16 words after level 3.
    const __m128i a0 = _mm_unpacklo_epi16(r[0], r[1]);
    const __m128i a1 = _mm_unpackhi_epi16(r[0], r[1]);
    const __m128i a2 = _mm_unpacklo_epi16(r[2], r[3]);
    const __m128i a3 = _mm_unpackhi_epi16(r[2], r[3]);
    const __m128i a4 = _mm_unpacklo_epi16(r[4], r[5]);
    const __m128i a5 = _mm_unpackhi_epi16(r[4], r[5]);
    const __m128i a6 = _mm_unpacklo_epi16(r[6], r[7]);
    const __m128i a7 = _mm_unpackhi_epi16(r[6], r[7]);
    const __m128i b0 = _mm_unpacklo_epi32(a0, a2);  // planes 0,1 w0..7
    const __m128i b1 = _mm_unpackhi_epi32(a0, a2);  // planes 2,3 w0..7
    const __m128i b2 = _mm_unpacklo_epi32(a1, a3);  // planes 4,5 w0..7
    const __m128i b3 = _mm_unpackhi_epi32(a1, a3);  // planes 6,7 w0..7
    const __m128i b4 = _mm_unpacklo_epi32(a4, a6);  // planes 0,1 w8..15
    const __m128i b5 = _mm_unpackhi_epi32(a4, a6);
    const __m128i b6 = _mm_unpacklo_epi32(a5, a7);
    const __m128i b7 = _mm_unpackhi_epi32(a5, a7);
    __m128i plane[8];
    plane[0] = _mm_unpacklo_epi64(b0, b4);
    plane[1] = _mm_unpackhi_epi64(b0, b4);
    plane[2] = _mm_unpacklo_epi64(b1, b5);
    plane[3] = _mm_unpackhi_epi64(b1, b5);
    plane[4] = _mm_unpacklo_epi64(b2, b6);
    plane[5] = _mm_unpackhi_epi64(b2, b6);
    plane[6] = _mm_unpacklo_epi64(b3, b7);
    plane[7] = _mm_unpackhi_epi64(b3, b7);
    __m128i acc =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(check + i));
    for (int j = 0; j < 8; ++j) {
      const __m128i lo_n = _mm_and_si128(plane[j], nib);
      const __m128i hi_n = _mm_and_si128(_mm_srli_epi16(plane[j], 4), nib);
      acc = _mm_xor_si128(acc, _mm_shuffle_epi8(lo_tbl[j], lo_n));
      acc = _mm_xor_si128(acc, _mm_shuffle_epi8(hi_tbl[j], hi_n));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), acc);
  }
  if (i < count) fold_scalar(data + i, check + i, count - i, out + i);
}

__attribute__((target("avx2"))) void fold_avx2(const std::uint64_t* data,
                                               const std::uint8_t* check,
                                               std::size_t count,
                                               std::uint8_t* out) noexcept {
  const FoldTables& t = fold_tables();
  __m256i lo_tbl[8], hi_tbl[8];
  for (int j = 0; j < 8; ++j) {
    lo_tbl[j] = _mm256_broadcastsi128_si256(_mm_load_si128(
        reinterpret_cast<const __m128i*>(t.nibble_lo[j])));
    hi_tbl[j] = _mm256_broadcastsi128_si256(_mm_load_si128(
        reinterpret_cast<const __m128i*>(t.nibble_hi[j])));
  }
  const __m256i pair = _mm256_setr_epi8(FTSPM_PAIR_SHUFFLE,
                                        FTSPM_PAIR_SHUFFLE);
  const __m256i nib = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= count; i += 32) {
    // Lane 0 carries patterns i..i+15, lane 1 patterns i+16..i+31; the
    // per-lane unpack tree is then exactly two SSSE3 kernels abreast,
    // and the 32 syndromes land in order for a single store.
    __m256i r[8];
    for (int k = 0; k < 8; ++k) {
      const __m128i lo_words = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(data + i + 2 * k));
      const __m128i hi_words = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(data + i + 16 + 2 * k));
      r[k] = _mm256_shuffle_epi8(
          _mm256_inserti128_si256(_mm256_castsi128_si256(lo_words), hi_words,
                                  1),
          pair);
    }
    const __m256i a0 = _mm256_unpacklo_epi16(r[0], r[1]);
    const __m256i a1 = _mm256_unpackhi_epi16(r[0], r[1]);
    const __m256i a2 = _mm256_unpacklo_epi16(r[2], r[3]);
    const __m256i a3 = _mm256_unpackhi_epi16(r[2], r[3]);
    const __m256i a4 = _mm256_unpacklo_epi16(r[4], r[5]);
    const __m256i a5 = _mm256_unpackhi_epi16(r[4], r[5]);
    const __m256i a6 = _mm256_unpacklo_epi16(r[6], r[7]);
    const __m256i a7 = _mm256_unpackhi_epi16(r[6], r[7]);
    const __m256i b0 = _mm256_unpacklo_epi32(a0, a2);
    const __m256i b1 = _mm256_unpackhi_epi32(a0, a2);
    const __m256i b2 = _mm256_unpacklo_epi32(a1, a3);
    const __m256i b3 = _mm256_unpackhi_epi32(a1, a3);
    const __m256i b4 = _mm256_unpacklo_epi32(a4, a6);
    const __m256i b5 = _mm256_unpackhi_epi32(a4, a6);
    const __m256i b6 = _mm256_unpacklo_epi32(a5, a7);
    const __m256i b7 = _mm256_unpackhi_epi32(a5, a7);
    __m256i plane[8];
    plane[0] = _mm256_unpacklo_epi64(b0, b4);
    plane[1] = _mm256_unpackhi_epi64(b0, b4);
    plane[2] = _mm256_unpacklo_epi64(b1, b5);
    plane[3] = _mm256_unpackhi_epi64(b1, b5);
    plane[4] = _mm256_unpacklo_epi64(b2, b6);
    plane[5] = _mm256_unpackhi_epi64(b2, b6);
    plane[6] = _mm256_unpacklo_epi64(b3, b7);
    plane[7] = _mm256_unpackhi_epi64(b3, b7);
    __m256i acc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(check + i));
    for (int j = 0; j < 8; ++j) {
      const __m256i lo_n = _mm256_and_si256(plane[j], nib);
      const __m256i hi_n =
          _mm256_and_si256(_mm256_srli_epi16(plane[j], 4), nib);
      acc = _mm256_xor_si256(acc, _mm256_shuffle_epi8(lo_tbl[j], lo_n));
      acc = _mm256_xor_si256(acc, _mm256_shuffle_epi8(hi_tbl[j], hi_n));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), acc);
  }
  if (i < count) fold_scalar(data + i, check + i, count - i, out + i);
}

#undef FTSPM_PAIR_SHUFFLE

#endif  // FTSPM_X86

using FoldFn = void (*)(const std::uint64_t*, const std::uint8_t*,
                        std::size_t, std::uint8_t*) noexcept;

struct Backend {
  FoldFn fn;
  const char* name;
  detail::FoldBackendKind kind;
};

constexpr Backend kScalar{fold_scalar, "scalar",
                          detail::FoldBackendKind::Scalar};
#if FTSPM_X86
constexpr Backend kSsse3{fold_ssse3, "ssse3", detail::FoldBackendKind::Ssse3};
constexpr Backend kAvx2{fold_avx2, "avx2", detail::FoldBackendKind::Avx2};
#endif

bool simd_allowed() noexcept {
#if defined(FTSPM_DISABLE_SIMD)
  return false;
#else
  return FTSPM_X86 != 0;
#endif
}

const Backend* resolve_auto() noexcept {
#if FTSPM_X86
  if (simd_allowed()) {
    if (__builtin_cpu_supports("avx2")) return &kAvx2;
    if (__builtin_cpu_supports("ssse3")) return &kSsse3;
  }
#endif
  return &kScalar;
}

std::atomic<const Backend*>& backend_slot() noexcept {
  static std::atomic<const Backend*> slot{nullptr};
  return slot;
}

const Backend* backend() noexcept {
  const Backend* b = backend_slot().load(std::memory_order_acquire);
  if (b == nullptr) {
    b = resolve_auto();
    backend_slot().store(b, std::memory_order_release);
  }
  return b;
}

}  // namespace

detail::FoldBackendKind detail::fold_backend_kind() noexcept {
  return backend()->kind;
}

void SecDedCodec::fold_syndromes(const std::uint64_t* data_masks,
                                 const std::uint8_t* check_masks,
                                 std::size_t count,
                                 std::uint8_t* syndromes) noexcept {
  backend()->fn(data_masks, check_masks, count, syndromes);
}

void SecDedCodec::fold_syndromes_scalar(const std::uint64_t* data_masks,
                                        const std::uint8_t* check_masks,
                                        std::size_t count,
                                        std::uint8_t* syndromes) noexcept {
  fold_scalar(data_masks, check_masks, count, syndromes);
}

void SecDedCodec::classify_pattern_batch(const std::uint64_t* data_masks,
                                         const std::uint8_t* check_masks,
                                         std::size_t count,
                                         PatternDecode* out) noexcept {
  const std::array<SyndromeDecode, 256>& table = syndrome_table();
  std::uint8_t syndromes[256];
  for (std::size_t base = 0; base < count; base += sizeof(syndromes)) {
    const std::size_t n = count - base < sizeof(syndromes)
                              ? count - base
                              : sizeof(syndromes);
    fold_syndromes(data_masks + base, check_masks + base, n, syndromes);
    for (std::size_t k = 0; k < n; ++k) {
      const SyndromeDecode& o = table[syndromes[k]];
      out[base + k] = PatternDecode{o.status, o.correction_mask,
                                    data_masks[base + k] ^ o.correction_mask};
    }
  }
}

const char* SecDedCodec::fold_backend() noexcept { return backend()->name; }

bool SecDedCodec::set_fold_backend(const char* name) noexcept {
  if (name == nullptr) return false;
  const Backend* pick = nullptr;
  if (std::strcmp(name, "auto") == 0) {
    pick = resolve_auto();
  } else if (std::strcmp(name, "scalar") == 0) {
    pick = &kScalar;
#if FTSPM_X86
  } else if (std::strcmp(name, "ssse3") == 0) {
    if (simd_allowed() && __builtin_cpu_supports("ssse3")) pick = &kSsse3;
  } else if (std::strcmp(name, "avx2") == 0) {
    if (simd_allowed() && __builtin_cpu_supports("avx2")) pick = &kAvx2;
#endif
  }
  if (pick == nullptr) return false;
  backend_slot().store(pick, std::memory_order_release);
  return true;
}

}  // namespace ftspm
