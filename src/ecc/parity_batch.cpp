// Batched parity syndrome folding (ParityCodec::fold_parity).
//
// A parity word's whole verdict is one bit — the XOR-reduce of its
// 64-bit error mask folded with the flipped-parity bit — so the batch
// kernel is a pure map: out[i] = parity64(data[i]) ^ (parity[i] & 1).
// The scalar loop compiles to a popcount (or, on baseline x86-64
// without POPCNT, a ~12-op bit fold) per element; the SIMD kernels do
// four (AVX2) or two (SSSE3) words per step:
//
//  * split every byte into nibbles, look both up in a 16-entry
//    `pshufb` parity table (the 0x6996 nibble-parity pattern), XOR the
//    halves — per-byte parity in each byte lane;
//  * `psadbw` against zero horizontally sums the eight byte parities
//    of each 64-bit lane; the sum's low bit IS the lane parity;
//  * shift that bit to the sign position and `movmskpd` the lanes out
//    as a compact integer mask, combined with the parity-bit masks in
//    scalar code (two byte ops per element).
//
// Backend selection is shared with SecDedCodec::fold_syndromes via
// fold_backend.h: SecDedCodec::set_fold_backend("scalar"/"ssse3"/
// "avx2"/"auto") pins this kernel too, so the CI scalar-fold leg and
// the golden backend loops cover one dispatch decision, not two.
// Every path is bit-identical by construction and pinned against
// classify_pattern by tests/ecc/pattern_equivalence_test.cpp.
#include <cstddef>
#include <cstdint>

#include "ftspm/ecc/parity_codec.h"
#include "ftspm/util/bitops.h"
#include "fold_backend.h"

#if defined(__x86_64__) || defined(__i386__)
#define FTSPM_X86 1
#include <immintrin.h>
#else
#define FTSPM_X86 0
#endif

namespace ftspm {

namespace {

void parity_scalar(const std::uint64_t* data, const std::uint8_t* parity,
                   std::size_t count, std::uint8_t* out) noexcept {
  for (std::size_t i = 0; i < count; ++i)
    out[i] = static_cast<std::uint8_t>(parity64(data[i]) ^ (parity[i] & 1));
}

#if FTSPM_X86

// parity(n) for each nibble n: the 0x6996... pattern.
#define FTSPM_NIBBLE_PARITY \
  0, 1, 1, 0, 1, 0, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0

__attribute__((target("ssse3"))) void parity_ssse3(
    const std::uint64_t* data, const std::uint8_t* parity, std::size_t count,
    std::uint8_t* out) noexcept {
  const __m128i ptab = _mm_setr_epi8(FTSPM_NIBBLE_PARITY);
  const __m128i nib = _mm_set1_epi8(0x0f);
  const __m128i zero = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const __m128i lo = _mm_and_si128(v, nib);
    const __m128i hi = _mm_and_si128(_mm_srli_epi16(v, 4), nib);
    const __m128i p = _mm_xor_si128(_mm_shuffle_epi8(ptab, lo),
                                    _mm_shuffle_epi8(ptab, hi));
    const __m128i sum = _mm_sad_epu8(p, zero);
    const int m = _mm_movemask_pd(_mm_castsi128_pd(_mm_slli_epi64(sum, 63)));
    out[i] = static_cast<std::uint8_t>((m & 1) ^ (parity[i] & 1));
    out[i + 1] =
        static_cast<std::uint8_t>(((m >> 1) & 1) ^ (parity[i + 1] & 1));
  }
  if (i < count) parity_scalar(data + i, parity + i, count - i, out + i);
}

__attribute__((target("avx2"))) void parity_avx2(
    const std::uint64_t* data, const std::uint8_t* parity, std::size_t count,
    std::uint8_t* out) noexcept {
  const __m256i ptab =
      _mm256_setr_epi8(FTSPM_NIBBLE_PARITY, FTSPM_NIBBLE_PARITY);
  const __m256i nib = _mm256_set1_epi8(0x0f);
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const __m256i lo = _mm256_and_si256(v, nib);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nib);
    const __m256i p = _mm256_xor_si256(_mm256_shuffle_epi8(ptab, lo),
                                       _mm256_shuffle_epi8(ptab, hi));
    const __m256i sum = _mm256_sad_epu8(p, zero);
    const int m =
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_slli_epi64(sum, 63)));
    out[i] = static_cast<std::uint8_t>((m & 1) ^ (parity[i] & 1));
    out[i + 1] =
        static_cast<std::uint8_t>(((m >> 1) & 1) ^ (parity[i + 1] & 1));
    out[i + 2] =
        static_cast<std::uint8_t>(((m >> 2) & 1) ^ (parity[i + 2] & 1));
    out[i + 3] =
        static_cast<std::uint8_t>(((m >> 3) & 1) ^ (parity[i + 3] & 1));
  }
  if (i < count) parity_scalar(data + i, parity + i, count - i, out + i);
}

#undef FTSPM_NIBBLE_PARITY

#endif  // FTSPM_X86

}  // namespace

void ParityCodec::fold_parity(const std::uint64_t* data_masks,
                              const std::uint8_t* parity_masks,
                              std::size_t count, std::uint8_t* out) noexcept {
#if FTSPM_X86
  switch (detail::fold_backend_kind()) {
    case detail::FoldBackendKind::Avx2:
      parity_avx2(data_masks, parity_masks, count, out);
      return;
    case detail::FoldBackendKind::Ssse3:
      parity_ssse3(data_masks, parity_masks, count, out);
      return;
    case detail::FoldBackendKind::Scalar: break;
  }
#endif
  parity_scalar(data_masks, parity_masks, count, out);
}

void ParityCodec::classify_pattern_batch(const std::uint64_t* data_masks,
                                         const std::uint8_t* parity_masks,
                                         std::size_t count,
                                         PatternDecode* out) noexcept {
  std::uint8_t syndromes[256];
  for (std::size_t base = 0; base < count; base += sizeof(syndromes)) {
    const std::size_t n = count - base < sizeof(syndromes)
                              ? count - base
                              : sizeof(syndromes);
    fold_parity(data_masks + base, parity_masks + base, n, syndromes);
    for (std::size_t k = 0; k < n; ++k) {
      out[base + k] = PatternDecode{syndromes[k] != 0 ? DecodeStatus::Detected
                                                      : DecodeStatus::Clean,
                                    0, data_masks[base + k]};
    }
  }
}

}  // namespace ftspm
