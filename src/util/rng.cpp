#include "ftspm/util/rng.h"

#include <cmath>

#include "ftspm/util/error.h"

namespace ftspm {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // xoshiro256** must not start from the all-zero state; SplitMix64 can
  // in principle emit four zero words only for pathological seeds.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  FTSPM_REQUIRE(lo <= hi, "next_in requires lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

std::size_t Rng::next_discrete(std::span<const double> weights) {
  FTSPM_REQUIRE(!weights.empty(), "next_discrete requires weights");
  double total = 0.0;
  for (double w : weights) {
    FTSPM_REQUIRE(w >= 0.0 && std::isfinite(w),
                  "weights must be finite and non-negative");
    total += w;
  }
  FTSPM_REQUIRE(total > 0.0, "at least one weight must be positive");
  double r = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  // Floating-point underflow fallback: return last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;)
    if (weights[i] > 0.0) return i;
  return weights.size() - 1;
}

std::uint32_t Rng::next_burst(double p, std::uint32_t cap) {
  FTSPM_REQUIRE(cap >= 1, "burst cap must be >= 1");
  std::uint32_t n = 1;
  while (n < cap && next_bool(p)) ++n;
  return n;
}

Rng Rng::fork() noexcept { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

std::uint64_t Rng::derive_stream_seed(std::uint64_t root_seed,
                                      std::uint64_t stream_index) noexcept {
  // Offset the root by the stream index (the +1 keeps stream 0 from
  // collapsing onto the bare root seed) and run two SplitMix64 steps;
  // xoring the pair decorrelates streams whose indices differ in only
  // a few bits.
  std::uint64_t s = root_seed ^ (0xbf58476d1ce4e5b9ULL * (stream_index + 1));
  const std::uint64_t a = splitmix64(s);
  return a ^ splitmix64(s);
}

Rng Rng::for_stream(std::uint64_t root_seed,
                    std::uint64_t stream_index) noexcept {
  return Rng(derive_stream_seed(root_seed, stream_index));
}

Rng Rng::from_state(const std::array<std::uint64_t, 4>& words) noexcept {
  Rng r(0);
  r.state_ = words;
  if ((r.state_[0] | r.state_[1] | r.state_[2] | r.state_[3]) == 0)
    r.state_[0] = 1;
  return r;
}

}  // namespace ftspm
