#include "ftspm/util/args.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "ftspm/util/error.h"

namespace ftspm {

ArgParser::ArgParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

ArgParser& ArgParser::add_flag(const std::string& name, std::string help) {
  FTSPM_REQUIRE(!specs_.count(name), "duplicate option --" + name);
  specs_[name] = Spec{std::move(help), false, "", false};
  order_.push_back(name);
  return *this;
}

ArgParser& ArgParser::add_option(const std::string& name, std::string help,
                                 std::string default_value) {
  FTSPM_REQUIRE(!specs_.count(name), "duplicate option --" + name);
  specs_[name] = Spec{std::move(help), true, std::move(default_value), false};
  order_.push_back(name);
  return *this;
}

ArgParser::Spec& ArgParser::known(const std::string& name) {
  auto it = specs_.find(name);
  FTSPM_REQUIRE(it != specs_.end(), "unknown option --" + name);
  return it->second;
}

const ArgParser::Spec& ArgParser::known(const std::string& name) const {
  auto it = specs_.find(name);
  FTSPM_REQUIRE(it != specs_.end(), "unknown option --" + name);
  return it->second;
}

void ArgParser::parse(int argc, const char* const* argv, int start) {
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      arg.erase(eq);
      has_inline = true;
    }
    Spec& spec = known(arg);
    spec.seen = true;
    if (!spec.takes_value) {
      FTSPM_REQUIRE(!has_inline, "--" + arg + " does not take a value");
      continue;
    }
    if (has_inline) {
      spec.value = std::move(inline_value);
    } else {
      FTSPM_REQUIRE(i + 1 < argc, "--" + arg + " needs a value");
      spec.value = argv[++i];
    }
  }
}

bool ArgParser::flag(const std::string& name) const {
  const Spec& spec = known(name);
  FTSPM_REQUIRE(!spec.takes_value, "--" + name + " is not a flag");
  return spec.seen;
}

const std::string& ArgParser::option(const std::string& name) const {
  const Spec& spec = known(name);
  FTSPM_REQUIRE(spec.takes_value, "--" + name + " is a flag");
  return spec.value;
}

std::int64_t ArgParser::option_int(const std::string& name) const {
  const std::string& raw = option(name);
  char* end = nullptr;
  const long long v = std::strtoll(raw.c_str(), &end, 10);
  FTSPM_REQUIRE(end && *end == '\0' && !raw.empty(),
                "--" + name + " expects an integer, got '" + raw + "'");
  return v;
}

std::uint64_t ArgParser::option_uint(const std::string& name,
                                     std::uint64_t max) const {
  const std::string& raw = option(name);
  // Digits only: strtoull would accept leading whitespace, a sign
  // (silently wrapping "-1" to 2^64-1), and clamp on overflow — all of
  // which have bitten real flag typos. Parse by hand instead.
  bool ok = !raw.empty();
  std::uint64_t v = 0;
  for (const char c : raw) {
    if (c < '0' || c > '9') {
      ok = false;
      break;
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) {
      ok = false;  // would overflow
      break;
    }
    v = v * 10 + digit;
  }
  FTSPM_REQUIRE(ok, "--" + name + " expects a non-negative integer, got '" +
                        raw + "'");
  FTSPM_REQUIRE(v <= max, "--" + name + " must be at most " +
                              std::to_string(max) + ", got '" + raw + "'");
  return v;
}

namespace {

/// Plain decimal shape: [+-]digits[.digits][eE[+-]digits] with at
/// least one mantissa digit. strtod alone accepts "nan", "inf",
/// "0x1p3", and leading whitespace — none of which a rate or
/// probability flag should ever see silently.
bool plain_decimal_shape(const std::string& raw) {
  std::size_t i = 0;
  const std::size_t n = raw.size();
  if (i < n && (raw[i] == '+' || raw[i] == '-')) ++i;
  std::size_t mantissa_digits = 0;
  while (i < n && raw[i] >= '0' && raw[i] <= '9') ++i, ++mantissa_digits;
  if (i < n && raw[i] == '.') {
    ++i;
    while (i < n && raw[i] >= '0' && raw[i] <= '9') ++i, ++mantissa_digits;
  }
  if (mantissa_digits == 0) return false;
  if (i < n && (raw[i] == 'e' || raw[i] == 'E')) {
    ++i;
    if (i < n && (raw[i] == '+' || raw[i] == '-')) ++i;
    std::size_t exponent_digits = 0;
    while (i < n && raw[i] >= '0' && raw[i] <= '9') ++i, ++exponent_digits;
    if (exponent_digits == 0) return false;
  }
  return i == n;
}

}  // namespace

double ArgParser::option_double(const std::string& name) const {
  const std::string& raw = option(name);
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  // Shape first (rejects nan/inf/hex-float spellings outright), then
  // finiteness — a huge plain decimal like 1e999 overflows to inf.
  FTSPM_REQUIRE(plain_decimal_shape(raw) && end && *end == '\0' &&
                    std::isfinite(v),
                "--" + name + " expects a finite number, got '" + raw + "'");
  return v;
}

double ArgParser::option_double(const std::string& name, double min_value,
                                double max_value) const {
  const double v = option_double(name);
  std::ostringstream os;
  os << "--" << name << " must be in [" << min_value << ", " << max_value
     << "], got '" << option(name) << "'";
  FTSPM_REQUIRE(v >= min_value && v <= max_value, os.str());
  return v;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << summary_ << "\n";
  for (const std::string& name : order_) {
    const Spec& spec = specs_.at(name);
    os << "  --" << name;
    if (spec.takes_value) os << " <value (default: " << spec.value << ")>";
    os << "\n      " << spec.help << "\n";
  }
  return os.str();
}

}  // namespace ftspm
