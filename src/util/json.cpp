#include "ftspm/util/json.h"

#include <cmath>
#include <cstdio>

#include "ftspm/util/error.h"

namespace ftspm {

void JsonWriter::comma() {
  if (!has_items_.empty()) {
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
  }
}

void JsonWriter::key_prefix(std::string_view key) {
  FTSPM_REQUIRE(!stack_.empty() && stack_.back() == Frame::Object,
                "keyed emission outside an object");
  comma();
  out_ += '"';
  out_ += escape(key);
  out_ += "\":";
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::number(double v) {
  FTSPM_REQUIRE(std::isfinite(v), "JSON numbers must be finite");
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[32];
    std::snprintf(candidate, sizeof candidate, "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == v) return candidate;
  }
  return buf;
}

JsonWriter& JsonWriter::begin_object() {
  FTSPM_REQUIRE(stack_.empty() || stack_.back() == Frame::Array,
                "unkeyed object belongs in an array or at the root");
  comma();
  out_ += '{';
  stack_.push_back(Frame::Object);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::begin_object(std::string_view key) {
  key_prefix(key);
  out_ += '{';
  stack_.push_back(Frame::Object);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  FTSPM_REQUIRE(!stack_.empty() && stack_.back() == Frame::Object,
                "end_object without an open object");
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array(std::string_view key) {
  key_prefix(key);
  out_ += '[';
  stack_.push_back(Frame::Array);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  FTSPM_REQUIRE(stack_.empty() || stack_.back() == Frame::Array,
                "unkeyed array belongs in an array or at the root");
  comma();
  out_ += '[';
  stack_.push_back(Frame::Array);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  FTSPM_REQUIRE(!stack_.empty() && stack_.back() == Frame::Array,
                "end_array without an open array");
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::string_view value) {
  key_prefix(key);
  out_ += '"';
  out_ += escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, const char* value) {
  return field(key, std::string_view(value));
}

JsonWriter& JsonWriter::field(std::string_view key, double value) {
  key_prefix(key);
  out_ += number(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::uint64_t value) {
  key_prefix(key);
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::int64_t value) {
  key_prefix(key);
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, bool value) {
  key_prefix(key);
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::element(std::string_view value) {
  FTSPM_REQUIRE(!stack_.empty() && stack_.back() == Frame::Array,
                "element outside an array");
  comma();
  out_ += '"';
  out_ += escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::element(double value) {
  FTSPM_REQUIRE(!stack_.empty() && stack_.back() == Frame::Array,
                "element outside an array");
  comma();
  out_ += number(value);
  return *this;
}

std::string JsonWriter::str() const {
  FTSPM_REQUIRE(stack_.empty(), "unclosed JSON containers");
  return out_;
}

}  // namespace ftspm
