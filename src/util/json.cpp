#include "ftspm/util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "ftspm/util/error.h"
#include "ftspm/util/ndjson.h"

namespace ftspm {

void JsonWriter::comma() {
  if (!has_items_.empty()) {
    if (has_items_.back()) out_ += ',';
    has_items_.back() = true;
  }
}

void JsonWriter::key_prefix(std::string_view key) {
  FTSPM_REQUIRE(!stack_.empty() && stack_.back() == Frame::Object,
                "keyed emission outside an object");
  comma();
  out_ += '"';
  out_ += escape(key);
  out_ += "\":";
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::number(double v) {
  FTSPM_REQUIRE(std::isfinite(v), "JSON numbers must be finite");
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char candidate[32];
    std::snprintf(candidate, sizeof candidate, "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(candidate, "%lf", &parsed);
    if (parsed == v) return candidate;
  }
  return buf;
}

JsonWriter& JsonWriter::begin_object() {
  FTSPM_REQUIRE(stack_.empty() || stack_.back() == Frame::Array,
                "unkeyed object belongs in an array or at the root");
  comma();
  out_ += '{';
  stack_.push_back(Frame::Object);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::begin_object(std::string_view key) {
  key_prefix(key);
  out_ += '{';
  stack_.push_back(Frame::Object);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  FTSPM_REQUIRE(!stack_.empty() && stack_.back() == Frame::Object,
                "end_object without an open object");
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array(std::string_view key) {
  key_prefix(key);
  out_ += '[';
  stack_.push_back(Frame::Array);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  FTSPM_REQUIRE(stack_.empty() || stack_.back() == Frame::Array,
                "unkeyed array belongs in an array or at the root");
  comma();
  out_ += '[';
  stack_.push_back(Frame::Array);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  FTSPM_REQUIRE(!stack_.empty() && stack_.back() == Frame::Array,
                "end_array without an open array");
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::string_view value) {
  key_prefix(key);
  out_ += '"';
  out_ += escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, const char* value) {
  return field(key, std::string_view(value));
}

JsonWriter& JsonWriter::field(std::string_view key, double value) {
  key_prefix(key);
  out_ += number(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::uint64_t value) {
  key_prefix(key);
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::int64_t value) {
  key_prefix(key);
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, bool value) {
  key_prefix(key);
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::element(std::string_view value) {
  FTSPM_REQUIRE(!stack_.empty() && stack_.back() == Frame::Array,
                "element outside an array");
  comma();
  out_ += '"';
  out_ += escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::element(double value) {
  FTSPM_REQUIRE(!stack_.empty() && stack_.back() == Frame::Array,
                "element outside an array");
  comma();
  out_ += number(value);
  return *this;
}

JsonWriter& JsonWriter::element(std::uint64_t value) {
  FTSPM_REQUIRE(!stack_.empty() && stack_.back() == Frame::Array,
                "element outside an array");
  comma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::raw_field(std::string_view key,
                                  std::string_view raw_json) {
  key_prefix(key);
  out_ += raw_json;
  return *this;
}

std::string JsonWriter::quote(std::string_view s) {
  return '"' + escape(s) + '"';
}

std::string JsonWriter::str() const {
  FTSPM_REQUIRE(stack_.empty(), "unclosed JSON containers");
  return out_;
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  FTSPM_REQUIRE(v != nullptr, "missing JSON member '" + std::string(key) +
                                  "'");
  return *v;
}

std::string JsonValue::dump() const {
  switch (kind) {
    case Kind::Null: return "null";
    case Kind::Bool: return boolean ? "true" : "false";
    case Kind::Number: return JsonWriter::number(number);
    case Kind::String: return JsonWriter::quote(string);
    case Kind::Array: {
      std::string out = "[";
      for (std::size_t i = 0; i < array.size(); ++i) {
        if (i != 0) out += ',';
        out += array[i].dump();
      }
      out += ']';
      return out;
    }
    case Kind::Object: {
      std::string out = "{";
      for (std::size_t i = 0; i < object.size(); ++i) {
        if (i != 0) out += ',';
        out += JsonWriter::quote(object[i].first);
        out += ':';
        out += object[i].second.dump();
      }
      out += '}';
      return out;
    }
  }
  return "null";
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default: return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::Bool;
    v.boolean = b;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by JsonWriter and are rejected for simplicity).
          if (code >= 0xd800 && code <= 0xdfff)
            fail("surrogate escapes are unsupported");
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    double parsed = 0.0;
    const std::string token(text_.substr(start, pos_ - start));
    // JSON forbids leading zeros ("01") and a bare leading dot, both of
    // which strtod happily accepts.
    const std::size_t digits = token[0] == '-' ? 1 : 0;
    if (token.size() > digits + 1 && token[digits] == '0' &&
        token[digits + 1] >= '0' && token[digits + 1] <= '9') {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    char* endp = nullptr;
    parsed = std::strtod(token.c_str(), &endp);
    if (endp == nullptr || *endp != '\0') {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  JsonParser parser(text);
  return parser.parse_document();
}

std::vector<JsonValue> parse_ndjson(std::string_view text) {
  // Whole-document convenience wrapper over the incremental framer so
  // ledger / event-log readers share one NDJSON path with the socket
  // layer. Cap 0: callers hand us trusted local files of any size.
  NdjsonReader reader(0);
  reader.feed(text);
  reader.finish();
  std::vector<JsonValue> docs;
  while (std::optional<JsonValue> doc = reader.next())
    docs.push_back(std::move(*doc));
  return docs;
}

}  // namespace ftspm
