// Minimal JSON emission and parsing for machine-readable tool output.
// JsonWriter is a stack-based writer: push objects/arrays, emit
// key/value pairs, pop. It produces deterministic, valid JSON with
// escaping; numbers use shortest-round-trip formatting for doubles.
// parse_json() is the matching strict recursive-descent reader used by
// tests and by consumers of the observability dumps.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ftspm {

class JsonWriter {
 public:
  JsonWriter() = default;

  // --- structure -----------------------------------------------------
  JsonWriter& begin_object();
  JsonWriter& begin_object(std::string_view key);
  JsonWriter& end_object();
  JsonWriter& begin_array(std::string_view key);
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // --- values ----------------------------------------------------------
  JsonWriter& field(std::string_view key, std::string_view value);
  JsonWriter& field(std::string_view key, const char* value);
  JsonWriter& field(std::string_view key, double value);
  JsonWriter& field(std::string_view key, std::uint64_t value);
  JsonWriter& field(std::string_view key, std::int64_t value);
  JsonWriter& field(std::string_view key, bool value);
  JsonWriter& element(std::string_view value);
  JsonWriter& element(double value);
  JsonWriter& element(std::uint64_t value);

  /// Splices `raw_json` in verbatim as the value of `key`. The caller
  /// guarantees it is a valid JSON fragment.
  JsonWriter& raw_field(std::string_view key, std::string_view raw_json);

  /// `s` as a quoted, escaped JSON string literal.
  static std::string quote(std::string_view s);
  /// Shortest-round-trip formatting for a finite double.
  static std::string number(double v);

  /// Finishes and returns the document. Throws if containers are
  /// still open.
  std::string str() const;

 private:
  enum class Frame : std::uint8_t { Object, Array };
  void comma();
  void key_prefix(std::string_view key);
  static std::string escape(std::string_view s);

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
};

/// A parsed JSON document node. Plain value type; object members keep
/// their source order (lookups are linear — fine for tool-sized
/// documents).
class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const noexcept { return kind == Kind::Null; }
  bool is_bool() const noexcept { return kind == Kind::Bool; }
  bool is_number() const noexcept { return kind == Kind::Number; }
  bool is_string() const noexcept { return kind == Kind::String; }
  bool is_array() const noexcept { return kind == Kind::Array; }
  bool is_object() const noexcept { return kind == Kind::Object; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const noexcept;
  /// Like find() but throws ftspm::Error when the member is missing.
  const JsonValue& at(std::string_view key) const;

  /// Compact re-serialization (members keep their source order). With
  /// parse_json this round-trips any document the writer produced.
  std::string dump() const;
};

/// Parses a complete JSON document (strict: no trailing garbage, no
/// comments, no trailing commas). Throws ftspm::Error with an offset
/// on malformed input.
JsonValue parse_json(std::string_view text);

/// Parses newline-delimited JSON (NDJSON): one document per line,
/// blank lines skipped, CR tolerated before LF. Each line is parsed
/// strictly; errors are rethrown with a 1-based line number. Used by
/// the event-log and run-ledger readers.
std::vector<JsonValue> parse_ndjson(std::string_view text);

}  // namespace ftspm
