// Minimal JSON emission (no parsing) for machine-readable tool output.
// A stack-based writer: push objects/arrays, emit key/value pairs, pop.
// Produces deterministic, valid JSON with escaping; numbers use
// shortest-round-trip formatting for doubles.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ftspm {

class JsonWriter {
 public:
  JsonWriter() = default;

  // --- structure -----------------------------------------------------
  JsonWriter& begin_object();
  JsonWriter& begin_object(std::string_view key);
  JsonWriter& end_object();
  JsonWriter& begin_array(std::string_view key);
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // --- values ----------------------------------------------------------
  JsonWriter& field(std::string_view key, std::string_view value);
  JsonWriter& field(std::string_view key, const char* value);
  JsonWriter& field(std::string_view key, double value);
  JsonWriter& field(std::string_view key, std::uint64_t value);
  JsonWriter& field(std::string_view key, std::int64_t value);
  JsonWriter& field(std::string_view key, bool value);
  JsonWriter& element(std::string_view value);
  JsonWriter& element(double value);

  /// Finishes and returns the document. Throws if containers are
  /// still open.
  std::string str() const;

 private:
  enum class Frame : std::uint8_t { Object, Array };
  void comma();
  void key_prefix(std::string_view key);
  static std::string escape(std::string_view s);
  static std::string number(double v);

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
};

}  // namespace ftspm
