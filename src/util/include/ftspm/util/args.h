// Minimal command-line argument parsing for the ftspm_tool driver and
// the examples. Supports `--flag`, `--option value`, `--option=value`,
// and positional arguments; unknown options are errors. No external
// dependencies, deterministic help text.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ftspm {

class ArgParser {
 public:
  /// `program` and `summary` head the usage text.
  ArgParser(std::string program, std::string summary);

  /// Registers a boolean `--name` flag.
  ArgParser& add_flag(const std::string& name, std::string help);

  /// Registers a value-taking `--name <value>` option with a default.
  ArgParser& add_option(const std::string& name, std::string help,
                        std::string default_value);

  /// Parses argv[start..). Throws InvalidArgument on unknown options,
  /// missing values, or malformed numbers requested later.
  void parse(int argc, const char* const* argv, int start = 1);

  bool flag(const std::string& name) const;
  const std::string& option(const std::string& name) const;
  std::int64_t option_int(const std::string& name) const;
  /// Strict non-negative integer: rejects signs, trailing garbage, and
  /// values above `max` with InvalidArgument (exit 2 at the CLI).
  std::uint64_t option_uint(const std::string& name,
                            std::uint64_t max = UINT64_MAX) const;
  /// Strict finite decimal: plain `[+-]digits[.digits][e[+-]digits]`
  /// shape only — rejects `nan`, `inf`, hex floats, leading
  /// whitespace, and trailing garbage with InvalidArgument (exit 2 at
  /// the CLI), all of which strtod would happily accept.
  double option_double(const std::string& name) const;
  /// option_double plus an inclusive [min_value, max_value] range
  /// check, for probability- and rate-shaped flags.
  double option_double(const std::string& name, double min_value,
                       double max_value) const;
  const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }

  std::string usage() const;

 private:
  struct Spec {
    std::string help;
    bool takes_value = false;
    std::string value;  // default, then parsed
    bool seen = false;
  };

  Spec& known(const std::string& name);
  const Spec& known(const std::string& name) const;

  std::string program_;
  std::string summary_;
  std::map<std::string, Spec> specs_;
  std::vector<std::string> order_;
  std::vector<std::string> positionals_;
};

}  // namespace ftspm
