// Small bit-manipulation helpers used by the ECC codecs and the fault
// injector. All operate on 64-bit words or word spans.
#pragma once

#include <bit>
#include <cstdint>
#include <span>

namespace ftspm {

/// Number of set bits.
constexpr int popcount64(std::uint64_t v) noexcept { return std::popcount(v); }

/// Even parity of a 64-bit word: 1 when the number of set bits is odd.
constexpr int parity64(std::uint64_t v) noexcept {
  return std::popcount(v) & 1;
}

/// Tests bit `i` (0 = LSB) of `v`.
constexpr bool get_bit(std::uint64_t v, unsigned i) noexcept {
  return ((v >> i) & 1ULL) != 0;
}

/// Returns `v` with bit `i` set to `value`.
constexpr std::uint64_t set_bit(std::uint64_t v, unsigned i,
                                bool value) noexcept {
  const std::uint64_t mask = 1ULL << i;
  return value ? (v | mask) : (v & ~mask);
}

/// Returns `v` with bit `i` flipped.
constexpr std::uint64_t flip_bit(std::uint64_t v, unsigned i) noexcept {
  return v ^ (1ULL << i);
}

/// Tests bit `i` of a multi-word little-endian bit vector.
inline bool get_bit(std::span<const std::uint64_t> words, std::size_t i) {
  return get_bit(words[i / 64], static_cast<unsigned>(i % 64));
}

/// Flips bit `i` of a multi-word little-endian bit vector.
inline void flip_bit(std::span<std::uint64_t> words, std::size_t i) {
  words[i / 64] = flip_bit(words[i / 64], static_cast<unsigned>(i % 64));
}

/// Population count over a word span.
inline std::size_t popcount(std::span<const std::uint64_t> words) {
  std::size_t n = 0;
  for (auto w : words) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

}  // namespace ftspm
