// Error-handling plumbing shared by every FTSPM library.
//
// Invariant violations and misuse of the public API throw `ftspm::Error`
// (derived from std::runtime_error) so callers can distinguish library
// failures from standard-library ones.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ftspm {

/// Base exception for all FTSPM library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an argument violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when an operation is attempted in an invalid state
/// (e.g. simulating a trace before a mapping plan was installed).
class StateError : public Error {
 public:
  explicit StateError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "FTSPM_REQUIRE") throw InvalidArgument(os.str());
  throw Error(os.str());
}
}  // namespace detail

}  // namespace ftspm

/// Precondition check on public-API arguments; throws InvalidArgument.
#define FTSPM_REQUIRE(cond, msg)                                           \
  do {                                                                     \
    if (!(cond))                                                           \
      ::ftspm::detail::throw_check_failure("FTSPM_REQUIRE", #cond,         \
                                           __FILE__, __LINE__, (msg));     \
  } while (false)

/// Internal invariant check; throws Error.
#define FTSPM_CHECK(cond, msg)                                             \
  do {                                                                     \
    if (!(cond))                                                           \
      ::ftspm::detail::throw_check_failure("FTSPM_CHECK", #cond, __FILE__, \
                                           __LINE__, (msg));               \
  } while (false)
