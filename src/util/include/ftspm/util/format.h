// Human-readable formatting used by the report layer, benches, and
// examples: thousands separators, percentages, SI-scaled engineering
// units, and Table-III-style human durations ("~40 Minutes", "~16 Years").
#pragma once

#include <cstdint>
#include <string>

namespace ftspm {

/// 1234567 -> "1,234,567".
std::string with_commas(std::uint64_t value);
std::string with_commas(std::int64_t value);

/// 0.4321 -> "43.2%" (one decimal by default).
std::string percent(double fraction, int decimals = 1);

/// Fixed-point decimal: fixed(3.14159, 2) -> "3.14".
std::string fixed(double value, int decimals = 2);

/// Engineering/SI notation: si_string(1.7e-9, "J") -> "1.70 nJ".
/// Supported prefixes: f p n u m (none) k M G T.
std::string si_string(double value, const std::string& unit, int decimals = 2);

/// Formats a duration given in seconds the way the paper's Table III
/// does: "~40 Minutes", "~3 Days", "~1.5 Years", "~1665 Years".
/// Picks the largest unit whose count is >= 1 and prints at most one
/// decimal (dropped when the value rounds to an integer).
std::string human_duration(double seconds);

/// Scientific notation with a small mantissa: sci(3.2e13) -> "3.2e+13".
std::string sci(double value, int decimals = 1);

}  // namespace ftspm
