// Deterministic pseudo-random number generation.
//
// All stochastic components of the reproduction (workload generators,
// Monte-Carlo fault injection) draw from `Rng`, a xoshiro256** generator
// seeded via SplitMix64. Determinism across platforms is a hard
// requirement: identical seeds must yield identical traces, profiles,
// mappings, and injection campaigns, so results in EXPERIMENTS.md are
// exactly reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace ftspm {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** deterministic PRNG with convenience distributions.
///
/// Not a std::uniform_random_bit_generator replacement on purpose: the
/// standard distributions are implementation-defined, which would break
/// cross-platform reproducibility.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's unbiased multiply-shift rejection method.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept;

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool next_bool(double p);

  /// Samples an index from a discrete distribution given non-negative
  /// weights. Throws InvalidArgument if weights are empty or all zero.
  std::size_t next_discrete(std::span<const double> weights);

  /// Geometric-ish burst length: 1 + number of successes of repeated
  /// Bernoulli(p) trials, capped at `cap`. Used by workload generators
  /// to produce bursty access runs.
  std::uint32_t next_burst(double p, std::uint32_t cap);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Forks a statistically independent child generator; the child's seed
  /// is derived from this generator's stream.
  Rng fork() noexcept;

  /// Derives the seed of logical stream `stream_index` under `root_seed`
  /// via SplitMix64 mixing. Pure function of its arguments (the golden
  /// values are asserted by tests), so shard i of a campaign draws the
  /// same sequence no matter which worker thread runs it or in what
  /// order shards complete. Distinct indices yield decorrelated
  /// streams; index 0 does NOT reproduce `Rng(root_seed)` — callers
  /// that need serial compatibility must keep the root seed for the
  /// single-stream case.
  static std::uint64_t derive_stream_seed(std::uint64_t root_seed,
                                          std::uint64_t stream_index) noexcept;

  /// Convenience: a generator seeded with
  /// `derive_stream_seed(root_seed, stream_index)`.
  static Rng for_stream(std::uint64_t root_seed,
                        std::uint64_t stream_index) noexcept;

  /// The four xoshiro256** state words, for checkpointing a generator
  /// mid-stream. Round-trips exactly through `from_state`.
  std::array<std::uint64_t, 4> state() const noexcept { return state_; }

  /// Rebuilds a generator from `state()` output. The all-zero state is
  /// invalid for xoshiro256** and is nudged the same way seeding does.
  static Rng from_state(const std::array<std::uint64_t, 4>& words) noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ftspm
