// Deterministic pseudo-random number generation.
//
// All stochastic components of the reproduction (workload generators,
// Monte-Carlo fault injection) draw from `Rng`, a xoshiro256** generator
// seeded via SplitMix64. Determinism across platforms is a hard
// requirement: identical seeds must yield identical traces, profiles,
// mappings, and injection campaigns, so results in EXPERIMENTS.md are
// exactly reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "ftspm/util/error.h"

namespace ftspm {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** deterministic PRNG with convenience distributions.
///
/// Not a std::uniform_random_bit_generator replacement on purpose: the
/// standard distributions are implementation-defined, which would break
/// cross-platform reproducibility.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  // The per-draw primitives are defined inline: the batched campaign
  // engine draws several per strike at tens of millions of strikes/sec,
  // where a cross-TU call per draw is measurable. Sequences are
  // unchanged — only the call overhead moved.

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl_(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl_(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's unbiased multiply-shift rejection method.
  std::uint64_t next_below(std::uint64_t bound) {
    FTSPM_REQUIRE(bound > 0, "next_below bound must be positive");
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool next_bool(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

  /// Samples an index from a discrete distribution given non-negative
  /// weights. Throws InvalidArgument if weights are empty or all zero.
  std::size_t next_discrete(std::span<const double> weights);

  /// Geometric-ish burst length: 1 + number of successes of repeated
  /// Bernoulli(p) trials, capped at `cap`. Used by workload generators
  /// to produce bursty access runs.
  std::uint32_t next_burst(double p, std::uint32_t cap);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Forks a statistically independent child generator; the child's seed
  /// is derived from this generator's stream.
  Rng fork() noexcept;

  /// Derives the seed of logical stream `stream_index` under `root_seed`
  /// via SplitMix64 mixing. Pure function of its arguments (the golden
  /// values are asserted by tests), so shard i of a campaign draws the
  /// same sequence no matter which worker thread runs it or in what
  /// order shards complete. Distinct indices yield decorrelated
  /// streams; index 0 does NOT reproduce `Rng(root_seed)` — callers
  /// that need serial compatibility must keep the root seed for the
  /// single-stream case.
  static std::uint64_t derive_stream_seed(std::uint64_t root_seed,
                                          std::uint64_t stream_index) noexcept;

  /// Convenience: a generator seeded with
  /// `derive_stream_seed(root_seed, stream_index)`.
  static Rng for_stream(std::uint64_t root_seed,
                        std::uint64_t stream_index) noexcept;

  /// The four xoshiro256** state words, for checkpointing a generator
  /// mid-stream. Round-trips exactly through `from_state`.
  std::array<std::uint64_t, 4> state() const noexcept { return state_; }

  /// Rebuilds a generator from `state()` output. The all-zero state is
  /// invalid for xoshiro256** and is nudged the same way seeding does.
  static Rng from_state(const std::array<std::uint64_t, 4>& words) noexcept;

 private:
  static constexpr std::uint64_t rotl_(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ftspm
