// Incremental NDJSON (newline-delimited JSON) framing.
//
// NdjsonReader turns an arbitrary byte stream — socket reads, file
// chunks, a whole document at once — into complete NDJSON records.
// Bytes go in with feed() in whatever pieces the transport produced;
// next() hands back one parsed document per complete line. The reader
// owns the three framing headaches every NDJSON consumer otherwise
// reimplements:
//
//  * partial reads — a line split across feed() calls is buffered until
//    its terminating newline arrives;
//  * CRLF — a carriage return before the newline is stripped, and
//    blank / whitespace-only lines are skipped, matching parse_ndjson;
//  * oversized records — a line that exceeds the hard cap throws
//    ftspm::Error *before* the buffer grows unboundedly, which is what
//    makes the reader safe on untrusted socket input (the serve
//    daemon's framing layer).
//
// parse_ndjson (util/json.h) is a thin wrapper: feed the whole text,
// finish(), drain. The ledger and event-log readers go through it, so
// every NDJSON surface in the tree shares this one framing path.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "ftspm/util/json.h"

namespace ftspm {

class NdjsonReader {
 public:
  /// Default per-record cap: generous for tool artefacts, small enough
  /// that a hostile peer cannot balloon the buffer.
  static constexpr std::size_t kDefaultMaxRecordBytes = 1u << 20;

  /// `max_record_bytes` bounds one line (exclusive of its newline);
  /// 0 means unlimited (trusted local files only).
  explicit NdjsonReader(std::size_t max_record_bytes = kDefaultMaxRecordBytes);

  /// Appends raw bytes (any split, including mid-record) to the
  /// buffer. Throws ftspm::Error if the unterminated tail exceeds the
  /// record cap.
  void feed(std::string_view bytes);

  /// Marks end of input: a final unterminated line becomes available
  /// to next()/next_line() as if newline-terminated. feed() after
  /// finish() throws.
  void finish();

  /// The next complete line — CR stripped, blank lines skipped — or
  /// std::nullopt when more input is needed (or the stream is done).
  std::optional<std::string> next_line();

  /// next_line() parsed as one strict JSON document. Throws
  /// ftspm::Error tagged "ndjson line N" on malformed input.
  std::optional<JsonValue> next();

  /// 1-based line number of the record last returned (0 before any).
  std::size_t line_number() const noexcept { return line_number_; }

  /// Bytes buffered waiting for a newline.
  std::size_t buffered_bytes() const noexcept {
    return buffer_.size() - consumed_;
  }

  /// True once finish() was called and the buffer drained: no further
  /// record can ever appear.
  bool exhausted() const noexcept;

 private:
  void compact();

  std::size_t max_record_bytes_;
  std::string buffer_;
  std::size_t consumed_ = 0;  ///< Prefix of buffer_ already returned.
  std::size_t line_number_ = 0;
  std::size_t scanned_ = 0;  ///< Prefix known to contain no newline.
  bool finished_ = false;
};

}  // namespace ftspm
