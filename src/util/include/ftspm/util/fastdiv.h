// Division by a runtime-constant divisor without the hardware divider.
//
// The campaign hot loop maps every flipped physical bit to its codeword
// with a divide/modulo by `codeword_bits` — a 64-bit idiv per flip, one
// of the larger single costs in the batched strike engine. FastDiv64
// precomputes the classic round-up reciprocal (Granlund–Montgomery;
// the same construction libdivide calls the "magic number" path) so the
// divide becomes one 64x64→128 multiply.
//
// Correctness: with d >= 2, let M = ceil(2^64 / d) and e = M*d - 2^64
// (0 <= e < d). Then hi64(n * M) = floor(n/d + n*e/(d*2^64)), which
// equals floor(n/d) whenever n*e < 2^64 — the constructor checks that
// condition against the caller's declared dividend bound and falls back
// to the hardware divide when it cannot be guaranteed, so `divide` is
// exact for every dividend within the bound no matter the divisor.
// tests/util/fastdiv_test.cpp verifies both paths exhaustively around
// the boundaries.
#pragma once

#include <cstdint>

#include "ftspm/util/error.h"

namespace ftspm {

class FastDiv64 {
 public:
  /// Division by 1 (the do-nothing divider); valid to call.
  FastDiv64() = default;

  /// Prepares division by `divisor` (>= 1), exact for every dividend in
  /// [0, max_dividend]. Small divisors against realistic region sizes
  /// (codeword widths of tens of bits, surfaces below ~2^57 bits)
  /// always qualify for the multiply path; anything that cannot be
  /// proven exact keeps the hardware divide.
  explicit FastDiv64(std::uint64_t divisor,
                     std::uint64_t max_dividend = UINT64_MAX)
      : divisor_(divisor) {
    FTSPM_REQUIRE(divisor >= 1, "FastDiv64 divisor must be >= 1");
    if (divisor < 2) return;  // n / 1 == n; the fallback path is free.
    // ceil(2^64 / d): for d not a power of two this is
    // floor((2^64 - 1) / d) + 1; for powers of two the same expression
    // collapses to exactly 2^(64-k).
    const std::uint64_t magic = ~std::uint64_t{0} / divisor + 1;
    // M*d lands in [2^64, 2^64 + d), so the wrapped low word IS e.
    const std::uint64_t error = magic * divisor;
    if (error == 0 || max_dividend <= ~std::uint64_t{0} / error)
      magic_ = magic;
  }

  std::uint64_t divisor() const noexcept { return divisor_; }

  /// True when the multiply path was proven exact at construction.
  bool exact_multiply() const noexcept { return magic_ != 0; }

  /// floor(n / divisor). `n` must be within the constructor's
  /// max_dividend bound (unchecked — this is the hot path).
  std::uint64_t divide(std::uint64_t n) const noexcept {
    if (magic_ != 0)
      return static_cast<std::uint64_t>(
          (static_cast<__uint128_t>(n) * magic_) >> 64);
    return n / divisor_;
  }

  /// n mod divisor, via divide (one multiply-subtract, no idiv).
  std::uint64_t modulo(std::uint64_t n) const noexcept {
    return n - divide(n) * divisor_;
  }

 private:
  std::uint64_t divisor_ = 1;
  std::uint64_t magic_ = 0;  ///< 0 = hardware-divide fallback.
};

}  // namespace ftspm
