// Minimal ASCII/CSV table rendering shared by the report layer, the
// bench harness, and the examples. Kept in util (rather than report) so
// low-level libraries can emit diagnostics without a dependency cycle.
#pragma once

#include <string>
#include <vector>

namespace ftspm {

/// Column alignment inside an AsciiTable.
enum class Align { Left, Right };

/// Builds fixed-width ASCII tables:
///
///   AsciiTable t({"Block", "Reads"});
///   t.add_row({"Main", "3,327,700"});
///   std::cout << t.render();
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  /// Sets the alignment of column `idx` (default Left for the first
  /// column, Right for the rest — the common "name + numbers" shape).
  void set_align(std::size_t idx, Align align);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line at the current position.
  void add_separator();

  std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders the table with `+-|` borders.
  std::string render() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

/// Escapes and joins rows into RFC-4180-ish CSV text.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  std::string render() const;

 private:
  static std::string escape(const std::string& cell);
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ftspm
