// Library version constant embedded in run manifests so every emitted
// artefact records what produced it. Keep in sync with the project()
// version in the top-level CMakeLists.txt.
#pragma once

#include <string_view>

namespace ftspm {

inline constexpr std::string_view kLibraryVersion = "1.1.0";

}  // namespace ftspm
