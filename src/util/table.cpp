#include "ftspm/util/table.h"

#include <algorithm>
#include <sstream>

#include "ftspm/util/error.h"

namespace ftspm {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  FTSPM_REQUIRE(!headers_.empty(), "table needs at least one column");
  aligns_.assign(headers_.size(), Align::Right);
  aligns_[0] = Align::Left;
}

void AsciiTable::set_align(std::size_t idx, Align align) {
  FTSPM_REQUIRE(idx < aligns_.size(), "column index out of range");
  aligns_[idx] = align;
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  FTSPM_REQUIRE(cells.size() == headers_.size(),
                "row width must match header width");
  rows_.push_back(Row{false, std::move(cells)});
}

void AsciiTable::add_separator() { rows_.push_back(Row{true, {}}); }

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      widths[c] = std::max(widths[c], row.cells[c].size());
  }

  auto rule = [&] {
    std::string s = "+";
    for (auto w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::string& cell = cells[c];
      const std::size_t pad = widths[c] - cell.size();
      s += " ";
      if (aligns_[c] == Align::Right) s += std::string(pad, ' ');
      s += cell;
      if (aligns_[c] == Align::Left) s += std::string(pad, ' ');
      s += " |";
    }
    return s + "\n";
  };

  std::ostringstream os;
  os << rule() << line(headers_) << rule();
  for (const auto& row : rows_) {
    if (row.separator)
      os << rule();
    else
      os << line(row.cells);
  }
  os << rule();
  return os.str();
}

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  FTSPM_REQUIRE(!headers_.empty(), "csv needs at least one column");
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  FTSPM_REQUIRE(cells.size() == headers_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  return out + "\"";
}

std::string CsvWriter::render() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << escape(cells[c]);
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace ftspm
