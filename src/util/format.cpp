#include "ftspm/util/format.h"

#include <array>
#include <cmath>
#include <cstdio>
#include <string>

#include "ftspm/util/error.h"

namespace ftspm {

namespace {
std::string group_digits(std::string digits) {
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}
}  // namespace

std::string with_commas(std::uint64_t value) {
  return group_digits(std::to_string(value));
}

std::string with_commas(std::int64_t value) {
  if (value < 0) {
    // Negate via unsigned arithmetic: -INT64_MIN would overflow.
    const std::uint64_t magnitude =
        static_cast<std::uint64_t>(-(value + 1)) + 1;
    return "-" + with_commas(magnitude);
  }
  return with_commas(static_cast<std::uint64_t>(value));
}

std::string fixed(double value, int decimals) {
  FTSPM_REQUIRE(decimals >= 0 && decimals <= 12, "decimals out of range");
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string percent(double fraction, int decimals) {
  return fixed(fraction * 100.0, decimals) + "%";
}

std::string si_string(double value, const std::string& unit, int decimals) {
  struct Prefix {
    double scale;
    const char* symbol;
  };
  static constexpr std::array<Prefix, 9> prefixes{{{1e12, "T"},
                                                   {1e9, "G"},
                                                   {1e6, "M"},
                                                   {1e3, "k"},
                                                   {1.0, ""},
                                                   {1e-3, "m"},
                                                   {1e-6, "u"},
                                                   {1e-9, "n"},
                                                   {1e-12, "p"}}};
  if (value == 0.0) return "0 " + unit;
  const double mag = std::fabs(value);
  for (const auto& p : prefixes) {
    if (mag >= p.scale) {
      return fixed(value / p.scale, decimals) + " " + p.symbol + unit;
    }
  }
  return fixed(value / 1e-15, decimals) + " f" + unit;
}

std::string human_duration(double seconds) {
  FTSPM_REQUIRE(seconds >= 0.0, "duration must be non-negative");
  struct Unit {
    double seconds;
    const char* name;
  };
  // Calendar approximations matching the paper's Table III phrasing.
  static constexpr std::array<Unit, 6> units{{{365.25 * 86400.0, "Years"},
                                              {30.4375 * 86400.0, "Months"},
                                              {86400.0, "Days"},
                                              {3600.0, "Hours"},
                                              {60.0, "Minutes"},
                                              {1.0, "Seconds"}}};
  for (const auto& u : units) {
    const double count = seconds / u.seconds;
    if (count >= 1.0) {
      // One decimal unless it rounds to a whole number (paper: "~1.5
      // Years" but "~3 Days").
      const double rounded = std::round(count * 10.0) / 10.0;
      std::string num = (std::fabs(rounded - std::round(rounded)) < 1e-9)
                            ? std::to_string(static_cast<long long>(
                                  std::llround(rounded)))
                            : fixed(rounded, 1);
      return "~" + num + " " + u.name;
    }
  }
  return "~" + fixed(seconds, 3) + " Seconds";
}

std::string sci(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", decimals, value);
  return buf;
}

}  // namespace ftspm
