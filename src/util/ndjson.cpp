#include "ftspm/util/ndjson.h"

#include <algorithm>

#include "ftspm/util/error.h"
#include "ftspm/util/json.h"

namespace ftspm {

NdjsonReader::NdjsonReader(std::size_t max_record_bytes)
    : max_record_bytes_(max_record_bytes) {}

void NdjsonReader::compact() {
  // Reclaim the consumed prefix once it dominates the buffer, so a
  // long-lived connection doesn't hold every record it ever framed.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    scanned_ = scanned_ > consumed_ ? scanned_ - consumed_ : 0;
    consumed_ = 0;
  }
}

void NdjsonReader::feed(std::string_view bytes) {
  FTSPM_CHECK(!finished_, "NdjsonReader::feed after finish");
  const std::size_t old_size = buffer_.size();
  buffer_.append(bytes);
  // `scanned_` tracks the start of the current (unterminated) tail
  // line; only the new chunk needs scanning, so feeding stays linear.
  const std::size_t rel = bytes.rfind('\n');
  if (rel != std::string_view::npos) scanned_ = old_size + rel + 1;
  if (max_record_bytes_ != 0) {
    const std::size_t tail_start = std::max(scanned_, consumed_);
    if (buffer_.size() - tail_start > max_record_bytes_)
      throw Error("ndjson record exceeds " +
                  std::to_string(max_record_bytes_) + " bytes");
  }
}

void NdjsonReader::finish() { finished_ = true; }

bool NdjsonReader::exhausted() const noexcept {
  return finished_ && consumed_ >= buffer_.size();
}

std::optional<std::string> NdjsonReader::next_line() {
  while (consumed_ < buffer_.size()) {
    const std::size_t nl = buffer_.find('\n', consumed_);
    std::string_view line;
    std::size_t advance = 0;
    if (nl != std::string::npos) {
      line = std::string_view(buffer_).substr(consumed_, nl - consumed_);
      advance = nl - consumed_ + 1;
    } else if (finished_) {
      line = std::string_view(buffer_).substr(consumed_);
      advance = buffer_.size() - consumed_;
    } else {
      return std::nullopt;  // Mid-record; wait for more bytes.
    }
    // A terminated over-cap line can slip past feed() when the chunk
    // containing it also carried the newline; hold the line here too.
    if (max_record_bytes_ != 0 && line.size() > max_record_bytes_)
      throw Error("ndjson record exceeds " +
                  std::to_string(max_record_bytes_) + " bytes");
    ++line_number_;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const bool blank = std::all_of(
        line.begin(), line.end(), [](char c) { return c == ' ' || c == '\t'; });
    std::string out(line);
    consumed_ += advance;
    if (blank) continue;
    compact();
    return out;
  }
  return std::nullopt;
}

std::optional<JsonValue> NdjsonReader::next() {
  const std::optional<std::string> line = next_line();
  if (!line.has_value()) return std::nullopt;
  try {
    return parse_json(*line);
  } catch (const Error& e) {
    throw Error("ndjson line " + std::to_string(line_number_) + ": " +
                e.what());
  }
}

}  // namespace ftspm
