#include "ftspm/report/json_report.h"

#include "ftspm/util/json.h"
#include "ftspm/util/version.h"

namespace ftspm {

namespace {

void write_manifest(JsonWriter& w, const RunManifest& m) {
  w.field("library_version", kLibraryVersion)
      .field("command", m.command)
      .field("workload", m.workload)
      .field("scale", m.scale)
      .field("seed", m.seed);
}

void write_system_result(JsonWriter& w, const SystemResult& r,
                         const SpmLayout& layout, const Program& program) {
  w.field("structure", r.structure);
  w.field("cycles", r.run.total_cycles);
  w.begin_object("cycles_breakdown")
      .field("compute", r.run.compute_cycles)
      .field("spm", r.run.spm_cycles)
      .field("cache", r.run.cache_cycles)
      .field("dram", r.run.dram_penalty_cycles)
      .field("dma", r.run.dma_cycles)
      .end_object();
  w.begin_object("energy_pj")
      .field("spm_dynamic", r.run.spm_dynamic_energy_pj())
      .field("spm_static", r.run.spm_static_energy_pj)
      .field("total_dynamic", r.run.total_dynamic_energy_pj())
      .end_object();
  w.begin_object("avf")
      .field("sdc", r.avf.sdc_avf)
      .field("due", r.avf.due_avf)
      .field("dre", r.avf.dre_avf)
      .field("vulnerability", r.avf.vulnerability())
      .end_object();
  w.begin_object("endurance")
      .field("unlimited", r.endurance.unlimited())
      .field("max_word_write_rate_per_s",
             r.endurance.max_word_write_rate_per_s)
      .end_object();
  w.begin_array("mappings");
  for (const BlockMapping& m : r.plan.mappings()) {
    w.begin_object()
        .field("block", program.block(m.block).name)
        .field("mapped", m.mapped())
        .field("region", m.mapped() ? layout.region(m.region).name : "-")
        .field("reason", to_string(m.reason))
        .end_object();
  }
  w.end_array();
  w.begin_array("regions");
  for (RegionId rid = 0; rid < layout.region_count(); ++rid) {
    const RegionRunStats& s = r.run.regions[rid];
    w.begin_object()
        .field("name", layout.region(rid).name)
        .field("reads", s.reads)
        .field("writes", s.writes)
        .field("dma_in_words", s.dma_in_words)
        .field("dma_out_words", s.dma_out_words)
        .field("capacity_evictions", s.capacity_evictions)
        .field("max_word_writes", s.max_word_writes)
        .field("energy_pj", s.energy_pj())
        .end_object();
  }
  w.end_array();
}

}  // namespace

std::string manifest_json(const RunManifest& manifest) {
  JsonWriter w;
  w.begin_object();
  write_manifest(w, manifest);
  w.end_object();
  return w.str();
}

std::string system_result_json(const SystemResult& result,
                               const SpmLayout& layout,
                               const Program& program,
                               const RunManifest& manifest) {
  JsonWriter w;
  w.begin_object();
  w.begin_object("manifest");
  write_manifest(w, manifest);
  w.end_object();
  write_system_result(w, result, layout, program);
  w.end_object();
  return w.str();
}

std::string campaign_json(const CampaignResult& result,
                          const RecoveryCounters* recovery,
                          const RunManifest& manifest,
                          const CampaignTiming* timing) {
  JsonWriter w;
  w.begin_object();
  w.begin_object("manifest");
  write_manifest(w, manifest);
  w.end_object();
  w.begin_object("strikes")
      .field("total", result.strikes)
      .field("masked", result.masked)
      .field("dre", result.dre)
      .field("due", result.due)
      .field("sdc", result.sdc)
      .field("vulnerability", result.vulnerability())
      .end_object();
  if (recovery != nullptr) {
    w.begin_object("recovery")
        .field("demand_reads", recovery->demand_reads)
        .field("corrections", recovery->corrections)
        .field("scrub_passes", recovery->scrub_passes)
        .field("scrub_words", recovery->scrub_words)
        .field("scrub_corrections", recovery->scrub_corrections)
        .field("refetches", recovery->refetches)
        .field("unrecoverable", recovery->unrecoverable)
        .field("sdc_reads", recovery->sdc_reads)
        .field("recovery_cycles", recovery->recovery_cycles)
        .field("recovery_energy_pj", recovery->recovery_energy_pj)
        .field("mean_repair_cycles", recovery->mean_repair_cycles())
        .end_object();
  }
  if (timing != nullptr) {
    // Wall-clock block, last so deterministic consumers can strip it;
    // the flag tells golden comparisons to ignore these fields.
    w.begin_object("timing")
        .field("nondeterministic", true)
        .field("wall_ms", timing->wall_ms)
        .field("strikes_per_sec", timing->strikes_per_sec)
        .end_object();
  }
  w.end_object();
  return w.str();
}

std::string suite_json(const std::vector<SuiteRow>& rows,
                       const StructureEvaluator& evaluator,
                       const RunManifest& manifest) {
  JsonWriter w;
  w.begin_object();
  w.begin_object("manifest");
  write_manifest(w, manifest);
  w.end_object();
  w.begin_array("benchmarks");
  for (const SuiteRow& row : rows) {
    const Workload workload = make_benchmark(row.benchmark);
    w.begin_object();
    w.field("benchmark", row.name);
    w.begin_object("ftspm");
    write_system_result(w, row.ftspm, evaluator.ftspm_layout(),
                        workload.program);
    w.end_object();
    w.begin_object("pure_sram");
    write_system_result(w, row.pure_sram, evaluator.pure_sram_layout(),
                        workload.program);
    w.end_object();
    w.begin_object("pure_stt");
    write_system_result(w, row.pure_stt, evaluator.pure_stt_layout(),
                        workload.program);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace ftspm
