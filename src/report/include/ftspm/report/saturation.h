// The saturation-knee sweep artefact (BENCH_saturation.json).
//
// bench/saturation_sweep drives a serve daemon with the load injector
// across a ladder of offered arrival rates and records, per rung:
// shed rate, achieved throughput, admission-queue depth, and per-class
// latency percentiles. This header is the offline half — parsing the
// artefact back and rendering the knee chart (`ftspm_tool report
// saturation`): latency and shed rate against offered rate, with the
// knee marked at the first rung whose shed rate crosses the threshold.
//
// Latencies and rates are wall-clock quantities, so two sweeps never
// reproduce byte-for-byte; the *schema* is pinned (tests/report) so
// downstream dashboards can rely on it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "ftspm/util/json.h"

namespace ftspm::report {

/// One request class's latency profile at one offered rate.
struct SaturationClassPoint {
  std::string name;
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  std::uint64_t overloaded = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

/// One rung of the rate ladder.
struct SaturationStep {
  /// Offered open-loop rate per connection (req/s); 0 = closed loop.
  double rate = 0.0;
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t errors = 0;
  double shed_rate = 0.0;  ///< overloaded / sent.
  double wall_ms = 0.0;
  double throughput_rps = 0.0;  ///< completed / wall seconds.
  double queue_depth_max = 0.0;
  double queue_depth_mean = 0.0;
  std::vector<SaturationClassPoint> classes;
};

struct SaturationSweep {
  bool quick = false;
  std::uint32_t jobs = 0;
  std::uint32_t connections = 0;
  std::uint64_t requests_per_step = 0;
  std::vector<SaturationStep> steps;
};

/// Parses a BENCH_saturation.json document. Throws ftspm::Error on a
/// missing/mistyped field or an unknown schema version.
SaturationSweep saturation_from_json(const JsonValue& doc);

/// The saturation knee: index of the first step whose shed rate
/// exceeds `shed_threshold`. Returns sweep.steps.size() when the sweep
/// never saturates.
std::size_t saturation_knee_index(const SaturationSweep& sweep,
                                  double shed_threshold = 0.01);

/// Self-contained HTML: the knee chart (per-class p95 latency and shed
/// rate vs offered rate, knee rung marked) plus the per-step table.
std::string saturation_report_html(const SaturationSweep& sweep);

/// Flat CSV, one row per (step, class) plus a _total row per step,
/// with the pinned header
/// "rate,class,sent,completed,overloaded,errors,shed_rate,
/// throughput_rps,queue_depth_max,queue_depth_mean,
/// p50_ms,p95_ms,p99_ms".
std::string saturation_report_csv(const SaturationSweep& sweep);

}  // namespace ftspm::report
