// Machine-readable result serialization (consumed by ftspm_tool's
// --json mode and by downstream analysis scripts).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ftspm/core/systems.h"
#include "ftspm/fault/recovery.h"
#include "ftspm/report/suite_runner.h"

namespace ftspm {

/// Describes the run that produced an artefact, embedded as the
/// "manifest" member of every JSON report so dumps are
/// self-describing. The library version is added automatically.
struct RunManifest {
  std::string command;   ///< Producer, e.g. "ftspm_tool evaluate".
  std::string workload;  ///< Workload/suite name ("" when N/A).
  std::uint64_t scale = 1;
  std::uint64_t seed = 0;
};

/// The manifest alone as a JSON object string (reusable by other
/// emitters).
std::string manifest_json(const RunManifest& manifest);

/// One structure's full evaluation as a JSON object string: manifest,
/// mapping, run counters, energies, AVF decomposition, endurance.
std::string system_result_json(const SystemResult& result,
                               const SpmLayout& layout,
                               const Program& program,
                               const RunManifest& manifest = {});

/// The whole 12-benchmark sweep as a JSON object {"manifest":...,
/// "benchmarks":[...]} (one element per benchmark with the three
/// structures nested).
std::string suite_json(const std::vector<SuiteRow>& rows,
                       const StructureEvaluator& evaluator,
                       const RunManifest& manifest = {});

/// Wall-clock measurements of one campaign run. Nondeterministic by
/// nature: when embedded in a report they are wrapped in a "timing"
/// object flagged {"nondeterministic":true} so golden comparisons know
/// to strip it.
struct CampaignTiming {
  double wall_ms = 0.0;
  double strikes_per_sec = 0.0;
};

/// One Monte-Carlo strike campaign as a JSON object string: manifest,
/// strike counters and fractions, and — when `recovery` is non-null —
/// the recovery-pipeline block (corrections, scrub sweeps, re-fetches,
/// unrecoverable DUEs, and the MTTR-style overhead cycles/energy spent
/// repairing). Field order is fixed, so for a fixed campaign the
/// output is byte-identical regardless of --jobs — except the optional
/// trailing "timing" block (see CampaignTiming), emitted only when
/// `timing` is non-null.
std::string campaign_json(const CampaignResult& result,
                          const RecoveryCounters* recovery,
                          const RunManifest& manifest = {},
                          const CampaignTiming* timing = nullptr);

}  // namespace ftspm
