// Machine-readable result serialization (consumed by ftspm_tool's
// --json mode and by downstream analysis scripts).
#pragma once

#include <string>
#include <vector>

#include "ftspm/core/systems.h"
#include "ftspm/report/suite_runner.h"

namespace ftspm {

/// One structure's full evaluation as a JSON object string: mapping,
/// run counters, energies, AVF decomposition, endurance.
std::string system_result_json(const SystemResult& result,
                               const SpmLayout& layout,
                               const Program& program);

/// The whole 12-benchmark sweep as a JSON array (one element per
/// benchmark with the three structures nested).
std::string suite_json(const std::vector<SuiteRow>& rows,
                       const StructureEvaluator& evaluator);

}  // namespace ftspm
