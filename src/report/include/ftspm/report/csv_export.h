// CSV renditions of every reproduced artefact — the raw series behind
// Tables I-III and Figs. 2-8, ready for external plotting. Used by
// `ftspm_tool report --out-dir <dir>`.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ftspm/fault/recovery.h"
#include "ftspm/report/suite_runner.h"

namespace ftspm {

/// One strike campaign as a single-row CSV (header + one data row):
/// strike counters first, then — when `recovery` is non-null — the
/// recovery-pipeline columns (zeros are emitted as "0", so the file is
/// byte-stable for a fixed campaign regardless of --jobs).
std::string campaign_csv(const CampaignResult& result,
                         const RecoveryCounters* recovery);

/// All artefact CSVs for one full evaluation: filename -> contents.
/// `rows` must come from run_suite(evaluator, ...); the case-study
/// artefacts are generated internally at full scale.
std::map<std::string, std::string> export_all_csv(
    const StructureEvaluator& evaluator, const std::vector<SuiteRow>& rows);

/// Writes every entry of export_all_csv() under `directory` (created
/// if needed). Returns the file paths written.
std::vector<std::string> write_all_csv(const StructureEvaluator& evaluator,
                                       const std::vector<SuiteRow>& rows,
                                       const std::string& directory);

}  // namespace ftspm
