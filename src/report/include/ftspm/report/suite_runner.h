// Evaluation driver: runs the MiBench-style suite against the three
// structures — the inner loop behind Figs. 4-8. Shared by the bench
// binaries and the examples so every artefact reports the same numbers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ftspm/core/systems.h"
#include "ftspm/workload/suite.h"

namespace ftspm {

/// All three structures' results for one benchmark.
struct SuiteRow {
  MiBenchmark benchmark{};
  std::string name;
  SystemResult ftspm;
  SystemResult pure_sram;
  SystemResult pure_stt;
};

/// Invoked after each benchmark completes with (benchmarks_done,
/// benchmarks_total, name_of_the_one_just_finished). Reporting only;
/// results are unaffected.
using SuiteProgress =
    std::function<void(std::size_t, std::size_t, const std::string&)>;

/// Runs every benchmark at the given scale. Deterministic. When
/// observability is enabled, each benchmark also gets a wall-clock
/// timer in the registry ("suite.<name>") and a span on the trace's
/// "suite" lane, timestamped by cumulative simulated FTSPM cycles.
std::vector<SuiteRow> run_suite(const StructureEvaluator& evaluator,
                                std::uint64_t scale_divisor = 1,
                                const SuiteProgress& progress = {});

/// run_suite fanned across a ftspm/exec worker pool: each benchmark is
/// one independent task, results are collected in benchmark order, and
/// the returned rows are identical to the serial function's for any
/// jobs value. `jobs <= 1` falls through to run_suite. The progress
/// callback fires (serialized) in *completion* order — that is the
/// only observable difference. When observability is enabled, workers
/// run suppressed and the per-benchmark timers and trace spans are
/// emitted after the join, in benchmark order, so the trace document
/// matches the serial one byte for byte.
std::vector<SuiteRow> run_suite_parallel(const StructureEvaluator& evaluator,
                                         std::uint64_t scale_divisor,
                                         std::uint32_t jobs,
                                         const SuiteProgress& progress = {});

/// Geometric mean of per-row ratios f(row); rows where the ratio is
/// non-positive or non-finite are skipped.
double geomean_ratio(const std::vector<SuiteRow>& rows,
                     double (*ratio)(const SuiteRow&));

}  // namespace ftspm
