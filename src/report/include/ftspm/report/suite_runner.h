// Evaluation driver: runs the MiBench-style suite against the three
// structures — the inner loop behind Figs. 4-8. Shared by the bench
// binaries and the examples so every artefact reports the same numbers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ftspm/core/systems.h"
#include "ftspm/workload/suite.h"

namespace ftspm {

/// All three structures' results for one benchmark.
struct SuiteRow {
  MiBenchmark benchmark{};
  std::string name;
  SystemResult ftspm;
  SystemResult pure_sram;
  SystemResult pure_stt;
};

/// Runs every benchmark at the given scale. Deterministic.
std::vector<SuiteRow> run_suite(const StructureEvaluator& evaluator,
                                std::uint64_t scale_divisor = 1);

/// Geometric mean of per-row ratios f(row); rows where the ratio is
/// non-positive or non-finite are skipped.
double geomean_ratio(const std::vector<SuiteRow>& rows,
                     double (*ratio)(const SuiteRow&));

}  // namespace ftspm
