// Run comparison: the diff half of the run ledger (obs/ledger.h).
// Aligns two ledger records' counters and metrics by name, computes
// relative deltas, and flags regressions past a threshold — the engine
// behind `ftspm_tool compare`, usable as a CI determinism/quality gate.
#pragma once

#include <string>
#include <vector>

#include "ftspm/obs/ledger.h"

namespace ftspm {

struct CompareOptions {
  /// Maximum tolerated |relative delta| in percent before a row counts
  /// as a regression (0 = any drift regresses — the determinism gate).
  double threshold_pct = 0.0;
  /// When non-empty, only the row with this name participates in
  /// regression gating (all rows are still reported).
  std::string metric;
};

/// One aligned counter/metric row of the diff.
struct CompareRow {
  std::string name;
  std::string kind;  ///< "counter" or "metric".
  double a = 0.0;
  double b = 0.0;
  /// 100 * (b - a) / a; +/-inf when a == 0 and b != 0; 0 when both 0.
  double delta_pct = 0.0;
  bool missing_a = false;  ///< Present only in run B.
  bool missing_b = false;  ///< Present only in run A.
  bool regressed = false;  ///< Gated and past the threshold.
};

/// The whole diff. `regression` is true when any gated row drifted
/// past the threshold (a name missing from one side also regresses —
/// the runs are not comparable silently).
struct CompareReport {
  std::string run_a;
  std::string run_b;
  std::vector<CompareRow> rows;
  bool regression = false;

  /// Aligned relative-delta table (AsciiTable) with a one-line verdict.
  std::string render() const;
};

/// Diffs two ledger records: counters and metrics are aligned by name
/// (union of both sides, sorted), deltas are relative to run A. Wall
/// timings are reported in the rendering but never gated — they are
/// nondeterministic by design.
CompareReport compare_runs(const obs::LedgerRecord& a,
                           const obs::LedgerRecord& b,
                           const CompareOptions& options = {});

}  // namespace ftspm
