// Rendering helpers shared by the bench harness and the examples:
// ASCII reproductions of the paper's tables and horizontal bar charts
// standing in for its figures.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "ftspm/core/mapping_plan.h"
#include "ftspm/core/systems.h"
#include "ftspm/profile/profiler.h"
#include "ftspm/sim/simulator.h"
#include "ftspm/sim/spm.h"
#include "ftspm/workload/program.h"

namespace ftspm {

/// Table I: per-block profiling results.
std::string render_profile_table(const Program& program,
                                 const ProgramProfile& profile);

/// Table II: MDA output (mapped? which technology/region?).
std::string render_mapping_table(const Program& program,
                                 const MappingPlan& plan,
                                 const SpmLayout& layout);

/// Table IV: configuration of one structure.
std::string render_layout_table(const SpmLayout& layout);

/// Figs. 2/4: percentage of reads/writes landing in each region.
std::string render_rw_distribution(const SpmLayout& layout,
                                   const RunResult& run);

/// Per-block diagnostic table for one evaluated system: placement,
/// access routing (SPM vs cache), hottest-word wear, and each block's
/// share of the structure's vulnerability (Eq. 1 decomposition).
std::string render_block_report(const Program& program,
                                const SystemResult& result,
                                const SpmLayout& layout,
                                const ProgramProfile& profile,
                                const StrikeMultiplicityModel& strikes);

/// Generic horizontal bar chart (figures). Values must be >= 0.
std::string render_bar_chart(const std::string& title,
                             const std::vector<std::pair<std::string, double>>&
                                 series,
                             const std::string& unit, int width = 48);

}  // namespace ftspm
