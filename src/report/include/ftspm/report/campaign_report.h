// Offline campaign analytics: renders one *completed* run — its ledger
// record, metrics snapshot, and sensitivity grid — into human-facing
// artefacts, plus trend extraction over the whole ledger.
//
// Everything here is a pure function of its inputs: no wall clocks, no
// environment lookups, no randomness. Rendering the same run twice
// yields byte-identical output, so golden tests can pin the CSV and CI
// can diff reports across branches. Wall-clock fields that do appear
// (wall_ms, strikes/sec) come verbatim from the ledger's
// "nondeterministic" timing block and are labelled as such.
//
// The HTML report is self-contained — inline CSS, inline SVG heatmaps,
// no scripts, no external fetches — so it can be archived as a CI
// artefact and opened years later from a file:// URL.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ftspm/fault/recovery.h"
#include "ftspm/fault/sensitivity.h"
#include "ftspm/obs/ledger.h"
#include "ftspm/util/json.h"

namespace ftspm::report {

/// Builds the ledger record for one campaign run from its merged
/// counters. Shared by `ftspm_tool campaign` and the serve daemon so a
/// served run's record is construction-identical (same counter/metric
/// names, same order) to a one-shot run's for the same outcome. The id
/// is left empty — the appender fills it. `recovery` may be null when
/// the recovery pipeline was inactive.
obs::LedgerRecord campaign_run_record(const CampaignResult& result,
                                      const RecoveryCounters* recovery,
                                      std::string_view workload,
                                      std::uint64_t seed, std::uint32_t jobs,
                                      std::uint32_t shards, double wall_ms,
                                      double strikes_per_sec);

/// Everything `ftspm_tool report <run>` has to work with. The metrics
/// snapshot and the grid are optional — runs recorded without
/// --metrics-out / --sensitivity-out still get a (smaller) report.
struct CampaignReportInput {
  obs::LedgerRecord record;
  /// Parsed registry snapshot (obs::Registry::to_json shape);
  /// Kind::Null when the run kept no metrics file.
  JsonValue metrics;
  /// The run's merged sensitivity grid; inactive when absent.
  SensitivityGrid grid;
};

/// The self-contained HTML report: manifest, campaign counters,
/// derived metrics, histogram percentiles (p50/p95/p99) from the
/// snapshot, and — when the grid is active — one section per region
/// with an inline-SVG fault-sensitivity heatmap and an
/// outcome-breakdown table whose totals equal the campaign counters.
std::string campaign_report_html(const CampaignReportInput& input);

/// The same report as machine-readable CSV with the pinned header
/// "section,name,field,value". Sections: manifest, counter, metric,
/// histogram (one row per percentile/statistic), timing. Grid data is
/// NOT duplicated here — SensitivityGrid::to_csv is already the
/// machine-readable grid artefact.
std::string campaign_report_csv(const CampaignReportInput& input);

/// One ledger record reduced to its trajectory quantities.
struct TrendPoint {
  std::uint64_t index = 0;  ///< Position in the ledger (0-based).
  std::string id;
  std::string workload;
  std::uint64_t strikes = 0;
  std::uint64_t sdc = 0;
  /// Residual SDC rate: sdc / strikes (0 when no strikes).
  double sdc_rate = 0.0;
  /// (due + sdc) / strikes from the record's counters.
  double vulnerability = 0.0;
  /// Wall-clock throughput from the timing block (nondeterministic).
  double strikes_per_sec = 0.0;
};

/// Reduces ledger records (in file order) to trend points. Records
/// without a "strikes" counter (e.g. suite runs) are kept with zero
/// strike-derived fields so indices still line up with `runs list`.
std::vector<TrendPoint> ledger_trend(
    const std::vector<obs::LedgerRecord>& records);

/// The trend as a bordered ASCII table (`ftspm_tool report trend`).
std::string trend_table(const std::vector<TrendPoint>& points);

/// The trend as CSV with the pinned header
/// "index,id,workload,strikes,sdc,sdc_rate,vulnerability,
/// strikes_per_sec" (`report trend --csv`).
std::string trend_csv(const std::vector<TrendPoint>& points);

}  // namespace ftspm::report
