#include "ftspm/report/render.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "ftspm/util/error.h"
#include "ftspm/util/format.h"
#include "ftspm/util/table.h"

namespace ftspm {

std::string render_profile_table(const Program& program,
                                 const ProgramProfile& profile) {
  AsciiTable t({"Block", "Reads", "Writes", "Avg R/ref", "Avg W/ref",
                "Stack calls", "Max stack (B)", "Life-time (cycles)"});
  for (const BlockProfile& bp : profile.blocks) {
    const Block& blk = program.block(bp.id);
    t.add_row({blk.name, with_commas(bp.reads), with_commas(bp.writes),
               fixed(bp.avg_reads_per_reference(), 0),
               fixed(bp.avg_writes_per_reference(), 0),
               with_commas(bp.stack_calls),
               with_commas(static_cast<std::uint64_t>(bp.max_stack_bytes)),
               with_commas(bp.lifetime_cycles)});
  }
  return t.render();
}

std::string render_mapping_table(const Program& program,
                                 const MappingPlan& plan,
                                 const SpmLayout& layout) {
  AsciiTable t({"Block", "Mapped to SPM", "Region", "Technology", "Why"});
  t.set_align(1, Align::Left);
  t.set_align(2, Align::Left);
  t.set_align(3, Align::Left);
  t.set_align(4, Align::Left);
  for (const BlockMapping& m : plan.mappings()) {
    const Block& blk = program.block(m.block);
    std::string region = "-";
    std::string tech = "-";
    if (m.mapped()) {
      const SpmRegionSpec& spec = layout.region(m.region);
      region = spec.name;
      tech = std::string(to_string(spec.tech.tech));
      if (spec.tech.protection == ProtectionKind::SecDed) tech += " (SEC-DED)";
      if (spec.tech.protection == ProtectionKind::Parity) tech += " (parity)";
    }
    t.add_row({blk.name, m.mapped() ? "Yes" : "No", region, tech,
               to_string(m.reason)});
  }
  return t.render();
}

std::string render_layout_table(const SpmLayout& layout) {
  AsciiTable t({"Region", "Space", "Size", "Technology", "Protection",
                "Read lat", "Write lat", "Read pJ", "Write pJ"});
  t.set_align(1, Align::Left);
  t.set_align(3, Align::Left);
  t.set_align(4, Align::Left);
  for (const SpmRegionSpec& r : layout.regions()) {
    t.add_row({r.name, to_string(r.space),
               with_commas(r.data_bytes) + " B", to_string(r.tech.tech),
               to_string(r.tech.protection),
               std::to_string(r.tech.read_latency_cycles),
               std::to_string(r.tech.write_latency_cycles),
               fixed(r.tech.read_energy_pj, 1),
               fixed(r.tech.write_energy_pj, 1)});
  }
  std::ostringstream os;
  os << "Structure: " << layout.name()
     << "  (SPM static power " << fixed(layout.static_power_mw(), 2)
     << " mW)\n"
     << t.render();
  return os.str();
}

std::string render_rw_distribution(const SpmLayout& layout,
                                   const RunResult& run) {
  FTSPM_REQUIRE(run.regions.size() == layout.region_count(),
                "run does not match layout");
  const double total_r = static_cast<double>(run.spm_reads());
  const double total_w = static_cast<double>(run.spm_writes());
  AsciiTable t({"Region", "Reads", "Reads %", "Writes", "Writes %"});
  for (RegionId r = 0; r < layout.region_count(); ++r) {
    const RegionRunStats& s = run.regions[r];
    t.add_row({layout.region(r).name, with_commas(s.reads),
               total_r > 0 ? percent(s.reads / total_r) : "-",
               with_commas(s.writes),
               total_w > 0 ? percent(s.writes / total_w) : "-"});
  }
  return t.render();
}

std::string render_block_report(const Program& program,
                                const SystemResult& result,
                                const SpmLayout& layout,
                                const ProgramProfile& profile,
                                const StrikeMultiplicityModel& strikes) {
  const std::vector<double> vuln = per_block_vulnerability(
      layout, result.plan, program, profile, strikes);
  AsciiTable t({"Block", "Region", "SPM accesses", "Cache accesses",
                "ACE", "Hottest-word writes", "Vulnerability share"});
  t.set_align(1, Align::Left);
  double total_vuln = 0.0;
  for (double v : vuln) total_vuln += v;
  for (std::size_t i = 0; i < program.block_count(); ++i) {
    const BlockMapping& m = result.plan.mapping(static_cast<BlockId>(i));
    t.add_row(
        {program.block(static_cast<BlockId>(i)).name,
         m.mapped() ? layout.region(m.region).name : "-",
         with_commas(result.run.block_spm_accesses[i]),
         with_commas(result.run.block_cache_accesses[i]),
         percent(profile.ace_fraction(program, static_cast<BlockId>(i))),
         with_commas(result.run.block_max_word_writes[i]),
         total_vuln > 0.0 ? percent(vuln[i] / total_vuln) : "-"});
  }
  return t.render();
}

std::string render_bar_chart(
    const std::string& title,
    const std::vector<std::pair<std::string, double>>& series,
    const std::string& unit, int width) {
  FTSPM_REQUIRE(width >= 8, "chart width too small");
  double max_value = 0.0;
  std::size_t label_width = 0;
  for (const auto& [label, value] : series) {
    FTSPM_REQUIRE(value >= 0.0 && std::isfinite(value),
                  "bar values must be finite and non-negative");
    max_value = std::max(max_value, value);
    label_width = std::max(label_width, label.size());
  }
  std::ostringstream os;
  os << title << "\n";
  for (const auto& [label, value] : series) {
    const int bar =
        max_value > 0.0
            ? static_cast<int>(std::lround(value / max_value * width))
            : 0;
    os << "  " << label << std::string(label_width - label.size(), ' ')
       << " | " << std::string(static_cast<std::size_t>(bar), '#')
       << std::string(static_cast<std::size_t>(width - bar) + 1, ' ')
       << si_string(value, unit) << "\n";
  }
  return os.str();
}

}  // namespace ftspm
