#include "ftspm/report/saturation.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "ftspm/util/error.h"

namespace ftspm::report {

namespace {

double num_at(const JsonValue& v, std::string_view key) {
  const JsonValue& f = v.at(key);
  FTSPM_REQUIRE(f.is_number(),
                "saturation: '" + std::string(key) + "' must be a number");
  return f.number;
}

std::uint64_t count_at(const JsonValue& v, std::string_view key) {
  const double d = num_at(v, key);
  FTSPM_REQUIRE(d >= 0.0 && std::floor(d) == d,
                "saturation: '" + std::string(key) +
                    "' must be a non-negative integer");
  return static_cast<std::uint64_t>(d);
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// The class polyline palette (repeats past six classes).
const char* class_color(std::size_t i) {
  static const char* kColors[] = {"#1565c0", "#2e7d32", "#ef6c00",
                                  "#6a1b9a", "#c62828", "#00838f"};
  return kColors[i % (sizeof(kColors) / sizeof(kColors[0]))];
}

/// Maps a step index to an x pixel: rungs are evenly spaced (the rate
/// ladder is typically geometric, so a linear rate axis would crush
/// the low rungs).
double x_at(std::size_t i, std::size_t n, double left, double width) {
  if (n <= 1) return left + width / 2.0;
  return left + width * static_cast<double>(i) / static_cast<double>(n - 1);
}

}  // namespace

SaturationSweep saturation_from_json(const JsonValue& doc) {
  FTSPM_REQUIRE(doc.is_object(), "saturation: artefact must be an object");
  FTSPM_REQUIRE(count_at(doc, "schema") == 1,
                "saturation: unknown schema version");
  const JsonValue& bench = doc.at("bench");
  FTSPM_REQUIRE(bench.is_string() && bench.string == "saturation_sweep",
                "saturation: not a saturation_sweep artefact");
  SaturationSweep sweep;
  const JsonValue& quick = doc.at("quick");
  FTSPM_REQUIRE(quick.is_bool(), "saturation: 'quick' must be a boolean");
  sweep.quick = quick.boolean;
  sweep.jobs = static_cast<std::uint32_t>(count_at(doc, "jobs"));
  sweep.connections =
      static_cast<std::uint32_t>(count_at(doc, "connections"));
  sweep.requests_per_step = count_at(doc, "requests_per_step");
  const JsonValue& steps = doc.at("steps");
  FTSPM_REQUIRE(steps.is_array(), "saturation: 'steps' must be an array");
  for (const JsonValue& s : steps.array) {
    FTSPM_REQUIRE(s.is_object(), "saturation: each step must be an object");
    SaturationStep step;
    step.rate = num_at(s, "rate");
    step.sent = count_at(s, "sent");
    step.completed = count_at(s, "completed");
    step.overloaded = count_at(s, "overloaded");
    step.errors = count_at(s, "errors");
    step.shed_rate = num_at(s, "shed_rate");
    step.wall_ms = num_at(s, "wall_ms");
    step.throughput_rps = num_at(s, "throughput_rps");
    step.queue_depth_max = num_at(s, "queue_depth_max");
    step.queue_depth_mean = num_at(s, "queue_depth_mean");
    const JsonValue& classes = s.at("classes");
    FTSPM_REQUIRE(classes.is_array(),
                  "saturation: step 'classes' must be an array");
    for (const JsonValue& c : classes.array) {
      SaturationClassPoint point;
      const JsonValue& name = c.at("name");
      FTSPM_REQUIRE(name.is_string(),
                    "saturation: class 'name' must be a string");
      point.name = name.string;
      point.sent = count_at(c, "sent");
      point.completed = count_at(c, "completed");
      point.overloaded = count_at(c, "overloaded");
      point.p50_ms = num_at(c, "p50_ms");
      point.p95_ms = num_at(c, "p95_ms");
      point.p99_ms = num_at(c, "p99_ms");
      step.classes.push_back(std::move(point));
    }
    sweep.steps.push_back(std::move(step));
  }
  return sweep;
}

std::size_t saturation_knee_index(const SaturationSweep& sweep,
                                  double shed_threshold) {
  for (std::size_t i = 0; i < sweep.steps.size(); ++i)
    if (sweep.steps[i].shed_rate > shed_threshold) return i;
  return sweep.steps.size();
}

std::string saturation_report_html(const SaturationSweep& sweep) {
  const std::size_t n = sweep.steps.size();
  // Class names in first-seen order across all steps, so a class that
  // only appears later in the ladder still gets a polyline.
  std::vector<std::string> class_names;
  for (const SaturationStep& step : sweep.steps)
    for (const SaturationClassPoint& c : step.classes)
      if (std::find(class_names.begin(), class_names.end(), c.name) ==
          class_names.end())
        class_names.push_back(c.name);

  double max_p95 = 0.0;
  for (const SaturationStep& step : sweep.steps)
    for (const SaturationClassPoint& c : step.classes)
      max_p95 = std::max(max_p95, c.p95_ms);
  if (max_p95 <= 0.0) max_p95 = 1.0;

  const double width = 640.0, height = 300.0;
  const double left = 56.0, right = 56.0, top = 16.0, bottom = 36.0;
  const double plot_w = width - left - right;
  const double plot_h = height - top - bottom;
  const auto y_latency = [&](double ms) {
    return top + plot_h * (1.0 - ms / max_p95);
  };
  const auto y_shed = [&](double rate) {
    return top + plot_h * (1.0 - std::clamp(rate, 0.0, 1.0));
  };

  std::string out;
  out.reserve(1 << 14);
  out +=
      "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
      "<meta charset=\"utf-8\">\n"
      "<title>FTSPM saturation sweep</title>\n<style>\n"
      "body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;"
      "max-width:72rem;padding:0 1rem;color:#222}\n"
      "h1{border-bottom:2px solid #444}\n"
      "table{border-collapse:collapse;margin:0.5rem 0 1.5rem}\n"
      "th,td{border:1px solid #bbb;padding:0.25rem 0.75rem;"
      "text-align:left}\n"
      "td:nth-child(n+2){text-align:right}\n"
      "th{background:#eee}\n"
      "svg.knee{border:1px solid #bbb;margin:0.25rem 0}\n"
      ".note{color:#666;font-style:italic}\n"
      "</style>\n</head>\n<body>\n"
      "<h1>FTSPM saturation sweep</h1>\n";
  out += "<p>" + std::to_string(n) + " rate rungs, " +
         std::to_string(sweep.requests_per_step) + " requests per rung, " +
         std::to_string(sweep.connections) + " connections, daemon jobs " +
         std::to_string(sweep.jobs) + (sweep.quick ? " (quick mode)" : "") +
         ".</p>\n";

  const std::size_t knee = saturation_knee_index(sweep);
  if (knee < n)
    out += "<p>Saturation knee at rung " + std::to_string(knee) +
           " (offered rate " + num(sweep.steps[knee].rate) +
           " req/s per connection, shed rate " +
           num(sweep.steps[knee].shed_rate * 100.0) + "%).</p>\n";
  else
    out += "<p class=\"note\">The sweep never crossed the shed "
           "threshold — the knee lies beyond the highest rung.</p>\n";

  // The knee chart: per-class p95 polylines against the left axis
  // (latency ms), shed rate against the right axis (0-100%).
  out += "<svg class=\"knee\" role=\"img\" width=\"" + num(width) +
         "\" height=\"" + num(height) + "\" viewBox=\"0 0 " + num(width) +
         " " + num(height) + "\">\n";
  out += "  <rect x=\"" + num(left) + "\" y=\"" + num(top) + "\" width=\"" +
         num(plot_w) + "\" height=\"" + num(plot_h) +
         "\" fill=\"#fafafa\" stroke=\"#bbb\"/>\n";
  // Shed-rate area (grey steps) behind the latency lines.
  if (n != 0) {
    std::string points;
    for (std::size_t i = 0; i < n; ++i)
      points += num(x_at(i, n, left, plot_w)) + "," +
                num(y_shed(sweep.steps[i].shed_rate)) + " ";
    out += "  <polyline points=\"" + points +
           "\" fill=\"none\" stroke=\"#888\" stroke-width=\"2\" "
           "stroke-dasharray=\"6 3\"><title>shed rate</title></polyline>\n";
  }
  for (std::size_t ci = 0; ci < class_names.size(); ++ci) {
    std::string points;
    for (std::size_t i = 0; i < n; ++i) {
      const SaturationStep& step = sweep.steps[i];
      const auto it = std::find_if(
          step.classes.begin(), step.classes.end(),
          [&](const SaturationClassPoint& c) {
            return c.name == class_names[ci];
          });
      if (it == step.classes.end()) continue;
      points += num(x_at(i, n, left, plot_w)) + "," +
                num(y_latency(it->p95_ms)) + " ";
    }
    out += "  <polyline points=\"" + points +
           "\" fill=\"none\" stroke=\"" + class_color(ci) +
           "\" stroke-width=\"2\"><title>" + html_escape(class_names[ci]) +
           " p95</title></polyline>\n";
  }
  if (knee < n) {
    const double kx = x_at(knee, n, left, plot_w);
    out += "  <line x1=\"" + num(kx) + "\" y1=\"" + num(top) + "\" x2=\"" +
           num(kx) + "\" y2=\"" + num(top + plot_h) +
           "\" stroke=\"#c62828\" stroke-width=\"2\" "
           "stroke-dasharray=\"3 3\"><title>knee</title></line>\n";
  }
  // Axis labels: offered rate under each rung, latency max on the
  // left, shed 100% on the right.
  for (std::size_t i = 0; i < n; ++i)
    out += "  <text x=\"" + num(x_at(i, n, left, plot_w)) + "\" y=\"" +
           num(height - 12.0) +
           "\" font-size=\"11\" text-anchor=\"middle\">" +
           num(sweep.steps[i].rate) + "</text>\n";
  out += "  <text x=\"" + num(left - 8.0) + "\" y=\"" + num(top + 12.0) +
         "\" font-size=\"11\" text-anchor=\"end\">" + num(max_p95) +
         " ms</text>\n";
  out += "  <text x=\"" + num(left + plot_w + 8.0) + "\" y=\"" +
         num(top + 12.0) +
         "\" font-size=\"11\" text-anchor=\"start\">100% shed</text>\n";
  out += "  <text x=\"" + num(left + plot_w / 2.0) + "\" y=\"" +
         num(height - 0.5) +
         "\" font-size=\"11\" text-anchor=\"middle\">offered req/s per "
         "connection</text>\n";
  out += "</svg>\n";

  // Legend.
  out += "<p>";
  for (std::size_t ci = 0; ci < class_names.size(); ++ci)
    out += "<span style=\"color:" + std::string(class_color(ci)) +
           "\">&#9632; " + html_escape(class_names[ci]) + " p95</span>  ";
  out += "<span style=\"color:#888\">&#9632; shed rate</span></p>\n";

  // Per-step table.
  out +=
      "<h2>Rungs</h2>\n<table>\n<tr><th>rate</th><th>sent</th>"
      "<th>completed</th><th>shed</th><th>shed %</th><th>errors</th>"
      "<th>throughput req/s</th><th>queue max</th><th>queue mean</th>"
      "</tr>\n";
  for (const SaturationStep& step : sweep.steps)
    out += "<tr><td>" + num(step.rate) + "</td><td>" +
           std::to_string(step.sent) + "</td><td>" +
           std::to_string(step.completed) + "</td><td>" +
           std::to_string(step.overloaded) + "</td><td>" +
           num(step.shed_rate * 100.0) + "</td><td>" +
           std::to_string(step.errors) + "</td><td>" +
           num(step.throughput_rps) + "</td><td>" +
           num(step.queue_depth_max) + "</td><td>" +
           num(step.queue_depth_mean) + "</td></tr>\n";
  out += "</table>\n";

  out +=
      "<h2>Per-class latency (ms)</h2>\n<table>\n<tr><th>rate</th>"
      "<th>class</th><th>sent</th><th>completed</th><th>p50</th>"
      "<th>p95</th><th>p99</th></tr>\n";
  for (const SaturationStep& step : sweep.steps)
    for (const SaturationClassPoint& c : step.classes)
      out += "<tr><td>" + num(step.rate) + "</td><td>" +
             html_escape(c.name) + "</td><td>" + std::to_string(c.sent) +
             "</td><td>" + std::to_string(c.completed) + "</td><td>" +
             num(c.p50_ms) + "</td><td>" + num(c.p95_ms) + "</td><td>" +
             num(c.p99_ms) + "</td></tr>\n";
  out += "</table>\n</body>\n</html>\n";
  return out;
}

std::string saturation_report_csv(const SaturationSweep& sweep) {
  std::string out =
      "rate,class,sent,completed,overloaded,errors,shed_rate,"
      "throughput_rps,queue_depth_max,queue_depth_mean,"
      "p50_ms,p95_ms,p99_ms\n";
  for (const SaturationStep& step : sweep.steps) {
    out += num(step.rate) + ",_total," + std::to_string(step.sent) + "," +
           std::to_string(step.completed) + "," +
           std::to_string(step.overloaded) + "," +
           std::to_string(step.errors) + "," + num(step.shed_rate) + "," +
           num(step.throughput_rps) + "," + num(step.queue_depth_max) + "," +
           num(step.queue_depth_mean) + ",,,\n";
    for (const SaturationClassPoint& c : step.classes)
      out += num(step.rate) + "," + c.name + "," + std::to_string(c.sent) +
             "," + std::to_string(c.completed) + "," +
             std::to_string(c.overloaded) + ",,,,,," + num(c.p50_ms) + "," +
             num(c.p95_ms) + "," + num(c.p99_ms) + "\n";
  }
  return out;
}

}  // namespace ftspm::report
