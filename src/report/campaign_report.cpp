#include "ftspm/report/campaign_report.h"

#include <algorithm>
#include <cstdio>

#include "ftspm/util/format.h"
#include "ftspm/util/table.h"

namespace ftspm::report {

obs::LedgerRecord campaign_run_record(const CampaignResult& result,
                                      const RecoveryCounters* recovery,
                                      std::string_view workload,
                                      std::uint64_t seed, std::uint32_t jobs,
                                      std::uint32_t shards, double wall_ms,
                                      double strikes_per_sec) {
  obs::LedgerRecord record;
  record.command = "campaign";
  record.workload = std::string(workload);
  record.scale = 1;
  record.seed = seed;
  record.jobs = jobs;
  record.shards = shards;
  record.counters = {{"strikes", result.strikes},
                     {"masked", result.masked},
                     {"dre", result.dre},
                     {"due", result.due},
                     {"sdc", result.sdc}};
  record.metrics = {{"vulnerability", result.vulnerability()}};
  if (recovery != nullptr) {
    record.counters.insert(
        record.counters.end(),
        {{"demand_reads", recovery->demand_reads},
         {"corrections", recovery->corrections},
         {"scrub_passes", recovery->scrub_passes},
         {"scrub_words", recovery->scrub_words},
         {"scrub_corrections", recovery->scrub_corrections},
         {"refetches", recovery->refetches},
         {"unrecoverable", recovery->unrecoverable},
         {"sdc_reads", recovery->sdc_reads},
         {"recovery_cycles", recovery->recovery_cycles}});
    record.metrics.emplace_back("mean_repair_cycles",
                                recovery->mean_repair_cycles());
    record.metrics.emplace_back("recovery_energy_pj",
                                recovery->recovery_energy_pj);
  }
  record.wall_ms = wall_ms;
  record.strikes_per_sec = strikes_per_sec;
  return record;
}

namespace {

/// Shortest stable decimal for report values ("%.6g", the same pinning
/// csv_export uses): enough digits for any rate in these reports,
/// byte-identical across runs.
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string html_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::uint64_t counter_or_zero(const obs::LedgerRecord& r,
                              std::string_view name) {
  for (const auto& [key, value] : r.counters)
    if (key == name) return value;
  return 0;
}

/// Sorted copies, matching LedgerRecord::to_json's ordering so the
/// report lists fields exactly as the ledger line does.
template <typename Pairs>
Pairs sorted(const Pairs& pairs) {
  Pairs out = pairs;
  std::sort(out.begin(), out.end());
  return out;
}

/// #rrggbb for one heatmap cell. Hue runs safe-green -> danger-red by
/// the bucket's residual vulnerability; the color then fades toward
/// white for sparsely-struck buckets so dense hot spots dominate the
/// eye. Pure integer output from double math on exact integer inputs —
/// deterministic across runs.
std::string cell_color(std::uint64_t strikes, std::uint64_t due,
                       std::uint64_t sdc, std::uint64_t max_strikes) {
  if (strikes == 0) return "#f2f2f2";
  const double v = static_cast<double>(due + sdc) /
                   static_cast<double>(strikes);
  const double d = max_strikes != 0
                       ? static_cast<double>(strikes) /
                             static_cast<double>(max_strikes)
                       : 0.0;
  const double weight = 0.30 + 0.70 * d;  // never fade a cell out fully
  const int base[3] = {46, 125, 50};      // green
  const int hot[3] = {198, 40, 40};       // red
  char buf[8];
  int rgb[3];
  for (int i = 0; i < 3; ++i) {
    const double mixed =
        static_cast<double>(base[i]) +
        (static_cast<double>(hot[i]) - static_cast<double>(base[i])) * v;
    rgb[i] = static_cast<int>(255.0 + (mixed - 255.0) * weight);
  }
  std::snprintf(buf, sizeof buf, "#%02x%02x%02x", rgb[0], rgb[1], rgb[2]);
  return buf;
}

void append_heatmap_svg(std::string& out, const SensitivityGrid& grid,
                        std::size_t region) {
  const std::uint32_t buckets = grid.buckets();
  const SensitivityGrid::RegionSpec& spec = grid.regions()[region];
  std::uint64_t max_strikes = 0;
  for (std::uint32_t b = 0; b < buckets; ++b)
    max_strikes = std::max(max_strikes, grid.bucket_strikes(region, b));

  const int cell_w = buckets <= 96 ? 10 : 4;
  const int cell_h = 36;
  const int width = static_cast<int>(buckets) * cell_w;
  out += "<svg class=\"heatmap\" role=\"img\" width=\"" +
         std::to_string(width) + "\" height=\"" + std::to_string(cell_h) +
         "\" viewBox=\"0 0 " + std::to_string(width) + " " +
         std::to_string(cell_h) + "\">\n";
  for (std::uint32_t b = 0; b < buckets; ++b) {
    const std::uint64_t strikes = grid.bucket_strikes(region, b);
    const std::uint64_t masked = grid.count(region, b, StrikeOutcome::Masked);
    const std::uint64_t dre = grid.count(region, b, StrikeOutcome::Dre);
    const std::uint64_t due = grid.count(region, b, StrikeOutcome::Due);
    const std::uint64_t sdc = grid.count(region, b, StrikeOutcome::Sdc);
    const std::uint64_t first =
        b * spec.physical_bits / buckets +
        (b * spec.physical_bits % buckets != 0 ? 1 : 0);
    const std::uint64_t next =
        (static_cast<std::uint64_t>(b) + 1) * spec.physical_bits / buckets +
        ((static_cast<std::uint64_t>(b) + 1) * spec.physical_bits % buckets !=
                 0
             ? 1
             : 0);
    out += "  <rect x=\"" + std::to_string(b * cell_w) +
           "\" y=\"0\" width=\"" + std::to_string(cell_w) + "\" height=\"" +
           std::to_string(cell_h) + "\" fill=\"" +
           cell_color(strikes, due, sdc, max_strikes) + "\"><title>bucket " +
           std::to_string(b) + " (bits " + std::to_string(first) + "-" +
           std::to_string(next == 0 ? 0 : next - 1) + "): strikes " +
           std::to_string(strikes) + ", masked " + std::to_string(masked) +
           ", dre " + std::to_string(dre) + ", due " + std::to_string(due) +
           ", sdc " + std::to_string(sdc) + "</title></rect>\n";
  }
  out += "</svg>\n";
}

void append_outcome_table(std::string& out, const SensitivityGrid& grid,
                          std::size_t region) {
  const CampaignResult totals = grid.region_totals(region);
  const double strikes = static_cast<double>(totals.strikes);
  auto share = [&](std::uint64_t n) {
    return totals.strikes != 0
               ? percent(static_cast<double>(n) / strikes, 2)
               : std::string("-");
  };
  out += "<table class=\"region-outcomes\">\n"
         "<tr><th>Outcome</th><th>Count</th><th>Share</th></tr>\n";
  const std::pair<const char*, std::uint64_t> rows[] = {
      {"masked", totals.masked},
      {"dre", totals.dre},
      {"due", totals.due},
      {"sdc", totals.sdc},
  };
  for (const auto& [name, count] : rows)
    out += "<tr><td>" + std::string(name) + "</td><td>" + with_commas(count) +
           "</td><td>" + share(count) + "</td></tr>\n";
  out += "<tr class=\"total\"><td>strikes</td><td>" +
         with_commas(totals.strikes) + "</td><td></td></tr>\n</table>\n";
}

/// Emits one percentile row per histogram found in the snapshot,
/// covering both the plain and the labelled families.
void append_histogram_rows(std::string& out, const JsonValue& metrics,
                           bool html) {
  auto emit = [&](const std::string& name, const JsonValue& body) {
    if (!body.is_object()) return;
    auto field = [&](const char* key) {
      const JsonValue* v = body.find(key);
      return v != nullptr && v->is_number() ? num(v->number)
                                            : std::string("-");
    };
    if (html) {
      out += "<tr><td>" + html_escape(name) + "</td><td>" + field("count") +
             "</td><td>" + field("p50") + "</td><td>" + field("p95") +
             "</td><td>" + field("p99") + "</td></tr>\n";
    } else {
      for (const char* key : {"count", "p50", "p95", "p99"})
        out += "histogram," + name + "," + key + "," +
               (body.find(key) != nullptr && body.find(key)->is_number()
                    ? num(body.find(key)->number)
                    : std::string("")) +
               "\n";
    }
  };
  if (const JsonValue* plain = metrics.find("histograms"))
    for (const auto& [name, body] : plain->object) emit(name, body);
  if (const JsonValue* labelled = metrics.find("labelled_histograms"))
    for (const auto& [name, series] : labelled->object)
      if (series.is_object())
        for (const auto& [labels, body] : series.object)
          emit(name + "{" + labels + "}", body);
}

bool has_histograms(const JsonValue& metrics) {
  const JsonValue* plain = metrics.find("histograms");
  if (plain != nullptr && !plain->object.empty()) return true;
  const JsonValue* labelled = metrics.find("labelled_histograms");
  return labelled != nullptr && !labelled->object.empty();
}

}  // namespace

std::string campaign_report_html(const CampaignReportInput& input) {
  const obs::LedgerRecord& r = input.record;
  std::string out;
  out.reserve(1 << 14);
  out +=
      "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
      "<meta charset=\"utf-8\">\n<title>FTSPM campaign report &mdash; " +
      html_escape(r.id) +
      "</title>\n<style>\n"
      "body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;"
      "max-width:72rem;padding:0 1rem;color:#222}\n"
      "h1{border-bottom:2px solid #444}\n"
      "table{border-collapse:collapse;margin:0.5rem 0 1.5rem}\n"
      "th,td{border:1px solid #bbb;padding:0.25rem 0.75rem;"
      "text-align:left}\n"
      "td:nth-child(n+2){text-align:right}\n"
      "th{background:#eee}\n"
      "tr.total td{font-weight:bold;border-top:2px solid #444}\n"
      "svg.heatmap{border:1px solid #bbb;margin:0.25rem 0}\n"
      ".note{color:#666;font-style:italic}\n"
      "</style>\n</head>\n<body>\n";
  out += "<h1>FTSPM campaign report &mdash; " + html_escape(r.id) +
         "</h1>\n";

  out += "<h2>Manifest</h2>\n<table class=\"manifest\">\n";
  const std::pair<const char*, std::string> manifest[] = {
      {"command", r.command},
      {"workload", r.workload},
      {"scale", with_commas(r.scale)},
      {"seed", with_commas(r.seed)},
      {"jobs", with_commas(static_cast<std::uint64_t>(r.jobs))},
      {"shards", with_commas(static_cast<std::uint64_t>(r.shards))},
      {"library_version", r.library_version},
  };
  for (const auto& [name, value] : manifest)
    out += "<tr><th>" + std::string(name) + "</th><td>" +
           html_escape(value) + "</td></tr>\n";
  out += "</table>\n";

  out += "<h2>Campaign counters</h2>\n<table class=\"counters\">\n"
         "<tr><th>Counter</th><th>Value</th></tr>\n";
  for (const auto& [name, value] : sorted(r.counters))
    out += "<tr><td>" + html_escape(name) + "</td><td>" +
           with_commas(value) + "</td></tr>\n";
  out += "</table>\n";

  if (!r.metrics.empty()) {
    out += "<h2>Derived metrics</h2>\n<table class=\"metrics\">\n"
           "<tr><th>Metric</th><th>Value</th></tr>\n";
    for (const auto& [name, value] : sorted(r.metrics))
      out += "<tr><td>" + html_escape(name) + "</td><td>" + num(value) +
             "</td></tr>\n";
    out += "</table>\n";
  }

  if (has_histograms(input.metrics)) {
    out += "<h2>Histogram percentiles</h2>\n<table class=\"histograms\">\n"
           "<tr><th>Histogram</th><th>Count</th><th>p50</th><th>p95</th>"
           "<th>p99</th></tr>\n";
    append_histogram_rows(out, input.metrics, /*html=*/true);
    out += "</table>\n";
  }

  out += "<h2>Fault sensitivity</h2>\n";
  if (input.grid.active()) {
    out += "<p>Each cell is one address bucket; green cells absorbed "
           "their strikes (masked or recovered), red cells leaked "
           "residual DUE/SDC, pale cells saw few strikes. Hover a cell "
           "for exact counts.</p>\n";
    for (std::size_t region = 0; region < input.grid.region_count();
         ++region) {
      const SensitivityGrid::RegionSpec& spec = input.grid.regions()[region];
      out += "<h3>" + html_escape(spec.label) + " (" +
             html_escape(spec.protection) + ", " +
             with_commas(spec.physical_bits) + " bits, " +
             std::to_string(input.grid.buckets()) + " buckets)</h3>\n";
      append_heatmap_svg(out, input.grid, region);
      append_outcome_table(out, input.grid, region);
    }
  } else {
    out += "<p class=\"note\">No sensitivity grid was recorded for this "
           "run (rerun with --sensitivity-out).</p>\n";
  }

  out += "<h2>Timing</h2>\n"
         "<p class=\"note\">Wall-clock quantities; nondeterministic, "
         "excluded from golden comparisons.</p>\n"
         "<table class=\"timing\">\n";
  out += "<tr><th>wall_ms</th><td>" + num(r.wall_ms) + "</td></tr>\n";
  out += "<tr><th>strikes_per_sec</th><td>" + num(r.strikes_per_sec) +
         "</td></tr>\n";
  out += "</table>\n</body>\n</html>\n";
  return out;
}

std::string campaign_report_csv(const CampaignReportInput& input) {
  const obs::LedgerRecord& r = input.record;
  std::string out = "section,name,field,value\n";
  auto row = [&out](std::string_view section, const std::string& name,
                    std::string_view field, const std::string& value) {
    out += section;
    out += ',';
    out += name;
    out += ',';
    out += field;
    out += ',';
    out += value;
    out += '\n';
  };
  row("manifest", "id", "", r.id);
  row("manifest", "command", "", r.command);
  row("manifest", "workload", "", r.workload);
  row("manifest", "scale", "", std::to_string(r.scale));
  row("manifest", "seed", "", std::to_string(r.seed));
  row("manifest", "jobs", "", std::to_string(r.jobs));
  row("manifest", "shards", "", std::to_string(r.shards));
  row("manifest", "library_version", "", r.library_version);
  for (const auto& [name, value] : sorted(r.counters))
    row("counter", name, "", std::to_string(value));
  for (const auto& [name, value] : sorted(r.metrics))
    row("metric", name, "", num(value));
  append_histogram_rows(out, input.metrics, /*html=*/false);
  if (input.grid.active()) {
    for (std::size_t region = 0; region < input.grid.region_count();
         ++region) {
      const SensitivityGrid::RegionSpec& spec = input.grid.regions()[region];
      const CampaignResult totals = input.grid.region_totals(region);
      row("region", spec.label, "strikes", std::to_string(totals.strikes));
      row("region", spec.label, "masked", std::to_string(totals.masked));
      row("region", spec.label, "dre", std::to_string(totals.dre));
      row("region", spec.label, "due", std::to_string(totals.due));
      row("region", spec.label, "sdc", std::to_string(totals.sdc));
    }
  }
  row("timing", "wall_ms", "nondeterministic", num(r.wall_ms));
  row("timing", "strikes_per_sec", "nondeterministic",
      num(r.strikes_per_sec));
  return out;
}

std::vector<TrendPoint> ledger_trend(
    const std::vector<obs::LedgerRecord>& records) {
  std::vector<TrendPoint> points;
  points.reserve(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const obs::LedgerRecord& r = records[i];
    TrendPoint p;
    p.index = i;
    p.id = r.id;
    p.workload = r.workload;
    p.strikes = counter_or_zero(r, "strikes");
    p.sdc = counter_or_zero(r, "sdc");
    if (p.strikes != 0) {
      const double strikes = static_cast<double>(p.strikes);
      p.sdc_rate = static_cast<double>(p.sdc) / strikes;
      p.vulnerability =
          static_cast<double>(counter_or_zero(r, "due") + p.sdc) / strikes;
    }
    p.strikes_per_sec = r.strikes_per_sec;
    points.push_back(std::move(p));
  }
  return points;
}

std::string trend_table(const std::vector<TrendPoint>& points) {
  AsciiTable table({"#", "Id", "Workload", "Strikes", "SDC rate",
                    "Vulnerability", "Strikes/s"});
  for (const TrendPoint& p : points)
    table.add_row({std::to_string(p.index), p.id, p.workload,
                   with_commas(p.strikes), sci(p.sdc_rate, 3),
                   sci(p.vulnerability, 3), si_string(p.strikes_per_sec, "")});
  return table.render();
}

std::string trend_csv(const std::vector<TrendPoint>& points) {
  std::string out =
      "index,id,workload,strikes,sdc,sdc_rate,vulnerability,"
      "strikes_per_sec\n";
  for (const TrendPoint& p : points)
    out += std::to_string(p.index) + "," + p.id + "," + p.workload + "," +
           std::to_string(p.strikes) + "," + std::to_string(p.sdc) + "," +
           num(p.sdc_rate) + "," + num(p.vulnerability) + "," +
           num(p.strikes_per_sec) + "\n";
  return out;
}

}  // namespace ftspm::report
