#include "ftspm/report/csv_export.h"

#include <filesystem>
#include <fstream>

#include "ftspm/core/endurance.h"
#include "ftspm/util/error.h"
#include "ftspm/util/table.h"
#include "ftspm/workload/case_study.h"

namespace ftspm {

namespace {

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string table1_csv(const Program& program,
                       const ProgramProfile& profile) {
  CsvWriter csv({"block", "reads", "writes", "avg_reads_per_ref",
                 "avg_writes_per_ref", "stack_calls", "max_stack_bytes",
                 "lifetime_cycles"});
  for (const BlockProfile& bp : profile.blocks) {
    csv.add_row({program.block(bp.id).name, std::to_string(bp.reads),
                 std::to_string(bp.writes),
                 num(bp.avg_reads_per_reference()),
                 num(bp.avg_writes_per_reference()),
                 std::to_string(bp.stack_calls),
                 std::to_string(bp.max_stack_bytes),
                 std::to_string(bp.lifetime_cycles)});
  }
  return csv.render();
}

std::string table2_csv(const Program& program, const MappingPlan& plan,
                       const SpmLayout& layout) {
  CsvWriter csv({"block", "mapped", "region", "reason"});
  for (const BlockMapping& m : plan.mappings()) {
    csv.add_row({program.block(m.block).name, m.mapped() ? "yes" : "no",
                 m.mapped() ? layout.region(m.region).name : "-",
                 to_string(m.reason)});
  }
  return csv.render();
}

std::string table3_csv(const SystemResult& stt, const SystemResult& ft) {
  CsvWriter csv({"write_threshold", "pure_stt_seconds", "ftspm_seconds"});
  for (double threshold : kEnduranceThresholds) {
    auto seconds = [&](const EnduranceReport& rep) {
      return rep.unlimited() ? std::string("inf")
                             : num(rep.seconds_to(threshold));
    };
    csv.add_row({num(threshold), seconds(stt.endurance),
                 seconds(ft.endurance)});
  }
  return csv.render();
}

std::string fig_distribution_csv(const StructureEvaluator& evaluator,
                                 const std::vector<SuiteRow>& rows) {
  const SpmLayout& layout = evaluator.ftspm_layout();
  std::vector<std::string> headers{"benchmark"};
  for (const SpmRegionSpec& r : layout.regions()) {
    headers.push_back(r.name + "_reads");
    headers.push_back(r.name + "_writes");
  }
  CsvWriter csv(headers);
  for (const SuiteRow& row : rows) {
    std::vector<std::string> cells{row.name};
    for (RegionId rid = 0; rid < layout.region_count(); ++rid) {
      cells.push_back(std::to_string(row.ftspm.run.regions[rid].reads));
      cells.push_back(std::to_string(row.ftspm.run.regions[rid].writes));
    }
    csv.add_row(cells);
  }
  return csv.render();
}

std::string fig_metric_csv(
    const std::vector<SuiteRow>& rows,
    double (*metric)(const SystemResult&)) {
  CsvWriter csv({"benchmark", "ftspm", "pure_sram", "pure_stt"});
  for (const SuiteRow& row : rows) {
    csv.add_row({row.name, num(metric(row.ftspm)), num(metric(row.pure_sram)),
                 num(metric(row.pure_stt))});
  }
  return csv.render();
}

}  // namespace

std::string campaign_csv(const CampaignResult& result,
                         const RecoveryCounters* recovery) {
  std::vector<std::string> headers{"strikes", "masked", "dre", "due", "sdc",
                                   "vulnerability"};
  std::vector<std::string> cells{
      std::to_string(result.strikes), std::to_string(result.masked),
      std::to_string(result.dre),     std::to_string(result.due),
      std::to_string(result.sdc),     num(result.vulnerability())};
  if (recovery != nullptr) {
    for (const char* h :
         {"demand_reads", "corrections", "scrub_passes", "scrub_words",
          "scrub_corrections", "refetches", "unrecoverable", "sdc_reads",
          "recovery_cycles", "recovery_energy_pj", "mean_repair_cycles"})
      headers.emplace_back(h);
    cells.push_back(std::to_string(recovery->demand_reads));
    cells.push_back(std::to_string(recovery->corrections));
    cells.push_back(std::to_string(recovery->scrub_passes));
    cells.push_back(std::to_string(recovery->scrub_words));
    cells.push_back(std::to_string(recovery->scrub_corrections));
    cells.push_back(std::to_string(recovery->refetches));
    cells.push_back(std::to_string(recovery->unrecoverable));
    cells.push_back(std::to_string(recovery->sdc_reads));
    cells.push_back(std::to_string(recovery->recovery_cycles));
    cells.push_back(num(recovery->recovery_energy_pj));
    cells.push_back(num(recovery->mean_repair_cycles()));
  }
  CsvWriter csv(headers);
  csv.add_row(cells);
  return csv.render();
}

std::map<std::string, std::string> export_all_csv(
    const StructureEvaluator& evaluator, const std::vector<SuiteRow>& rows) {
  std::map<std::string, std::string> out;

  // Case-study artefacts (Tables I-III, Fig. 2).
  const Workload cs = make_case_study();
  const ProgramProfile prof = profile_workload(cs);
  const SystemResult ft = evaluator.evaluate_ftspm(cs, prof);
  const SystemResult stt = evaluator.evaluate_pure_stt(cs, prof);
  out["table1_profile.csv"] = table1_csv(cs.program, prof);
  out["table2_mapping.csv"] =
      table2_csv(cs.program, ft.plan, evaluator.ftspm_layout());
  out["table3_endurance.csv"] = table3_csv(stt, ft);
  {
    CsvWriter csv({"region", "reads", "writes"});
    const SpmLayout& layout = evaluator.ftspm_layout();
    for (RegionId rid = 0; rid < layout.region_count(); ++rid)
      csv.add_row({layout.region(rid).name,
                   std::to_string(ft.run.regions[rid].reads),
                   std::to_string(ft.run.regions[rid].writes)});
    out["fig2_case_rw_dist.csv"] = csv.render();
  }

  // Suite artefacts (Figs. 4-8).
  out["fig4_rw_distribution.csv"] = fig_distribution_csv(evaluator, rows);
  out["fig5_vulnerability.csv"] = fig_metric_csv(
      rows, [](const SystemResult& r) { return r.avf.vulnerability(); });
  out["fig6_static_energy_pj.csv"] = fig_metric_csv(
      rows,
      [](const SystemResult& r) { return r.run.spm_static_energy_pj; });
  out["fig7_dynamic_energy_pj.csv"] = fig_metric_csv(
      rows,
      [](const SystemResult& r) { return r.run.spm_dynamic_energy_pj(); });
  out["fig8_wear_rate_per_s.csv"] = fig_metric_csv(
      rows, [](const SystemResult& r) {
        return r.endurance.max_word_write_rate_per_s;
      });
  return out;
}

std::vector<std::string> write_all_csv(const StructureEvaluator& evaluator,
                                       const std::vector<SuiteRow>& rows,
                                       const std::string& directory) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(directory, ec);
  FTSPM_REQUIRE(!ec, "cannot create directory '" + directory + "'");
  std::vector<std::string> written;
  for (const auto& [name, contents] : export_all_csv(evaluator, rows)) {
    const std::string path = directory + "/" + name;
    std::ofstream file(path, std::ios::binary);
    FTSPM_REQUIRE(file.good(), "cannot open '" + path + "'");
    file << contents;
    FTSPM_REQUIRE(file.good(), "write to '" + path + "' failed");
    written.push_back(path);
  }
  return written;
}

}  // namespace ftspm
