#include "ftspm/report/suite_runner.h"

#include <cmath>

#include "ftspm/obs/timer.h"
#include "ftspm/util/error.h"

namespace ftspm {

std::vector<SuiteRow> run_suite(const StructureEvaluator& evaluator,
                                std::uint64_t scale_divisor,
                                const SuiteProgress& progress) {
  obs::TraceEventSink* trace =
      obs::enabled() ? obs::current_trace() : nullptr;
  const obs::TraceEventSink::LaneId lane =
      trace != nullptr ? trace->lane("suite", "benchmarks") : 0;
  std::uint64_t cumulative_cycles = 0;

  std::vector<SuiteRow> rows;
  rows.reserve(kMiBenchmarkCount);
  std::size_t done = 0;
  for (MiBenchmark bench : all_benchmarks()) {
    const std::string name = to_string(bench);
    std::vector<SystemResult> results;
    {
      const obs::ScopedTimer timer("suite." + name);
      const Workload workload = make_benchmark(bench, scale_divisor);
      results = evaluator.evaluate_all(workload);
    }
    FTSPM_CHECK(results.size() == 3, "expected three structures");
    if (trace != nullptr) {
      // Span the benchmark over its own FTSPM run on a cumulative
      // simulated-cycle axis (deterministic, unlike wall time).
      trace->complete(lane, name, cumulative_cycles,
                      results[0].run.total_cycles,
                      {obs::TraceArg::num("cycles",
                                          results[0].run.total_cycles)});
      cumulative_cycles += results[0].run.total_cycles;
    }
    rows.push_back(SuiteRow{bench, name, std::move(results[0]),
                            std::move(results[1]), std::move(results[2])});
    ++done;
    if (progress) progress(done, kMiBenchmarkCount, name);
  }
  return rows;
}

double geomean_ratio(const std::vector<SuiteRow>& rows,
                     double (*ratio)(const SuiteRow&)) {
  FTSPM_REQUIRE(ratio != nullptr, "ratio function required");
  double log_sum = 0.0;
  std::size_t n = 0;
  for (const SuiteRow& row : rows) {
    const double r = ratio(row);
    if (!(r > 0.0) || !std::isfinite(r)) continue;
    log_sum += std::log(r);
    ++n;
  }
  return n ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

}  // namespace ftspm
