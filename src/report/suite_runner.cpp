#include "ftspm/report/suite_runner.h"

#include <chrono>
#include <cmath>
#include <mutex>
#include <optional>
#include <utility>

#include "ftspm/exec/thread_pool.h"
#include "ftspm/obs/event_log.h"
#include "ftspm/obs/timer.h"
#include "ftspm/util/error.h"

namespace ftspm {

std::vector<SuiteRow> run_suite(const StructureEvaluator& evaluator,
                                std::uint64_t scale_divisor,
                                const SuiteProgress& progress) {
  obs::TraceEventSink* trace =
      obs::enabled() ? obs::current_trace() : nullptr;
  const obs::TraceEventSink::LaneId lane =
      trace != nullptr ? trace->lane("suite", "benchmarks") : 0;
  obs::EventLog* events = obs::enabled() ? obs::current_event_log() : nullptr;
  std::uint64_t cumulative_cycles = 0;

  std::vector<SuiteRow> rows;
  rows.reserve(kMiBenchmarkCount);
  std::size_t done = 0;
  for (MiBenchmark bench : all_benchmarks()) {
    const std::string name = to_string(bench);
    if (events != nullptr)
      events->emit("phase_start", cumulative_cycles,
                   {obs::TraceArg::str("kind", "suite"),
                    obs::TraceArg::str("benchmark", name)});
    std::vector<SystemResult> results;
    {
      const obs::ScopedTimer timer("suite." + name);
      const Workload workload = make_benchmark(bench, scale_divisor);
      results = evaluator.evaluate_all(workload);
    }
    FTSPM_CHECK(results.size() == 3, "expected three structures");
    if (trace != nullptr) {
      // Span the benchmark over its own FTSPM run on a cumulative
      // simulated-cycle axis (deterministic, unlike wall time).
      trace->complete(lane, name, cumulative_cycles,
                      results[0].run.total_cycles,
                      {obs::TraceArg::num("cycles",
                                          results[0].run.total_cycles)});
    }
    if (events != nullptr)
      events->emit("phase_end",
                   cumulative_cycles + results[0].run.total_cycles,
                   {obs::TraceArg::str("kind", "suite"),
                    obs::TraceArg::str("benchmark", name),
                    obs::TraceArg::num("cycles",
                                       results[0].run.total_cycles)});
    cumulative_cycles += results[0].run.total_cycles;
    rows.push_back(SuiteRow{bench, name, std::move(results[0]),
                            std::move(results[1]), std::move(results[2])});
    ++done;
    if (progress) progress(done, kMiBenchmarkCount, name);
  }
  return rows;
}

std::vector<SuiteRow> run_suite_parallel(const StructureEvaluator& evaluator,
                                         std::uint64_t scale_divisor,
                                         std::uint32_t jobs,
                                         const SuiteProgress& progress) {
  if (jobs <= 1) return run_suite(evaluator, scale_divisor, progress);

  const std::vector<MiBenchmark> benchmarks = [] {
    std::vector<MiBenchmark> v;
    for (MiBenchmark b : all_benchmarks()) v.push_back(b);
    return v;
  }();
  std::vector<std::optional<SuiteRow>> slots(benchmarks.size());
  std::vector<std::uint64_t> wall_ns(benchmarks.size(), 0);
  std::mutex progress_mutex;
  std::size_t completed = 0;

  exec::ThreadPool pool(jobs);
  parallel_for(pool, benchmarks.size(), [&](std::size_t i) {
    // Workers stay out of the process-wide registry/trace; the
    // per-benchmark timers and spans are emitted below, in order.
    const obs::ThreadSuppressScope suppress;
    const MiBenchmark bench = benchmarks[i];
    const std::string name = to_string(bench);
    const auto start = std::chrono::steady_clock::now();
    const Workload workload = make_benchmark(bench, scale_divisor);
    std::vector<SystemResult> results = evaluator.evaluate_all(workload);
    wall_ns[i] = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    FTSPM_CHECK(results.size() == 3, "expected three structures");
    slots[i] = SuiteRow{bench, name, std::move(results[0]),
                        std::move(results[1]), std::move(results[2])};
    if (progress) {
      const std::lock_guard<std::mutex> lock(progress_mutex);
      progress(++completed, benchmarks.size(), name);
    }
  });

  std::vector<SuiteRow> rows;
  rows.reserve(slots.size());
  for (std::optional<SuiteRow>& slot : slots) rows.push_back(std::move(*slot));

  // Deterministic post-join observability, mirroring the serial path:
  // wall timers per benchmark and suite spans on a cumulative
  // simulated-cycle axis, both in benchmark order.
  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    for (std::size_t i = 0; i < rows.size(); ++i)
      reg.timer("suite." + rows[i].name).record_ns(wall_ns[i]);
    obs::TraceEventSink* trace = obs::current_trace();
    const obs::TraceEventSink::LaneId lane =
        trace != nullptr ? trace->lane("suite", "benchmarks") : 0;
    obs::EventLog* events = obs::current_event_log();
    std::uint64_t cumulative_cycles = 0;
    for (const SuiteRow& row : rows) {
      if (events != nullptr)
        events->emit("phase_start", cumulative_cycles,
                     {obs::TraceArg::str("kind", "suite"),
                      obs::TraceArg::str("benchmark", row.name)});
      if (trace != nullptr)
        trace->complete(lane, row.name, cumulative_cycles,
                        row.ftspm.run.total_cycles,
                        {obs::TraceArg::num("cycles",
                                            row.ftspm.run.total_cycles)});
      if (events != nullptr)
        events->emit("phase_end",
                     cumulative_cycles + row.ftspm.run.total_cycles,
                     {obs::TraceArg::str("kind", "suite"),
                      obs::TraceArg::str("benchmark", row.name),
                      obs::TraceArg::num("cycles",
                                         row.ftspm.run.total_cycles)});
      cumulative_cycles += row.ftspm.run.total_cycles;
    }
  }
  return rows;
}

double geomean_ratio(const std::vector<SuiteRow>& rows,
                     double (*ratio)(const SuiteRow&)) {
  FTSPM_REQUIRE(ratio != nullptr, "ratio function required");
  double log_sum = 0.0;
  std::size_t n = 0;
  for (const SuiteRow& row : rows) {
    const double r = ratio(row);
    if (!(r > 0.0) || !std::isfinite(r)) continue;
    log_sum += std::log(r);
    ++n;
  }
  return n ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

}  // namespace ftspm
