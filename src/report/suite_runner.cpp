#include "ftspm/report/suite_runner.h"

#include <cmath>

#include "ftspm/util/error.h"

namespace ftspm {

std::vector<SuiteRow> run_suite(const StructureEvaluator& evaluator,
                                std::uint64_t scale_divisor) {
  std::vector<SuiteRow> rows;
  rows.reserve(kMiBenchmarkCount);
  for (MiBenchmark bench : all_benchmarks()) {
    const Workload workload = make_benchmark(bench, scale_divisor);
    std::vector<SystemResult> results = evaluator.evaluate_all(workload);
    FTSPM_CHECK(results.size() == 3, "expected three structures");
    rows.push_back(SuiteRow{bench, to_string(bench), std::move(results[0]),
                            std::move(results[1]), std::move(results[2])});
  }
  return rows;
}

double geomean_ratio(const std::vector<SuiteRow>& rows,
                     double (*ratio)(const SuiteRow&)) {
  FTSPM_REQUIRE(ratio != nullptr, "ratio function required");
  double log_sum = 0.0;
  std::size_t n = 0;
  for (const SuiteRow& row : rows) {
    const double r = ratio(row);
    if (!(r > 0.0) || !std::isfinite(r)) continue;
    log_sum += std::log(r);
    ++n;
  }
  return n ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

}  // namespace ftspm
