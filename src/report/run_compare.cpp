#include "ftspm/report/run_compare.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "ftspm/util/format.h"
#include "ftspm/util/table.h"

namespace ftspm {

namespace {

/// Collects one side's (name -> value) pairs into the aligned map.
template <typename Pairs>
void fold_side(const Pairs& pairs, bool is_b,
               std::map<std::string, std::pair<double, double>>& aligned,
               std::map<std::string, std::pair<bool, bool>>& present) {
  for (const auto& [name, value] : pairs) {
    auto& slot = aligned[name];
    auto& seen = present[name];
    if (is_b) {
      slot.second = static_cast<double>(value);
      seen.second = true;
    } else {
      slot.first = static_cast<double>(value);
      seen.first = true;
    }
  }
}

void diff_kind(const char* kind,
               const std::map<std::string, std::pair<double, double>>& aligned,
               const std::map<std::string, std::pair<bool, bool>>& present,
               const CompareOptions& options, CompareReport& report) {
  for (const auto& [name, values] : aligned) {
    const auto [in_a, in_b] = present.at(name);
    CompareRow row;
    row.name = name;
    row.kind = kind;
    row.a = values.first;
    row.b = values.second;
    row.missing_a = !in_a;
    row.missing_b = !in_b;
    if (row.a == row.b) {
      row.delta_pct = 0.0;
    } else if (row.a == 0.0) {
      row.delta_pct = std::copysign(
          std::numeric_limits<double>::infinity(), row.b);
    } else {
      row.delta_pct = 100.0 * (row.b - row.a) / row.a;
    }
    const bool gated = options.metric.empty() || name == options.metric;
    if (gated && (!in_a || !in_b ||
                  std::abs(row.delta_pct) > options.threshold_pct)) {
      row.regressed = true;
      report.regression = true;
    }
    report.rows.push_back(std::move(row));
  }
}

std::string cell(double v, bool missing) {
  if (missing) return "-";
  if (v == std::floor(v) && std::abs(v) < 1e15)
    return with_commas(static_cast<std::int64_t>(v));
  return fixed(v, 6);
}

std::string delta_cell(const CompareRow& row) {
  if (row.missing_a || row.missing_b) return "missing";
  if (row.delta_pct == 0.0) return "0%";
  if (std::isinf(row.delta_pct)) return row.delta_pct > 0 ? "+inf%" : "-inf%";
  const std::string body = fixed(row.delta_pct, 4) + "%";
  return row.delta_pct > 0 ? "+" + body : body;
}

}  // namespace

std::string CompareReport::render() const {
  AsciiTable table({"Kind", "Name", run_a, run_b, "Delta", ""});
  table.set_align(1, Align::Left);
  for (const CompareRow& row : rows)
    table.add_row({row.kind, row.name, cell(row.a, row.missing_a),
                   cell(row.b, row.missing_b), delta_cell(row),
                   row.regressed ? "REGRESSED" : "ok"});
  std::string out = table.render();
  out += regression ? "verdict: REGRESSION (see rows marked REGRESSED)\n"
                    : "verdict: no regression\n";
  return out;
}

CompareReport compare_runs(const obs::LedgerRecord& a,
                           const obs::LedgerRecord& b,
                           const CompareOptions& options) {
  CompareReport report;
  report.run_a = a.id;
  report.run_b = b.id;
  {
    std::map<std::string, std::pair<double, double>> aligned;
    std::map<std::string, std::pair<bool, bool>> present;
    fold_side(a.counters, /*is_b=*/false, aligned, present);
    fold_side(b.counters, /*is_b=*/true, aligned, present);
    diff_kind("counter", aligned, present, options, report);
  }
  {
    std::map<std::string, std::pair<double, double>> aligned;
    std::map<std::string, std::pair<bool, bool>> present;
    fold_side(a.metrics, /*is_b=*/false, aligned, present);
    fold_side(b.metrics, /*is_b=*/true, aligned, present);
    diff_kind("metric", aligned, present, options, report);
  }
  return report;
}

}  // namespace ftspm
