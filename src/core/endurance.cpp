#include "ftspm/core/endurance.h"

#include <algorithm>
#include <limits>

#include "ftspm/util/error.h"

namespace ftspm {

double EnduranceReport::seconds_to(double threshold_writes) const {
  FTSPM_REQUIRE(threshold_writes > 0.0, "threshold must be positive");
  if (unlimited()) return std::numeric_limits<double>::infinity();
  return threshold_writes / max_word_write_rate_per_s;
}

EnduranceReport compute_endurance(const SpmLayout& layout,
                                  const RunResult& run) {
  FTSPM_REQUIRE(run.regions.size() == layout.region_count(),
                "run does not match layout");
  EnduranceReport report;
  const double seconds = run.seconds();
  if (seconds <= 0.0) return report;
  for (RegionId r = 0; r < layout.region_count(); ++r) {
    if (layout.region(r).tech.endurance_writes <= 0.0) continue;  // SRAM
    const double rate =
        static_cast<double>(run.regions[r].max_word_writes) / seconds;
    report.regions.push_back(
        RegionWear{r, run.regions[r].max_word_writes, rate});
    report.max_word_write_rate_per_s =
        std::max(report.max_word_write_rate_per_s, rate);
  }
  return report;
}

}  // namespace ftspm
