#include "ftspm/core/partition.h"

#include <algorithm>
#include <numeric>

#include "ftspm/util/error.h"

namespace ftspm {

double PartitionResult::weighted_vulnerability() const {
  double num = 0.0, den = 0.0;
  for (const TaskPartition& t : tasks) {
    num += t.weight * t.result.avf.vulnerability();
    den += t.weight;
  }
  return den > 0.0 ? num / den : 0.0;
}

double PartitionResult::total_dynamic_energy_pj() const {
  double e = 0.0;
  for (const TaskPartition& t : tasks)
    e += t.result.run.spm_dynamic_energy_pj();
  return e;
}

namespace {

/// Largest-remainder apportionment of `total_bytes` into granules.
std::vector<std::uint64_t> split_bytes(const std::vector<double>& demands,
                                       std::uint64_t total_bytes,
                                       const PartitionConfig& config) {
  const std::uint64_t granule = config.granule_bytes;
  const std::uint64_t granules = total_bytes / granule;
  FTSPM_REQUIRE(granules >= (config.guarantee_floor ? demands.size() : 1),
                "region too small for the task set at this granule");

  const double demand_sum =
      std::accumulate(demands.begin(), demands.end(), 0.0);
  std::vector<std::uint64_t> shares(demands.size(), 0);
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const double fraction = demand_sum > 0.0 ? demands[i] / demand_sum
                                             : 1.0 / demands.size();
    shares[i] = static_cast<std::uint64_t>(fraction *
                                           static_cast<double>(granules));
    if (config.guarantee_floor)
      shares[i] = std::max<std::uint64_t>(shares[i], 1);
    assigned += shares[i];
  }
  // Reconcile rounding (either direction) against the largest-demand
  // task, keeping floors intact.
  std::size_t biggest = 0;
  for (std::size_t i = 1; i < demands.size(); ++i)
    if (demands[i] > demands[biggest]) biggest = i;
  while (assigned > granules) {
    // Shave from the biggest share that stays above the floor.
    std::size_t victim = biggest;
    for (std::size_t i = 0; i < shares.size(); ++i)
      if (shares[i] > shares[victim]) victim = i;
    FTSPM_CHECK(shares[victim] > 1, "cannot satisfy floors");
    --shares[victim];
    --assigned;
  }
  shares[biggest] += granules - assigned;

  for (std::uint64_t& s : shares) s *= granule;
  return shares;
}

}  // namespace

std::vector<FtspmDimensions> partition_dimensions(
    const std::vector<double>& demands, const FtspmDimensions& total,
    const PartitionConfig& config) {
  FTSPM_REQUIRE(!demands.empty(), "no tasks to partition for");
  for (double d : demands)
    FTSPM_REQUIRE(d >= 0.0, "demands must be non-negative");
  FTSPM_REQUIRE(config.granule_bytes >= 8 && config.granule_bytes % 8 == 0,
                "granule must be a positive multiple of 8");

  const std::vector<std::uint64_t> ispm =
      split_bytes(demands, total.ispm_bytes, config);
  const std::vector<std::uint64_t> stt =
      split_bytes(demands, total.dspm_stt_bytes, config);
  const std::vector<std::uint64_t> ecc =
      split_bytes(demands, total.dspm_secded_bytes, config);
  const std::vector<std::uint64_t> parity =
      split_bytes(demands, total.dspm_parity_bytes, config);

  std::vector<FtspmDimensions> out(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    out[i] = total;  // inherit interleave / cell choices
    out[i].ispm_bytes = ispm[i];
    out[i].dspm_stt_bytes = stt[i];
    out[i].dspm_secded_bytes = ecc[i];
    out[i].dspm_parity_bytes = parity[i];
  }
  return out;
}

PartitionResult partition_and_evaluate(const std::vector<TaskSpec>& tasks,
                                       const TechnologyLibrary& lib,
                                       const MdaConfig& mda,
                                       const FtspmDimensions& total,
                                       const PartitionConfig& config) {
  FTSPM_REQUIRE(!tasks.empty(), "no tasks to evaluate");
  std::vector<double> demands;
  std::vector<ProgramProfile> profiles;
  demands.reserve(tasks.size());
  profiles.reserve(tasks.size());
  for (const TaskSpec& task : tasks) {
    FTSPM_REQUIRE(task.workload != nullptr, "task workload is null");
    FTSPM_REQUIRE(task.weight > 0.0, "task weight must be positive");
    profiles.push_back(profile_workload(*task.workload));
    demands.push_back(task.weight *
                      static_cast<double>(profiles.back().total_accesses));
  }

  const std::vector<FtspmDimensions> dims =
      partition_dimensions(demands, total, config);

  PartitionResult result;
  result.tasks.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const StructureEvaluator evaluator(lib, mda, dims[i]);
    TaskPartition part{tasks[i].workload->program.name(), tasks[i].weight,
                       demands[i], dims[i],
                       evaluator.evaluate_ftspm(*tasks[i].workload,
                                                profiles[i])};
    result.tasks.push_back(std::move(part));
  }
  return result;
}

}  // namespace ftspm
