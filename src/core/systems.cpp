#include "ftspm/core/systems.h"

#include "ftspm/core/baseline_mapper.h"
#include "ftspm/core/energy_hybrid_mapper.h"
#include "ftspm/util/error.h"

namespace ftspm {

AvfResult compute_system_avf(const SpmLayout& layout, const MappingPlan& plan,
                             const Program& program,
                             const ProgramProfile& profile,
                             const StrikeMultiplicityModel& strikes) {
  // A region assigned more block bytes than it has is time-shared by
  // the on-line phase: at any instant only `capacity` of those bits are
  // exposed to strikes, so each block's surface is scaled by the
  // region's occupancy ratio.
  std::vector<double> assigned_bits(layout.region_count(), 0.0);
  for (const BlockMapping& m : plan.mappings()) {
    if (!m.mapped()) continue;
    assigned_bits[m.region] +=
        static_cast<double>(program.block(m.block).size_words()) *
        layout.region(m.region).geometry().codeword_bits();
  }

  std::vector<AvfBlockTerm> terms;
  terms.reserve(program.block_count());
  for (const BlockMapping& m : plan.mappings()) {
    if (!m.mapped()) continue;  // cache-served blocks are outside the SPM
    const SpmRegionSpec& spec = layout.region(m.region);
    const RegionGeometry geom = spec.geometry();
    const double region_bits = static_cast<double>(geom.physical_bits());
    const double share =
        assigned_bits[m.region] > region_bits
            ? region_bits / assigned_bits[m.region]
            : 1.0;
    AvfBlockTerm term;
    term.physical_bits = static_cast<std::uint64_t>(
        static_cast<double>(program.block(m.block).size_words()) *
        geom.codeword_bits() * share);
    term.ace_fraction = profile.ace_fraction(program, m.block);
    term.protection = spec.tech.protection;
    term.interleave = spec.interleave;
    terms.push_back(term);
  }
  return compute_avf(terms, layout.total_physical_bits(), strikes);
}

std::vector<double> per_block_vulnerability(
    const SpmLayout& layout, const MappingPlan& plan, const Program& program,
    const ProgramProfile& profile, const StrikeMultiplicityModel& strikes) {
  // Mirrors compute_system_avf's weighting, reported per block.
  std::vector<double> assigned_bits(layout.region_count(), 0.0);
  for (const BlockMapping& m : plan.mappings()) {
    if (!m.mapped()) continue;
    assigned_bits[m.region] +=
        static_cast<double>(program.block(m.block).size_words()) *
        layout.region(m.region).geometry().codeword_bits();
  }
  const double total = static_cast<double>(layout.total_physical_bits());
  std::vector<double> out(program.block_count(), 0.0);
  for (const BlockMapping& m : plan.mappings()) {
    if (!m.mapped()) continue;
    const SpmRegionSpec& spec = layout.region(m.region);
    const RegionGeometry geom = spec.geometry();
    const double region_bits = static_cast<double>(geom.physical_bits());
    const double share = assigned_bits[m.region] > region_bits
                             ? region_bits / assigned_bits[m.region]
                             : 1.0;
    const double bits =
        static_cast<double>(program.block(m.block).size_words()) *
        geom.codeword_bits() * share;
    const RegionErrorProbabilities p = region_error_probabilities(
        spec.tech.protection, strikes, spec.interleave);
    out[m.block] = (bits / total) *
                   profile.ace_fraction(program, m.block) * p.p_harmful();
  }
  return out;
}

StructureEvaluator::StructureEvaluator(TechnologyLibrary lib, MdaConfig mda,
                                       FtspmDimensions ftspm_dims,
                                       BaselineDimensions baseline_dims)
    : lib_(lib),
      mda_(mda),
      ftspm_(make_ftspm_layout(lib_, ftspm_dims)),
      sram_(make_pure_sram_layout(lib_, baseline_dims)),
      stt_(make_pure_stt_layout(lib_, baseline_dims)),
      sim_(make_sim_config(lib_)),
      strikes_(StrikeMultiplicityModel::for_node(lib_.corner().node_nm)) {}

namespace {

SystemResult finish(const SpmLayout& layout, const SimConfig& sim,
                    MappingPlan plan, const Workload& workload,
                    const ProgramProfile& profile,
                    const StrikeMultiplicityModel& strikes,
                    std::string structure) {
  const Simulator simulator(layout, sim);
  RunResult run = simulator.run(workload, plan.block_to_region());
  AvfResult avf =
      compute_system_avf(layout, plan, workload.program, profile, strikes);
  EnduranceReport endurance = compute_endurance(layout, run);
  return SystemResult{std::move(structure), std::move(plan), std::move(run),
                      avf, endurance};
}

}  // namespace

SystemResult StructureEvaluator::evaluate_ftspm(
    const Workload& workload, const ProgramProfile& profile) const {
  const MappingDeterminer mda(ftspm_, sim_, mda_);
  MappingPlan plan = mda.determine(workload.program, profile);
  return finish(ftspm_, sim_, std::move(plan), workload, profile, strikes_,
                "FTSPM");
}

SystemResult StructureEvaluator::evaluate_pure_sram(
    const Workload& workload, const ProgramProfile& profile) const {
  MappingPlan plan =
      determine_baseline_mapping(sram_, workload.program, profile);
  return finish(sram_, sim_, std::move(plan), workload, profile, strikes_,
                "Pure SRAM");
}

SystemResult StructureEvaluator::evaluate_pure_stt(
    const Workload& workload, const ProgramProfile& profile) const {
  MappingPlan plan =
      determine_baseline_mapping(stt_, workload.program, profile);
  return finish(stt_, sim_, std::move(plan), workload, profile, strikes_,
                "Pure STT-RAM");
}

SystemResult StructureEvaluator::evaluate_energy_hybrid(
    const Workload& workload, const ProgramProfile& profile) const {
  MappingPlan plan =
      determine_energy_hybrid_mapping(ftspm_, workload.program, profile);
  return finish(ftspm_, sim_, std::move(plan), workload, profile, strikes_,
                "Energy hybrid");
}

std::vector<SystemResult> StructureEvaluator::evaluate_all(
    const Workload& workload) const {
  const ProgramProfile profile = profile_workload(workload);
  std::vector<SystemResult> results;
  results.reserve(3);
  results.push_back(evaluate_ftspm(workload, profile));
  results.push_back(evaluate_pure_sram(workload, profile));
  results.push_back(evaluate_pure_stt(workload, profile));
  return results;
}

}  // namespace ftspm
