#include "ftspm/core/transfer_schedule.h"

#include <algorithm>
#include <sstream>

#include "ftspm/util/error.h"
#include "ftspm/util/format.h"

namespace ftspm {

const char* to_string(TransferCommand::Op op) noexcept {
  switch (op) {
    case TransferCommand::Op::MapIn: return "map-in";
    case TransferCommand::Op::WriteBack: return "write-back";
    case TransferCommand::Op::Unmap: return "unmap";
  }
  return "?";
}

namespace {

struct Resident {
  BlockId block;
  std::uint64_t base;
  std::uint64_t words;
  std::uint64_t last_use;
  std::size_t span_index;
};

struct RegionState {
  std::uint64_t capacity = 0;
  std::vector<Resident> residents;  // kept sorted by base

  /// First-fit hole able to hold `need` words, or nullopt.
  std::optional<std::uint64_t> find_hole(std::uint64_t need) const {
    std::uint64_t cursor = 0;
    for (const Resident& r : residents) {
      if (r.base - cursor >= need) return cursor;
      cursor = r.base + r.words;
    }
    if (capacity - cursor >= need) return cursor;
    return std::nullopt;
  }

  void insert(Resident r) {
    const auto pos = std::lower_bound(
        residents.begin(), residents.end(), r.base,
        [](const Resident& a, std::uint64_t base) { return a.base < base; });
    residents.insert(pos, r);
  }
};

}  // namespace

TransferSchedule TransferSchedule::generate(const Program& program,
                                            const ProgramProfile& profile,
                                            const MappingPlan& plan,
                                            const SpmLayout& layout) {
  FTSPM_REQUIRE(profile.blocks.size() == program.block_count(),
                "profile does not match program");
  FTSPM_REQUIRE(plan.block_to_region().size() == program.block_count(),
                "plan does not match program");

  TransferSchedule sched;
  std::vector<RegionState> regions(layout.region_count());
  for (RegionId r = 0; r < layout.region_count(); ++r)
    regions[r].capacity = layout.region(r).data_words();

  // A block is dirty while resident iff the program ever writes it.
  auto is_dirty = [&](BlockId id) { return profile.blocks[id].writes > 0; };
  // Resident lookup: block -> index into its region's resident list.
  std::vector<bool> resident(program.block_count(), false);

  auto evict = [&](RegionId rid, std::uint64_t seq) {
    RegionState& rs = regions[rid];
    FTSPM_CHECK(!rs.residents.empty(), "evict from an empty region");
    std::size_t victim = 0;
    for (std::size_t i = 1; i < rs.residents.size(); ++i)
      if (rs.residents[i].last_use < rs.residents[victim].last_use)
        victim = i;
    const Resident r = rs.residents[victim];
    if (is_dirty(r.block)) {
      sched.commands_.push_back(TransferCommand{
          seq, TransferCommand::Op::WriteBack, r.block, rid, r.base, r.words});
      sched.words_out_ += r.words;
    }
    sched.commands_.push_back(TransferCommand{
        seq, TransferCommand::Op::Unmap, r.block, rid, r.base, r.words});
    sched.spans_[r.span_index].unmap_index = seq;
    resident[r.block] = false;
    rs.residents.erase(rs.residents.begin() +
                       static_cast<std::ptrdiff_t>(victim));
  };

  std::uint64_t tick = 0;
  for (std::uint64_t seq = 0; seq < profile.reference_sequence.size();
       ++seq) {
    const BlockId id = profile.reference_sequence[seq];
    const RegionId rid = plan.block_to_region()[id];
    if (rid == kNoRegion) continue;  // cache-served
    RegionState& rs = regions[rid];
    ++tick;
    if (resident[id]) {
      for (Resident& r : rs.residents)
        if (r.block == id) r.last_use = tick;
      continue;
    }
    const std::uint64_t need = program.block(id).size_words();
    FTSPM_CHECK(need <= rs.capacity, "plan admitted an oversized block");
    std::optional<std::uint64_t> hole = rs.find_hole(need);
    while (!hole) {
      evict(rid, seq);
      hole = rs.find_hole(need);
    }
    sched.commands_.push_back(TransferCommand{
        seq, TransferCommand::Op::MapIn, id, rid, *hole, need});
    sched.words_in_ += need;
    rs.insert(Resident{id, *hole, need, tick,
                       sched.spans_.size()});
    sched.spans_.push_back(ResidencySpan{id, rid, *hole, seq, std::nullopt});
    resident[id] = true;
  }

  // Program exit: flush dirty residents (their spans stay open).
  const std::uint64_t end_seq = profile.reference_sequence.size();
  for (RegionId rid = 0; rid < layout.region_count(); ++rid) {
    for (const Resident& r : regions[rid].residents) {
      if (!is_dirty(r.block)) continue;
      sched.commands_.push_back(TransferCommand{end_seq,
                                                TransferCommand::Op::WriteBack,
                                                r.block, rid, r.base,
                                                r.words});
      sched.words_out_ += r.words;
    }
  }
  return sched;
}

std::vector<ResidencySpan> TransferSchedule::spans_of(BlockId block) const {
  std::vector<ResidencySpan> out;
  for (const ResidencySpan& s : spans_)
    if (s.block == block) out.push_back(s);
  return out;
}

std::string TransferSchedule::render(const Program& program,
                                     const SpmLayout& layout,
                                     std::size_t max_commands) const {
  std::ostringstream os;
  os << "Transfer schedule: " << commands_.size() << " commands, "
     << with_commas(words_in_) << " words in / " << with_commas(words_out_)
     << " words out\n";
  std::size_t shown = 0;
  for (const TransferCommand& c : commands_) {
    if (shown++ == max_commands) {
      os << "  ... (" << commands_.size() - max_commands
         << " more commands)\n";
      break;
    }
    os << "  @ref " << c.sequence_index << ": " << to_string(c.op) << " "
       << program.block(c.block).name << " -> "
       << layout.region(c.region).name << "[" << c.base_word << ".."
       << c.base_word + c.words - 1 << "]\n";
  }
  return os.str();
}

}  // namespace ftspm
