#include "ftspm/core/spm_config.h"

namespace ftspm {

SpmLayout make_ftspm_layout(const TechnologyLibrary& lib,
                            const FtspmDimensions& dims) {
  const TechnologyParams stt =
      dims.relaxed_stt ? lib.stt_ram_relaxed() : lib.stt_ram();
  return SpmLayout(
      "FTSPM",
      {SpmRegionSpec{region_names::kInstruction, SpmSpace::Instruction,
                     dims.ispm_bytes, stt},
       SpmRegionSpec{region_names::kDataStt, SpmSpace::Data,
                     dims.dspm_stt_bytes, stt},
       SpmRegionSpec{region_names::kDataSecDed, SpmSpace::Data,
                     dims.dspm_secded_bytes, lib.secded_sram(),
                     dims.sram_interleave},
       SpmRegionSpec{region_names::kDataParity, SpmSpace::Data,
                     dims.dspm_parity_bytes, lib.parity_sram(),
                     dims.sram_interleave}});
}

SpmLayout make_pure_sram_layout(const TechnologyLibrary& lib,
                                const BaselineDimensions& dims) {
  return SpmLayout(
      "Pure SRAM",
      {SpmRegionSpec{region_names::kInstruction, SpmSpace::Instruction,
                     dims.ispm_bytes, lib.secded_sram()},
       SpmRegionSpec{region_names::kDataSram, SpmSpace::Data,
                     dims.dspm_bytes, lib.secded_sram()}});
}

SpmLayout make_pure_stt_layout(const TechnologyLibrary& lib,
                               const BaselineDimensions& dims) {
  return SpmLayout(
      "Pure STT-RAM",
      {SpmRegionSpec{region_names::kInstruction, SpmSpace::Instruction,
                     dims.ispm_bytes, lib.stt_ram()},
       SpmRegionSpec{region_names::kDataStt, SpmSpace::Data,
                     dims.dspm_bytes, lib.stt_ram()}});
}

SimConfig make_sim_config(const TechnologyLibrary& lib) {
  SimConfig cfg;
  cfg.clock_mhz = lib.corner().clock_mhz;
  const TechnologyParams cache = lib.unprotected_sram();
  cfg.cache_access_energy_pj =
      (cache.read_energy_pj + cache.write_energy_pj) / 2.0;
  // Table IV: 8 KiB unprotected 1-cycle L1 I/D caches.
  cfg.icache = CacheConfig{8 * 1024, 32, 4, cache.read_latency_cycles};
  cfg.dcache = CacheConfig{8 * 1024, 32, 4, cache.read_latency_cycles};
  return cfg;
}

}  // namespace ftspm
