#include "ftspm/core/energy_hybrid_mapper.h"

#include <algorithm>
#include <vector>

#include "ftspm/util/error.h"

namespace ftspm {

MappingPlan determine_energy_hybrid_mapping(const SpmLayout& layout,
                                            const Program& program,
                                            const ProgramProfile& profile,
                                            const EnergyHybridConfig& config) {
  FTSPM_REQUIRE(profile.blocks.size() == program.block_count(),
                "profile does not match program");
  FTSPM_REQUIRE(config.write_share_threshold >= 0.0 &&
                    config.write_share_threshold <= 1.0,
                "write-share threshold out of [0,1]");

  RegionId i_region = kNoRegion;
  RegionId nvm_region = kNoRegion;
  std::vector<RegionId> sram_regions;  // larger first, filled in order
  for (RegionId r = 0; r < layout.region_count(); ++r) {
    const SpmRegionSpec& spec = layout.region(r);
    if (spec.space == SpmSpace::Instruction) {
      FTSPM_REQUIRE(i_region == kNoRegion,
                    "expected a single instruction region");
      i_region = r;
    } else if (spec.tech.soft_error_immune) {
      FTSPM_REQUIRE(nvm_region == kNoRegion,
                    "expected a single NVM data region");
      nvm_region = r;
    } else {
      sram_regions.push_back(r);
    }
  }
  FTSPM_REQUIRE(i_region != kNoRegion && nvm_region != kNoRegion,
                "layout lacks instruction or NVM data regions");
  std::stable_sort(sram_regions.begin(), sram_regions.end(),
                   [&](RegionId a, RegionId b) {
                     return layout.region(a).data_bytes >
                            layout.region(b).data_bytes;
                   });

  std::vector<BlockMapping> mappings(program.block_count());
  for (std::size_t i = 0; i < mappings.size(); ++i)
    mappings[i] = BlockMapping{static_cast<BlockId>(i), kNoRegion,
                               MappingReason::Mapped};

  auto density = [&](BlockId id) {
    return static_cast<double>(profile.blocks[id].accesses()) /
           static_cast<double>(program.block(id).size_words());
  };

  // --- code: hottest-first into the I-SPM ----------------------------
  std::vector<BlockId> code;
  for (std::size_t i = 0; i < program.block_count(); ++i)
    if (program.block(static_cast<BlockId>(i)).is_code())
      code.push_back(static_cast<BlockId>(i));
  std::stable_sort(code.begin(), code.end(), [&](BlockId a, BlockId b) {
    return density(a) > density(b);
  });
  std::uint64_t i_used = 0;
  const std::uint64_t i_cap = layout.region(i_region).data_bytes;
  for (BlockId id : code) {
    const std::uint64_t size = program.block(id).size_bytes;
    if (size > i_cap) {
      mappings[id].reason = MappingReason::TooLarge;
    } else if (i_used + size <= i_cap) {
      mappings[id].region = i_region;
      i_used += size;
    } else {
      mappings[id].reason = MappingReason::CodeCapacity;
    }
  }

  // --- data: split by write share, pack by access density ------------
  std::vector<BlockId> to_nvm, to_sram;
  for (std::size_t i = 0; i < program.block_count(); ++i) {
    const Block& blk = program.block(static_cast<BlockId>(i));
    if (!blk.is_data()) continue;
    const BlockProfile& bp = profile.blocks[i];
    const double share =
        bp.accesses() > 0
            ? static_cast<double>(bp.writes) / bp.accesses()
            : 0.0;
    (share > config.write_share_threshold ? to_sram : to_nvm)
        .push_back(static_cast<BlockId>(i));
  }
  auto by_density = [&](std::vector<BlockId>& v) {
    std::stable_sort(v.begin(), v.end(), [&](BlockId a, BlockId b) {
      return density(a) > density(b);
    });
  };
  by_density(to_nvm);
  by_density(to_sram);

  std::uint64_t nvm_used = 0;
  const std::uint64_t nvm_cap = layout.region(nvm_region).data_bytes;
  for (BlockId id : to_nvm) {
    const std::uint64_t size = program.block(id).size_bytes;
    if (size <= nvm_cap && nvm_used + size <= nvm_cap) {
      mappings[id].region = nvm_region;
      nvm_used += size;
    } else {
      mappings[id].reason = size > nvm_cap ? MappingReason::TooLarge
                                           : MappingReason::NoSramRoom;
    }
  }

  std::vector<std::uint64_t> sram_used(sram_regions.size(), 0);
  for (BlockId id : to_sram) {
    const std::uint64_t size = program.block(id).size_bytes;
    bool placed = false;
    for (std::size_t s = 0; s < sram_regions.size() && !placed; ++s) {
      const std::uint64_t cap = layout.region(sram_regions[s]).data_bytes;
      if (size <= cap && sram_used[s] + size <= cap) {
        mappings[id].region = sram_regions[s];
        sram_used[s] += size;
        placed = true;
      }
    }
    if (!placed) {
      // Spill read-intensive-enough leftovers into spare NVM space.
      if (size <= nvm_cap && nvm_used + size <= nvm_cap) {
        mappings[id].region = nvm_region;
        nvm_used += size;
      } else {
        mappings[id].reason = MappingReason::NoSramRoom;
      }
    }
  }

  return MappingPlan(layout, std::move(mappings));
}

}  // namespace ftspm
