#include "ftspm/core/system_campaign.h"

#include <algorithm>

#include "ftspm/fault/campaign_observer.h"
#include "ftspm/util/error.h"
#include "ftspm/util/rng.h"

namespace ftspm {

std::vector<InjectionRegion> make_injection_regions(
    const SpmLayout& layout, const MappingPlan& plan, const Program& program,
    const ProgramProfile& profile) {
  FTSPM_REQUIRE(plan.block_to_region().size() == program.block_count(),
                "plan does not match program");
  FTSPM_REQUIRE(profile.blocks.size() == program.block_count(),
                "profile does not match program");

  // ACE-weighted bits assigned per region (same weighting as
  // compute_system_avf, before the region-surface cap).
  std::vector<double> ace_bits(layout.region_count(), 0.0);
  for (const BlockMapping& m : plan.mappings()) {
    if (!m.mapped()) continue;
    const RegionGeometry geom = layout.region(m.region).geometry();
    ace_bits[m.region] +=
        static_cast<double>(program.block(m.block).size_words()) *
        geom.codeword_bits() *
        profile.ace_fraction(program, m.block);
  }

  std::vector<InjectionRegion> regions;
  regions.reserve(layout.region_count());
  for (RegionId r = 0; r < layout.region_count(); ++r) {
    const SpmRegionSpec& spec = layout.region(r);
    InjectionRegion region;
    region.geometry = spec.geometry();
    region.protection = spec.tech.protection;
    region.interleave = spec.interleave;
    const double surface = static_cast<double>(region.geometry.physical_bits());
    region.ace_occupancy = std::min(1.0, ace_bits[r] / surface);
    regions.push_back(region);
  }
  return regions;
}

CampaignResult run_system_campaign(const SpmLayout& layout,
                                   const MappingPlan& plan,
                                   const Program& program,
                                   const ProgramProfile& profile,
                                   const StrikeMultiplicityModel& strikes,
                                   const CampaignConfig& config) {
  return run_campaign(
      make_injection_regions(layout, plan, program, profile), strikes,
      config);
}

exec::ShardedRun run_system_campaign_parallel(
    const SpmLayout& layout, const MappingPlan& plan, const Program& program,
    const ProgramProfile& profile, const StrikeMultiplicityModel& strikes,
    const CampaignConfig& config, const exec::ExecConfig& exec_config) {
  const std::vector<InjectionRegion> regions =
      make_injection_regions(layout, plan, program, profile);
  return exec::run_campaign_sharded(regions, strikes, config, exec_config);
}

RecoveryPolicy make_recovery_policy(const SimConfig& sim, bool recover,
                                    std::uint64_t scrub_interval) {
  RecoveryPolicy policy;
  policy.recover = recover;
  policy.scrub_interval = scrub_interval;
  policy.dma_setup_cycles = sim.dma.setup_cycles;
  policy.dma_line_cycles = sim.dram.line_latency_cycles;
  policy.dma_word_cycles = sim.dram.word_latency_cycles;
  policy.dram_read_energy_pj = sim.dram.read_energy_pj;
  return policy;
}

std::vector<RecoveryRegion> make_recovery_regions(
    const SpmLayout& layout, const MappingPlan& plan, const Program& program,
    const ProgramProfile& profile) {
  const std::vector<InjectionRegion> inject =
      make_injection_regions(layout, plan, program, profile);

  // Per-region mapped footprint: how much of it is dirty/stack data (a
  // DUE there has no valid off-chip copy) and the mean mapped-block
  // size (what one DUE re-fetch transfers).
  std::vector<double> mapped_words(layout.region_count(), 0.0);
  std::vector<double> dirty_words(layout.region_count(), 0.0);
  std::vector<std::uint64_t> mapped_blocks(layout.region_count(), 0);
  for (const BlockMapping& m : plan.mappings()) {
    if (!m.mapped()) continue;
    const Block& block = program.block(m.block);
    const double words = static_cast<double>(block.size_words());
    mapped_words[m.region] += words;
    ++mapped_blocks[m.region];
    if (block.kind == BlockKind::Stack || profile.blocks[m.block].writes > 0)
      dirty_words[m.region] += words;
  }

  std::vector<RecoveryRegion> regions;
  regions.reserve(layout.region_count());
  for (RegionId r = 0; r < layout.region_count(); ++r) {
    RecoveryRegion region;
    region.inject = inject[r];
    region.tech = layout.region(r).tech;
    if (mapped_words[r] > 0.0)
      region.dirty_fraction = dirty_words[r] / mapped_words[r];
    if (mapped_blocks[r] != 0)
      region.refetch_words = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(
                 mapped_words[r] / static_cast<double>(mapped_blocks[r])));
    region.scrub = region.tech.protection == ProtectionKind::SecDed ||
                   region.tech.needs_scrub;
    regions.push_back(region);
  }
  return regions;
}

RecoveryResult run_recovery_system_campaign(
    const SpmLayout& layout, const MappingPlan& plan, const Program& program,
    const ProgramProfile& profile, const StrikeMultiplicityModel& strikes,
    const CampaignConfig& config, const RecoveryPolicy& policy) {
  return run_recovery_campaign(
      make_recovery_regions(layout, plan, program, profile), strikes, config,
      policy);
}

exec::RecoveryShardedRun run_recovery_system_campaign_parallel(
    const SpmLayout& layout, const MappingPlan& plan, const Program& program,
    const ProgramProfile& profile, const StrikeMultiplicityModel& strikes,
    const CampaignConfig& config, const RecoveryPolicy& policy,
    const exec::ExecConfig& exec_config) {
  return exec::run_recovery_campaign_sharded(
      make_recovery_regions(layout, plan, program, profile), strikes, config,
      policy, exec_config);
}

TemporalCampaign::TemporalCampaign(const SpmLayout& layout,
                                   const MappingPlan& plan,
                                   const Program& program,
                                   const ProgramProfile& profile,
                                   const StrikeMultiplicityModel& strikes)
    : program_(program),
      profile_(profile),
      strikes_(strikes),
      schedule_(TransferSchedule::generate(program, profile, plan, layout)) {
  horizon_ = profile.reference_sequence.size();
  FTSPM_REQUIRE(horizon_ > 0, "temporal campaign needs a non-empty trace");

  // Per-region spans plus plain injection surfaces (interleave etc.).
  // The span pointers alias schedule_.spans(), which never changes
  // after this constructor.
  region_spans_.resize(layout.region_count());
  for (const ResidencySpan& span : schedule_.spans())
    region_spans_[span.region].push_back(&span);

  surfaces_.reserve(layout.region_count());
  weights_.reserve(layout.region_count());
  for (RegionId r = 0; r < layout.region_count(); ++r) {
    const SpmRegionSpec& spec = layout.region(r);
    InjectionRegion surface;
    surface.geometry = spec.geometry();
    surface.protection = spec.tech.protection;
    surface.interleave = spec.interleave;
    surface.ace_occupancy = 1.0;  // residency resolved per strike below
    surfaces_.push_back(surface);
    weights_.push_back(static_cast<double>(surface.geometry.physical_bits()));
  }
}

void TemporalCampaign::run_chunk_reference(const CampaignConfig& config,
                                           CampaignShardState& state,
                                           std::uint64_t max_strikes,
                                           CampaignObserver* observer,
                                           SensitivityGrid* grid) const {
  const std::uint64_t end =
      std::min(config.strikes, state.done + max_strikes);
  for (std::uint64_t s = state.done; s < end; ++s) {
    const std::size_t rid = state.rng.next_discrete(weights_);
    const InjectionRegion& surface = surfaces_[rid];
    const std::uint64_t origin =
        state.rng.next_below(surface.geometry.physical_bits());
    const std::uint64_t word =
        origin / surface.geometry.codeword_bits();
    const std::uint64_t when = state.rng.next_below(horizon_);

    // Who holds this word right now?
    const ResidencySpan* occupant = nullptr;
    for (const ResidencySpan* span : region_spans_[rid]) {
      if (span->map_index > when) continue;
      if (span->unmap_index && *span->unmap_index <= when) continue;
      if (word < span->base_word ||
          word >= span->base_word + program_.block(span->block).size_words())
        continue;
      occupant = span;
      break;
    }

    StrikeOutcome outcome = StrikeOutcome::Masked;
    if (occupant != nullptr) {
      const std::uint32_t flips =
          strikes_.sample_flips(state.rng, config.max_flips);
      outcome =
          classify_strike(surface, origin, flips, state.rng, state.scratch);
      if (outcome != StrikeOutcome::Masked &&
          !state.rng.next_bool(
              profile_.ace_fraction(program_, occupant->block)))
        outcome = StrikeOutcome::Masked;
    }
    switch (outcome) {
      case StrikeOutcome::Masked: ++state.partial.masked; break;
      case StrikeOutcome::Dre: ++state.partial.dre; break;
      case StrikeOutcome::Due: ++state.partial.due; break;
      case StrikeOutcome::Sdc: ++state.partial.sdc; break;
    }
    ++state.partial.strikes;
    if (observer != nullptr) observer->on_strike(s, outcome);
    if (grid != nullptr) grid->record(rid, origin, outcome);
  }
  state.done = end;
}

CampaignResult run_temporal_campaign(const SpmLayout& layout,
                                     const MappingPlan& plan,
                                     const Program& program,
                                     const ProgramProfile& profile,
                                     const StrikeMultiplicityModel& strikes,
                                     const CampaignConfig& config,
                                     SensitivityGrid* grid) {
  const TemporalCampaign campaign(layout, plan, program, profile, strikes);
  CampaignShardState state =
      begin_campaign_shard(config.seed ^ TemporalCampaign::kSeedSalt);
  emit_campaign_phase_start("temporal", config);
  CampaignObserver observer(config, "temporal");
  campaign.run_chunk(config, state, config.strikes, &observer, grid);
  emit_campaign_phase_end("temporal", state.partial);
  return state.partial;
}

exec::ShardedRun run_temporal_campaign_parallel(
    const SpmLayout& layout, const MappingPlan& plan, const Program& program,
    const ProgramProfile& profile, const StrikeMultiplicityModel& strikes,
    const CampaignConfig& config, const exec::ExecConfig& exec_config) {
  const TemporalCampaign campaign(layout, plan, program, profile, strikes);
  // One private grid per shard, merged post-join in shard order — the
  // same discipline as the exec runner's delta registries, so the
  // merged grid is jobs-invariant.
  std::vector<SensitivityGrid> grids;
  if (exec_config.sensitivity_buckets != 0) {
    const SensitivityGrid proto = make_sensitivity_grid(
        campaign.surfaces(), exec_config.sensitivity_buckets);
    grids.assign(exec_config.effective_shards(), proto);
  }
  exec::ShardedRun run = exec::run_sharded_campaign(
      config, exec_config, "temporal", TemporalCampaign::kSeedSalt,
      [&](const exec::CampaignShard& shard, CampaignShardState& state,
          std::uint64_t max_strikes) {
        // Tallies into the worker's per-shard delta registry; the
        // runner merges the deltas post-join in shard order.
        CampaignObserver observer(shard.config, "temporal");
        campaign.run_chunk(shard.config, state, max_strikes,
                           obs::enabled() ? &observer : nullptr,
                           grids.empty() ? nullptr : &grids[shard.index]);
      });
  if (!grids.empty()) {
    run.sensitivity = grids.front();
    for (std::size_t i = 1; i < grids.size(); ++i)
      run.sensitivity.merge_from(grids[i]);
  }
  return run;
}

}  // namespace ftspm
