#include "ftspm/core/system_campaign.h"

#include "ftspm/core/transfer_schedule.h"
#include "ftspm/fault/campaign_observer.h"
#include "ftspm/util/rng.h"

#include <algorithm>

#include "ftspm/util/error.h"

namespace ftspm {

std::vector<InjectionRegion> make_injection_regions(
    const SpmLayout& layout, const MappingPlan& plan, const Program& program,
    const ProgramProfile& profile) {
  FTSPM_REQUIRE(plan.block_to_region().size() == program.block_count(),
                "plan does not match program");
  FTSPM_REQUIRE(profile.blocks.size() == program.block_count(),
                "profile does not match program");

  // ACE-weighted bits assigned per region (same weighting as
  // compute_system_avf, before the region-surface cap).
  std::vector<double> ace_bits(layout.region_count(), 0.0);
  for (const BlockMapping& m : plan.mappings()) {
    if (!m.mapped()) continue;
    const RegionGeometry geom = layout.region(m.region).geometry();
    ace_bits[m.region] +=
        static_cast<double>(program.block(m.block).size_words()) *
        geom.codeword_bits() *
        profile.ace_fraction(program, m.block);
  }

  std::vector<InjectionRegion> regions;
  regions.reserve(layout.region_count());
  for (RegionId r = 0; r < layout.region_count(); ++r) {
    const SpmRegionSpec& spec = layout.region(r);
    InjectionRegion region;
    region.geometry = spec.geometry();
    region.protection = spec.tech.protection;
    region.interleave = spec.interleave;
    const double surface = static_cast<double>(region.geometry.physical_bits());
    region.ace_occupancy = std::min(1.0, ace_bits[r] / surface);
    regions.push_back(region);
  }
  return regions;
}

CampaignResult run_system_campaign(const SpmLayout& layout,
                                   const MappingPlan& plan,
                                   const Program& program,
                                   const ProgramProfile& profile,
                                   const StrikeMultiplicityModel& strikes,
                                   const CampaignConfig& config) {
  return run_campaign(
      make_injection_regions(layout, plan, program, profile), strikes,
      config);
}

CampaignResult run_temporal_campaign(const SpmLayout& layout,
                                     const MappingPlan& plan,
                                     const Program& program,
                                     const ProgramProfile& profile,
                                     const StrikeMultiplicityModel& strikes,
                                     const CampaignConfig& config) {
  const TransferSchedule schedule =
      TransferSchedule::generate(program, profile, plan, layout);
  const std::uint64_t horizon = profile.reference_sequence.size();
  FTSPM_REQUIRE(horizon > 0, "temporal campaign needs a non-empty trace");

  // Per-region spans plus plain injection surfaces (interleave etc.).
  std::vector<std::vector<const ResidencySpan*>> region_spans(
      layout.region_count());
  for (const ResidencySpan& span : schedule.spans())
    region_spans[span.region].push_back(&span);

  std::vector<InjectionRegion> surfaces;
  std::vector<double> weights;
  surfaces.reserve(layout.region_count());
  for (RegionId r = 0; r < layout.region_count(); ++r) {
    const SpmRegionSpec& spec = layout.region(r);
    InjectionRegion surface;
    surface.geometry = spec.geometry();
    surface.protection = spec.tech.protection;
    surface.interleave = spec.interleave;
    surface.ace_occupancy = 1.0;  // residency resolved per strike below
    surfaces.push_back(surface);
    weights.push_back(static_cast<double>(surface.geometry.physical_bits()));
  }

  Rng rng(config.seed ^ 0x7e3a11ce);
  CampaignResult result;
  result.strikes = config.strikes;
  CampaignObserver observer(config, "temporal");
  for (std::uint64_t s = 0; s < config.strikes; ++s) {
    const std::size_t rid = rng.next_discrete(weights);
    const InjectionRegion& surface = surfaces[rid];
    const std::uint64_t origin =
        rng.next_below(surface.geometry.physical_bits());
    const std::uint64_t word =
        origin / surface.geometry.codeword_bits();
    const std::uint64_t when = rng.next_below(horizon);

    // Who holds this word right now?
    const ResidencySpan* occupant = nullptr;
    for (const ResidencySpan* span : region_spans[rid]) {
      if (span->map_index > when) continue;
      if (span->unmap_index && *span->unmap_index <= when) continue;
      if (word < span->base_word ||
          word >= span->base_word + program.block(span->block).size_words())
        continue;
      occupant = span;
      break;
    }

    StrikeOutcome outcome = StrikeOutcome::Masked;
    if (occupant != nullptr) {
      const std::uint32_t flips =
          strikes.sample_flips(rng, config.max_flips);
      outcome = classify_strike(surface, origin, flips, rng);
      if (outcome != StrikeOutcome::Masked &&
          !rng.next_bool(profile.ace_fraction(program, occupant->block)))
        outcome = StrikeOutcome::Masked;
    }
    switch (outcome) {
      case StrikeOutcome::Masked: ++result.masked; break;
      case StrikeOutcome::Dre: ++result.dre; break;
      case StrikeOutcome::Due: ++result.due; break;
      case StrikeOutcome::Sdc: ++result.sdc; break;
    }
    observer.on_strike(s, outcome);
  }
  return result;
}

}  // namespace ftspm
