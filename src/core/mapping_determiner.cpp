#include "ftspm/core/mapping_determiner.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <vector>

#include "ftspm/obs/metrics.h"
#include "ftspm/obs/trace_sink.h"
#include "ftspm/util/error.h"

namespace ftspm {

const char* to_string(OptimizationPriority priority) noexcept {
  switch (priority) {
    case OptimizationPriority::Reliability: return "reliability";
    case OptimizationPriority::Performance: return "performance";
    case OptimizationPriority::Power: return "power";
    case OptimizationPriority::Endurance: return "endurance";
  }
  return "?";
}

MappingDeterminer::MappingDeterminer(const SpmLayout& layout,
                                     const SimConfig& sim, MdaConfig config)
    : layout_(layout), sim_(sim), config_(config) {
  for (RegionId r = 0; r < layout_.region_count(); ++r) {
    const SpmRegionSpec& spec = layout_.region(r);
    if (spec.space == SpmSpace::Instruction) {
      FTSPM_REQUIRE(i_region_ == kNoRegion,
                    "MDA expects a single instruction region");
      i_region_ = r;
      continue;
    }
    switch (spec.tech.protection) {
      case ProtectionKind::Immune:
        FTSPM_REQUIRE(d_stt_ == kNoRegion,
                      "MDA expects a single STT-RAM data region");
        d_stt_ = r;
        break;
      case ProtectionKind::SecDed:
        d_secded_ = r;
        break;
      case ProtectionKind::Parity:
        d_parity_ = r;
        break;
      case ProtectionKind::None:
        // Unprotected data SRAM has no role in Algorithm 1.
        break;
    }
  }
  FTSPM_REQUIRE(i_region_ != kNoRegion, "layout lacks an instruction region");
  FTSPM_REQUIRE(d_stt_ != kNoRegion, "layout lacks an STT-RAM data region");
  FTSPM_REQUIRE(config_.thresholds.performance_overhead >= 0.0 &&
                    config_.thresholds.energy_overhead >= 0.0,
                "thresholds must be non-negative");
}

namespace {

/// Step 3/4 victim score: evicting the block with the *smallest* score
/// first. Reliability keeps the paper's rule (smallest susceptibility);
/// the other priorities negate a benefit so that the largest benefit is
/// evicted first.
/// Records each MDA placement decision on its own trace lane
/// (timestamped by decision index — the algorithm has no cycle domain)
/// and tallies per-step eviction counters. No-op when observability is
/// disabled.
class MdaObserver {
 public:
  MdaObserver() {
    if (obs::enabled() && (trace_ = obs::current_trace()) != nullptr)
      lane_ = trace_->lane("mda", "decisions");
  }

  void decision(const char* step, const std::string& block_name,
                double score) {
    FTSPM_OBS_COUNT(std::string("mda.") + step, 1);
    if (trace_ != nullptr)
      trace_->instant(lane_, std::string(step) + " " + block_name, index_,
                      {obs::TraceArg::num("score", score)});
    ++index_;
  }

 private:
  obs::TraceEventSink* trace_ = nullptr;
  obs::TraceEventSink::LaneId lane_ = 0;
  std::uint64_t index_ = 0;
};

double victim_score(OptimizationPriority priority, const BlockProfile& bp,
                    const TechnologyParams& stt) {
  switch (priority) {
    case OptimizationPriority::Reliability:
      return bp.susceptibility();
    case OptimizationPriority::Performance:
      return -static_cast<double>(bp.writes) *
             (stt.write_latency_cycles - 1.0);
    case OptimizationPriority::Power:
      return -(static_cast<double>(bp.writes) * stt.write_energy_pj +
               static_cast<double>(bp.reads) * stt.read_energy_pj * 0.1);
    case OptimizationPriority::Endurance:
      return -static_cast<double>(bp.writes);
  }
  return 0.0;
}

}  // namespace

MappingPlan MappingDeterminer::determine(const Program& program,
                                         const ProgramProfile& profile) const {
  FTSPM_REQUIRE(profile.blocks.size() == program.block_count(),
                "profile does not match program");

  MdaObserver observer;
  std::vector<BlockMapping> mappings(program.block_count());
  for (std::size_t i = 0; i < mappings.size(); ++i)
    mappings[i] = BlockMapping{static_cast<BlockId>(i), kNoRegion,
                               MappingReason::Mapped};

  // ---- step 1a: code blocks into the I-SPM (hottest first) ----------
  {
    std::vector<BlockId> code;
    for (std::size_t i = 0; i < program.block_count(); ++i)
      if (program.block(static_cast<BlockId>(i)).is_code())
        code.push_back(static_cast<BlockId>(i));
    std::stable_sort(code.begin(), code.end(), [&](BlockId a, BlockId b) {
      return profile.blocks[a].reads > profile.blocks[b].reads;
    });
    const std::uint64_t capacity = layout_.region(i_region_).data_bytes;
    std::uint64_t used = 0;
    for (BlockId id : code) {
      const std::uint64_t size = program.block(id).size_bytes;
      if (size > capacity) {
        mappings[id].reason = MappingReason::TooLarge;
      } else if (used + size <= capacity) {
        mappings[id].region = i_region_;
        used += size;
      } else {
        mappings[id].reason = MappingReason::CodeCapacity;
      }
    }
  }

  // ---- step 1b: every data block that fits goes to STT-RAM ----------
  const SpmRegionSpec& stt = layout_.region(d_stt_);
  for (std::size_t i = 0; i < program.block_count(); ++i) {
    const Block& blk = program.block(static_cast<BlockId>(i));
    if (!blk.is_data()) continue;
    if (blk.size_bytes <= stt.data_bytes)
      mappings[i].region = d_stt_;
    else
      mappings[i].reason = MappingReason::TooLarge;
  }

  auto region_vector = [&] {
    std::vector<RegionId> v(mappings.size());
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = mappings[i].region;
    return v;
  };
  auto stt_data_blocks = [&] {
    std::vector<BlockId> v;
    for (const auto& m : mappings)
      if (m.region == d_stt_) v.push_back(m.block);
    return v;
  };

  // ---- steps 2-4: threshold-driven eviction loops --------------------
  const ScenarioEstimator estimator(layout_, sim_, program, profile,
                                    config_.estimator);
  auto evict_until = [&](double threshold, auto overhead_of,
                         MappingReason reason, const char* step) {
    while (true) {
      std::vector<BlockId> resident = stt_data_blocks();
      if (resident.empty()) return;
      const std::vector<RegionId> scenario = region_vector();
      if (overhead_of(scenario) <= threshold) return;
      // Victim: smallest score; ties by block id for determinism.
      BlockId victim = resident.front();
      double best = victim_score(config_.priority, profile.blocks[victim],
                                 stt.tech);
      for (BlockId id : resident) {
        const double s =
            victim_score(config_.priority, profile.blocks[id], stt.tech);
        if (s < best) {
          best = s;
          victim = id;
        }
      }
      mappings[victim].region = kNoRegion;
      mappings[victim].reason = reason;
      observer.decision(step, program.block(victim).name, best);
    }
  };

  evict_until(
      config_.thresholds.performance_overhead,
      [&](const std::vector<RegionId>& s) {
        return estimator.performance_overhead(s);
      },
      MappingReason::EvictedPerformance, "evict.performance");
  evict_until(
      config_.thresholds.energy_overhead,
      [&](const std::vector<RegionId>& s) {
        return estimator.energy_overhead(s);
      },
      MappingReason::EvictedEnergy, "evict.energy");

  // ---- step 5: endurance filter --------------------------------------
  for (BlockId id : stt_data_blocks()) {
    const BlockProfile& bp = profile.blocks[id];
    const bool block_hot =
        bp.writes > config_.thresholds.write_cycles_threshold;
    const bool word_hot =
        config_.thresholds.word_write_threshold > 0 &&
        bp.max_word_writes > config_.thresholds.word_write_threshold;
    if (block_hot || word_hot) {
      mappings[id].region = kNoRegion;
      mappings[id].reason = MappingReason::EvictedEndurance;
      observer.decision("evict.endurance", program.block(id).name,
                        static_cast<double>(bp.writes));
    }
  }

  // ---- step 6: split evictees around the average susceptibility ------
  std::vector<BlockId> evicted;
  for (const auto& m : mappings) {
    if (m.reason == MappingReason::EvictedPerformance ||
        m.reason == MappingReason::EvictedEnergy ||
        m.reason == MappingReason::EvictedEndurance)
      evicted.push_back(m.block);
  }
  if (!evicted.empty()) {
    const double avg =
        std::accumulate(evicted.begin(), evicted.end(), 0.0,
                        [&](double acc, BlockId id) {
                          return acc + profile.blocks[id].susceptibility();
                        }) /
        static_cast<double>(evicted.size());
    auto fits = [&](BlockId id, RegionId r) {
      return r != kNoRegion &&
             program.block(id).size_bytes <= layout_.region(r).data_bytes;
    };
    for (BlockId id : evicted) {
      const bool high = profile.blocks[id].susceptibility() >= avg;
      const RegionId preferred = high ? d_secded_ : d_parity_;
      const RegionId fallback = high ? d_parity_ : d_secded_;
      if (fits(id, preferred)) {
        mappings[id].region = preferred;
        mappings[id].reason = preferred == d_secded_
                                  ? MappingReason::ReassignedSecDed
                                  : MappingReason::ReassignedParity;
      } else if (fits(id, fallback)) {
        mappings[id].region = fallback;
        mappings[id].reason = fallback == d_secded_
                                  ? MappingReason::ReassignedSecDed
                                  : MappingReason::ReassignedParity;
      } else {
        mappings[id].reason = MappingReason::NoSramRoom;
      }
      observer.decision(mappings[id].reason == MappingReason::NoSramRoom
                            ? "no_sram_room"
                            : (mappings[id].region == d_secded_
                                   ? "reassign.secded"
                                   : "reassign.parity"),
                        program.block(id).name,
                        profile.blocks[id].susceptibility());
    }

    // Post-placement check: Algorithm 1 sizes evictees against the
    // region, not against each other, so step 6 can overcommit the
    // small SRAM regions (the paper's own case study places two
    // arrays in the one-array-sized SEC-DED region). Mild overcommit
    // is fine — the on-line phase time-shares the region — but
    // fine-grained interleaving would thrash, so while the estimated
    // performance overhead stays above threshold, demote the least
    // susceptible SRAM-placed evictee to the cache path.
    while (true) {
      const std::vector<RegionId> scenario = region_vector();
      if (estimator.performance_overhead(scenario) <=
          config_.thresholds.performance_overhead)
        break;
      std::optional<BlockId> victim;
      double best = 0.0;
      for (BlockId id : evicted) {
        if (mappings[id].region != d_secded_ &&
            mappings[id].region != d_parity_)
          continue;
        const double s = profile.blocks[id].susceptibility();
        if (!victim || s < best) {
          best = s;
          victim = id;
        }
      }
      if (!victim) break;
      mappings[*victim].region = kNoRegion;
      mappings[*victim].reason = MappingReason::DemotedTimeSharing;
      observer.decision("demote.time_sharing",
                        program.block(*victim).name, best);
    }
  }

  // ---- step 7 (extension): capacity-aware STT-RAM backfill -----------
  // Steps 3-4 evict by susceptibility without regard to region
  // pressure, so an eviction cascade can leave spare STT-RAM capacity
  // while endurance-*safe* blocks sit in the scarce SRAM regions or out
  // in the cache. Returning such a block to STT-RAM is a pure win —
  // immune cells, cheap reads — so refill spare capacity with the most
  // susceptible endurance-safe candidates, keeping the threshold
  // overheads satisfied.
  {
    std::uint64_t stt_used = 0;
    for (const auto& m : mappings)
      if (m.region == d_stt_) stt_used += program.block(m.block).size_bytes;

    std::vector<BlockId> candidates;
    for (const auto& m : mappings) {
      const Block& blk = program.block(m.block);
      if (!blk.is_data() || m.region == d_stt_) continue;
      if (blk.size_bytes > stt.data_bytes) continue;
      const BlockProfile& bp = profile.blocks[m.block];
      if (bp.writes > config_.thresholds.write_cycles_threshold) continue;
      if (config_.thresholds.word_write_threshold > 0 &&
          bp.max_word_writes > config_.thresholds.word_write_threshold)
        continue;
      candidates.push_back(m.block);
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](BlockId a, BlockId b) {
                       return profile.blocks[a].susceptibility() >
                              profile.blocks[b].susceptibility();
                     });
    for (BlockId id : candidates) {
      const Block& blk = program.block(id);
      if (stt_used + blk.size_bytes > stt.data_bytes) continue;
      const BlockMapping saved = mappings[id];
      mappings[id].region = d_stt_;
      mappings[id].reason = MappingReason::RestoredStt;
      const std::vector<RegionId> scenario = region_vector();
      if (estimator.performance_overhead(scenario) >
              config_.thresholds.performance_overhead ||
          estimator.energy_overhead(scenario) >
              config_.thresholds.energy_overhead) {
        mappings[id] = saved;  // revert: backfill must stay in budget
        continue;
      }
      stt_used += blk.size_bytes;
      observer.decision("restore.stt", blk.name,
                        profile.blocks[id].susceptibility());
    }
  }

  return MappingPlan(layout_, std::move(mappings));
}

}  // namespace ftspm
