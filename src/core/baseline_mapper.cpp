#include "ftspm/core/baseline_mapper.h"

#include <algorithm>
#include <vector>

#include "ftspm/util/error.h"

namespace ftspm {

MappingPlan determine_baseline_mapping(const SpmLayout& layout,
                                       const Program& program,
                                       const ProgramProfile& profile) {
  FTSPM_REQUIRE(profile.blocks.size() == program.block_count(),
                "profile does not match program");
  RegionId i_region = kNoRegion;
  RegionId d_region = kNoRegion;
  for (RegionId r = 0; r < layout.region_count(); ++r) {
    if (layout.region(r).space == SpmSpace::Instruction) {
      FTSPM_REQUIRE(i_region == kNoRegion,
                    "baseline layout must have one instruction region");
      i_region = r;
    } else {
      FTSPM_REQUIRE(d_region == kNoRegion,
                    "baseline layout must have one data region");
      d_region = r;
    }
  }
  FTSPM_REQUIRE(i_region != kNoRegion && d_region != kNoRegion,
                "baseline layout needs instruction and data regions");

  std::vector<BlockMapping> mappings(program.block_count());
  for (std::size_t i = 0; i < mappings.size(); ++i)
    mappings[i] = BlockMapping{static_cast<BlockId>(i), kNoRegion,
                               MappingReason::Mapped};

  // Rank all blocks by access density (accesses per word), descending.
  std::vector<BlockId> order(program.block_count());
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = static_cast<BlockId>(i);
  auto density = [&](BlockId id) {
    const Block& blk = program.block(id);
    return static_cast<double>(profile.blocks[id].accesses()) /
           static_cast<double>(blk.size_words());
  };
  std::stable_sort(order.begin(), order.end(), [&](BlockId a, BlockId b) {
    return density(a) > density(b);
  });

  std::uint64_t i_used = 0, d_used = 0;
  const std::uint64_t i_cap = layout.region(i_region).data_bytes;
  const std::uint64_t d_cap = layout.region(d_region).data_bytes;
  for (BlockId id : order) {
    const Block& blk = program.block(id);
    const std::uint64_t size = blk.size_bytes;
    if (blk.is_code()) {
      if (size > i_cap) {
        mappings[id].reason = MappingReason::TooLarge;
      } else if (i_used + size <= i_cap) {
        mappings[id].region = i_region;
        i_used += size;
      } else {
        mappings[id].reason = MappingReason::CodeCapacity;
      }
    } else {
      if (size > d_cap) {
        mappings[id].reason = MappingReason::TooLarge;
      } else if (d_used + size <= d_cap) {
        mappings[id].region = d_region;
        d_used += size;
      } else {
        mappings[id].reason = MappingReason::NoSramRoom;
      }
    }
  }
  return MappingPlan(layout, std::move(mappings));
}

}  // namespace ftspm
