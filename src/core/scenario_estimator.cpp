#include "ftspm/core/scenario_estimator.h"

#include <algorithm>

#include "ftspm/util/error.h"

namespace ftspm {

ScenarioEstimator::ScenarioEstimator(const SpmLayout& layout,
                                     const SimConfig& sim,
                                     const Program& program,
                                     const ProgramProfile& profile,
                                     EstimatorConfig config)
    : layout_(layout),
      sim_(sim),
      program_(program),
      profile_(profile),
      config_(config) {
  FTSPM_REQUIRE(config_.cache_hit_rate >= 0.0 && config_.cache_hit_rate <= 1.0,
                "hit rate out of [0,1]");
  FTSPM_REQUIRE(profile_.blocks.size() == program_.block_count(),
                "profile does not match program");
  // Nominal profile time charges (gap + 1) per access; the pure-compute
  // share is therefore total - accesses.
  compute_gap_cycles_ = profile_.total_cycles - profile_.total_accesses;
  ideal_.cycles = static_cast<double>(compute_gap_cycles_) +
                  static_cast<double>(profile_.total_accesses);
  ideal_.dynamic_energy_pj =
      static_cast<double>(profile_.total_accesses) *
      sim_.cache_access_energy_pj;
}

ScenarioEstimate ScenarioEstimator::estimate(
    std::span<const RegionId> block_to_region) const {
  FTSPM_REQUIRE(block_to_region.size() == program_.block_count(),
                "mapping must cover every block");
  ScenarioEstimate est;
  est.cycles = static_cast<double>(compute_gap_cycles_);

  const std::uint32_t line_words = sim_.dcache.line_bytes / 8;
  // Per-region assigned payload for the time-sharing term.
  std::vector<std::uint64_t> region_words(layout_.region_count(), 0);

  for (std::size_t i = 0; i < program_.block_count(); ++i) {
    const BlockProfile& bp = profile_.blocks[i];
    const RegionId rid = block_to_region[i];
    const double reads = static_cast<double>(bp.reads);
    const double writes = static_cast<double>(bp.writes);
    if (rid != kNoRegion) {
      const TechnologyParams& t = layout_.region(rid).tech;
      est.cycles += reads * t.read_latency_cycles +
                    writes * t.write_latency_cycles;
      est.dynamic_energy_pj +=
          reads * t.read_energy_pj + writes * t.write_energy_pj;
      region_words[rid] += program_.block(static_cast<BlockId>(i)).size_words();
    } else {
      const double accesses = reads + writes;
      const double miss = 1.0 - config_.cache_hit_rate;
      est.cycles += accesses * (sim_.dcache.hit_latency_cycles +
                                miss * sim_.dram.line_latency_cycles);
      est.dynamic_energy_pj +=
          accesses * (sim_.cache_access_energy_pj +
                      miss * line_words * sim_.dram.read_energy_pj);
    }
  }

  // Time-sharing: a region asked to hold more block bytes than it has
  // is dynamically managed at run time. Replay the profiled block-
  // reference sequence through an LRU residency model per overflowing
  // region — the same discipline the simulator's on-line phase uses —
  // to count the DMA words the sharing will cost.
  for (RegionId r = 0; r < layout_.region_count(); ++r) {
    const std::uint64_t capacity = layout_.region(r).data_words();
    if (region_words[r] <= capacity || region_words[r] == 0) continue;
    const double dma_words =
        replay_region_faults(block_to_region, r) *
        config_.thrash_dirty_factor;
    const TechnologyParams& t = layout_.region(r).tech;
    const double per_word_cycles = std::max<double>(
        sim_.dram.word_latency_cycles, t.write_latency_cycles);
    est.cycles += dma_words * per_word_cycles;
    est.dynamic_energy_pj +=
        dma_words * (sim_.dram.read_energy_pj + t.write_energy_pj);
  }
  return est;
}

double ScenarioEstimator::replay_region_faults(
    std::span<const RegionId> block_to_region, RegionId region) const {
  const std::uint64_t capacity = layout_.region(region).data_words();
  // LRU residency over the reference sequence, restricted to the
  // blocks assigned to `region`.
  std::vector<BlockId> resident;  // front = least recently used
  std::uint64_t used = 0;
  double fault_words = 0.0;
  for (BlockId id : profile_.reference_sequence) {
    if (block_to_region[id] != region) continue;
    auto it = std::find(resident.begin(), resident.end(), id);
    if (it != resident.end()) {
      resident.erase(it);
      resident.push_back(id);  // refresh recency
      continue;
    }
    const std::uint64_t need = program_.block(id).size_words();
    while (used + need > capacity && !resident.empty()) {
      used -= program_.block(resident.front()).size_words();
      resident.erase(resident.begin());
    }
    fault_words += static_cast<double>(need);
    used += need;
    resident.push_back(id);
  }
  return fault_words;
}

ScenarioEstimate ScenarioEstimator::matched_ideal(
    std::span<const RegionId> block_to_region) const {
  FTSPM_REQUIRE(block_to_region.size() == program_.block_count(),
                "mapping must cover every block");
  ScenarioEstimate est;
  est.cycles = static_cast<double>(compute_gap_cycles_);
  const std::uint32_t line_words = sim_.dcache.line_bytes / 8;
  for (std::size_t i = 0; i < program_.block_count(); ++i) {
    const BlockProfile& bp = profile_.blocks[i];
    const double accesses = static_cast<double>(bp.accesses());
    if (block_to_region[i] != kNoRegion) {
      est.cycles += accesses;  // 1-cycle unprotected SRAM
      est.dynamic_energy_pj += accesses * sim_.cache_access_energy_pj;
    } else {
      const double miss = 1.0 - config_.cache_hit_rate;
      est.cycles += accesses * (sim_.dcache.hit_latency_cycles +
                                miss * sim_.dram.line_latency_cycles);
      est.dynamic_energy_pj +=
          accesses * (sim_.cache_access_energy_pj +
                      miss * line_words * sim_.dram.read_energy_pj);
    }
  }
  return est;
}

double ScenarioEstimator::performance_overhead(
    std::span<const RegionId> block_to_region) const {
  const ScenarioEstimate est = estimate(block_to_region);
  const ScenarioEstimate ref = matched_ideal(block_to_region);
  return (est.cycles - ref.cycles) / ref.cycles;
}

double ScenarioEstimator::energy_overhead(
    std::span<const RegionId> block_to_region) const {
  const ScenarioEstimate est = estimate(block_to_region);
  const ScenarioEstimate ref = matched_ideal(block_to_region);
  return (est.dynamic_energy_pj - ref.dynamic_energy_pj) /
         ref.dynamic_energy_pj;
}

}  // namespace ftspm
