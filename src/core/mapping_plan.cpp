#include "ftspm/core/mapping_plan.h"

#include "ftspm/util/error.h"

namespace ftspm {

const char* to_string(MappingReason reason) noexcept {
  switch (reason) {
    case MappingReason::Mapped: return "mapped";
    case MappingReason::TooLarge: return "too large for SPM";
    case MappingReason::EvictedPerformance: return "evicted (performance)";
    case MappingReason::EvictedEnergy: return "evicted (energy)";
    case MappingReason::EvictedEndurance: return "evicted (endurance)";
    case MappingReason::ReassignedSecDed: return "reassigned to SEC-DED";
    case MappingReason::ReassignedParity: return "reassigned to parity";
    case MappingReason::NoSramRoom: return "no SRAM region fits";
    case MappingReason::CodeCapacity: return "I-SPM capacity";
    case MappingReason::DemotedTimeSharing: return "demoted (time-sharing)";
    case MappingReason::RestoredStt: return "restored to STT-RAM";
  }
  return "?";
}

MappingPlan::MappingPlan(const SpmLayout& layout,
                         std::vector<BlockMapping> mappings)
    : layout_name_(layout.name()), mappings_(std::move(mappings)) {
  FTSPM_REQUIRE(!mappings_.empty(), "plan must cover at least one block");
  block_to_region_.resize(mappings_.size(), kNoRegion);
  for (std::size_t i = 0; i < mappings_.size(); ++i) {
    const BlockMapping& m = mappings_[i];
    FTSPM_REQUIRE(m.block == i, "mappings must be in block-id order");
    if (m.region != kNoRegion) {
      FTSPM_REQUIRE(m.region < layout.region_count(),
                    "mapping references unknown region");
    }
    block_to_region_[i] = m.region;
  }
}

const BlockMapping& MappingPlan::mapping(BlockId id) const {
  FTSPM_REQUIRE(id < mappings_.size(), "block id out of range");
  return mappings_[id];
}

std::size_t MappingPlan::mapped_count() const noexcept {
  std::size_t n = 0;
  for (const auto& m : mappings_)
    if (m.mapped()) ++n;
  return n;
}

}  // namespace ftspm
