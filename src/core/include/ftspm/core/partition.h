// Multi-task SPM partitioning (extension).
//
// The paper evaluates one program owning the whole SPM; the embedded
// systems it targets run task sets (its related work [5], Takase et
// al. DATE'10, partitions SPM space among prioritised preemptive
// tasks). This module carves the hybrid FTSPM complement into per-task
// sub-SPMs — every region split in proportion to each task's weighted
// memory demand, quantised to an allocation granule — and then runs
// the ordinary per-task pipeline (MDA, simulation, AVF, endurance)
// inside each task's share. Spatial partitioning keeps the
// fault-isolation story intact: a task's strikes land in its own
// regions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ftspm/core/spm_config.h"
#include "ftspm/core/systems.h"
#include "ftspm/workload/trace.h"

namespace ftspm {

/// One task in the set.
struct TaskSpec {
  const Workload* workload = nullptr;
  double weight = 1.0;  ///< Relative priority/importance (> 0).
};

struct PartitionConfig {
  /// Allocation granule for every region split (bytes).
  std::uint64_t granule_bytes = 512;
  /// Floor: every task receives at least one granule of every region
  /// (so every task keeps a working hybrid SPM).
  bool guarantee_floor = true;
};

/// A task's carved share and its evaluation inside it.
struct TaskPartition {
  std::string task_name;
  double weight = 1.0;
  double demand = 0.0;          ///< Weighted demand used for the split.
  FtspmDimensions dims;         ///< The task's sub-SPM.
  SystemResult result;          ///< FTSPM pipeline inside the share.
};

struct PartitionResult {
  std::vector<TaskPartition> tasks;

  /// Access-weighted mean vulnerability across the task set.
  double weighted_vulnerability() const;
  /// Sum of per-task SPM dynamic energies.
  double total_dynamic_energy_pj() const;
};

/// Splits `total` (the shared complement) among the tasks and runs the
/// per-task pipeline. Demand per task = weight x total profiled
/// accesses. Throws on empty task sets, null workloads, or non-positive
/// weights.
PartitionResult partition_and_evaluate(
    const std::vector<TaskSpec>& tasks,
    const TechnologyLibrary& lib = TechnologyLibrary(),
    const MdaConfig& mda = {}, const FtspmDimensions& total = {},
    const PartitionConfig& config = {});

/// The split itself, exposed for tests and tooling: returns one
/// FtspmDimensions per task, each region summing to the total (up to
/// granule rounding absorbed by the largest-demand task).
std::vector<FtspmDimensions> partition_dimensions(
    const std::vector<double>& demands, const FtspmDimensions& total,
    const PartitionConfig& config = {});

}  // namespace ftspm
