// System-level Monte-Carlo fault campaign.
//
// Bridges the mapped system to the bit-level injector: each SPM region
// becomes an injection surface whose ACE occupancy is the
// area-and-ACE-weighted share of architecturally-required bits it
// holds (capped at 1 for time-shared regions). Running a campaign over
// these surfaces measures the same quantity `compute_system_avf`
// evaluates analytically — with the real parity/SEC-DED decoders in
// the loop instead of Eqs. 4-7's single-codeword assumption. Agreement
// between the two is asserted by tests and quantified by the
// `ablation_mc_vs_avf` bench.
#pragma once

#include <cstdint>
#include <vector>

#include "ftspm/core/mapping_plan.h"
#include "ftspm/core/transfer_schedule.h"
#include "ftspm/exec/parallel_campaign.h"
#include "ftspm/fault/injector.h"
#include "ftspm/fault/recovery.h"
#include "ftspm/profile/profiler.h"
#include "ftspm/sim/simulator.h"
#include "ftspm/sim/spm.h"

namespace ftspm {

/// One injection surface per SPM region, with occupancy derived from
/// the plan and the profiled ACE fractions.
std::vector<InjectionRegion> make_injection_regions(
    const SpmLayout& layout, const MappingPlan& plan, const Program& program,
    const ProgramProfile& profile);

/// Convenience wrapper: builds the surfaces and runs the campaign.
CampaignResult run_system_campaign(const SpmLayout& layout,
                                   const MappingPlan& plan,
                                   const Program& program,
                                   const ProgramProfile& profile,
                                   const StrikeMultiplicityModel& strikes,
                                   const CampaignConfig& config = {});

/// Sharded/parallel run_system_campaign (see ftspm/exec): for a fixed
/// (seed, strikes, shard count) the merged counters are bit-identical
/// across any jobs value, and exec.shards == 1 matches the serial
/// function exactly.
exec::ShardedRun run_system_campaign_parallel(
    const SpmLayout& layout, const MappingPlan& plan, const Program& program,
    const ProgramProfile& profile, const StrikeMultiplicityModel& strikes,
    const CampaignConfig& config, const exec::ExecConfig& exec_config);

/// A RecoveryPolicy whose DMA re-fetch scalars come from `sim`'s
/// transfer-cost model, so recovery campaigns book re-fetches exactly
/// as the simulator books block map-ins.
RecoveryPolicy make_recovery_policy(const SimConfig& sim, bool recover,
                                    std::uint64_t scrub_interval);

/// One recovery surface per SPM region: the injection surface from
/// make_injection_regions plus what the recovery pipeline needs —
/// the region's technology (write-back and scrub costs), the fraction
/// of mapped words that are dirty/stack (no valid off-chip copy, so a
/// DUE there is unrecoverable), the mean mapped-block size as the
/// re-fetch transfer length, and the scrub flag (SEC-DED arrays and
/// technologies with `needs_scrub`).
std::vector<RecoveryRegion> make_recovery_regions(
    const SpmLayout& layout, const MappingPlan& plan, const Program& program,
    const ProgramProfile& profile);

/// Convenience wrapper: builds the recovery surfaces and runs the
/// live-array campaign serially (see fault/recovery.h for semantics).
RecoveryResult run_recovery_system_campaign(
    const SpmLayout& layout, const MappingPlan& plan, const Program& program,
    const ProgramProfile& profile, const StrikeMultiplicityModel& strikes,
    const CampaignConfig& config, const RecoveryPolicy& policy);

/// Sharded/parallel run_recovery_system_campaign; same determinism
/// contract as run_system_campaign_parallel (jobs-invariant, shards
/// merged in index order).
exec::RecoveryShardedRun run_recovery_system_campaign_parallel(
    const SpmLayout& layout, const MappingPlan& plan, const Program& program,
    const ProgramProfile& profile, const StrikeMultiplicityModel& strikes,
    const CampaignConfig& config, const RecoveryPolicy& policy,
    const exec::ExecConfig& exec_config);

/// Precomputed read-only context for the temporal campaign: the
/// transfer schedule, per-region residency spans, and the injection
/// surfaces. Building it once and sharing it across shards is what
/// makes the parallel temporal campaign cheap — all members are
/// immutable after construction, so concurrent run_chunk calls on
/// distinct states are race-free.
class TemporalCampaign {
 public:
  /// Historical seed salt of the serial temporal campaign; applied to
  /// every shard seed so shard_count == 1 reproduces it exactly.
  static constexpr std::uint64_t kSeedSalt = 0x7e3a11ce;

  TemporalCampaign(const SpmLayout& layout, const MappingPlan& plan,
                   const Program& program, const ProgramProfile& profile,
                   const StrikeMultiplicityModel& strikes);
  TemporalCampaign(const TemporalCampaign&) = delete;
  TemporalCampaign& operator=(const TemporalCampaign&) = delete;

  /// Advances `state` by up to `max_strikes` temporal strikes,
  /// stopping at config.strikes. RNG consumption matches the serial
  /// loop draw for draw, so any chunking schedule yields identical
  /// counters. The observer (nullable) sees absolute strike indices;
  /// `grid` (nullable, see fault/sensitivity.h) records each strike's
  /// origin and final outcome without affecting results.
  void run_chunk(const CampaignConfig& config, CampaignShardState& state,
                 std::uint64_t max_strikes,
                 CampaignObserver* observer = nullptr,
                 SensitivityGrid* grid = nullptr) const;

  /// The original strike-at-a-time loop, kept verbatim as the oracle
  /// run_chunk (the batched engine, system_campaign_batch.cpp) is
  /// pinned against: same draws, counters, observer calls, and grid
  /// records for every chunk schedule.
  void run_chunk_reference(const CampaignConfig& config,
                           CampaignShardState& state,
                           std::uint64_t max_strikes,
                           CampaignObserver* observer = nullptr,
                           SensitivityGrid* grid = nullptr) const;

  /// The injection surfaces (one per SPM region, in region order) the
  /// campaign strikes — what make_sensitivity_grid buckets over.
  const std::vector<InjectionRegion>& surfaces() const noexcept {
    return surfaces_;
  }

 private:
  const Program& program_;
  const ProgramProfile& profile_;
  const StrikeMultiplicityModel& strikes_;
  TransferSchedule schedule_;
  std::vector<std::vector<const ResidencySpan*>> region_spans_;
  std::vector<InjectionRegion> surfaces_;
  std::vector<double> weights_;
  std::uint64_t horizon_ = 0;
};

/// Temporal campaign: instead of folding residency into a static
/// occupancy probability, each strike samples an *instant* of the
/// execution (an index into the profiled reference sequence), resolves
/// which block — if any — occupies the struck word at that instant
/// using the transfer schedule's residency spans and addresses, and
/// only then classifies the upset with the real codecs and the
/// occupant's ACE fraction. Strikes into unoccupied SPM words are
/// masked. This is the highest-fidelity reliability path in the
/// repository; the static campaign and the analytic Eqs. 1-7 are its
/// successively coarser approximations, and tests assert the three
/// agree in that order.
CampaignResult run_temporal_campaign(const SpmLayout& layout,
                                     const MappingPlan& plan,
                                     const Program& program,
                                     const ProgramProfile& profile,
                                     const StrikeMultiplicityModel& strikes,
                                     const CampaignConfig& config = {},
                                     SensitivityGrid* grid = nullptr);

/// Sharded/parallel run_temporal_campaign; same determinism contract
/// as run_system_campaign_parallel.
exec::ShardedRun run_temporal_campaign_parallel(
    const SpmLayout& layout, const MappingPlan& plan, const Program& program,
    const ProgramProfile& profile, const StrikeMultiplicityModel& strikes,
    const CampaignConfig& config, const exec::ExecConfig& exec_config);

}  // namespace ftspm
