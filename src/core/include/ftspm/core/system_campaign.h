// System-level Monte-Carlo fault campaign.
//
// Bridges the mapped system to the bit-level injector: each SPM region
// becomes an injection surface whose ACE occupancy is the
// area-and-ACE-weighted share of architecturally-required bits it
// holds (capped at 1 for time-shared regions). Running a campaign over
// these surfaces measures the same quantity `compute_system_avf`
// evaluates analytically — with the real parity/SEC-DED decoders in
// the loop instead of Eqs. 4-7's single-codeword assumption. Agreement
// between the two is asserted by tests and quantified by the
// `ablation_mc_vs_avf` bench.
#pragma once

#include <vector>

#include "ftspm/core/mapping_plan.h"
#include "ftspm/fault/injector.h"
#include "ftspm/profile/profiler.h"
#include "ftspm/sim/spm.h"

namespace ftspm {

/// One injection surface per SPM region, with occupancy derived from
/// the plan and the profiled ACE fractions.
std::vector<InjectionRegion> make_injection_regions(
    const SpmLayout& layout, const MappingPlan& plan, const Program& program,
    const ProgramProfile& profile);

/// Convenience wrapper: builds the surfaces and runs the campaign.
CampaignResult run_system_campaign(const SpmLayout& layout,
                                   const MappingPlan& plan,
                                   const Program& program,
                                   const ProgramProfile& profile,
                                   const StrikeMultiplicityModel& strikes,
                                   const CampaignConfig& config = {});

/// Temporal campaign: instead of folding residency into a static
/// occupancy probability, each strike samples an *instant* of the
/// execution (an index into the profiled reference sequence), resolves
/// which block — if any — occupies the struck word at that instant
/// using the transfer schedule's residency spans and addresses, and
/// only then classifies the upset with the real codecs and the
/// occupant's ACE fraction. Strikes into unoccupied SPM words are
/// masked. This is the highest-fidelity reliability path in the
/// repository; the static campaign and the analytic Eqs. 1-7 are its
/// successively coarser approximations, and tests assert the three
/// agree in that order.
CampaignResult run_temporal_campaign(const SpmLayout& layout,
                                     const MappingPlan& plan,
                                     const Program& program,
                                     const ProgramProfile& profile,
                                     const StrikeMultiplicityModel& strikes,
                                     const CampaignConfig& config = {});

}  // namespace ftspm
