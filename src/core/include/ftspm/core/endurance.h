// STT-RAM endurance model (Table III / Fig. 8).
//
// An STT-RAM cell dies after a bounded number of writes; since there is
// no consensus threshold, the paper evaluates the whole 10^12..10^16
// range. The SPM's lifetime under a steady-state workload is
//
//   lifetime = threshold_writes / (write rate of the hottest word)
//
// where the hottest word's rate comes from the simulator's per-word
// wear counters and the measured execution time (the workload is
// assumed to repeat back-to-back, the standard embedded steady state).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ftspm/sim/simulator.h"
#include "ftspm/sim/spm.h"

namespace ftspm {

/// Write thresholds the paper's Table III evaluates.
inline constexpr std::array<double, 5> kEnduranceThresholds = {
    1e12, 1e13, 1e14, 1e15, 1e16};

/// Wear detail for one endurance-limited region.
struct RegionWear {
  RegionId region = 0;
  std::uint64_t max_word_writes = 0;
  double write_rate_per_s = 0.0;
};

struct EnduranceReport {
  /// Writes/second experienced by the hottest endurance-limited word;
  /// 0 when no endurance-limited cell is ever written.
  double max_word_write_rate_per_s = 0.0;
  /// Per-region breakdown (endurance-limited regions only), in layout
  /// order — identifies *which* region bounds the SPM's lifetime.
  std::vector<RegionWear> regions;

  bool unlimited() const noexcept { return max_word_write_rate_per_s <= 0.0; }

  /// Seconds until the hottest word reaches `threshold_writes`;
  /// +infinity when unlimited.
  double seconds_to(double threshold_writes) const;
};

/// Extracts the endurance report from a finished run.
EnduranceReport compute_endurance(const SpmLayout& layout,
                                  const RunResult& run);

}  // namespace ftspm
