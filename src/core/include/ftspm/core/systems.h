// End-to-end structure evaluation: the library's top-level API.
//
// StructureEvaluator wires the whole pipeline together for the three
// SPM organisations the paper compares:
//
//   profile -> mapping (MDA for FTSPM, greedy baseline otherwise)
//           -> cycle/energy simulation -> AVF (Eqs. 1-7) -> endurance
//
// One call per structure returns everything the evaluation section's
// tables and figures are built from.
#pragma once

#include <string>
#include <vector>

#include "ftspm/core/endurance.h"
#include "ftspm/core/mapping_determiner.h"
#include "ftspm/core/mapping_plan.h"
#include "ftspm/core/spm_config.h"
#include "ftspm/fault/avf.h"
#include "ftspm/mem/technology_library.h"
#include "ftspm/profile/profiler.h"
#include "ftspm/sim/simulator.h"
#include "ftspm/workload/trace.h"

namespace ftspm {

/// Everything one (structure, workload) evaluation produced.
struct SystemResult {
  std::string structure;  ///< "FTSPM" / "Pure SRAM" / "Pure STT-RAM".
  MappingPlan plan;
  RunResult run;
  AvfResult avf;
  EnduranceReport endurance;
};

/// Assembles the AVF block terms for a mapped program and evaluates
/// Eqs. (1)-(7). Exposed for tests and ablations.
AvfResult compute_system_avf(const SpmLayout& layout, const MappingPlan& plan,
                             const Program& program,
                             const ProgramProfile& profile,
                             const StrikeMultiplicityModel& strikes);

/// Per-block share of Eq. 1's vulnerability (indexed by BlockId; zero
/// for unmapped or immune-resident blocks). Sums to the aggregate
/// vulnerability of compute_system_avf.
std::vector<double> per_block_vulnerability(
    const SpmLayout& layout, const MappingPlan& plan, const Program& program,
    const ProgramProfile& profile, const StrikeMultiplicityModel& strikes);

class StructureEvaluator {
 public:
  explicit StructureEvaluator(TechnologyLibrary lib = TechnologyLibrary(),
                              MdaConfig mda = {},
                              FtspmDimensions ftspm_dims = {},
                              BaselineDimensions baseline_dims = {});

  const TechnologyLibrary& library() const noexcept { return lib_; }
  const SpmLayout& ftspm_layout() const noexcept { return ftspm_; }
  const SpmLayout& pure_sram_layout() const noexcept { return sram_; }
  const SpmLayout& pure_stt_layout() const noexcept { return stt_; }
  const SimConfig& sim_config() const noexcept { return sim_; }
  const StrikeMultiplicityModel& strike_model() const noexcept {
    return strikes_;
  }

  SystemResult evaluate_ftspm(const Workload& workload,
                              const ProgramProfile& profile) const;
  SystemResult evaluate_pure_sram(const Workload& workload,
                                  const ProgramProfile& profile) const;
  SystemResult evaluate_pure_stt(const Workload& workload,
                                 const ProgramProfile& profile) const;

  /// The reliability-unaware energy-oriented hybrid policy (the
  /// paper's reference [10]) on the *same* FTSPM layout — the ablation
  /// isolating what susceptibility-aware placement buys.
  SystemResult evaluate_energy_hybrid(const Workload& workload,
                                      const ProgramProfile& profile) const;

  /// Profiles once and evaluates all three structures, in the order
  /// {FTSPM, Pure SRAM, Pure STT-RAM}.
  std::vector<SystemResult> evaluate_all(const Workload& workload) const;

 private:
  TechnologyLibrary lib_;
  MdaConfig mda_;
  SpmLayout ftspm_;
  SpmLayout sram_;
  SpmLayout stt_;
  SimConfig sim_;
  StrikeMultiplicityModel strikes_;
};

}  // namespace ftspm
