// Baseline (non-reliability-aware) SPM mapping.
//
// The paper's two baselines — pure SEC-DED SRAM and pure STT-RAM —
// use a conventional energy/performance mapping in the style of
// Steinke et al. (DATE'02): blocks are ranked by access density
// (accesses per word) and greedily packed into the SPM until it is
// full. Reliability plays no part, which is exactly the gap FTSPM's
// MDA fills.
#pragma once

#include "ftspm/core/mapping_plan.h"
#include "ftspm/profile/profiler.h"
#include "ftspm/sim/spm.h"

namespace ftspm {

/// Greedy access-density mapping onto a layout with one instruction
/// region and one data region. Static: the packed set fits capacity,
/// so the on-line phase never time-shares.
MappingPlan determine_baseline_mapping(const SpmLayout& layout,
                                       const Program& program,
                                       const ProgramProfile& profile);

}  // namespace ftspm
