// Energy-oriented hybrid SPM mapping — the paper's closest prior art.
//
// Hu et al. (DATE'11, the paper's reference [10]) manage a hybrid
// SRAM/NVM SPM purely for energy and endurance: write-intensive data
// goes to SRAM, read-intensive data to the NVM, with no notion of
// block vulnerability. Implemented here against the same FTSPM layout
// so the two policies differ *only* in what they optimise — the
// comparison that motivates the paper's contribution. Where FTSPM
// splits its SRAM evictees by susceptibility (vulnerable blocks into
// SEC-DED, benign into parity), this mapper fills the SRAM regions by
// write density alone, blind to which blocks an upset would actually
// hurt.
#pragma once

#include "ftspm/core/mapping_plan.h"
#include "ftspm/profile/profiler.h"
#include "ftspm/sim/spm.h"

namespace ftspm {

struct EnergyHybridConfig {
  /// Data blocks whose write share (writes / accesses) exceeds this go
  /// to the SRAM pool; the rest compete for the NVM region.
  double write_share_threshold = 0.10;
};

/// Maps a program onto a hybrid layout (one instruction region, one
/// immune NVM data region, any number of SRAM data regions) by the
/// energy-only policy. Capacity-aware and static: greedy by access
/// density within each class, overflow left to the cache.
MappingPlan determine_energy_hybrid_mapping(
    const SpmLayout& layout, const Program& program,
    const ProgramProfile& profile, const EnergyHybridConfig& config = {});

}  // namespace ftspm
