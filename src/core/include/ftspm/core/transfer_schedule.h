// The on-line phase, made explicit.
//
// After MDA fixes each block's region, the paper's tooling derives —
// from the profiled sequence of block accesses — "the exact SPM address
// of each block and the sequence of blocks transfer, i.e., the exact
// point of mapping and un-mapping of blocks during application
// execution", then splices transfer instructions (SMI-style commands,
// after Janapsayta et al. ICCAD'04) into the code.
//
// TransferSchedule reproduces that artefact: it replays the profiled
// reference sequence through a per-region address allocator (first-fit
// over a real free list, LRU eviction) and emits the ordered command
// stream a runtime or compiler would embed. The simulator's dynamic
// allocator models the *cost* of these transfers; this module produces
// the *plan itself*, with concrete region-relative word addresses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ftspm/core/mapping_plan.h"
#include "ftspm/profile/profiler.h"
#include "ftspm/sim/spm.h"

namespace ftspm {

/// One SPM management command, in execution order.
struct TransferCommand {
  enum class Op : std::uint8_t {
    MapIn,      ///< DMA the block from off-chip memory into the SPM.
    WriteBack,  ///< Flush a dirty block to off-chip memory.
    Unmap,      ///< Release the block's SPM space.
  };

  std::uint64_t sequence_index = 0;  ///< Position in the profiled
                                     ///< block-reference sequence.
  Op op = Op::MapIn;
  BlockId block = 0;
  RegionId region = 0;
  std::uint64_t base_word = 0;  ///< Region-relative word address.
  std::uint64_t words = 0;
};

const char* to_string(TransferCommand::Op op) noexcept;

/// A block's SPM placement during one residency span.
struct ResidencySpan {
  BlockId block = 0;
  RegionId region = 0;
  std::uint64_t base_word = 0;
  std::uint64_t map_index = 0;    ///< Sequence index of the MapIn.
  std::optional<std::uint64_t> unmap_index;  ///< Empty: resident at exit.
};

class TransferSchedule {
 public:
  /// Derives the schedule for `plan` from the profiled reference
  /// sequence. Blocks the plan leaves unmapped never appear. Blocks
  /// with any profiled writes are treated as dirty (write-back on
  /// eviction and at program exit).
  static TransferSchedule generate(const Program& program,
                                   const ProgramProfile& profile,
                                   const MappingPlan& plan,
                                   const SpmLayout& layout);

  const std::vector<TransferCommand>& commands() const noexcept {
    return commands_;
  }
  const std::vector<ResidencySpan>& spans() const noexcept { return spans_; }

  /// Total words moved into / out of the SPM.
  std::uint64_t words_in() const noexcept { return words_in_; }
  std::uint64_t words_out() const noexcept { return words_out_; }

  /// Residency spans of one block, in time order.
  std::vector<ResidencySpan> spans_of(BlockId block) const;

  /// Human-readable command listing (the SMI insertion plan).
  std::string render(const Program& program, const SpmLayout& layout,
                     std::size_t max_commands = 64) const;

 private:
  std::vector<TransferCommand> commands_;
  std::vector<ResidencySpan> spans_;
  std::uint64_t words_in_ = 0;
  std::uint64_t words_out_ = 0;
};

}  // namespace ftspm
