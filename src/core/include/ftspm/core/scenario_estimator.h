// Analytic cost model for candidate mapping scenarios.
//
// Algorithm 1's threshold loops repeatedly "calculate the performance /
// power overhead of the current mapping scenario" (lines 13-22). Doing
// that with the full simulator would make MDA's inner loop quadratic in
// trace length, so — like the paper's off-line phase, which works from
// profiling information alone — this estimator prices a scenario
// analytically from the block profile:
//
//  * SPM-mapped accesses cost their region's latency/energy;
//  * unmapped accesses cost an L1 access plus an expected miss penalty;
//  * regions whose assigned blocks exceed capacity pay an estimated
//    time-sharing (DMA thrash) penalty proportional to the overflow.
//
// Overheads are measured against the paper's "ideal situation": every
// access served by 1-cycle unprotected SRAM.
#pragma once

#include <cstdint>
#include <span>

#include "ftspm/profile/profiler.h"
#include "ftspm/sim/simulator.h"
#include "ftspm/sim/spm.h"

namespace ftspm {

struct ScenarioEstimate {
  double cycles = 0.0;
  double dynamic_energy_pj = 0.0;
};

/// Knobs of the analytic model.
struct EstimatorConfig {
  double cache_hit_rate = 0.92;   ///< Expected L1 hit rate for unmapped
                                  ///< blocks.
  double thrash_dirty_factor = 1.5;  ///< Write-back uplift on DMA words.
};

class ScenarioEstimator {
 public:
  ScenarioEstimator(const SpmLayout& layout, const SimConfig& sim,
                    const Program& program, const ProgramProfile& profile,
                    EstimatorConfig config = {});

  /// Prices one scenario. `block_to_region` uses kNoRegion for
  /// cache-served blocks.
  ScenarioEstimate estimate(std::span<const RegionId> block_to_region) const;

  /// The matched ideal for a scenario: every *mapped* block priced at
  /// 1-cycle unprotected SRAM, unmapped blocks priced exactly as in the
  /// scenario. Matching the unmapped share means the overhead ratios
  /// isolate the cost of the SPM technology choices — the quantity
  /// Algorithm 1's thresholds govern — rather than the mapping's
  /// coverage.
  ScenarioEstimate matched_ideal(
      std::span<const RegionId> block_to_region) const;

  /// Absolute floor: everything (mapped or not) at 1-cycle SRAM.
  ScenarioEstimate ideal() const noexcept { return ideal_; }

  /// (scenario - matched_ideal) / matched_ideal, for cycles and energy.
  double performance_overhead(
      std::span<const RegionId> block_to_region) const;
  double energy_overhead(std::span<const RegionId> block_to_region) const;

 private:
  /// LRU replay of the profiled reference sequence restricted to one
  /// region: returns the words DMA-loaded on residency faults.
  double replay_region_faults(std::span<const RegionId> block_to_region,
                              RegionId region) const;

  const SpmLayout& layout_;
  SimConfig sim_;
  const Program& program_;
  const ProgramProfile& profile_;
  EstimatorConfig config_;
  std::uint64_t compute_gap_cycles_ = 0;
  ScenarioEstimate ideal_{};
};

}  // namespace ftspm
