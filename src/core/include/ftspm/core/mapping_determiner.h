// The Mapping Determiner Algorithm (MDA) — the paper's Algorithm 1.
//
// Off-line phase of FTSPM. Works purely from profiling information:
//
//  step 1  map code blocks to the STT-RAM I-SPM and every data block
//          that fits to the STT-RAM region of the D-SPM;
//  step 2  sort STT-resident data blocks by susceptibility
//          (references x lifetime);
//  step 3  while the scenario's performance overhead exceeds its
//          threshold, remove a data block from STT-RAM;
//  step 4  same loop for the energy overhead;
//  step 5  remove every data block whose write count exceeds the
//          STT-RAM write-cycles threshold (endurance);
//  step 6  split the evicted blocks around their average
//          susceptibility: more-susceptible-than-average blocks go to
//          the SEC-DED SRAM region, the rest to the parity region
//          (subject to fitting).
//
// The paper's "multi-priority" aspect — optimise for reliability,
// performance, power, or endurance "according to system requirements" —
// is realised as the eviction ordering of steps 3-4: the reliability
// priority evicts the least susceptible block (paper default); the
// other priorities evict the block whose removal buys the most of the
// prioritised resource.
//
// Documented deviation from the literal pseudo-code: step 1's code
// mapping is capacity-aware (hottest code first while the I-SPM has
// room) instead of size-fits-region only; the literal rule would
// time-share the I-SPM among all code blocks and thrash. Data blocks
// keep the paper's size-fits-region rule — the D-SPM *is* time-shared
// by the on-line phase — with the estimator's thrash term letting
// steps 3-4 price that sharing.
#pragma once

#include <cstdint>

#include "ftspm/core/mapping_plan.h"
#include "ftspm/core/scenario_estimator.h"
#include "ftspm/profile/profiler.h"
#include "ftspm/sim/simulator.h"
#include "ftspm/sim/spm.h"

namespace ftspm {

/// What steps 3-4 optimise when choosing eviction victims.
enum class OptimizationPriority : std::uint8_t {
  Reliability,  ///< Evict the least susceptible block (Algorithm 1).
  Performance,  ///< Evict the block costing the most STT write stalls.
  Power,        ///< Evict the block costing the most STT write energy.
  Endurance,    ///< Evict the most write-intensive block.
};

const char* to_string(OptimizationPriority priority) noexcept;

struct MdaThresholds {
  /// Tolerated (scenario - ideal)/ideal cycle overhead. The default
  /// admits STT-RAM's write latency for moderately write-intensive
  /// programs — in the paper's case study the threshold loops evict
  /// nothing and only the endurance filter (step 5) fires.
  double performance_overhead = 0.75;
  /// Tolerated dynamic-energy overhead over ideal.
  double energy_overhead = 0.80;
  /// Step 5: total writes a block may make and still live in STT-RAM
  /// (the paper's block-level write-cycles threshold).
  std::uint64_t write_cycles_threshold = 100'000;
  /// Step 5 extension: endurance is a per-cell phenomenon, so a block
  /// whose *hottest word* exceeds this write count is also evicted —
  /// this catches stack frames and accumulators that hammer a few
  /// words without a large block total. Set to 0 to disable and
  /// recover the paper's literal rule.
  std::uint64_t word_write_threshold = 1'000;
};

struct MdaConfig {
  MdaThresholds thresholds{};
  OptimizationPriority priority = OptimizationPriority::Reliability;
  EstimatorConfig estimator{};
};

class MappingDeterminer {
 public:
  /// `layout` must contain one instruction region and a data STT-RAM
  /// region; SEC-DED / parity data regions are optional (without them
  /// evicted blocks simply stay unmapped).
  MappingDeterminer(const SpmLayout& layout, const SimConfig& sim,
                    MdaConfig config = {});

  const MdaConfig& config() const noexcept { return config_; }

  /// Runs Algorithm 1.
  MappingPlan determine(const Program& program,
                        const ProgramProfile& profile) const;

 private:
  const SpmLayout& layout_;
  SimConfig sim_;
  MdaConfig config_;
  RegionId i_region_ = kNoRegion;
  RegionId d_stt_ = kNoRegion;
  RegionId d_secded_ = kNoRegion;
  RegionId d_parity_ = kNoRegion;
};

}  // namespace ftspm
