// The MDA's output: where each block lives and why.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ftspm/sim/spm.h"
#include "ftspm/workload/program.h"

namespace ftspm {

/// Why a block ended up where it did (Table II's narrative).
enum class MappingReason : std::uint8_t {
  Mapped,              ///< Placed in step 1 and never evicted.
  TooLarge,            ///< Exceeds every eligible region (paper: Main).
  EvictedPerformance,  ///< Removed by the performance-threshold loop.
  EvictedEnergy,       ///< Removed by the energy-threshold loop.
  EvictedEndurance,    ///< Removed by the write-cycles threshold.
  ReassignedSecDed,    ///< Evicted from STT, landed in the ECC region.
  ReassignedParity,    ///< Evicted from STT, landed in the parity region.
  NoSramRoom,          ///< Evicted from STT; fits neither SRAM region.
  CodeCapacity,        ///< Code left out of the I-SPM by capacity.
  DemotedTimeSharing,  ///< Step-6 placement would thrash its SRAM
                       ///< region; left to the cache instead.
  RestoredStt,         ///< Step-7 backfill: endurance-safe evictee
                       ///< returned to spare STT-RAM capacity.
};

const char* to_string(MappingReason reason) noexcept;

/// One block's placement.
struct BlockMapping {
  BlockId block = 0;
  RegionId region = kNoRegion;
  MappingReason reason = MappingReason::Mapped;

  bool mapped() const noexcept { return region != kNoRegion; }
};

/// A full program mapping against one layout.
class MappingPlan {
 public:
  MappingPlan(const SpmLayout& layout, std::vector<BlockMapping> mappings);

  const std::vector<BlockMapping>& mappings() const noexcept {
    return mappings_;
  }
  const BlockMapping& mapping(BlockId id) const;

  /// Flat block->region vector, the simulator's input format.
  const std::vector<RegionId>& block_to_region() const noexcept {
    return block_to_region_;
  }

  std::size_t mapped_count() const noexcept;
  const std::string& layout_name() const noexcept { return layout_name_; }

 private:
  std::string layout_name_;
  std::vector<BlockMapping> mappings_;
  std::vector<RegionId> block_to_region_;
};

}  // namespace ftspm
