// Standard SPM organisations — the paper's Table IV.
//
//   Pure SRAM baseline : 16 KiB SEC-DED I-SPM + 16 KiB SEC-DED D-SPM
//   Pure STT-RAM       : 16 KiB STT I-SPM + 16 KiB STT D-SPM
//   FTSPM              : 16 KiB STT I-SPM + {12 KiB STT, 2 KiB SEC-DED,
//                        2 KiB parity} D-SPM
//
// All three sit behind 8 KiB unprotected 1-cycle L1 caches and share
// one off-chip memory. Region names are exported as constants so the
// mapping layer and the report layer agree on identity.
#pragma once

#include <cstdint>

#include "ftspm/mem/technology_library.h"
#include "ftspm/sim/simulator.h"
#include "ftspm/sim/spm.h"

namespace ftspm {

/// Canonical region names.
namespace region_names {
inline constexpr const char* kInstruction = "I-SPM";
inline constexpr const char* kDataStt = "D-STT";
inline constexpr const char* kDataSecDed = "D-ECC";
inline constexpr const char* kDataParity = "D-Parity";
inline constexpr const char* kDataSram = "D-SRAM";
}  // namespace region_names

/// FTSPM region sizes (defaults = Table IV).
struct FtspmDimensions {
  std::uint64_t ispm_bytes = 16 * 1024;
  std::uint64_t dspm_stt_bytes = 12 * 1024;
  std::uint64_t dspm_secded_bytes = 2 * 1024;
  std::uint64_t dspm_parity_bytes = 2 * 1024;
  /// Physical bit interleaving of the protected SRAM regions (1 = the
  /// paper's configuration; >1 enables the MBU-scattering extension).
  std::uint32_t sram_interleave = 1;
  /// Build the STT-RAM regions from the relaxed-retention variant
  /// (cheap fast writes, scrub power) instead of the paper's cells.
  bool relaxed_stt = false;
};

/// Baseline structures use the same total complement.
struct BaselineDimensions {
  std::uint64_t ispm_bytes = 16 * 1024;
  std::uint64_t dspm_bytes = 16 * 1024;
};

/// FTSPM: STT-RAM I-SPM, hybrid D-SPM (region order: I-SPM, D-STT,
/// D-ECC, D-Parity).
SpmLayout make_ftspm_layout(const TechnologyLibrary& lib,
                            const FtspmDimensions& dims = {});

/// Pure SEC-DED SRAM baseline (region order: I-SPM, D-SRAM).
SpmLayout make_pure_sram_layout(const TechnologyLibrary& lib,
                                const BaselineDimensions& dims = {});

/// Pure STT-RAM baseline (region order: I-SPM, D-STT).
SpmLayout make_pure_stt_layout(const TechnologyLibrary& lib,
                               const BaselineDimensions& dims = {});

/// Processor-side configuration shared by all structures (Table IV's
/// cache row, 200 MHz clock, off-chip memory).
SimConfig make_sim_config(const TechnologyLibrary& lib);

}  // namespace ftspm
