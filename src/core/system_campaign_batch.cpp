// Batched hot loop of the temporal (residency-resolved) campaign.
//
// run_chunk_reference (system_campaign.cpp) resolves each strike with
// FP draws (next_discrete's subtract-scan, next_bool conversions), a
// hardware divide for the struck word, and a per-word classify. This
// file replays the identical campaign on the batch engine
// (fault/batch_engine.h), exactly as the static and recovery campaigns
// already do:
//
//  * aim draws become integer compares against per-chunk tables
//    (pick_region / FastDiv64 / sample_flips_draw), each bit-identical
//    to the Rng primitive it replaces;
//  * the residency scan runs over a flat span table with the per-block
//    ACE fraction pre-resolved into next_bool's three arms
//    (DrawBernoulli), in the same first-match order;
//  * classification goes through classify_batch_strike: <= 2-bit
//    patterns resolve from the popcount class LUT, >= 3-bit SEC-DED
//    patterns are deferred onto the block's SoA fold list and resolved
//    by one SecDedCodec::fold_syndromes pass per block instead of a
//    classify_pattern call per word.
//
// Equivalence contract: counters, grids, observer calls, and the RNG
// stream match run_chunk_reference bit for bit for every chunk
// schedule and block width. The draw schedule per strike is region,
// origin, instant, then — only when a mapped block occupies the struck
// word at that instant — multiplicity, one burned draw per struck
// codeword, and one ACE Bernoulli. The ACE draw fires exactly when the
// surface is not Immune: any flip in an occupied non-Immune word
// yields a non-Masked pre-ACE verdict (deferred >= 3-bit patterns
// included — they can never fold to Masked), and Immune words classify
// Masked without drawing, so the reference's `outcome != Masked` gate
// never depends on a still-deferred fold. Pinned by
// tests/fault/batch_engine_test.cpp and the CampaignGolden suite.
#include <algorithm>
#include <cstdint>
#include <vector>

#include "ftspm/core/system_campaign.h"
#include "ftspm/ecc/secded_codec.h"
#include "ftspm/fault/batch_engine.h"
#include "ftspm/fault/campaign_observer.h"
#include "ftspm/fault/sensitivity.h"

namespace ftspm {

namespace {

/// One residency span, flattened for the per-strike occupancy scan:
/// the ACE fraction is resolved to draw arms once per chunk, and the
/// optional unmap index becomes a sentinel the `when < unmap_end`
/// compare handles branch-free (an instant never reaches UINT64_MAX).
struct SpanInfo {
  std::uint64_t map_index = 0;
  std::uint64_t unmap_end = UINT64_MAX;
  std::uint64_t base_word = 0;
  std::uint64_t end_word = 0;
  detail::DrawBernoulli ace;
};

}  // namespace

void TemporalCampaign::run_chunk(const CampaignConfig& config,
                                 CampaignShardState& state,
                                 std::uint64_t max_strikes,
                                 CampaignObserver* observer,
                                 SensitivityGrid* grid) const {
  const std::uint64_t end =
      std::min(config.strikes, state.done + max_strikes);
  if (end <= state.done) {
    state.done = end;
    return;
  }

  // An inert observer's on_strike is a no-op per strike; skip the
  // calls outright (same block-level check the static engine makes).
  if (observer != nullptr && !observer->active()) observer = nullptr;

  CampaignScratch::Batch& batch = state.scratch.batch;
  detail::build_region_table(surfaces_, batch);
  const detail::FlipCutoffs cuts =
      detail::make_flip_cutoffs(strikes_, config.max_flips);
  const BatchRegionInfo* const regions = batch.regions.data();
  const std::uint64_t* const pick_breaks = batch.pick_bits.data();
  const std::size_t region_count = batch.regions.size();
  const std::size_t pick_fallback = batch.pick_fallback;

  // Flatten the per-region span lists (keeping their first-match
  // order) and resolve each block's ACE fraction once.
  std::vector<SpanInfo> spans;
  std::vector<std::size_t> span_begin(region_count + 1, 0);
  {
    std::size_t total = 0;
    for (const auto& list : region_spans_) total += list.size();
    spans.reserve(total);
    for (std::size_t r = 0; r < region_count; ++r) {
      span_begin[r] = spans.size();
      for (const ResidencySpan* sp : region_spans_[r]) {
        SpanInfo info;
        info.map_index = sp->map_index;
        if (sp->unmap_index) info.unmap_end = *sp->unmap_index;
        info.base_word = sp->base_word;
        info.end_word =
            sp->base_word + program_.block(sp->block).size_words();
        info.ace = detail::make_draw_bernoulli(
            profile_.ace_fraction(program_, sp->block));
        spans.push_back(info);
      }
    }
    span_begin[region_count] = spans.size();
  }

  const std::uint32_t width =
      batch.width != 0 ? batch.width : kCampaignBatchWidth;
  batch.region_of.resize(width);
  batch.origin.resize(width);
  batch.outcome.resize(width);
  batch.ace_keep.resize(width);

  // The generator runs as a stack copy, written back once per chunk.
  Rng rng = state.rng;
  std::uint64_t tallies[4] = {0, 0, 0, 0};

  for (std::uint64_t base = state.done; base < end;) {
    const auto block =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(width, end - base));
    batch.fold_data.clear();
    batch.fold_check.clear();
    batch.fold_slot.clear();

    for (std::uint32_t slot = 0; slot < block; ++slot) {
      // Aim draws in the reference order: region, origin, instant.
      const std::size_t rid =
          detail::pick_region(rng, pick_breaks, region_count, pick_fallback);
      const BatchRegionInfo& R = regions[rid];
      const std::uint64_t origin = rng.next_below(R.physical_bits);
      const std::uint64_t word = R.div_codeword.divide(origin);
      const std::uint64_t when = rng.next_below(horizon_);
      batch.region_of[slot] = static_cast<std::uint32_t>(rid);
      batch.origin[slot] = origin;

      // Who holds this word at that instant? First match, span order.
      const SpanInfo* occupant = nullptr;
      for (std::size_t k = span_begin[rid]; k < span_begin[rid + 1]; ++k) {
        const SpanInfo& sp = spans[k];
        if (sp.map_index > when || when >= sp.unmap_end) continue;
        if (word < sp.base_word || word >= sp.end_word) continue;
        occupant = &sp;
        break;
      }

      std::uint8_t out = static_cast<std::uint8_t>(StrikeOutcome::Masked);
      std::uint8_t keep = 1;
      if (occupant != nullptr) {
        const std::uint32_t flips =
            detail::sample_flips_draw(rng, cuts, config.max_flips);
        out = detail::classify_batch_strike(R, rng, state.scratch, slot,
                                            origin, flips);
        // Reference order: the ACE draw follows the classify burns and
        // fires iff the pre-ACE verdict is not Masked — which is
        // exactly "the surface is not Immune" (see file comment).
        if (R.protection != ProtectionKind::Immune)
          keep = detail::draw_bernoulli(rng, occupant->ace) ? 1 : 0;
      }
      batch.outcome[slot] = out;
      batch.ace_keep[slot] = keep;
    }

    // Deferred >= 3-bit SEC-DED patterns: one batched syndrome fold,
    // max-merged into the owning slots before the ACE keep applies.
    if (!batch.fold_data.empty()) {
      const std::size_t n = batch.fold_data.size();
      batch.fold_syndrome.resize(n);
      SecDedCodec::fold_syndromes(batch.fold_data.data(),
                                  batch.fold_check.data(), n,
                                  batch.fold_syndrome.data());
      for (std::size_t k = 0; k < n; ++k) {
        std::uint8_t& o = batch.outcome[batch.fold_slot[k]];
        o = std::max(o, detail::decode_fold_outcome(batch.fold_syndrome[k],
                                                    batch.fold_data[k]));
      }
    }

    // Tally / observe in strike order, applying the carried ACE keep.
    const bool want_slots = observer != nullptr || grid != nullptr;
    for (std::uint32_t slot = 0; slot < block; ++slot) {
      const auto o = static_cast<std::uint8_t>(batch.outcome[slot] *
                                               batch.ace_keep[slot]);
      ++tallies[o];
      if (want_slots) {
        const auto outcome = static_cast<StrikeOutcome>(o);
        if (observer != nullptr) observer->on_strike(base + slot, outcome);
        if (grid != nullptr)
          grid->record(batch.region_of[slot], batch.origin[slot], outcome);
      }
    }
    base += block;
  }

  state.partial.strikes += end - state.done;
  state.partial.masked +=
      tallies[static_cast<std::size_t>(StrikeOutcome::Masked)];
  state.partial.dre += tallies[static_cast<std::size_t>(StrikeOutcome::Dre)];
  state.partial.due += tallies[static_cast<std::size_t>(StrikeOutcome::Due)];
  state.partial.sdc += tallies[static_cast<std::size_t>(StrikeOutcome::Sdc)];
  state.rng = rng;
  state.done = end;
}

}  // namespace ftspm
