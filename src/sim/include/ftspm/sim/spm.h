// ScratchPad memory layout: named regions with technologies.
//
// A layout describes one SPM organisation from the paper's Table IV —
// e.g. FTSPM's {16 KiB STT-RAM I-SPM; 12 KiB STT-RAM + 2 KiB SEC-DED +
// 2 KiB parity D-SPM} — as a flat list of regions. The simulator and
// the mapping pipeline address regions by index (RegionId).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ftspm/mem/geometry.h"
#include "ftspm/mem/technology.h"

namespace ftspm {

/// Index of a region within an SpmLayout.
using RegionId = std::uint32_t;

/// Sentinel: block is not SPM-mapped (served by cache + off-chip).
inline constexpr RegionId kNoRegion = static_cast<RegionId>(-1);

/// Which address space a region serves.
enum class SpmSpace : std::uint8_t { Instruction, Data };

const char* to_string(SpmSpace space) noexcept;

/// One physical SPM region.
struct SpmRegionSpec {
  std::string name;
  SpmSpace space = SpmSpace::Data;
  std::uint64_t data_bytes = 0;
  TechnologyParams tech;
  /// Physical bit interleaving degree of the array: adjacent physical
  /// bits belong to `interleave` different codewords, so an adjacent
  /// MBU scatters into that many words (1 = no interleaving, the
  /// paper's configuration). Consumed by the reliability models.
  std::uint32_t interleave = 1;

  std::uint64_t data_words() const noexcept { return data_bytes / 8; }
  RegionGeometry geometry() const {
    return RegionGeometry::for_params(data_bytes, tech);
  }
};

/// A complete SPM organisation.
class SpmLayout {
 public:
  SpmLayout(std::string name, std::vector<SpmRegionSpec> regions);

  const std::string& name() const noexcept { return name_; }
  const std::vector<SpmRegionSpec>& regions() const noexcept {
    return regions_;
  }
  const SpmRegionSpec& region(RegionId id) const;
  std::size_t region_count() const noexcept { return regions_.size(); }

  std::optional<RegionId> find(std::string_view name) const noexcept;

  /// Payload bytes over all regions / per space.
  std::uint64_t total_data_bytes() const noexcept;
  std::uint64_t space_data_bytes(SpmSpace space) const noexcept;

  /// Total physical storage bits including check bits — the strike
  /// surface the AVF model weights regions by.
  std::uint64_t total_physical_bits() const;

  /// Static power of the whole SPM complement (all regions powered).
  double static_power_mw() const noexcept;

 private:
  std::string name_;
  std::vector<SpmRegionSpec> regions_;
};

}  // namespace ftspm
