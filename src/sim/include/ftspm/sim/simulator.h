// Trace-driven cycle/energy simulator (the FaCSim substitute).
//
// Executes a workload trace against one SPM layout and one block->region
// mapping, producing the quantities every evaluation artefact consumes:
// total cycles (performance, Table IV structures), per-region read/write
// counts (Figs 2 & 4), SPM dynamic and static energy (Figs 6 & 7), and
// per-word STT-RAM wear (Table III, Fig 8).
//
// Blocks mapped to a region are managed *dynamically*: Algorithm 1 only
// guarantees each block individually fits its region, so at run time the
// region is time-shared — first touch DMA-loads a block, and when space
// runs out the least-recently-used resident block is evicted (written
// back if dirty). This models the paper's on-line phase, where mapping /
// un-mapping commands inserted in the code move blocks between off-chip
// memory and the SPM during execution. Unmapped blocks are served by
// the L1 caches.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ftspm/sim/cache.h"
#include "ftspm/sim/spm.h"
#include "ftspm/workload/trace.h"

namespace ftspm {

/// Off-chip memory timing/energy (per 64-bit word).
struct MainMemoryConfig {
  std::uint32_t line_latency_cycles = 20;  ///< First word / line fill.
  std::uint32_t word_latency_cycles = 2;   ///< Streaming words (DMA).
  double read_energy_pj = 90.0;
  double write_energy_pj = 95.0;
};

struct DmaConfig {
  std::uint32_t setup_cycles = 16;  ///< Channel programming per transfer.
};

/// Cycles one DMA transfer of `words` 64-bit words costs under the
/// simulator's transfer model: channel setup + first-line latency + one
/// beat per word at the slower of the DRAM stream rate and the SPM-side
/// access latency (`spm_latency_cycles` is the region's write latency
/// for map-ins, read latency for write-backs). Exposed so other
/// consumers — the fault-recovery campaign's DUE re-fetch path — book
/// transfers with exactly the cost the simulator charges for block
/// map-ins.
std::uint64_t dma_transfer_cycles(const DmaConfig& dma,
                                  const MainMemoryConfig& dram,
                                  std::uint32_t spm_latency_cycles,
                                  std::uint64_t words) noexcept;

struct SimConfig {
  CacheConfig icache{};  ///< Table IV: 8 KiB, 1-cycle.
  CacheConfig dcache{};
  MainMemoryConfig dram{};
  DmaConfig dma{};
  double clock_mhz = 200.0;  ///< Embedded core clock.
  double cache_access_energy_pj = 21.0;  ///< Unprotected SRAM word access.
};

/// Per-region counters for one run.
struct RegionRunStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  double read_energy_pj = 0.0;
  double write_energy_pj = 0.0;
  std::uint64_t dma_in_words = 0;
  std::uint64_t dma_out_words = 0;
  std::uint64_t capacity_evictions = 0;
  /// Hottest word's program-write count among blocks mapped here
  /// (DMA refills excluded, matching the paper's endurance accounting).
  std::uint64_t max_word_writes = 0;

  std::uint64_t accesses() const noexcept { return reads + writes; }
  double energy_pj() const noexcept {
    return read_energy_pj + write_energy_pj;
  }
};

/// Cycle/energy attribution for one execution phase. Phases follow the
/// trace's CallEnter/CallExit markers: costs are charged to the
/// innermost active code block, and to "(top)" outside any call.
/// Populated only when observability is enabled during run()
/// (obs::set_enabled) so the default hot path pays nothing.
struct PhaseStats {
  std::string name;
  std::uint64_t compute_cycles = 0;
  std::uint64_t spm_cycles = 0;
  std::uint64_t cache_cycles = 0;
  std::uint64_t dram_penalty_cycles = 0;
  std::uint64_t dma_cycles = 0;
  std::uint64_t accesses = 0;
  double spm_energy_pj = 0.0;    ///< Region arrays + SPM side of DMA.
  double cache_energy_pj = 0.0;
  double dram_energy_pj = 0.0;   ///< Cache-miss traffic + DRAM-side DMA.

  std::uint64_t total_cycles() const noexcept {
    return compute_cycles + spm_cycles + cache_cycles +
           dram_penalty_cycles + dma_cycles;
  }
  double energy_pj() const noexcept {
    return spm_energy_pj + cache_energy_pj + dram_energy_pj;
  }
};

/// Everything a run produced.
struct RunResult {
  std::string layout_name;
  double clock_mhz = 200.0;

  std::uint64_t total_cycles = 0;
  std::uint64_t compute_cycles = 0;
  std::uint64_t spm_cycles = 0;
  std::uint64_t cache_cycles = 0;
  std::uint64_t dram_penalty_cycles = 0;
  std::uint64_t dma_cycles = 0;

  std::vector<RegionRunStats> regions;
  CacheStats icache;
  CacheStats dcache;

  double cache_energy_pj = 0.0;
  double dram_energy_pj = 0.0;
  double dma_energy_pj = 0.0;  ///< DRAM + SPM sides of transfers.
  /// The DRAM-side share of dma_energy_pj (subtracted when reporting
  /// SPM-only dynamic energy).
  double dma_dram_side_energy_pj = 0.0;
  double spm_static_energy_pj = 0.0;

  /// Per-phase attribution in first-appearance order; empty unless
  /// observability was enabled during the run.
  std::vector<PhaseStats> phases;

  /// Per-block hottest-word write count while SPM-resident (wear).
  std::vector<std::uint64_t> block_max_word_writes;
  /// Per-block accesses served by the SPM / by the cache path.
  std::vector<std::uint64_t> block_spm_accesses;
  std::vector<std::uint64_t> block_cache_accesses;

  double seconds() const noexcept {
    return static_cast<double>(total_cycles) / (clock_mhz * 1e6);
  }
  /// Dynamic energy dissipated inside the SPM arrays (+codecs),
  /// including the SPM side of DMA refills. The quantity Fig. 7 plots.
  double spm_dynamic_energy_pj() const noexcept;
  /// SPM + caches + off-chip.
  double total_dynamic_energy_pj() const noexcept;
  std::uint64_t spm_reads() const noexcept;
  std::uint64_t spm_writes() const noexcept;
  std::uint64_t spm_accesses() const noexcept {
    return spm_reads() + spm_writes();
  }
  /// Energy per SPM access in pJ (Fig. 3's per-structure comparison).
  double spm_energy_per_access_pj() const noexcept;
};

/// The simulator. Construct once per layout; run() is const and
/// reusable across workloads/mappings.
class Simulator {
 public:
  explicit Simulator(SpmLayout layout, SimConfig config = {});

  const SpmLayout& layout() const noexcept { return layout_; }
  const SimConfig& config() const noexcept { return config_; }

  /// Runs `workload` with the given block->region assignment
  /// (kNoRegion = cache path). Throws InvalidArgument when a mapped
  /// block does not fit its region or targets the wrong space.
  RunResult run(const Workload& workload,
                std::span<const RegionId> block_to_region) const;

 private:
  /// The actual engine. Instantiated twice so the WithObs=false hot
  /// path carries no instrumentation code at all — run() picks the
  /// variant from obs::enabled() once per call.
  template <bool WithObs>
  RunResult run_impl(const Workload& workload,
                     std::span<const RegionId> block_to_region) const;

  SpmLayout layout_;
  SimConfig config_;
};

}  // namespace ftspm
