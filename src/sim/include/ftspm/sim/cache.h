// Set-associative write-back L1 cache model.
//
// Blocks the mapping algorithm leaves out of the SPM are served by the
// processor's L1 caches (Table IV row "Cache Inst./Data": 8 KiB,
// unprotected SRAM, 1-cycle hit). The model is functional-timing only:
// true LRU, write-allocate, write-back; no coherence (single core).
#pragma once

#include <cstdint>
#include <vector>

namespace ftspm {

struct CacheConfig {
  std::uint32_t size_bytes = 8 * 1024;
  std::uint32_t line_bytes = 32;
  std::uint32_t ways = 4;
  std::uint32_t hit_latency_cycles = 1;
};

struct CacheStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t writebacks = 0;

  std::uint64_t accesses() const noexcept { return reads + writes; }
  std::uint64_t misses() const noexcept { return read_misses + write_misses; }
  double miss_rate() const noexcept {
    return accesses() ? static_cast<double>(misses()) / accesses() : 0.0;
  }
};

/// Outcome of one cache access, used by the simulator for timing/energy.
struct CacheAccessResult {
  bool hit = true;
  bool writeback = false;  ///< A dirty victim line was evicted.
};

class Cache {
 public:
  explicit Cache(CacheConfig config);

  const CacheConfig& config() const noexcept { return config_; }
  const CacheStats& stats() const noexcept { return stats_; }

  /// Performs one word access at byte address `addr`.
  CacheAccessResult access(std::uint64_t addr, bool is_write);

  /// Invalidates everything and clears statistics.
  void reset();

 private:
  struct Line {
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;  ///< Monotonic use stamp.
  };

  CacheConfig config_;
  CacheStats stats_;
  std::vector<Line> lines_;  ///< sets * ways, row-major by set.
  std::uint32_t sets_ = 0;
  std::uint64_t tick_ = 0;
};

}  // namespace ftspm
