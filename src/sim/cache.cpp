#include "ftspm/sim/cache.h"

#include <bit>

#include "ftspm/util/error.h"

namespace ftspm {

Cache::Cache(CacheConfig config) : config_(config) {
  FTSPM_REQUIRE(config_.line_bytes >= 8 &&
                    std::has_single_bit(config_.line_bytes),
                "line size must be a power of two >= 8");
  FTSPM_REQUIRE(config_.ways >= 1, "cache needs at least one way");
  FTSPM_REQUIRE(config_.size_bytes % (config_.line_bytes * config_.ways) == 0,
                "cache size must divide evenly into sets");
  sets_ = config_.size_bytes / (config_.line_bytes * config_.ways);
  FTSPM_REQUIRE(std::has_single_bit(sets_), "set count must be a power of 2");
  lines_.assign(static_cast<std::size_t>(sets_) * config_.ways, Line{});
}

void Cache::reset() {
  lines_.assign(lines_.size(), Line{});
  stats_ = CacheStats{};
  tick_ = 0;
}

CacheAccessResult Cache::access(std::uint64_t addr, bool is_write) {
  ++tick_;
  if (is_write)
    ++stats_.writes;
  else
    ++stats_.reads;

  const std::uint64_t line_addr = addr / config_.line_bytes;
  const std::uint32_t set = static_cast<std::uint32_t>(line_addr & (sets_ - 1));
  const std::uint64_t tag = line_addr / sets_;
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];

  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = tick_;
      line.dirty = line.dirty || is_write;
      return CacheAccessResult{true, false};
    }
  }

  // Miss: pick the invalid or least-recently-used way.
  if (is_write)
    ++stats_.write_misses;
  else
    ++stats_.read_misses;
  Line* victim = base;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = base[w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.lru < victim->lru) victim = &line;
  }
  const bool writeback = victim->valid && victim->dirty;
  if (writeback) ++stats_.writebacks;
  victim->valid = true;
  victim->dirty = is_write;  // write-allocate
  victim->tag = tag;
  victim->lru = tick_;
  return CacheAccessResult{false, writeback};
}

}  // namespace ftspm
