#include "ftspm/sim/simulator.h"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>

#include "ftspm/obs/metrics.h"
#include "ftspm/obs/trace_sink.h"
#include "ftspm/util/error.h"

namespace ftspm {

double RunResult::spm_dynamic_energy_pj() const noexcept {
  double e = dma_energy_pj - dma_dram_side_energy_pj;
  for (const auto& r : regions) e += r.energy_pj();
  return e;
}

double RunResult::total_dynamic_energy_pj() const noexcept {
  double e = cache_energy_pj + dram_energy_pj + dma_energy_pj;
  for (const auto& r : regions) e += r.energy_pj();
  return e;
}

std::uint64_t RunResult::spm_reads() const noexcept {
  std::uint64_t n = 0;
  for (const auto& r : regions) n += r.reads;
  return n;
}

std::uint64_t RunResult::spm_writes() const noexcept {
  std::uint64_t n = 0;
  for (const auto& r : regions) n += r.writes;
  return n;
}

double RunResult::spm_energy_per_access_pj() const noexcept {
  const std::uint64_t n = spm_accesses();
  if (n == 0) return 0.0;
  double e = 0.0;
  for (const auto& r : regions) e += r.energy_pj();
  return e / static_cast<double>(n);
}

std::uint64_t dma_transfer_cycles(const DmaConfig& dma,
                                  const MainMemoryConfig& dram,
                                  std::uint32_t spm_latency_cycles,
                                  std::uint64_t words) noexcept {
  const std::uint32_t per_word =
      std::max<std::uint32_t>(dram.word_latency_cycles, spm_latency_cycles);
  return dma.setup_cycles + dram.line_latency_cycles + words * per_word;
}

Simulator::Simulator(SpmLayout layout, SimConfig config)
    : layout_(std::move(layout)), config_(config) {
  FTSPM_REQUIRE(config_.clock_mhz > 0.0, "clock must be positive");
}

// Per-event helper lambdas must stay inlined into the run loop: at -O2
// the inliner's unit-growth budget otherwise outlines evict() and
// ensure_resident(), a measured ~10% throughput loss on
// bench/micro_simulator. Mandatory-inline keeps codegen identical to a
// build without the instrumented run_impl<true> instantiation.
#if defined(__GNUC__) || defined(__clang__)
#define FTSPM_SIM_INLINE __attribute__((always_inline))
#else
#define FTSPM_SIM_INLINE
#endif

namespace {

/// Runtime residency bookkeeping for one block.
struct BlockState {
  bool resident = false;
  bool dirty = false;
  std::uint64_t last_use = 0;
  std::vector<std::uint64_t> wear;  ///< Per-word program writes while
                                    ///< resident (STT regions only).
};

/// Runtime state of one region's dynamic allocator.
struct RegionState {
  std::uint64_t used_words = 0;
  std::vector<BlockId> resident;  ///< Blocks currently loaded.
};

/// Everything the optional observability path needs; only the
/// run_impl<true> instantiation creates or touches it, so the default
/// run() executes instrumentation-free code.
struct ObsState {
  obs::TraceEventSink* trace = nullptr;
  obs::TraceEventSink::LaneId phase_lane = 0;
  obs::TraceEventSink::LaneId dma_lane = 0;
  obs::TraceEventSink::LaneId spm_lane = 0;
  obs::TraceEventSink::LaneId cache_lane = 0;
  obs::Counter* evictions = nullptr;
  obs::Counter* dma_transfers = nullptr;
  obs::Counter* dma_words = nullptr;
  obs::Counter* cache_fills = nullptr;
  obs::Histogram* dma_span = nullptr;  ///< Words per DMA transfer.

  /// Phase bookkeeping: stack of indices into RunResult::phases.
  std::map<std::string, std::size_t> phase_index;
  std::vector<std::size_t> phase_stack;
};

/// Sampling period for cache-fill counter events in the trace (every
/// fill would swamp the file on cache-heavy workloads).
constexpr std::uint64_t kCacheFillSamplePeriod = 256;

}  // namespace

template <bool WithObs>
RunResult Simulator::run_impl(
    const Workload& workload,
    std::span<const RegionId> block_to_region) const {
  const Program& program = workload.program;
  FTSPM_REQUIRE(block_to_region.size() == program.block_count(),
                "mapping must cover every block");
  for (std::size_t i = 0; i < program.block_count(); ++i) {
    const RegionId r = block_to_region[i];
    if (r == kNoRegion) continue;
    const Block& b = program.block(static_cast<BlockId>(i));
    const SpmRegionSpec& spec = layout_.region(r);
    FTSPM_REQUIRE(b.size_bytes <= spec.data_bytes,
                  "block " + b.name + " does not fit region " + spec.name);
    const bool wants_code = spec.space == SpmSpace::Instruction;
    FTSPM_REQUIRE(b.is_code() == wants_code,
                  "block " + b.name + " mapped to wrong space " + spec.name);
  }

  RunResult res;
  res.layout_name = layout_.name();
  res.clock_mhz = config_.clock_mhz;
  res.regions.resize(layout_.region_count());
  res.block_max_word_writes.assign(program.block_count(), 0);
  res.block_spm_accesses.assign(program.block_count(), 0);
  res.block_cache_accesses.assign(program.block_count(), 0);

  Cache icache(config_.icache);
  Cache dcache(config_.dcache);
  const std::uint32_t line_words = config_.icache.line_bytes / 8;
  const std::uint32_t dline_words = config_.dcache.line_bytes / 8;

  std::vector<BlockState> blocks(program.block_count());
  std::vector<RegionState> regions(layout_.region_count());
  std::uint64_t tick = 0;

  // --- optional observability ---------------------------------------
  // Everything obs-related sits behind `if constexpr (WithObs)` so the
  // common WithObs=false instantiation is instrumentation-free code.
  [[maybe_unused]] std::unique_ptr<ObsState> obs_state;
  [[maybe_unused]] PhaseStats* cur_phase = nullptr;
  [[maybe_unused]] auto now = [&res]() noexcept {
    return res.compute_cycles + res.spm_cycles + res.cache_cycles +
           res.dram_penalty_cycles + res.dma_cycles;
  };
  [[maybe_unused]] auto enter_phase = [&](const std::string& name) {
    auto [it, inserted] =
        obs_state->phase_index.emplace(name, res.phases.size());
    if (inserted) res.phases.push_back(PhaseStats{name, 0, 0, 0, 0, 0, 0,
                                                  0.0, 0.0, 0.0});
    obs_state->phase_stack.push_back(it->second);
    cur_phase = &res.phases[it->second];
  };
  if constexpr (WithObs) {
    obs_state = std::make_unique<ObsState>();
    obs::Registry& reg = obs::registry();
    reg.counter("sim.runs").add(1);
    obs_state->evictions = &reg.counter("sim.evictions");
    obs_state->dma_transfers = &reg.counter("sim.dma_transfers");
    obs_state->dma_words = &reg.counter("sim.dma_words");
    obs_state->cache_fills = &reg.counter("sim.cache_fills");
    obs_state->dma_span = &reg.histogram(
        "sim.dma_words_per_transfer",
        {8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0});
    if (obs::TraceEventSink* tr = obs::current_trace()) {
      obs_state->trace = tr;
      obs_state->phase_lane = tr->lane("sim", "phases");
      obs_state->dma_lane = tr->lane("sim", "dma");
      obs_state->spm_lane = tr->lane("sim", "spm");
      obs_state->cache_lane = tr->lane("sim", "cache");
      tr->begin(obs_state->phase_lane, "run:" + res.layout_name, 0);
    }
    enter_phase("(top)");
  }

  // DMA transfer of `words` words of `blk` between DRAM and a region.
  auto dma_transfer = [&](RegionId rid, BlockId blk, std::uint64_t words,
                          bool into_spm) {
    const SpmRegionSpec& spec = layout_.region(rid);
    const std::uint32_t spm_lat = into_spm ? spec.tech.write_latency_cycles
                                           : spec.tech.read_latency_cycles;
    const std::uint64_t cycles =
        dma_transfer_cycles(config_.dma, config_.dram, spm_lat, words);
    const double dram_e = words * (into_spm ? config_.dram.read_energy_pj
                                            : config_.dram.write_energy_pj);
    const double spm_e = words * (into_spm ? spec.tech.write_energy_pj
                                           : spec.tech.read_energy_pj);
    if constexpr (WithObs) {
      obs_state->dma_transfers->add(1);
      obs_state->dma_words->add(words);
      obs_state->dma_span->observe(static_cast<double>(words));
      cur_phase->dma_cycles += cycles;
      cur_phase->spm_energy_pj += spm_e;
      cur_phase->dram_energy_pj += dram_e;
      if (obs_state->trace != nullptr) {
        obs_state->trace->complete(
            obs_state->dma_lane,
            (into_spm ? "load " : "writeback ") + program.block(blk).name,
            now(), cycles,
            {obs::TraceArg::str("region", spec.name),
             obs::TraceArg::num("words", words)});
      }
    }
    res.dma_cycles += cycles;
    res.dma_energy_pj += dram_e + spm_e;
    res.dma_dram_side_energy_pj += dram_e;
    if (into_spm)
      res.regions[rid].dma_in_words += words;
    else
      res.regions[rid].dma_out_words += words;
  };

  auto evict = [&](RegionId rid, BlockId victim) FTSPM_SIM_INLINE {
    RegionState& rs = regions[rid];
    BlockState& vs = blocks[victim];
    if constexpr (WithObs) {
      obs_state->evictions->add(1);
      if (obs_state->trace != nullptr) {
        obs_state->trace->instant(
            obs_state->spm_lane, "evict " + program.block(victim).name,
            now(),
            {obs::TraceArg::str("region", layout_.region(rid).name),
             obs::TraceArg::str("dirty", vs.dirty ? "yes" : "no")});
      }
    }
    if (vs.dirty)
      dma_transfer(rid, victim, program.block(victim).size_words(), false);
    vs.resident = false;
    vs.dirty = false;
    rs.used_words -= program.block(victim).size_words();
    rs.resident.erase(std::find(rs.resident.begin(), rs.resident.end(),
                                victim));
  };

  auto ensure_resident = [&](BlockId id, RegionId rid) FTSPM_SIM_INLINE {
    BlockState& bs = blocks[id];
    bs.last_use = ++tick;
    if (bs.resident) return;
    RegionState& rs = regions[rid];
    const std::uint64_t need = program.block(id).size_words();
    while (rs.used_words + need > layout_.region(rid).data_words()) {
      FTSPM_CHECK(!rs.resident.empty(),
                  "allocator invariant: block fits an empty region");
      // Evict the least-recently-used resident block.
      BlockId victim = rs.resident.front();
      for (BlockId b : rs.resident)
        if (blocks[b].last_use < blocks[victim].last_use) victim = b;
      ++res.regions[rid].capacity_evictions;
      evict(rid, victim);
    }
    dma_transfer(rid, id, need, true);
    rs.used_words += need;
    rs.resident.push_back(id);
    bs.resident = true;
  };

  auto cache_access = [&](Cache& cache, std::uint32_t cline_words,
                          std::uint64_t addr, bool is_write,
                          const char* fill_counter) {
    const CacheAccessResult r = cache.access(addr, is_write);
    res.cache_cycles += cache.config().hit_latency_cycles;
    res.cache_energy_pj += config_.cache_access_energy_pj;
    if constexpr (WithObs) {
      cur_phase->cache_cycles += cache.config().hit_latency_cycles;
      cur_phase->cache_energy_pj += config_.cache_access_energy_pj;
    }
    if (!r.hit) {
      res.dram_penalty_cycles += config_.dram.line_latency_cycles;
      res.dram_energy_pj += cline_words * config_.dram.read_energy_pj;
      if constexpr (WithObs) {
        obs_state->cache_fills->add(1);
        cur_phase->dram_penalty_cycles += config_.dram.line_latency_cycles;
        cur_phase->dram_energy_pj +=
            cline_words * config_.dram.read_energy_pj;
        if (obs_state->trace != nullptr &&
            obs_state->cache_fills->value() % kCacheFillSamplePeriod == 0) {
          obs_state->trace->value(
              obs_state->cache_lane, fill_counter, now(),
              static_cast<double>(obs_state->cache_fills->value()));
        }
      }
    }
    if (r.writeback) {
      res.dram_penalty_cycles += config_.dram.word_latency_cycles *
                                 cline_words;
      res.dram_energy_pj += cline_words * config_.dram.write_energy_pj;
      if constexpr (WithObs) {
        cur_phase->dram_penalty_cycles +=
            config_.dram.word_latency_cycles * cline_words;
        cur_phase->dram_energy_pj +=
            cline_words * config_.dram.write_energy_pj;
      }
    }
  };

  for (const TraceEvent& e : workload.trace) {
    if (e.is_marker()) {
      if constexpr (WithObs) {
        if (e.type == AccessType::CallEnter) {
          const std::string& name = program.block(e.block).name;
          if (obs_state->trace != nullptr)
            obs_state->trace->begin(obs_state->phase_lane, name, now());
          enter_phase(name);
        } else if (obs_state->phase_stack.size() > 1) {
          // CallExit: return to the caller's phase. The guard tolerates
          // truncated traces whose call markers are unbalanced.
          if (obs_state->trace != nullptr)
            obs_state->trace->end(obs_state->phase_lane, now());
          obs_state->phase_stack.pop_back();
          cur_phase = &res.phases[obs_state->phase_stack.back()];
        }
      }
      continue;
    }
    const Block& blk = program.block(e.block);
    const std::uint32_t n_words = blk.size_words();
    res.compute_cycles += static_cast<std::uint64_t>(e.gap) * e.repeat;
    if constexpr (WithObs) {
      cur_phase->compute_cycles += static_cast<std::uint64_t>(e.gap) *
                                   e.repeat;
      cur_phase->accesses += e.repeat;
    }

    const RegionId rid = block_to_region[e.block];
    const bool is_write = e.type == AccessType::Write;

    if (rid != kNoRegion) {
      res.block_spm_accesses[e.block] += e.repeat;
      ensure_resident(e.block, rid);
      const SpmRegionSpec& spec = layout_.region(rid);
      RegionRunStats& rstats = res.regions[rid];
      BlockState& bs = blocks[e.block];
      if constexpr (WithObs) {
        const std::uint64_t spm_cyc =
            static_cast<std::uint64_t>(e.repeat) *
            (is_write ? spec.tech.write_latency_cycles
                      : spec.tech.read_latency_cycles);
        cur_phase->spm_cycles += spm_cyc;
        cur_phase->spm_energy_pj +=
            e.repeat * (is_write ? spec.tech.write_energy_pj
                                 : spec.tech.read_energy_pj);
      }
      if (is_write) {
        rstats.writes += e.repeat;
        rstats.write_energy_pj += e.repeat * spec.tech.write_energy_pj;
        res.spm_cycles += static_cast<std::uint64_t>(e.repeat) *
                          spec.tech.write_latency_cycles;
        bs.dirty = true;
        if (spec.tech.endurance_writes > 0.0) {
          // Endurance-limited technology: track per-word wear.
          if (bs.wear.empty()) bs.wear.assign(n_words, 0);
          for (std::uint32_t k = 0; k < e.repeat; ++k)
            ++bs.wear[(e.offset + k) % n_words];
        }
      } else {
        rstats.reads += e.repeat;
        rstats.read_energy_pj += e.repeat * spec.tech.read_energy_pj;
        res.spm_cycles += static_cast<std::uint64_t>(e.repeat) *
                          spec.tech.read_latency_cycles;
      }
    } else {
      res.block_cache_accesses[e.block] += e.repeat;
      const bool is_code = e.type == AccessType::Fetch;
      Cache& cache = is_code ? icache : dcache;
      const std::uint32_t cline = is_code ? line_words : dline_words;
      const std::uint64_t base = program.base_address(e.block);
      const char* fill_counter = is_code ? "icache_fills" : "dcache_fills";
      for (std::uint32_t k = 0; k < e.repeat; ++k) {
        const std::uint64_t addr =
            base + static_cast<std::uint64_t>((e.offset + k) % n_words) * 8;
        cache_access(cache, cline, addr, is_write, fill_counter);
      }
    }
  }

  // Final write-back of dirty resident blocks (end-of-program flush).
  for (std::size_t i = 0; i < program.block_count(); ++i) {
    const RegionId rid = block_to_region[i];
    if (rid != kNoRegion && blocks[i].resident && blocks[i].dirty)
      dma_transfer(rid, static_cast<BlockId>(i),
                   program.block(static_cast<BlockId>(i)).size_words(),
                   false);
  }

  // Wear roll-up.
  for (std::size_t i = 0; i < program.block_count(); ++i) {
    if (blocks[i].wear.empty()) continue;
    const std::uint64_t hottest =
        *std::max_element(blocks[i].wear.begin(), blocks[i].wear.end());
    res.block_max_word_writes[i] = hottest;
    const RegionId rid = block_to_region[i];
    if (rid != kNoRegion)
      res.regions[rid].max_word_writes =
          std::max(res.regions[rid].max_word_writes, hottest);
  }

  res.icache = icache.stats();
  res.dcache = dcache.stats();
  res.total_cycles = res.compute_cycles + res.spm_cycles + res.cache_cycles +
                     res.dram_penalty_cycles + res.dma_cycles;
  if constexpr (WithObs) {
    if (obs_state->trace != nullptr) {
      // Close any call spans left open by a truncated trace, then the
      // whole-run span opened before the first event.
      for (std::size_t d = obs_state->phase_stack.size(); d > 1; --d)
        obs_state->trace->end(obs_state->phase_lane, res.total_cycles);
      obs_state->trace->end(obs_state->phase_lane, res.total_cycles);
    }
  }
  const double time_us = static_cast<double>(res.total_cycles) /
                         config_.clock_mhz;
  res.spm_static_energy_pj = layout_.static_power_mw() * time_us * 1000.0;
  return res;
}

RunResult Simulator::run(const Workload& workload,
                         std::span<const RegionId> block_to_region) const {
  if (obs::enabled()) return run_impl<true>(workload, block_to_region);
  return run_impl<false>(workload, block_to_region);
}

#undef FTSPM_SIM_INLINE

}  // namespace ftspm
