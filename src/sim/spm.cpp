#include "ftspm/sim/spm.h"

#include "ftspm/util/error.h"

namespace ftspm {

const char* to_string(SpmSpace space) noexcept {
  return space == SpmSpace::Instruction ? "I-SPM" : "D-SPM";
}

SpmLayout::SpmLayout(std::string name, std::vector<SpmRegionSpec> regions)
    : name_(std::move(name)), regions_(std::move(regions)) {
  FTSPM_REQUIRE(!regions_.empty(), "layout needs at least one region");
  for (const auto& r : regions_) {
    FTSPM_REQUIRE(!r.name.empty(), "region needs a name");
    FTSPM_REQUIRE(r.data_bytes > 0 && r.data_bytes % 8 == 0,
                  "region size must be a positive multiple of 8: " + r.name);
  }
}

const SpmRegionSpec& SpmLayout::region(RegionId id) const {
  FTSPM_REQUIRE(id < regions_.size(), "region id out of range");
  return regions_[id];
}

std::optional<RegionId> SpmLayout::find(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < regions_.size(); ++i)
    if (regions_[i].name == name) return static_cast<RegionId>(i);
  return std::nullopt;
}

std::uint64_t SpmLayout::total_data_bytes() const noexcept {
  std::uint64_t n = 0;
  for (const auto& r : regions_) n += r.data_bytes;
  return n;
}

std::uint64_t SpmLayout::space_data_bytes(SpmSpace space) const noexcept {
  std::uint64_t n = 0;
  for (const auto& r : regions_)
    if (r.space == space) n += r.data_bytes;
  return n;
}

std::uint64_t SpmLayout::total_physical_bits() const {
  std::uint64_t n = 0;
  for (const auto& r : regions_) n += r.geometry().physical_bits();
  return n;
}

double SpmLayout::static_power_mw() const noexcept {
  double p = 0.0;
  for (const auto& r : regions_) p += r.tech.static_power_mw(r.data_bytes);
  return p;
}

}  // namespace ftspm
