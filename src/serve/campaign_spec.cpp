#include "ftspm/serve/campaign_spec.h"

#include <chrono>
#include <cmath>
#include <vector>

#include "ftspm/core/system_campaign.h"
#include "ftspm/exec/parallel_campaign.h"
#include "ftspm/exec/thread_pool.h"
#include "ftspm/mem/technology_library.h"
#include "ftspm/report/campaign_report.h"
#include "ftspm/util/error.h"

namespace ftspm::serve {

namespace {

ProtectionKind protection_kind(const std::string& name,
                               std::uint32_t& check_bits) {
  if (name == "parity") {
    check_bits = 1;
    return ProtectionKind::Parity;
  }
  if (name == "secded") {
    check_bits = 8;
    return ProtectionKind::SecDed;
  }
  if (name == "none") {
    check_bits = 0;
    return ProtectionKind::None;
  }
  throw InvalidArgument("unknown protection '" + name + "'");
}

/// Exact non-negative integer out of a JSON number (the wire carries
/// doubles; 1e18-scale counts still round-trip, fractions do not).
std::uint64_t as_u64(const JsonValue& v, std::string_view key,
                     std::uint64_t max) {
  FTSPM_REQUIRE(v.is_number(), "spec." + std::string(key) +
                                   " must be a number");
  const double d = v.number;
  FTSPM_REQUIRE(d >= 0.0 && d <= static_cast<double>(max) &&
                    std::floor(d) == d,
                "spec." + std::string(key) + " must be an integer in [0, " +
                    std::to_string(max) + "]");
  return static_cast<std::uint64_t>(d);
}

double as_double(const JsonValue& v, std::string_view key) {
  FTSPM_REQUIRE(v.is_number(), "spec." + std::string(key) +
                                   " must be a number");
  return v.number;
}

}  // namespace

void validate_spec(const CampaignSpec& spec) {
  std::uint32_t check_bits = 0;
  protection_kind(spec.protection, check_bits);  // throws on unknown
  FTSPM_REQUIRE(spec.strikes >= 1, "spec.strikes must be >= 1");
  FTSPM_REQUIRE(spec.size >= 8, "spec.size must be >= 8 bytes");
  FTSPM_REQUIRE(spec.interleave >= 1, "spec.interleave must be >= 1");
  FTSPM_REQUIRE(spec.node > 0.0, "spec.node must be positive");
  FTSPM_REQUIRE(spec.occupancy >= 0.0 && spec.occupancy <= 1.0,
                "spec.occupancy must be in [0, 1]");
  FTSPM_REQUIRE(spec.shards >= 1, "spec.shards must be >= 1");
  FTSPM_REQUIRE(spec.dirty_fraction >= 0.0 && spec.dirty_fraction <= 1.0,
                "spec.dirty_fraction must be in [0, 1]");
  FTSPM_REQUIRE(spec.refetch_words >= 1, "spec.refetch_words must be >= 1");
}

CampaignSpec spec_from_json(const JsonValue& value) {
  FTSPM_REQUIRE(value.is_object(), "campaign spec must be an object");
  CampaignSpec spec;
  for (const auto& [key, v] : value.object) {
    if (key == "protection") {
      FTSPM_REQUIRE(v.is_string(), "spec.protection must be a string");
      spec.protection = v.string;
    } else if (key == "strikes") {
      spec.strikes = as_u64(v, key, std::uint64_t{1} << 53);
    } else if (key == "seed") {
      spec.seed = as_u64(v, key, std::uint64_t{1} << 53);
    } else if (key == "size") {
      spec.size = as_u64(v, key, std::uint64_t{1} << 40);
    } else if (key == "interleave") {
      spec.interleave = static_cast<std::uint32_t>(as_u64(v, key, 1u << 16));
    } else if (key == "node") {
      spec.node = as_double(v, key);
    } else if (key == "occupancy") {
      spec.occupancy = as_double(v, key);
    } else if (key == "shards") {
      spec.shards = static_cast<std::uint32_t>(as_u64(v, key, 4096));
    } else if (key == "recover") {
      FTSPM_REQUIRE(v.is_bool(), "spec.recover must be a boolean");
      spec.recover = v.boolean;
    } else if (key == "scrub_interval") {
      spec.scrub_interval = as_u64(v, key, std::uint64_t{1} << 53);
    } else if (key == "dirty_fraction") {
      spec.dirty_fraction = as_double(v, key);
    } else if (key == "refetch_words") {
      spec.refetch_words = as_u64(v, key, std::uint64_t{1} << 32);
    } else if (key == "heartbeat_strikes") {
      spec.heartbeat_strikes = as_u64(v, key, std::uint64_t{1} << 53);
    } else {
      throw InvalidArgument("unknown spec field '" + key + "'");
    }
  }
  validate_spec(spec);
  return spec;
}

std::string spec_to_json(const CampaignSpec& spec) {
  JsonWriter w;
  w.begin_object()
      .field("protection", spec.protection)
      .field("strikes", spec.strikes)
      .field("seed", spec.seed)
      .field("size", spec.size)
      .field("interleave", static_cast<std::uint64_t>(spec.interleave))
      .field("node", spec.node)
      .field("occupancy", spec.occupancy)
      .field("shards", static_cast<std::uint64_t>(spec.shards))
      .field("recover", spec.recover)
      .field("scrub_interval", spec.scrub_interval)
      .field("dirty_fraction", spec.dirty_fraction)
      .field("refetch_words", spec.refetch_words)
      .field("heartbeat_strikes", spec.heartbeat_strikes)
      .end_object();
  return w.str();
}

CampaignOutcome run_campaign_spec(const CampaignSpec& spec,
                                  const CampaignRunHooks& hooks) {
  validate_spec(spec);
  std::uint32_t check_bits = 0;
  const ProtectionKind kind = protection_kind(spec.protection, check_bits);

  RecoveryRegion region;
  region.inject = InjectionRegion{RegionGeometry(spec.size, check_bits), kind,
                                  spec.occupancy, spec.interleave};
  const TechnologyLibrary lib;
  region.tech = kind == ProtectionKind::SecDed
                    ? lib.secded_sram()
                    : (kind == ProtectionKind::Parity ? lib.parity_sram()
                                                      : lib.unprotected_sram());
  region.dirty_fraction = spec.dirty_fraction;
  region.refetch_words = spec.refetch_words;
  region.scrub = kind == ProtectionKind::SecDed;

  CampaignConfig cfg;
  cfg.strikes = spec.strikes;
  cfg.seed = spec.seed;
  if (spec.heartbeat_strikes != 0 && hooks.progress) {
    cfg.progress_interval = spec.heartbeat_strikes;
    cfg.progress = hooks.progress;
  }

  const RecoveryPolicy policy =
      make_recovery_policy(SimConfig{}, spec.recover, spec.scrub_interval);

  exec::ExecConfig exec_cfg;
  exec_cfg.jobs = hooks.jobs;
  exec_cfg.shards = spec.shards;
  exec_cfg.pool = hooks.pool;
  exec_cfg.cancel = hooks.cancel;
  exec_cfg.shard_span = hooks.shard_span;

  const StrikeMultiplicityModel strikes =
      StrikeMultiplicityModel::for_node(spec.node);

  CampaignOutcome out;
  const auto wall_start = std::chrono::steady_clock::now();
  exec::RecoveryShardedRun run = exec::run_recovery_campaign_sharded(
      {region}, strikes, cfg, policy, exec_cfg);
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
  out.result = run.merged;
  out.recovery_active = policy.active();
  out.complete = run.complete;
  out.used_jobs = hooks.pool != nullptr ? hooks.pool->size()
                                        : exec_cfg.effective_jobs();
  out.used_shards = static_cast<std::uint32_t>(run.shard_results.size());
  out.strikes_per_sec =
      out.wall_ms > 0.0
          ? static_cast<double>(out.result.strikes.strikes) * 1e3 / out.wall_ms
          : 0.0;
  return out;
}

obs::LedgerRecord campaign_spec_record(const CampaignSpec& spec,
                                       const CampaignOutcome& outcome) {
  return report::campaign_run_record(
      outcome.result.strikes,
      outcome.recovery_active ? &outcome.result.recovery : nullptr,
      spec.protection, spec.seed, outcome.used_jobs, outcome.used_shards,
      outcome.wall_ms, outcome.strikes_per_sec);
}

}  // namespace ftspm::serve
