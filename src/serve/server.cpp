#include "ftspm/serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <netinet/in.h>
#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "ftspm/exec/thread_pool.h"
#include "ftspm/obs/ledger.h"
#include "ftspm/obs/metrics.h"
#include "ftspm/serve/campaign_spec.h"
#include "ftspm/util/error.h"

namespace ftspm::serve {

namespace {

/// One accepted client. Shared between its reader thread, queued
/// requests, and the executor; writes are serialized by `write_mutex`
/// because the executor streams heartbeats/results while the reader
/// may be answering a ping on the same fd.
struct Connection {
  int fd = -1;
  std::mutex write_mutex;
  std::atomic<bool> open{true};

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
};

using ConnectionPtr = std::shared_ptr<Connection>;

/// Writes one NDJSON frame. A failed write (peer gone) marks the
/// connection closed; frames to a closed connection are dropped — the
/// run itself must never die because its requester hung up.
void write_frame(const ConnectionPtr& conn, std::string_view frame) {
  if (!conn->open.load(std::memory_order_acquire)) return;
  const std::lock_guard<std::mutex> lock(conn->write_mutex);
  std::string line(frame);
  line += '\n';
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = ::send(conn->fd, line.data() + sent, line.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) {
      conn->open.store(false, std::memory_order_release);
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

int make_unix_listener(const std::string& path) {
  FTSPM_REQUIRE(!path.empty(), "serve: socket path must not be empty");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  FTSPM_REQUIRE(path.size() < sizeof(addr.sun_path),
                "serve: socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  FTSPM_CHECK(fd >= 0, "serve: cannot create unix socket");
  ::unlink(path.c_str());  // A stale socket from a crashed daemon.
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    throw Error("serve: cannot bind/listen on '" + path + "'");
  }
  return fd;
}

int make_tcp_listener(std::uint16_t port, std::uint16_t& bound) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  FTSPM_CHECK(fd >= 0, "serve: cannot create tcp socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // Loopback only.
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    throw Error("serve: cannot bind/listen on 127.0.0.1:" +
                std::to_string(port));
  }
  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len);
  bound = ntohs(actual.sin_port);
  return fd;
}

/// One admitted campaign waiting for (or holding) the executor.
struct PendingRequest {
  std::string id;
  std::uint32_t priority = 0;
  std::uint64_t seq = 0;  ///< Admission order; FIFO within a priority.
  CampaignSpec spec;
  ConnectionPtr conn;
  std::shared_ptr<std::atomic<bool>> cancel;
};

}  // namespace

struct Server::Impl {
  explicit Impl(const ServerConfig& config) : cfg(config) {}

  const ServerConfig& cfg;

  int unix_fd = -1;
  int tcp_fd = -1;
  int wake_pipe[2] = {-1, -1};

  std::unique_ptr<exec::ThreadPool> pool;
  std::thread accept_thread;
  std::thread executor_thread;
  std::mutex reader_mutex;  ///< Guards `readers`/`connections`.
  std::vector<std::thread> readers;
  std::vector<std::weak_ptr<Connection>> connections;
  std::atomic<std::uint64_t> live_connections{0};

  // Admission queue + executor handshake.
  mutable std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<PendingRequest> queue;
  bool stopping = false;
  std::uint64_t next_seq = 0;
  std::string running_id;                          // Guarded by queue_mutex.
  std::shared_ptr<std::atomic<bool>> running_cancel;  // Likewise.

  // Aggregate counters for status frames (lock-free readers).
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> rejected_overload{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<bool> accepting{false};

  std::mutex ledger_mutex;

  void accept_loop();
  void reader_loop(ConnectionPtr conn);
  void executor_loop();
  void handle_request(const ConnectionPtr& conn, const Request& req);
  void admit_campaign(const ConnectionPtr& conn, Request req);
  void handle_cancel(const ConnectionPtr& conn, const std::string& target);
  ServerStatus snapshot() const;
  void run_one(PendingRequest req);
  void fold_into_registry() const;
};

Server::Server(ServerConfig config) : config_(std::move(config)) {
  final_status_.accepting = false;  // status() before start().
}

Server::~Server() {
  if (impl_ != nullptr) {
    request_stop();
    wait();
  }
}

void Server::start() {
  FTSPM_REQUIRE(impl_ == nullptr, "serve: server already started");
  auto impl = std::make_unique<Impl>(config_);
  FTSPM_CHECK(::pipe(impl->wake_pipe) == 0, "serve: cannot create wake pipe");
  impl->unix_fd = make_unix_listener(config_.socket_path);
  if (config_.tcp_port != 0)
    impl->tcp_fd = make_tcp_listener(config_.tcp_port, tcp_port_);
  impl->pool = std::make_unique<exec::ThreadPool>(config_.jobs);
  impl->accepting.store(true, std::memory_order_release);
  impl->executor_thread = std::thread([i = impl.get()] { i->executor_loop(); });
  impl->accept_thread = std::thread([i = impl.get()] { i->accept_loop(); });
  impl_ = std::move(impl);
}

void Server::request_stop() noexcept {
  if (impl_ == nullptr) return;
  // Async-signal-safe: one write, no locks. The accept loop owns the
  // orderly part of the shutdown.
  const char byte = 's';
  [[maybe_unused]] const ssize_t n = ::write(impl_->wake_pipe[1], &byte, 1);
}

void Server::wait() {
  if (impl_ == nullptr) return;
  Impl& impl = *impl_;
  if (impl.accept_thread.joinable()) impl.accept_thread.join();
  {
    // The accept loop has exited: no new readers can appear.
    const std::lock_guard<std::mutex> lock(impl.reader_mutex);
    for (std::thread& t : impl.readers)
      if (t.joinable()) t.join();
    impl.readers.clear();
  }
  {
    const std::lock_guard<std::mutex> lock(impl.queue_mutex);
    impl.stopping = true;
  }
  impl.queue_cv.notify_all();
  if (impl.executor_thread.joinable()) impl.executor_thread.join();
  impl.fold_into_registry();
  final_status_ = impl.snapshot();
  for (const int fd : {impl.wake_pipe[0], impl.wake_pipe[1]})
    if (fd >= 0) ::close(fd);
  impl.wake_pipe[0] = impl.wake_pipe[1] = -1;
  if (!config_.socket_path.empty()) ::unlink(config_.socket_path.c_str());
  impl_.reset();
}

ServerStatus Server::status() const {
  // After wait() the threads are gone; answer the drained snapshot so
  // the CLI can print its exit summary.
  return impl_ != nullptr ? impl_->snapshot() : final_status_;
}

ServerStatus Server::Impl::snapshot() const {
  ServerStatus s;
  s.accepting = accepting.load(std::memory_order_acquire);
  s.admitted = admitted.load(std::memory_order_relaxed);
  s.completed = completed.load(std::memory_order_relaxed);
  s.rejected_overload = rejected_overload.load(std::memory_order_relaxed);
  s.cancelled = cancelled.load(std::memory_order_relaxed);
  s.failed = failed.load(std::memory_order_relaxed);
  s.max_queue = cfg.max_queue;
  s.jobs = pool != nullptr ? pool->size() : cfg.jobs;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex);
    s.queued = queue.size();
    s.running_id = running_id;
    s.running = running_id.empty() ? 0 : 1;
  }
  return s;
}

void Server::Impl::accept_loop() {
  while (true) {
    pollfd fds[3];
    nfds_t nfds = 0;
    fds[nfds++] = pollfd{wake_pipe[0], POLLIN, 0};
    fds[nfds++] = pollfd{unix_fd, POLLIN, 0};
    if (tcp_fd >= 0) fds[nfds++] = pollfd{tcp_fd, POLLIN, 0};
    const int rc = ::poll(fds, nfds, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) break;  // Stop requested.
    for (nfds_t i = 1; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int client = ::accept(fds[i].fd, nullptr, nullptr);
      if (client < 0) continue;
      auto conn = std::make_shared<Connection>();
      conn->fd = client;
      if (live_connections.load(std::memory_order_relaxed) >=
          cfg.max_connections) {
        write_frame(conn, error_frame("", ErrorCode::Overloaded,
                                      "too many connections"));
        continue;  // conn dtor closes the fd.
      }
      live_connections.fetch_add(1, std::memory_order_relaxed);
      const std::lock_guard<std::mutex> lock(reader_mutex);
      connections.push_back(conn);
      readers.emplace_back([this, conn] { reader_loop(conn); });
    }
  }

  // Shutdown: stop admissions, cancel the running request, bounce the
  // queued ones. Reader threads see closed listeners only; they drain
  // naturally when their clients hang up or the process exits.
  accepting.store(false, std::memory_order_release);
  std::deque<PendingRequest> orphaned;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex);
    stopping = true;
    orphaned.swap(queue);
    if (running_cancel != nullptr)
      running_cancel->store(true, std::memory_order_relaxed);
  }
  queue_cv.notify_all();
  for (const PendingRequest& req : orphaned) {
    cancelled.fetch_add(1, std::memory_order_relaxed);
    write_frame(req.conn, error_frame(req.id, ErrorCode::ShuttingDown,
                                      "daemon is shutting down"));
  }
  for (const int fd : {unix_fd, tcp_fd})
    if (fd >= 0) ::close(fd);
  unix_fd = tcp_fd = -1;
  {
    // Unblock reader threads parked in recv(): a half-close makes
    // recv return 0 without yanking the fd out from under a writer.
    const std::lock_guard<std::mutex> lock(reader_mutex);
    for (const std::weak_ptr<Connection>& weak : connections)
      if (const ConnectionPtr conn = weak.lock())
        ::shutdown(conn->fd, SHUT_RD);
  }
}

void Server::Impl::reader_loop(ConnectionPtr conn) {
  NdjsonReader reader(cfg.max_frame_bytes);
  char buf[4096];
  while (conn->open.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    try {
      reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      while (auto doc = reader.next()) {
        Request req;
        try {
          req = parse_request(*doc);
        } catch (const Error& e) {
          write_frame(conn,
                      error_frame("", ErrorCode::BadRequest, e.what()));
          continue;  // Frame was well-formed JSON; the stream is intact.
        }
        handle_request(conn, req);
      }
    } catch (const Error& e) {
      // Unparseable or oversized frame: the byte stream itself can no
      // longer be trusted, so answer once and drop the connection.
      write_frame(conn, error_frame("", ErrorCode::BadRequest, e.what()));
      break;
    }
  }
  conn->open.store(false, std::memory_order_release);
  live_connections.fetch_sub(1, std::memory_order_relaxed);
}

void Server::Impl::handle_request(const ConnectionPtr& conn,
                                  const Request& req) {
  switch (req.type) {
    case Request::Type::Ping:
      write_frame(conn, pong_frame());
      return;
    case Request::Type::Status:
      write_frame(conn, status_frame(snapshot()));
      return;
    case Request::Type::Shutdown: {
      write_frame(conn, shutting_down_frame());
      const char byte = 's';
      [[maybe_unused]] const ssize_t n = ::write(wake_pipe[1], &byte, 1);
      return;
    }
    case Request::Type::Cancel:
      handle_cancel(conn, req.id);
      return;
    case Request::Type::Campaign:
      admit_campaign(conn, req);
      return;
  }
}

void Server::Impl::admit_campaign(const ConnectionPtr& conn, Request req) {
  PendingRequest pending;
  pending.priority = req.priority;
  pending.spec = req.spec;
  pending.conn = conn;
  pending.cancel = std::make_shared<std::atomic<bool>>(false);
  std::uint64_t depth = 0;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex);
    if (stopping) {
      write_frame(conn, error_frame(req.id, ErrorCode::ShuttingDown,
                                    "daemon is shutting down"));
      return;
    }
    if (queue.size() >= cfg.max_queue) {
      rejected_overload.fetch_add(1, std::memory_order_relaxed);
      write_frame(conn,
                  error_frame(req.id, ErrorCode::Overloaded,
                              "admission queue full (" +
                                  std::to_string(cfg.max_queue) + ")"));
      return;
    }
    pending.seq = next_seq++;
    pending.id = !req.id.empty() ? req.id
                                 : "req-" + std::to_string(pending.seq);
    queue.push_back(pending);
    depth = queue.size();
    // Written under queue_mutex so the executor (which pops under the
    // same lock) cannot emit this request's result frame first.
    admitted.fetch_add(1, std::memory_order_relaxed);
    write_frame(conn, accepted_frame(pending.id, depth));
  }
  queue_cv.notify_one();
}

void Server::Impl::handle_cancel(const ConnectionPtr& conn,
                                 const std::string& target) {
  ConnectionPtr requester;
  bool found = false;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex);
    const auto it = std::find_if(
        queue.begin(), queue.end(),
        [&](const PendingRequest& p) { return p.id == target; });
    if (it != queue.end()) {
      requester = it->conn;
      queue.erase(it);
      found = true;
    } else if (running_id == target && running_cancel != nullptr) {
      // The executor notices at the next chunk boundary and answers
      // the requester with error(cancelled) itself.
      running_cancel->store(true, std::memory_order_relaxed);
      write_frame(conn, cancelled_frame(target));
      return;
    }
  }
  if (!found) {
    write_frame(conn, error_frame(target, ErrorCode::NotFound,
                                  "no queued or running request '" + target +
                                      "'"));
    return;
  }
  cancelled.fetch_add(1, std::memory_order_relaxed);
  write_frame(requester, error_frame(target, ErrorCode::Cancelled,
                                     "cancelled while queued"));
  if (requester != conn) write_frame(conn, cancelled_frame(target));
}

void Server::Impl::executor_loop() {
  while (true) {
    PendingRequest req;
    {
      std::unique_lock<std::mutex> lock(queue_mutex);
      queue_cv.wait(lock, [this] { return stopping || !queue.empty(); });
      if (queue.empty()) {
        if (stopping) return;
        continue;
      }
      // Highest priority first; admission order within a level.
      const auto best = std::min_element(
          queue.begin(), queue.end(),
          [](const PendingRequest& a, const PendingRequest& b) {
            if (a.priority != b.priority) return a.priority > b.priority;
            return a.seq < b.seq;
          });
      req = std::move(*best);
      queue.erase(best);
      running_id = req.id;
      running_cancel = req.cancel;
    }
    run_one(std::move(req));
    {
      const std::lock_guard<std::mutex> lock(queue_mutex);
      running_id.clear();
      running_cancel.reset();
    }
  }
}

void Server::Impl::run_one(PendingRequest req) {
  if (req.cancel->load(std::memory_order_relaxed) ||
      !req.conn->open.load(std::memory_order_acquire)) {
    // Cancelled (or orphaned by a hangup) before it ever ran.
    cancelled.fetch_add(1, std::memory_order_relaxed);
    write_frame(req.conn, error_frame(req.id, ErrorCode::Cancelled,
                                      "cancelled before execution"));
    return;
  }
  CampaignRunHooks hooks;
  hooks.pool = pool.get();
  hooks.cancel = req.cancel.get();
  if (req.spec.heartbeat_strikes != 0) {
    hooks.progress = [this, &req](std::uint64_t done, std::uint64_t total) {
      write_frame(req.conn, heartbeat_frame(req.id, done, total));
    };
  }
  CampaignOutcome outcome;
  try {
    outcome = run_campaign_spec(req.spec, hooks);
  } catch (const std::exception& e) {
    failed.fetch_add(1, std::memory_order_relaxed);
    write_frame(req.conn, error_frame(req.id, ErrorCode::Internal, e.what()));
    return;
  }
  if (!outcome.complete) {
    cancelled.fetch_add(1, std::memory_order_relaxed);
    write_frame(req.conn, error_frame(req.id, ErrorCode::Cancelled,
                                      "cancelled mid-run"));
    return;
  }
  obs::LedgerRecord record = campaign_spec_record(req.spec, outcome);
  std::string run_id;
  if (!cfg.ledger_path.empty()) {
    // Same id convention as the one-shot tool: run-<index> over the
    // records already present (lenient scan, like append_run_record).
    const std::lock_guard<std::mutex> lock(ledger_mutex);
    record.id = "run-" + std::to_string(
                             obs::scan_ledger(cfg.ledger_path).records.size());
    run_id = record.id;
    obs::append_ledger(record, cfg.ledger_path);
  }
  completed.fetch_add(1, std::memory_order_relaxed);
  write_frame(req.conn, result_frame(req.id, record, run_id,
                                     /*complete=*/true));
}

void Server::Impl::fold_into_registry() const {
  // Post-join, single-threaded: served-request outcomes as labelled
  // counters, so a --metrics-out snapshot of a serve session carries
  // the request mix next to the campaign counters.
  if (!obs::enabled()) return;
  obs::Registry& reg = obs::registry();
  const auto fold = [&reg](const std::string& outcome, std::uint64_t value) {
    if (value != 0)
      reg.counter("serve.requests", obs::LabelSet{{"outcome", outcome}})
          .add(value);
  };
  fold("completed", completed.load(std::memory_order_relaxed));
  fold("rejected_overload", rejected_overload.load(std::memory_order_relaxed));
  fold("cancelled", cancelled.load(std::memory_order_relaxed));
  fold("failed", failed.load(std::memory_order_relaxed));
}

}  // namespace ftspm::serve
