#include "ftspm/serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <netinet/in.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "ftspm/exec/thread_pool.h"
#include "ftspm/obs/ledger.h"
#include "ftspm/obs/metrics.h"
#include "ftspm/obs/wall_trace.h"
#include "ftspm/serve/campaign_spec.h"
#include "ftspm/serve/load.h"
#include "ftspm/util/error.h"
#include "ftspm/util/json.h"

namespace ftspm::serve {

namespace {

/// One accepted client. Shared between its reader thread, queued
/// requests, and the executor; writes are serialized by `write_mutex`
/// because the executor streams heartbeats/results while the reader
/// may be answering a ping on the same fd.
struct Connection {
  int fd = -1;
  std::mutex write_mutex;
  std::atomic<bool> open{true};

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
};

using ConnectionPtr = std::shared_ptr<Connection>;

/// Writes one NDJSON frame. A failed write (peer gone) marks the
/// connection closed; frames to a closed connection are dropped — the
/// run itself must never die because its requester hung up.
void write_frame(const ConnectionPtr& conn, std::string_view frame) {
  if (!conn->open.load(std::memory_order_acquire)) return;
  const std::lock_guard<std::mutex> lock(conn->write_mutex);
  std::string line(frame);
  line += '\n';
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = ::send(conn->fd, line.data() + sent, line.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) {
      conn->open.store(false, std::memory_order_release);
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

int make_unix_listener(const std::string& path) {
  FTSPM_REQUIRE(!path.empty(), "serve: socket path must not be empty");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  FTSPM_REQUIRE(path.size() < sizeof(addr.sun_path),
                "serve: socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  FTSPM_CHECK(fd >= 0, "serve: cannot create unix socket");
  ::unlink(path.c_str());  // A stale socket from a crashed daemon.
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    throw Error("serve: cannot bind/listen on '" + path + "'");
  }
  return fd;
}

int make_tcp_listener(std::uint16_t port, std::uint16_t& bound) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  FTSPM_CHECK(fd >= 0, "serve: cannot create tcp socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // Loopback only.
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    throw Error("serve: cannot bind/listen on 127.0.0.1:" +
                std::to_string(port));
  }
  sockaddr_in actual{};
  socklen_t len = sizeof(actual);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len);
  bound = ntohs(actual.sin_port);
  return fd;
}

/// One admitted campaign waiting for (or holding) the executor.
struct PendingRequest {
  std::string id;
  std::uint32_t priority = 0;
  std::uint64_t seq = 0;  ///< Admission order; FIFO within a priority.
  CampaignSpec spec;
  ConnectionPtr conn;
  std::shared_ptr<std::atomic<bool>> cancel;
  /// Admission wall-clock stamp (queue-wait attribution).
  std::chrono::steady_clock::time_point admitted_at;
  /// The request's wall-trace lane; meaningful only when tracing.
  obs::WallTrace::LaneId lane = 0;
};

/// The serve-side telemetry writer (ServerConfig::telemetry_path): one
/// dedicated thread appending NDJSON registry snapshots, mirroring the
/// campaign HeartbeatEmitter's contract — an immediate first record, a
/// final one at stop(), never on the hot path (request threads only
/// touch the registry it snapshots), and I/O failures reported once on
/// stderr instead of thrown.
class TelemetryEmitter {
 public:
  TelemetryEmitter(const std::string& path, std::uint32_t interval_ms,
                   std::function<std::string(bool final)> snapshot_line)
      : path_(path), interval_ms_(std::max<std::uint32_t>(interval_ms, 1)),
        snapshot_line_(std::move(snapshot_line)) {
    out_.open(path_, std::ios::binary | std::ios::app);
    FTSPM_REQUIRE(out_.good(),
                  "cannot open telemetry output '" + path_ + "'");
    thread_ = std::thread([this] { run(); });
  }

  ~TelemetryEmitter() { stop(); }

  /// Emits the final snapshot and joins. Idempotent.
  void stop() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  void run() {
    beat(/*final=*/false);  // At least one record, however short the run.
    std::unique_lock<std::mutex> lock(mutex_);
    while (!stopped_) {
      if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                       [this] { return stopped_; }))
        break;
      lock.unlock();
      beat(/*final=*/false);
      lock.lock();
    }
    lock.unlock();
    beat(/*final=*/true);
  }

  void beat(bool final) {
    out_ << snapshot_line_(final) << '\n';
    out_.flush();
    if (!out_.good() && !write_failed_) {
      write_failed_ = true;
      std::fprintf(stderr, "warning: telemetry write to '%s' failed\n",
                   path_.c_str());
    }
  }

  const std::string path_;
  const std::uint32_t interval_ms_;
  const std::function<std::string(bool final)> snapshot_line_;
  std::ofstream out_;
  bool write_failed_ = false;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopped_ = false;
};

}  // namespace

struct Server::Impl {
  explicit Impl(const ServerConfig& config) : cfg(config) {}

  const ServerConfig& cfg;

  int unix_fd = -1;
  int tcp_fd = -1;
  int wake_pipe[2] = {-1, -1};

  std::unique_ptr<exec::ThreadPool> pool;
  std::thread accept_thread;
  std::thread executor_thread;
  std::mutex reader_mutex;  ///< Guards `readers`/`connections`.
  std::vector<std::thread> readers;
  std::vector<std::weak_ptr<Connection>> connections;
  std::atomic<std::uint64_t> live_connections{0};

  // Admission queue + executor handshake.
  mutable std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<PendingRequest> queue;
  bool stopping = false;
  std::uint64_t next_seq = 0;
  std::string running_id;                          // Guarded by queue_mutex.
  std::shared_ptr<std::atomic<bool>> running_cancel;  // Likewise.

  // Aggregate counters for status frames (lock-free readers).
  std::atomic<std::uint64_t> admitted{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> rejected_overload{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<bool> accepting{false};

  std::mutex ledger_mutex;

  // Serving-layer telemetry. `telemetry` is the live registry behind
  // the `metrics` frame and the telemetry emitter; it is fed from
  // reader, accept, and executor threads under `telemetry_mutex`.
  // Lock order: queue_mutex before telemetry_mutex, never the reverse
  // (telemetry_line snapshots the queue *before* taking its own lock).
  // The wall trace locks internally and imposes no ordering.
  mutable std::mutex telemetry_mutex;
  obs::Registry telemetry;
  std::unique_ptr<obs::WallTrace> trace;
  obs::WallTrace::LaneId admission_lane = 0;  ///< Shed/shutdown marks.
  obs::WallTrace::LaneId queue_lane = 0;      ///< Queue-depth counter.
  std::unique_ptr<TelemetryEmitter> emitter;
  std::atomic<std::uint64_t> telemetry_seq{0};
  std::chrono::steady_clock::time_point started_at;

  void accept_loop();
  void reader_loop(ConnectionPtr conn);
  void executor_loop();
  void handle_request(const ConnectionPtr& conn, const Request& req);
  void admit_campaign(const ConnectionPtr& conn, Request req);
  void handle_cancel(const ConnectionPtr& conn, const std::string& target);
  ServerStatus snapshot() const;
  void run_one(PendingRequest req);
  void fold_into_registry() const;

  double uptime_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - started_at)
        .count();
  }
  /// One serve.requests{outcome=...} tick. Callers may hold queue_mutex.
  void record_outcome(std::string_view outcome) {
    const std::lock_guard<std::mutex> lock(telemetry_mutex);
    telemetry.counter("serve.requests", obs::LabelSet{{"outcome",
                                                       std::string(outcome)}})
        .add(1);
  }
  /// Gauge + trace counter for the admission queue depth.
  void record_queue_depth(std::uint64_t depth) {
    {
      const std::lock_guard<std::mutex> lock(telemetry_mutex);
      telemetry.gauge("serve.queue_depth").set(static_cast<double>(depth));
    }
    if (trace != nullptr)
      trace->value(queue_lane, "serve.queue_depth",
                   static_cast<double>(depth));
  }
  /// Dequeue instrumentation: closes the queued span and attributes the
  /// wait to the request's priority class.
  void note_dequeued(const PendingRequest& req, std::uint64_t depth) {
    const double wait_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() -
                               req.admitted_at)
                               .count();
    {
      const std::lock_guard<std::mutex> lock(telemetry_mutex);
      telemetry
          .histogram("serve.queue_wait_ms",
                     obs::LabelSet{{"priority",
                                    std::to_string(req.priority)}},
                     load_latency_bounds())
          .observe(wait_ms);
    }
    if (trace != nullptr) trace->end(req.lane);  // "queued"
    record_queue_depth(depth);
  }
  /// Service-time attribution, labelled by campaign kind.
  void record_service(std::string_view kind, double wall_ms) {
    const std::lock_guard<std::mutex> lock(telemetry_mutex);
    telemetry
        .histogram("serve.service_ms",
                   obs::LabelSet{{"kind", std::string(kind)}},
                   load_latency_bounds())
        .observe(wall_ms);
  }
  std::string registry_json() const {
    const std::lock_guard<std::mutex> lock(telemetry_mutex);
    return telemetry.to_json();
  }
  /// One telemetry NDJSON record. Snapshots the queue first, then the
  /// registry — see the lock-order note above.
  std::string telemetry_line(bool final) {
    const ServerStatus s = snapshot();
    const std::string registry = registry_json();
    JsonWriter w;
    w.begin_object()
        .field("schema", std::uint64_t{1})
        .field("event", "serve_telemetry")
        .field("seq", telemetry_seq.fetch_add(1, std::memory_order_relaxed))
        .field("final", final)
        .field("wall_ms", uptime_ms())
        .field("accepting", s.accepting)
        .field("queued", s.queued)
        .field("running", s.running)
        .field("admitted", s.admitted)
        .field("completed", s.completed)
        .field("rejected_overload", s.rejected_overload)
        .field("cancelled", s.cancelled)
        .field("failed", s.failed);
    w.raw_field("registry", registry);
    w.end_object();
    return w.str();
  }
};

Server::Server(ServerConfig config) : config_(std::move(config)) {
  final_status_.accepting = false;  // status() before start().
}

Server::~Server() {
  if (impl_ != nullptr) {
    request_stop();
    wait();
  }
}

void Server::start() {
  FTSPM_REQUIRE(impl_ == nullptr, "serve: server already started");
  auto impl = std::make_unique<Impl>(config_);
  FTSPM_CHECK(::pipe(impl->wake_pipe) == 0, "serve: cannot create wake pipe");
  impl->unix_fd = make_unix_listener(config_.socket_path);
  if (config_.tcp_port != 0)
    impl->tcp_fd = make_tcp_listener(config_.tcp_port, tcp_port_);
  impl->pool = std::make_unique<exec::ThreadPool>(config_.jobs);
  impl->started_at = std::chrono::steady_clock::now();
  if (!config_.trace_path.empty()) {
    impl->trace = std::make_unique<obs::WallTrace>();
    impl->admission_lane = impl->trace->lane("serve", "admission");
    impl->queue_lane = impl->trace->lane("serve", "queue");
  }
  if (!config_.telemetry_path.empty())
    impl->emitter = std::make_unique<TelemetryEmitter>(
        config_.telemetry_path, config_.telemetry_interval_ms,
        [i = impl.get()](bool final) { return i->telemetry_line(final); });
  impl->accepting.store(true, std::memory_order_release);
  impl->executor_thread = std::thread([i = impl.get()] { i->executor_loop(); });
  impl->accept_thread = std::thread([i = impl.get()] { i->accept_loop(); });
  impl_ = std::move(impl);
}

void Server::request_stop() noexcept {
  if (impl_ == nullptr) return;
  // Async-signal-safe: one write, no locks. The accept loop owns the
  // orderly part of the shutdown.
  const char byte = 's';
  [[maybe_unused]] const ssize_t n = ::write(impl_->wake_pipe[1], &byte, 1);
}

void Server::wait() {
  if (impl_ == nullptr) return;
  Impl& impl = *impl_;
  if (impl.accept_thread.joinable()) impl.accept_thread.join();
  {
    // The accept loop has exited: no new readers can appear.
    const std::lock_guard<std::mutex> lock(impl.reader_mutex);
    for (std::thread& t : impl.readers)
      if (t.joinable()) t.join();
    impl.readers.clear();
  }
  {
    const std::lock_guard<std::mutex> lock(impl.queue_mutex);
    impl.stopping = true;
  }
  impl.queue_cv.notify_all();
  if (impl.executor_thread.joinable()) impl.executor_thread.join();
  if (impl.emitter != nullptr) {
    // After the executor join, so the final record carries the drained
    // counters.
    impl.emitter->stop();
    impl.emitter.reset();
  }
  impl.fold_into_registry();
  if (impl.trace != nullptr) {
    try {
      impl.trace->write_file(config_.trace_path);
    } catch (const std::exception& e) {
      // wait() runs from the destructor too; report, don't throw.
      std::fprintf(stderr, "warning: trace write to '%s' failed: %s\n",
                   config_.trace_path.c_str(), e.what());
    }
  }
  final_status_ = impl.snapshot();
  for (const int fd : {impl.wake_pipe[0], impl.wake_pipe[1]})
    if (fd >= 0) ::close(fd);
  impl.wake_pipe[0] = impl.wake_pipe[1] = -1;
  if (!config_.socket_path.empty()) ::unlink(config_.socket_path.c_str());
  impl_.reset();
}

ServerStatus Server::status() const {
  // After wait() the threads are gone; answer the drained snapshot so
  // the CLI can print its exit summary.
  return impl_ != nullptr ? impl_->snapshot() : final_status_;
}

ServerStatus Server::Impl::snapshot() const {
  ServerStatus s;
  s.accepting = accepting.load(std::memory_order_acquire);
  s.admitted = admitted.load(std::memory_order_relaxed);
  s.completed = completed.load(std::memory_order_relaxed);
  s.rejected_overload = rejected_overload.load(std::memory_order_relaxed);
  s.cancelled = cancelled.load(std::memory_order_relaxed);
  s.failed = failed.load(std::memory_order_relaxed);
  s.max_queue = cfg.max_queue;
  s.jobs = pool != nullptr ? pool->size() : cfg.jobs;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex);
    s.queued = queue.size();
    s.running_id = running_id;
    s.running = running_id.empty() ? 0 : 1;
  }
  return s;
}

void Server::Impl::accept_loop() {
  while (true) {
    pollfd fds[3];
    nfds_t nfds = 0;
    fds[nfds++] = pollfd{wake_pipe[0], POLLIN, 0};
    fds[nfds++] = pollfd{unix_fd, POLLIN, 0};
    if (tcp_fd >= 0) fds[nfds++] = pollfd{tcp_fd, POLLIN, 0};
    const int rc = ::poll(fds, nfds, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) break;  // Stop requested.
    for (nfds_t i = 1; i < nfds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int client = ::accept(fds[i].fd, nullptr, nullptr);
      if (client < 0) continue;
      auto conn = std::make_shared<Connection>();
      conn->fd = client;
      if (live_connections.load(std::memory_order_relaxed) >=
          cfg.max_connections) {
        write_frame(conn, error_frame("", ErrorCode::Overloaded,
                                      "too many connections"));
        continue;  // conn dtor closes the fd.
      }
      live_connections.fetch_add(1, std::memory_order_relaxed);
      const std::lock_guard<std::mutex> lock(reader_mutex);
      connections.push_back(conn);
      readers.emplace_back([this, conn] { reader_loop(conn); });
    }
  }

  // Shutdown: stop admissions, cancel the running request, bounce the
  // queued ones. Reader threads see closed listeners only; they drain
  // naturally when their clients hang up or the process exits.
  accepting.store(false, std::memory_order_release);
  std::deque<PendingRequest> orphaned;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex);
    stopping = true;
    orphaned.swap(queue);
    if (running_cancel != nullptr)
      running_cancel->store(true, std::memory_order_relaxed);
  }
  queue_cv.notify_all();
  for (const PendingRequest& req : orphaned) {
    cancelled.fetch_add(1, std::memory_order_relaxed);
    record_outcome("cancelled");
    if (trace != nullptr) {
      trace->end(req.lane);  // "queued"
      trace->instant(req.lane, "shutdown");
    }
    write_frame(req.conn, error_frame(req.id, ErrorCode::ShuttingDown,
                                      "daemon is shutting down"));
  }
  if (!orphaned.empty()) record_queue_depth(0);
  for (const int fd : {unix_fd, tcp_fd})
    if (fd >= 0) ::close(fd);
  unix_fd = tcp_fd = -1;
  {
    // Unblock reader threads parked in recv(): a half-close makes
    // recv return 0 without yanking the fd out from under a writer.
    const std::lock_guard<std::mutex> lock(reader_mutex);
    for (const std::weak_ptr<Connection>& weak : connections)
      if (const ConnectionPtr conn = weak.lock())
        ::shutdown(conn->fd, SHUT_RD);
  }
}

void Server::Impl::reader_loop(ConnectionPtr conn) {
  NdjsonReader reader(cfg.max_frame_bytes);
  char buf[4096];
  while (conn->open.load(std::memory_order_acquire)) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    try {
      reader.feed(std::string_view(buf, static_cast<std::size_t>(n)));
      while (auto doc = reader.next()) {
        Request req;
        try {
          req = parse_request(*doc);
        } catch (const Error& e) {
          write_frame(conn,
                      error_frame("", ErrorCode::BadRequest, e.what()));
          continue;  // Frame was well-formed JSON; the stream is intact.
        }
        handle_request(conn, req);
      }
    } catch (const Error& e) {
      // Unparseable or oversized frame: the byte stream itself can no
      // longer be trusted, so answer once and drop the connection.
      write_frame(conn, error_frame("", ErrorCode::BadRequest, e.what()));
      break;
    }
  }
  conn->open.store(false, std::memory_order_release);
  live_connections.fetch_sub(1, std::memory_order_relaxed);
}

void Server::Impl::handle_request(const ConnectionPtr& conn,
                                  const Request& req) {
  switch (req.type) {
    case Request::Type::Ping:
      write_frame(conn, pong_frame());
      return;
    case Request::Type::Status:
      write_frame(conn, status_frame(snapshot()));
      return;
    case Request::Type::Metrics:
      // Queue snapshot first, then the registry (lock order). The
      // registry JSON schema is deterministic even though the values
      // are live — tests/serve pins it.
      write_frame(conn, metrics_frame(snapshot(), uptime_ms(),
                                      registry_json()));
      return;
    case Request::Type::Shutdown: {
      write_frame(conn, shutting_down_frame());
      const char byte = 's';
      [[maybe_unused]] const ssize_t n = ::write(wake_pipe[1], &byte, 1);
      return;
    }
    case Request::Type::Cancel:
      handle_cancel(conn, req.id);
      return;
    case Request::Type::Campaign:
      admit_campaign(conn, req);
      return;
  }
}

void Server::Impl::admit_campaign(const ConnectionPtr& conn, Request req) {
  PendingRequest pending;
  pending.priority = req.priority;
  pending.spec = req.spec;
  pending.conn = conn;
  pending.cancel = std::make_shared<std::atomic<bool>>(false);
  pending.admitted_at = std::chrono::steady_clock::now();
  std::uint64_t depth = 0;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex);
    if (stopping) {
      write_frame(conn, error_frame(req.id, ErrorCode::ShuttingDown,
                                    "daemon is shutting down"));
      return;
    }
    if (queue.size() >= cfg.max_queue) {
      rejected_overload.fetch_add(1, std::memory_order_relaxed);
      record_outcome("rejected_overload");
      if (trace != nullptr)
        trace->instant(admission_lane, "shed",
                       {obs::TraceArg::str("id", req.id),
                        obs::TraceArg::num(
                            "priority", std::uint64_t{req.priority})});
      write_frame(conn,
                  error_frame(req.id, ErrorCode::Overloaded,
                              "admission queue full (" +
                                  std::to_string(cfg.max_queue) + ")"));
      return;
    }
    pending.seq = next_seq++;
    pending.id = !req.id.empty() ? req.id
                                 : "req-" + std::to_string(pending.seq);
    if (trace != nullptr) {
      pending.lane = trace->lane("serve", "req " + pending.id);
      trace->instant(
          pending.lane, "admitted",
          {obs::TraceArg::num("priority", std::uint64_t{pending.priority}),
           obs::TraceArg::num("queue_depth", queue.size() + 1)});
      trace->begin(pending.lane, "queued");
    }
    queue.push_back(pending);
    depth = queue.size();
    record_queue_depth(depth);
    // Written under queue_mutex so the executor (which pops under the
    // same lock) cannot emit this request's result frame first.
    admitted.fetch_add(1, std::memory_order_relaxed);
    write_frame(conn, accepted_frame(pending.id, depth));
  }
  queue_cv.notify_one();
}

void Server::Impl::handle_cancel(const ConnectionPtr& conn,
                                 const std::string& target) {
  ConnectionPtr requester;
  bool found = false;
  obs::WallTrace::LaneId lane = 0;
  {
    const std::lock_guard<std::mutex> lock(queue_mutex);
    const auto it = std::find_if(
        queue.begin(), queue.end(),
        [&](const PendingRequest& p) { return p.id == target; });
    if (it != queue.end()) {
      requester = it->conn;
      lane = it->lane;
      queue.erase(it);
      found = true;
      record_queue_depth(queue.size());
    } else if (running_id == target && running_cancel != nullptr) {
      // The executor notices at the next chunk boundary and answers
      // the requester with error(cancelled) itself.
      running_cancel->store(true, std::memory_order_relaxed);
      write_frame(conn, cancelled_frame(target));
      return;
    }
  }
  if (!found) {
    write_frame(conn, error_frame(target, ErrorCode::NotFound,
                                  "no queued or running request '" + target +
                                      "'"));
    return;
  }
  cancelled.fetch_add(1, std::memory_order_relaxed);
  record_outcome("cancelled");
  if (trace != nullptr) {
    trace->end(lane);  // "queued"
    trace->instant(lane, "cancelled");
  }
  write_frame(requester, error_frame(target, ErrorCode::Cancelled,
                                     "cancelled while queued"));
  if (requester != conn) write_frame(conn, cancelled_frame(target));
}

void Server::Impl::executor_loop() {
  while (true) {
    PendingRequest req;
    std::uint64_t depth = 0;
    {
      std::unique_lock<std::mutex> lock(queue_mutex);
      queue_cv.wait(lock, [this] { return stopping || !queue.empty(); });
      if (queue.empty()) {
        if (stopping) return;
        continue;
      }
      // Highest priority first; admission order within a level.
      const auto best = std::min_element(
          queue.begin(), queue.end(),
          [](const PendingRequest& a, const PendingRequest& b) {
            if (a.priority != b.priority) return a.priority > b.priority;
            return a.seq < b.seq;
          });
      req = std::move(*best);
      queue.erase(best);
      depth = queue.size();
      running_id = req.id;
      running_cancel = req.cancel;
    }
    note_dequeued(req, depth);
    run_one(std::move(req));
    {
      const std::lock_guard<std::mutex> lock(queue_mutex);
      running_id.clear();
      running_cancel.reset();
    }
  }
}

void Server::Impl::run_one(PendingRequest req) {
  if (req.cancel->load(std::memory_order_relaxed) ||
      !req.conn->open.load(std::memory_order_acquire)) {
    // Cancelled (or orphaned by a hangup) before it ever ran.
    cancelled.fetch_add(1, std::memory_order_relaxed);
    record_outcome("cancelled");
    if (trace != nullptr) trace->instant(req.lane, "cancelled");
    write_frame(req.conn, error_frame(req.id, ErrorCode::Cancelled,
                                      "cancelled before execution"));
    return;
  }
  const std::string_view kind =
      req.spec.recover || req.spec.scrub_interval != 0 ? "recovery"
                                                       : "static";
  CampaignRunHooks hooks;
  hooks.pool = pool.get();
  hooks.cancel = req.cancel.get();
  if (req.spec.heartbeat_strikes != 0) {
    hooks.progress = [this, &req](std::uint64_t done, std::uint64_t total) {
      write_frame(req.conn, heartbeat_frame(req.id, done, total));
    };
  }
  std::uint64_t running_start_us = 0;
  if (trace != nullptr) {
    running_start_us = trace->now_us();
    trace->begin(req.lane, "running",
                 {obs::TraceArg::str("kind", kind),
                  obs::TraceArg::num("strikes", req.spec.strikes),
                  obs::TraceArg::num(
                      "shards", std::uint64_t{req.spec.shards})});
    // Shard child spans: the runner stamps task start/finish against
    // its own epoch (taken just after `running` opens), so offsetting
    // by running_start_us places each shard inside the parent span.
    // Reporting only — the callback never touches counters.
    hooks.shard_span = [this, lane = req.lane, running_start_us](
                           std::uint32_t shard, std::uint64_t start_ns,
                           std::uint64_t end_ns) {
      trace->complete(lane, "shard " + std::to_string(shard),
                      running_start_us + start_ns / 1000,
                      running_start_us + end_ns / 1000);
    };
  }
  CampaignOutcome outcome;
  try {
    outcome = run_campaign_spec(req.spec, hooks);
  } catch (const std::exception& e) {
    failed.fetch_add(1, std::memory_order_relaxed);
    record_outcome("failed");
    if (trace != nullptr) {
      trace->end(req.lane);  // "running"
      trace->instant(req.lane, "failed");
    }
    write_frame(req.conn, error_frame(req.id, ErrorCode::Internal, e.what()));
    return;
  }
  if (trace != nullptr) trace->end(req.lane);  // "running"
  record_service(kind, outcome.wall_ms);
  if (!outcome.complete) {
    cancelled.fetch_add(1, std::memory_order_relaxed);
    record_outcome("cancelled");
    if (trace != nullptr) trace->instant(req.lane, "cancelled");
    write_frame(req.conn, error_frame(req.id, ErrorCode::Cancelled,
                                      "cancelled mid-run"));
    return;
  }
  if (trace != nullptr) trace->begin(req.lane, "flushing result");
  obs::LedgerRecord record = campaign_spec_record(req.spec, outcome);
  std::string run_id;
  if (!cfg.ledger_path.empty()) {
    // Same id convention as the one-shot tool: run-<index> over the
    // records already present (lenient scan, like append_run_record).
    const std::lock_guard<std::mutex> lock(ledger_mutex);
    record.id = "run-" + std::to_string(
                             obs::scan_ledger(cfg.ledger_path).records.size());
    run_id = record.id;
    obs::append_ledger(record, cfg.ledger_path);
  }
  completed.fetch_add(1, std::memory_order_relaxed);
  record_outcome("completed");
  write_frame(req.conn, result_frame(req.id, record, run_id,
                                     /*complete=*/true));
  if (trace != nullptr) trace->end(req.lane);  // "flushing result"
}

void Server::Impl::fold_into_registry() const {
  // Post-join, single-threaded: the serving-layer registry — the
  // serve.requests{outcome=...} counters plus the queue-wait/service
  // histograms and queue-depth gauge — folds into the process registry,
  // so a --metrics-out snapshot of a serve session carries the request
  // mix next to the campaign counters.
  if (!obs::enabled()) return;
  const std::lock_guard<std::mutex> lock(telemetry_mutex);
  obs::registry().merge_from(telemetry);
}

}  // namespace ftspm::serve
