#include "ftspm/serve/load.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <span>
#include <thread>

#include "ftspm/serve/client.h"
#include "ftspm/util/error.h"
#include "ftspm/util/rng.h"

namespace ftspm::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

const std::vector<double>& load_latency_bounds() {
  static const std::vector<double> bounds = {0.5,  1.0,   2.0,   5.0,   10.0,
                                             20.0, 50.0,  100.0, 200.0, 500.0,
                                             1000.0, 2000.0, 5000.0};
  return bounds;
}

ClassStats::ClassStats() : latency_ms(load_latency_bounds()) {}

std::vector<RequestClass> parse_mix(const std::string& text) {
  std::vector<RequestClass> classes;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string entry =
        text.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    pos = comma == std::string::npos ? text.size() + 1 : comma + 1;
    if (entry.empty()) continue;
    RequestClass cls;
    // name[:weight[:strikes]]
    const std::size_t c1 = entry.find(':');
    cls.name = entry.substr(0, c1);
    FTSPM_REQUIRE(!cls.name.empty(), "mix entry '" + entry + "' has no name");
    if (c1 != std::string::npos) {
      const std::size_t c2 = entry.find(':', c1 + 1);
      const std::string weight_text =
          entry.substr(c1 + 1, c2 == std::string::npos ? std::string::npos
                                                       : c2 - c1 - 1);
      // A zero, negative, or NaN weight silently corrupts the
      // weighted pick: the class can never be drawn (a confusing
      // no-op) or skews every other class's share. Require a finite
      // weight > 0 so a typo fails loudly at parse time.
      try {
        std::size_t consumed = 0;
        cls.weight = std::stod(weight_text, &consumed);
        FTSPM_REQUIRE(consumed == weight_text.size() &&
                          std::isfinite(cls.weight) && cls.weight > 0.0,
                      "mix weight '" + weight_text +
                          "' must be a finite number > 0");
      } catch (const InvalidArgument&) {
        throw;
      } catch (const std::exception&) {
        throw InvalidArgument("mix weight '" + weight_text +
                              "' must be a finite number > 0");
      }
      if (c2 != std::string::npos) {
        const std::string strikes_text = entry.substr(c2 + 1);
        try {
          std::size_t consumed = 0;
          const unsigned long long v = std::stoull(strikes_text, &consumed);
          FTSPM_REQUIRE(consumed == strikes_text.size() && v >= 1,
                        "mix strikes '" + strikes_text +
                            "' must be a positive integer");
          cls.spec.strikes = v;
        } catch (const InvalidArgument&) {
          throw;
        } catch (const std::exception&) {
          throw InvalidArgument("mix strikes '" + strikes_text +
                                "' must be a positive integer");
        }
      }
    }
    classes.push_back(std::move(cls));
  }
  FTSPM_REQUIRE(!classes.empty(), "mix must name at least one class");
  double total_weight = 0.0;
  for (const RequestClass& cls : classes) total_weight += cls.weight;
  FTSPM_REQUIRE(total_weight > 0.0,
                "mix needs at least one class with weight > 0");
  return classes;
}

std::vector<RequestClass> default_mix(bool quick) {
  // A YCSB-flavoured skew: many small probes, some medium scans, a few
  // heavy analytical runs. --quick shrinks the strike counts so a CI
  // smoke finishes in seconds.
  std::vector<RequestClass> classes(3);
  classes[0].name = "small";
  classes[0].weight = 8.0;
  classes[0].spec.strikes = quick ? 2'000 : 50'000;
  classes[1].name = "medium";
  classes[1].weight = 3.0;
  classes[1].spec.strikes = quick ? 10'000 : 200'000;
  classes[1].spec.protection = "parity";
  classes[2].name = "large";
  classes[2].weight = 1.0;
  classes[2].spec.strikes = quick ? 25'000 : 1'000'000;
  classes[2].spec.shards = 2;
  return classes;
}

namespace {

/// One connection's worth of work: its own client, RNG stream, and
/// per-class local stats (merged after the join — no shared mutable
/// state between workers).
struct Worker {
  std::vector<ClassStats> stats;
  std::uint64_t failed_connect = 0;

  void run(const LoadConfig& cfg, std::uint32_t index,
           std::uint64_t request_count) {
    stats.resize(cfg.classes.size());
    for (std::size_t c = 0; c < cfg.classes.size(); ++c) {
      stats[c].name = cfg.classes[c].name;
      stats[c].weight = cfg.classes[c].weight;
    }
    Client client = cfg.tcp_port != 0 ? Client::connect_tcp(cfg.tcp_port)
                                      : Client::connect_unix(cfg.socket_path);

    std::vector<double> weights;
    weights.reserve(cfg.classes.size());
    for (const RequestClass& cls : cfg.classes) weights.push_back(cls.weight);
    Rng rng = Rng::for_stream(cfg.seed, index);

    // In-flight requests by id: class index + submit time.
    struct InFlight {
      std::size_t cls;
      Clock::time_point sent_at;
    };
    std::map<std::string, InFlight> inflight;

    const auto start = Clock::now();
    const double interval_s = cfg.rate > 0.0 ? 1.0 / cfg.rate : 0.0;

    // Consumes one response frame; returns false on frames that don't
    // resolve a request (accepted, heartbeat, pong...).
    const auto consume = [&](const JsonValue& frame) {
      const JsonValue* type = frame.find("type");
      if (type == nullptr || !type->is_string()) return;
      const bool resolves = type->string == "result" ||
                            type->string == "error";
      if (!resolves) return;
      const JsonValue* idv = frame.find("id");
      if (idv == nullptr || !idv->is_string()) return;
      const auto it = inflight.find(idv->string);
      if (it == inflight.end()) return;
      ClassStats& s = stats[it->second.cls];
      const double latency =
          std::chrono::duration<double, std::milli>(Clock::now() -
                                                    it->second.sent_at)
              .count();
      if (type->string == "result") {
        s.completed += 1;
        s.latency_ms.observe(latency);
      } else {
        const JsonValue* code = frame.find("code");
        const std::string code_name =
            code != nullptr && code->is_string() ? code->string : "internal";
        if (code_name == "overloaded") {
          s.overloaded += 1;
        } else if (code_name == "cancelled") {
          s.cancelled += 1;
        } else {
          s.errors += 1;
        }
      }
      inflight.erase(it);
    };

    for (std::uint64_t r = 0; r < request_count; ++r) {
      if (interval_s > 0.0) {
        // Open loop: hold the arrival schedule; poll for responses
        // while waiting so the read side never falls behind.
        const auto due = start + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(
                                         static_cast<double>(r) * interval_s));
        while (Clock::now() < due) {
          const auto remaining =
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  due - Clock::now())
                  .count();
          const int wait_ms =
              static_cast<int>(std::clamp<long long>(remaining, 0, 50));
          try {
            if (auto frame = client.poll_frame(wait_ms)) consume(*frame);
          } catch (const Error&) {
            return;  // Daemon gone; report what resolved so far.
          }
        }
      }
      const std::size_t cls = rng.next_discrete(
          std::span<const double>(weights.data(), weights.size()));
      const std::string id = "c" + std::to_string(index) + "-r" +
                             std::to_string(r);
      stats[cls].sent += 1;
      const auto sent_at = Clock::now();
      try {
        client.send_line(campaign_request(cfg.classes[cls].spec, id,
                                          cfg.classes[cls].priority));
      } catch (const Error&) {
        stats[cls].errors += 1;
        return;
      }
      inflight.emplace(id, InFlight{cls, sent_at});
      if (interval_s <= 0.0) {
        // Closed loop: think-time zero — wait for this request to
        // resolve before submitting the next.
        try {
          while (inflight.count(id) != 0) consume(client.next_frame());
        } catch (const Error&) {
          return;
        }
      }
    }
    // Drain the stragglers (open loop keeps many in flight).
    try {
      while (!inflight.empty()) consume(client.next_frame());
    } catch (const Error&) {
      // Connection died with requests unresolved; their classes keep
      // the sent/completed imbalance as the record of the loss.
    }
  }
};

}  // namespace

LoadReport run_load(const LoadConfig& cfg) {
  FTSPM_REQUIRE(!cfg.classes.empty(), "load: request mix must not be empty");
  FTSPM_REQUIRE(cfg.connections >= 1, "load: need at least one connection");
  FTSPM_REQUIRE(cfg.requests >= 1, "load: need at least one request");
  for (const RequestClass& cls : cfg.classes) validate_spec(cls.spec);

  const auto start = Clock::now();
  std::vector<Worker> workers(cfg.connections);
  std::vector<std::thread> threads;
  threads.reserve(cfg.connections);
  for (std::uint32_t i = 0; i < cfg.connections; ++i) {
    // Spread the total request budget; early connections absorb the
    // remainder.
    const std::uint64_t base = cfg.requests / cfg.connections;
    const std::uint64_t extra = i < cfg.requests % cfg.connections ? 1 : 0;
    threads.emplace_back([&cfg, &workers, i, n = base + extra] {
      try {
        workers[i].run(cfg, i, n);
      } catch (const Error&) {
        workers[i].failed_connect += 1;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  LoadReport report;
  report.wall_ms = ms_since(start);
  report.classes.resize(cfg.classes.size());
  for (std::size_t c = 0; c < cfg.classes.size(); ++c) {
    ClassStats& merged = report.classes[c];
    merged.name = cfg.classes[c].name;
    merged.weight = cfg.classes[c].weight;
    for (const Worker& w : workers) {
      if (w.stats.size() != cfg.classes.size()) continue;  // Never connected.
      const ClassStats& s = w.stats[c];
      merged.sent += s.sent;
      merged.completed += s.completed;
      merged.overloaded += s.overloaded;
      merged.cancelled += s.cancelled;
      merged.errors += s.errors;
      merged.latency_ms.merge_from(s.latency_ms);
    }
    report.sent += merged.sent;
    report.completed += merged.completed;
    report.overloaded += merged.overloaded;
    report.errors += merged.errors;
  }

  if (obs::enabled()) {
    // Post-join, single-threaded fold into the process registry so a
    // --metrics-out snapshot carries the per-class latency families.
    obs::Registry& reg = obs::registry();
    for (const ClassStats& s : report.classes)
      reg.histogram("load.latency_ms", obs::LabelSet{{"class", s.name}},
                    load_latency_bounds())
          .merge_from(s.latency_ms);
  }
  return report;
}

std::string LoadReport::to_json() const {
  JsonWriter w;
  w.begin_object()
      .field("schema", static_cast<std::uint64_t>(1))
      .field("wall_ms", wall_ms)
      .field("sent", sent)
      .field("completed", completed)
      .field("overloaded", overloaded)
      .field("shed_rate", shed_rate())
      .field("errors", errors);
  w.begin_array("classes");
  for (const ClassStats& s : classes) {
    w.begin_object()
        .field("name", s.name)
        .field("weight", s.weight)
        .field("sent", s.sent)
        .field("completed", s.completed)
        .field("overloaded", s.overloaded)
        .field("shed_rate", s.sent != 0 ? static_cast<double>(s.overloaded) /
                                              static_cast<double>(s.sent)
                                        : 0.0)
        .field("cancelled", s.cancelled)
        .field("errors", s.errors)
        .field("p50_ms", s.latency_ms.quantile(0.50))
        .field("p95_ms", s.latency_ms.quantile(0.95))
        .field("p99_ms", s.latency_ms.quantile(0.99))
        .field("mean_ms", s.latency_ms.mean())
        .field("max_ms", s.latency_ms.max())
        .end_object();
  }
  w.end_array().end_object();
  return w.str();
}

std::string LoadReport::to_csv() const {
  std::string out =
      "class,weight,sent,completed,overloaded,cancelled,errors,shed_rate,"
      "p50_ms,p95_ms,p99_ms,mean_ms,max_ms\n";
  char buf[64];
  const auto num = [&buf](double v) {
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return std::string(buf);
  };
  for (const ClassStats& s : classes)
    out += s.name + "," + num(s.weight) + "," + std::to_string(s.sent) + "," +
           std::to_string(s.completed) + "," + std::to_string(s.overloaded) +
           "," + std::to_string(s.cancelled) + "," +
           std::to_string(s.errors) + "," +
           num(s.sent != 0 ? static_cast<double>(s.overloaded) /
                                 static_cast<double>(s.sent)
                           : 0.0) +
           "," + num(s.latency_ms.quantile(0.50)) +
           "," + num(s.latency_ms.quantile(0.95)) + "," +
           num(s.latency_ms.quantile(0.99)) + "," + num(s.latency_ms.mean()) +
           "," + num(s.latency_ms.max()) + "\n";
  return out;
}

}  // namespace ftspm::serve
