// serve::Client — a blocking NDJSON-frame connection to the daemon.
//
// Thin by design: it owns the socket fd and the incremental framing
// (util::NdjsonReader), and leaves protocol choreography (submit, then
// read accepted/heartbeat/result frames) to the caller — the load
// injector multiplexes many in-flight requests per connection, so the
// client cannot assume request/response lockstep.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "ftspm/serve/protocol.h"
#include "ftspm/util/json.h"
#include "ftspm/util/ndjson.h"

namespace ftspm::serve {

class Client {
 public:
  /// Connects to a daemon's unix-domain socket. Throws on failure.
  static Client connect_unix(const std::string& path);
  /// Connects to 127.0.0.1:port (a daemon started with --tcp).
  static Client connect_tcp(std::uint16_t port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends one frame (a newline is appended). Throws on a dead socket.
  void send_line(std::string_view frame);

  /// Blocks for the next frame. Throws Error on EOF/socket failure —
  /// the daemon never half-answers, so EOF mid-conversation is an
  /// error, not an end-of-stream.
  JsonValue next_frame();

  /// Polls for a frame for up to `timeout_ms` (0 = nonblocking probe).
  /// std::nullopt on timeout; throws on EOF/socket failure.
  std::optional<JsonValue> poll_frame(int timeout_ms);

  /// Submits a campaign and returns the id the daemon echoed in its
  /// accepted frame; throws Error carrying code+message on an error
  /// frame (e.g. overloaded). Any other interleaved frame is a
  /// protocol violation and throws.
  std::string submit(const CampaignSpec& spec, std::string_view id = "",
                     std::uint32_t priority = 0);

  /// ping → pong round-trip; throws when the daemon is unreachable.
  void ping();

  int fd() const noexcept { return fd_; }
  /// Closes the write side so the daemon sees EOF while buffered
  /// responses stay readable.
  void shutdown_writes() noexcept;

 private:
  explicit Client(int fd);

  int fd_ = -1;
  NdjsonReader reader_;
};

}  // namespace ftspm::serve
