// The campaign daemon behind `ftspm_tool serve`.
//
// One Server owns: the listening sockets (a unix-domain socket, plus an
// optional 127.0.0.1 TCP listener), one reader thread per accepted
// connection (NdjsonReader-framed requests), a bounded priority
// admission queue, and a single executor thread that drains the queue
// onto one shared exec::ThreadPool via run_campaign_spec(). Every
// completed run is appended to the configured ledger with the same
// record a one-shot `ftspm_tool campaign` writes.
//
// Admission is explicit backpressure: a full queue answers
// error(overloaded) immediately — the daemon never queues unboundedly
// and never silently drops a request. Higher priority runs first; FIFO
// within a priority level. Cancellation is cooperative: a queued
// request is removed outright, a running one stops at chunk granularity
// via ExecConfig::cancel.
//
// Shutdown (request_stop(), signal-safe) stops accepting, cancels the
// running request, rejects everything still queued with
// error(shutting_down), and joins every thread; wait() returns once the
// daemon is fully drained. Determinism: the executor runs one request
// at a time on the shared pool, and counters depend only on the spec —
// a served run reproduces the one-shot run bit for bit.
//
// Live telemetry: every request is tallied into a serving-layer
// obs::Registry (serve.queue_wait_ms{priority=...} and
// serve.service_ms{kind=...} histograms, a serve.queue_depth gauge,
// serve.requests{outcome=...} counters) that the `metrics` frame
// snapshots on demand, the telemetry thread streams as NDJSON, and the
// drain folds into the process registry. With trace_path set, the same
// lifecycle is recorded as wall-clock spans (obs::WallTrace) — one
// lane per request id plus a queue-depth counter lane.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "ftspm/serve/protocol.h"
#include "ftspm/util/ndjson.h"

namespace ftspm::serve {

struct ServerConfig {
  /// Unix-domain socket path; bound (and unlinked) by start().
  std::string socket_path;
  /// Also listen on 127.0.0.1:tcp_port when non-zero.
  std::uint16_t tcp_port = 0;
  /// Shared pool workers (0 = hardware concurrency).
  std::uint32_t jobs = 1;
  /// Admission queue bound; the queue never grows past this.
  std::uint64_t max_queue = 16;
  /// Append completed runs here (empty = no ledger).
  std::string ledger_path;
  /// Per-frame byte cap enforced by the socket framing.
  std::size_t max_frame_bytes = NdjsonReader::kDefaultMaxRecordBytes;
  /// Concurrent connections; excess connects are answered with
  /// error(overloaded) and closed.
  std::uint64_t max_connections = 64;
  /// Write a wall-clock Chrome trace of every request's lifecycle —
  /// admitted → queued → running (child spans per shard) → flushing
  /// result — here when the daemon drains (empty = no trace).
  /// Reporting only: ledger records and campaign counters are
  /// bit-identical with tracing on or off.
  std::string trace_path;
  /// Append periodic NDJSON snapshots of the serving-layer registry
  /// here from a dedicated telemetry thread (empty = disabled). Like
  /// the campaign heartbeat emitter: off the hot path, and the first
  /// and final snapshots are guaranteed however short the run.
  std::string telemetry_path;
  /// Milliseconds between telemetry snapshots (clamped to >= 1).
  std::uint32_t telemetry_interval_ms = 1000;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  /// Stops and joins everything still running (request_stop + wait).
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners and spawns the accept + executor threads.
  /// Throws on bind/listen failure (e.g. a stale socket path on a
  /// filesystem that forbids unlink).
  void start();

  /// Begins shutdown; safe from any thread and from signal handlers
  /// (one byte written to the wake pipe). Idempotent.
  void request_stop() noexcept;

  /// Blocks until the daemon is fully drained and joined.
  void wait();

  /// Point-in-time aggregate counters (any thread). After wait() this
  /// keeps answering the final drained snapshot; before start() it is
  /// all zeros.
  ServerStatus status() const;

  const ServerConfig& config() const noexcept { return config_; }
  /// The bound TCP port (differs from config when tcp_port was 0 —
  /// not currently used, reserved for ephemeral-port tests).
  std::uint16_t bound_tcp_port() const noexcept { return tcp_port_; }

 private:
  struct Impl;
  ServerConfig config_;
  std::uint16_t tcp_port_ = 0;
  /// The drained snapshot wait() leaves behind for status().
  ServerStatus final_status_{};
  std::unique_ptr<Impl> impl_;
};

}  // namespace ftspm::serve
