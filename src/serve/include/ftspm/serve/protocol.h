// The serve wire protocol: NDJSON frames over a byte stream.
//
// Every frame is one JSON object on one line (framed by
// util::NdjsonReader on the receive side). Clients send requests with a
// "type" discriminator; the daemon answers with response frames tagged
// by the request's "id" so one connection can multiplex several
// in-flight requests:
//
//   request            responses
//   ------------------ -------------------------------------------
//   ping               pong
//   campaign           accepted, heartbeat*, then result | error
//   status             status
//   metrics            metrics (live registry snapshot + aggregates)
//   cancel             cancelled | error(not_found); the cancelled
//                      campaign's own stream ends with error(cancelled)
//   shutdown           shutting_down (then the daemon drains and exits)
//
// Admission failures are structured errors, not dropped connections:
// a full queue answers error(overloaded), a stopping daemon
// error(shutting_down). docs/serving.md carries the full schema table.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "ftspm/obs/ledger.h"
#include "ftspm/serve/campaign_spec.h"
#include "ftspm/util/json.h"

namespace ftspm::serve {

/// Bumped on any incompatible frame-schema change; echoed by pong.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Machine-readable failure taxonomy carried by error frames.
enum class ErrorCode : std::uint8_t {
  BadRequest,    ///< Malformed frame or invalid spec; request dropped.
  Overloaded,    ///< Admission queue full; resubmit later.
  Cancelled,     ///< The request was cancelled before completing.
  NotFound,      ///< cancel target matches no queued or running id.
  ShuttingDown,  ///< Daemon is draining; no new admissions.
  Internal,      ///< The run itself threw; message has the what().
};

std::string_view error_code_name(ErrorCode code) noexcept;

/// A parsed client request.
struct Request {
  enum class Type : std::uint8_t {
    Ping,
    Campaign,
    Status,
    Metrics,
    Cancel,
    Shutdown
  };
  Type type = Type::Ping;
  /// Campaign: client-chosen id echoed on every response frame (the
  /// daemon assigns req-<n> when empty). Cancel: the target id.
  std::string id;
  /// Larger runs first; FIFO within a priority level.
  std::uint32_t priority = 0;
  CampaignSpec spec;  ///< Campaign requests only.
};

/// Parses one request frame. Throws InvalidArgument on an unknown
/// type, missing fields, or a bad spec.
Request parse_request(const JsonValue& value);

/// Client-side encoders (one line, no trailing newline).
std::string ping_request();
std::string status_request();
std::string metrics_request();
std::string shutdown_request();
std::string cancel_request(std::string_view id);
std::string campaign_request(const CampaignSpec& spec, std::string_view id,
                             std::uint32_t priority);

/// Daemon-side aggregate state for status frames (and cmd-line
/// reporting). Plain data: the server snapshots its atomics into this.
struct ServerStatus {
  bool accepting = true;
  std::uint64_t queued = 0;
  std::uint64_t running = 0;       ///< 0 or 1 (single executor).
  std::string running_id;          ///< Empty when idle.
  std::uint64_t admitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected_overload = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  std::uint64_t max_queue = 0;
  std::uint32_t jobs = 0;
};

/// Response-frame encoders (one line, no trailing newline).
std::string pong_frame();
std::string accepted_frame(std::string_view id, std::uint64_t queue_depth);
std::string heartbeat_frame(std::string_view id, std::uint64_t done,
                            std::uint64_t total);
/// The final success frame: the run's counters/metrics exactly as its
/// ledger record carries them, plus the appended run id (empty when
/// the daemon keeps no ledger) and the timing block.
std::string result_frame(std::string_view id, const obs::LedgerRecord& record,
                         std::string_view run_id, bool complete);
std::string status_frame(const ServerStatus& status);
/// The live-telemetry introspection frame: daemon uptime and aggregate
/// counters plus the serving-layer registry snapshot (the exact
/// Registry::to_json document: sorted keys, fixed section order — the
/// schema is deterministic even though the values are live).
/// `registry_json` must be the raw JSON object text.
std::string metrics_frame(const ServerStatus& status, double uptime_ms,
                          std::string_view registry_json);
std::string cancelled_frame(std::string_view id);
std::string shutting_down_frame();
std::string error_frame(std::string_view id, ErrorCode code,
                        std::string_view message);

}  // namespace ftspm::serve
