// The YCSB-style load injector behind `ftspm_tool load`.
//
// A load run drives N concurrent client connections at the daemon,
// each submitting campaigns drawn from a weighted mix of named request
// classes. Arrival is closed-loop by default (submit, wait for the
// result, submit again — classic think-time-zero YCSB) or open-loop at
// a fixed per-connection rate (submissions stay on schedule even when
// responses lag, so queue growth and `overloaded` shedding become
// visible). End-to-end latency (submit → result/error) is recorded
// per class into obs::Histogram and reported as p50/p95/p99.
//
// Determinism note: latencies are wall-clock and therefore
// nondeterministic, but the *campaign counters* each request produces
// are not — they depend only on the spec. The injector's RNG (class
// picks, id salts) is seeded from LoadConfig::seed per connection, so
// the submitted request sequence is reproducible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ftspm/obs/metrics.h"
#include "ftspm/serve/campaign_spec.h"

namespace ftspm::serve {

/// One named slice of the request mix.
struct RequestClass {
  std::string name;
  /// Relative pick weight; 0 keeps the class in the report with an
  /// empty histogram (quantiles report the documented 0.0 sentinel).
  double weight = 1.0;
  CampaignSpec spec;
  std::uint32_t priority = 0;
};

struct LoadConfig {
  /// Unix socket path, or (when tcp_port != 0) a 127.0.0.1 TCP port.
  std::string socket_path;
  std::uint16_t tcp_port = 0;
  std::vector<RequestClass> classes;
  std::uint32_t connections = 2;
  /// Total requests across all connections.
  std::uint64_t requests = 16;
  /// Open-loop arrival rate per connection (requests/sec); 0 = closed
  /// loop.
  double rate = 0.0;
  /// Seeds the per-connection mix RNG (connection i uses seed ^ i
  /// streams, so mixes differ across connections but reproduce run to
  /// run).
  std::uint64_t seed = 1;
};

/// Per-class outcome tally + end-to-end latency histogram.
struct ClassStats {
  std::string name;
  double weight = 0.0;
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t errors = 0;
  obs::Histogram latency_ms;

  ClassStats();
};

struct LoadReport {
  std::vector<ClassStats> classes;
  double wall_ms = 0.0;
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  std::uint64_t overloaded = 0;
  std::uint64_t errors = 0;

  /// Fraction of sent requests the daemon shed with error(overloaded);
  /// 0 when nothing was sent. The `load --fail-on-shed` gate and the
  /// saturation sweep both read this.
  double shed_rate() const {
    return sent != 0 ? static_cast<double>(overloaded) /
                           static_cast<double>(sent)
                     : 0.0;
  }

  /// Machine-readable report: aggregate counts (with shed_rate) plus
  /// per-class counts and p50/p95/p99/mean/max latency (ms).
  std::string to_json() const;
  /// CSV with the pinned header
  /// "class,weight,sent,completed,overloaded,cancelled,errors,
  /// shed_rate,p50_ms,p95_ms,p99_ms,mean_ms,max_ms".
  std::string to_csv() const;
};

/// The latency bucket bounds (ms) every per-class histogram uses.
const std::vector<double>& load_latency_bounds();

/// Parses a --mix string: comma-separated "name:weight[:strikes]"
/// entries (e.g. "small:8:20000,large:1:200000"). Throws
/// InvalidArgument on malformed entries.
std::vector<RequestClass> parse_mix(const std::string& text);

/// The built-in mix used by --quick and when --mix is absent.
std::vector<RequestClass> default_mix(bool quick);

/// Runs the load. Blocks until every submitted request resolved (or
/// its connection died). Also folds the per-class histograms into the
/// process registry as load.latency_ms{class=...} when observability
/// is enabled.
LoadReport run_load(const LoadConfig& config);

}  // namespace ftspm::serve
