// The campaign request spec shared by the serve daemon, its client
// library, and the load injector.
//
// A CampaignSpec mirrors `ftspm_tool campaign`'s flags field for field,
// so a request submitted over the wire describes exactly the same run a
// one-shot invocation would perform. run_campaign_spec() executes it
// through the same engine (`exec::run_recovery_campaign_sharded`) and
// campaign_spec_record() builds the same ledger record — which is what
// makes the served-vs-one-shot determinism contract checkable: same
// spec + same seed => bit-identical counters and an equivalent record,
// whether the run came through a socket or argv.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "ftspm/fault/injector.h"
#include "ftspm/fault/recovery.h"
#include "ftspm/obs/ledger.h"
#include "ftspm/util/json.h"

namespace ftspm::exec {
class ThreadPool;
}

namespace ftspm::serve {

/// One campaign request. Field names and defaults match the
/// `ftspm_tool campaign` flags (plus an explicit seed, which the CLI
/// pins to the library default).
struct CampaignSpec {
  std::string protection = "secded";  ///< parity|secded|none
  std::uint64_t strikes = 100'000;
  std::uint64_t seed = CampaignConfig{}.seed;
  std::uint64_t size = 8192;          ///< Surface payload bytes.
  std::uint32_t interleave = 1;
  double node = 40.0;                 ///< Process node (nm).
  double occupancy = 1.0;
  std::uint32_t shards = 1;           ///< Determinism knob; >= 1.
  bool recover = false;
  std::uint64_t scrub_interval = 0;
  double dirty_fraction = 0.25;
  std::uint64_t refetch_words = 64;
  /// Strikes between streamed heartbeat frames (0 = none). Reporting
  /// only: never touches the RNG or the counters.
  std::uint64_t heartbeat_strikes = 0;
};

/// Throws InvalidArgument when a field is out of range (unknown
/// protection, zero strikes/shards, occupancy outside [0,1], ...).
void validate_spec(const CampaignSpec& spec);

/// Decodes the "spec" object of a campaign request. Unknown keys are
/// rejected (a typoed field must not silently fall back to a default);
/// missing keys keep their defaults. Throws InvalidArgument.
CampaignSpec spec_from_json(const JsonValue& value);

/// Encodes `spec` as the wire "spec" object (round-trips through
/// spec_from_json).
std::string spec_to_json(const CampaignSpec& spec);

/// Execution context the daemon threads onto a spec run: the shared
/// pool, the per-request cancel flag, and the heartbeat sink. All
/// optional — the defaults run the spec standalone, like the CLI.
struct CampaignRunHooks {
  exec::ThreadPool* pool = nullptr;
  const std::atomic<bool>* cancel = nullptr;
  /// Worker threads when `pool` is null (0 = hardware concurrency).
  std::uint32_t jobs = 1;
  /// Invoked every spec.heartbeat_strikes strikes (aggregated across
  /// shards) with (done, total). Must not throw.
  std::function<void(std::uint64_t, std::uint64_t)> progress;
  /// Wall-clock per-shard attribution, forwarded to
  /// exec::ExecConfig::shard_span: called after the run joins, once
  /// per shard in shard order, with the shard's task start/finish in
  /// ns since the runner launched the tasks. Reporting only — the
  /// daemon turns these into child spans of the request's wall trace.
  std::function<void(std::uint32_t shard, std::uint64_t start_ns,
                     std::uint64_t end_ns)>
      shard_span;
};

/// What one spec run produced.
struct CampaignOutcome {
  RecoveryResult result;
  /// True when the spec engaged the recovery pipeline (recover or
  /// scrubbing); selects the recovery block of the ledger record.
  bool recovery_active = false;
  /// False when the run was cancelled before finishing its strikes.
  bool complete = true;
  std::uint32_t used_jobs = 1;
  std::uint32_t used_shards = 1;
  double wall_ms = 0.0;
  double strikes_per_sec = 0.0;
};

/// Runs the spec. Counters depend only on (seed, strikes, shards,
/// protection/geometry/policy) — never on the pool, jobs, or hooks.
CampaignOutcome run_campaign_spec(const CampaignSpec& spec,
                                  const CampaignRunHooks& hooks = {});

/// The outcome as a ledger record (id left empty for the appender),
/// built by the same report helper the CLI uses.
obs::LedgerRecord campaign_spec_record(const CampaignSpec& spec,
                                       const CampaignOutcome& outcome);

}  // namespace ftspm::serve
