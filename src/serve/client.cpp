#include "ftspm/serve/client.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <netinet/in.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "ftspm/util/error.h"

namespace ftspm::serve {

Client::Client(int fd) : fd_(fd) {}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), reader_(std::move(other.reader_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    reader_ = std::move(other.reader_);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client Client::connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  FTSPM_REQUIRE(!path.empty() && path.size() < sizeof(addr.sun_path),
                "serve client: bad socket path '" + path + "'");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  FTSPM_CHECK(fd >= 0, "serve client: cannot create socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw Error("serve client: cannot connect to '" + path + "'");
  }
  return Client(fd);
}

Client Client::connect_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  FTSPM_CHECK(fd >= 0, "serve client: cannot create socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw Error("serve client: cannot connect to 127.0.0.1:" +
                std::to_string(port));
  }
  return Client(fd);
}

void Client::send_line(std::string_view frame) {
  FTSPM_REQUIRE(fd_ >= 0, "serve client: not connected");
  std::string line(frame);
  line += '\n';
  std::size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = ::send(fd_, line.data() + sent, line.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    FTSPM_CHECK(n > 0, "serve client: send failed (daemon gone?)");
    sent += static_cast<std::size_t>(n);
  }
}

JsonValue Client::next_frame() {
  while (true) {
    if (auto doc = reader_.next()) return std::move(*doc);
    FTSPM_CHECK(!reader_.exhausted(),
                "serve client: connection closed by daemon");
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      reader_.finish();
      continue;  // Drain a final unterminated frame, then throw above.
    }
    reader_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

std::optional<JsonValue> Client::poll_frame(int timeout_ms) {
  while (true) {
    if (auto doc = reader_.next()) return std::move(*doc);
    FTSPM_CHECK(!reader_.exhausted(),
                "serve client: connection closed by daemon");
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc == 0) return std::nullopt;
    FTSPM_CHECK(rc > 0, "serve client: poll failed");
    char buf[4096];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      reader_.finish();
      continue;
    }
    reader_.feed(std::string_view(buf, static_cast<std::size_t>(n)));
    timeout_ms = 0;  // Only a probe after the first read.
  }
}

std::string Client::submit(const CampaignSpec& spec, std::string_view id,
                           std::uint32_t priority) {
  send_line(campaign_request(spec, id, priority));
  // The accepted/error answer is written under the daemon's admission
  // lock, so it is the next frame *for this id* — but heartbeats and
  // results of earlier submissions may interleave ahead of it.
  while (true) {
    const JsonValue frame = next_frame();
    const JsonValue* type = frame.find("type");
    FTSPM_CHECK(type != nullptr && type->is_string(),
                "serve client: malformed frame from daemon");
    if (type->string == "heartbeat" || type->string == "result" ||
        type->string == "cancelled")
      continue;  // Belongs to an earlier in-flight request.
    if (type->string == "accepted") return frame.at("id").string;
    if (type->string == "error")
      throw Error("serve: " + frame.at("code").string + ": " +
                  frame.at("message").string);
    throw Error("serve client: unexpected '" + type->string +
                "' frame while awaiting admission");
  }
}

void Client::ping() {
  send_line(ping_request());
  const JsonValue frame = next_frame();
  const JsonValue* type = frame.find("type");
  FTSPM_CHECK(type != nullptr && type->is_string() && type->string == "pong",
              "serve client: expected pong");
}

void Client::shutdown_writes() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

}  // namespace ftspm::serve
