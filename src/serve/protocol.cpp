#include "ftspm/serve/protocol.h"

#include <cmath>

#include "ftspm/util/error.h"

namespace ftspm::serve {

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::BadRequest: return "bad_request";
    case ErrorCode::Overloaded: return "overloaded";
    case ErrorCode::Cancelled: return "cancelled";
    case ErrorCode::NotFound: return "not_found";
    case ErrorCode::ShuttingDown: return "shutting_down";
    case ErrorCode::Internal: return "internal";
  }
  return "internal";
}

namespace {

std::string string_field(const JsonValue& v, std::string_view key,
                         std::string_view fallback) {
  const JsonValue* f = v.find(key);
  if (f == nullptr) return std::string(fallback);
  FTSPM_REQUIRE(f->is_string(),
                "request." + std::string(key) + " must be a string");
  return f->string;
}

std::uint32_t priority_field(const JsonValue& v) {
  const JsonValue* f = v.find("priority");
  if (f == nullptr) return 0;
  FTSPM_REQUIRE(f->is_number() && f->number >= 0.0 && f->number <= 1e6 &&
                    std::floor(f->number) == f->number,
                "request.priority must be an integer in [0, 1000000]");
  return static_cast<std::uint32_t>(f->number);
}

}  // namespace

Request parse_request(const JsonValue& value) {
  FTSPM_REQUIRE(value.is_object(), "request frame must be a JSON object");
  const std::string type = string_field(value, "type", "");
  FTSPM_REQUIRE(!type.empty(), "request frame needs a \"type\" field");
  Request req;
  if (type == "ping") {
    req.type = Request::Type::Ping;
  } else if (type == "status") {
    req.type = Request::Type::Status;
  } else if (type == "metrics") {
    req.type = Request::Type::Metrics;
  } else if (type == "shutdown") {
    req.type = Request::Type::Shutdown;
  } else if (type == "cancel") {
    req.type = Request::Type::Cancel;
    req.id = string_field(value, "id", "");
    FTSPM_REQUIRE(!req.id.empty(), "cancel needs the target \"id\"");
  } else if (type == "campaign") {
    req.type = Request::Type::Campaign;
    req.id = string_field(value, "id", "");
    req.priority = priority_field(value);
    const JsonValue* spec = value.find("spec");
    req.spec = spec != nullptr ? spec_from_json(*spec) : CampaignSpec{};
  } else {
    throw InvalidArgument("unknown request type '" + type + "'");
  }
  return req;
}

std::string ping_request() { return "{\"type\":\"ping\"}"; }
std::string status_request() { return "{\"type\":\"status\"}"; }
std::string metrics_request() { return "{\"type\":\"metrics\"}"; }
std::string shutdown_request() { return "{\"type\":\"shutdown\"}"; }

std::string cancel_request(std::string_view id) {
  JsonWriter w;
  w.begin_object().field("type", "cancel").field("id", id).end_object();
  return w.str();
}

std::string campaign_request(const CampaignSpec& spec, std::string_view id,
                             std::uint32_t priority) {
  JsonWriter w;
  w.begin_object().field("type", "campaign");
  if (!id.empty()) w.field("id", id);
  w.field("priority", static_cast<std::uint64_t>(priority));
  w.raw_field("spec", spec_to_json(spec));
  w.end_object();
  return w.str();
}

std::string pong_frame() {
  JsonWriter w;
  w.begin_object()
      .field("type", "pong")
      .field("protocol", static_cast<std::uint64_t>(kProtocolVersion))
      .end_object();
  return w.str();
}

std::string accepted_frame(std::string_view id, std::uint64_t queue_depth) {
  JsonWriter w;
  w.begin_object()
      .field("type", "accepted")
      .field("id", id)
      .field("queue_depth", queue_depth)
      .end_object();
  return w.str();
}

std::string heartbeat_frame(std::string_view id, std::uint64_t done,
                            std::uint64_t total) {
  JsonWriter w;
  w.begin_object()
      .field("type", "heartbeat")
      .field("id", id)
      .field("done", done)
      .field("total", total)
      .end_object();
  return w.str();
}

std::string result_frame(std::string_view id, const obs::LedgerRecord& record,
                         std::string_view run_id, bool complete) {
  JsonWriter w;
  w.begin_object()
      .field("type", "result")
      .field("id", id)
      .field("complete", complete);
  if (!run_id.empty()) w.field("run_id", run_id);
  w.field("workload", record.workload)
      .field("seed", record.seed)
      .field("shards", static_cast<std::uint64_t>(record.shards));
  w.begin_object("counters");
  for (const auto& [name, value] : record.counters) w.field(name, value);
  w.end_object();
  w.begin_object("metrics");
  for (const auto& [name, value] : record.metrics) w.field(name, value);
  w.end_object();
  w.field("wall_ms", record.wall_ms)
      .field("strikes_per_sec", record.strikes_per_sec)
      .end_object();
  return w.str();
}

std::string status_frame(const ServerStatus& s) {
  JsonWriter w;
  w.begin_object()
      .field("type", "status")
      .field("accepting", s.accepting)
      .field("queued", s.queued)
      .field("running", s.running)
      .field("running_id", s.running_id)
      .field("admitted", s.admitted)
      .field("completed", s.completed)
      .field("rejected_overload", s.rejected_overload)
      .field("cancelled", s.cancelled)
      .field("failed", s.failed)
      .field("max_queue", s.max_queue)
      .field("jobs", static_cast<std::uint64_t>(s.jobs))
      .end_object();
  return w.str();
}

std::string metrics_frame(const ServerStatus& s, double uptime_ms,
                          std::string_view registry_json) {
  JsonWriter w;
  w.begin_object()
      .field("type", "metrics")
      .field("protocol", static_cast<std::uint64_t>(kProtocolVersion))
      .field("uptime_ms", uptime_ms)
      .field("accepting", s.accepting)
      .field("queued", s.queued)
      .field("running", s.running)
      .field("admitted", s.admitted)
      .field("completed", s.completed)
      .field("rejected_overload", s.rejected_overload)
      .field("cancelled", s.cancelled)
      .field("failed", s.failed);
  w.raw_field("registry", registry_json);
  w.end_object();
  return w.str();
}

std::string cancelled_frame(std::string_view id) {
  JsonWriter w;
  w.begin_object().field("type", "cancelled").field("id", id).end_object();
  return w.str();
}

std::string shutting_down_frame() {
  JsonWriter w;
  w.begin_object().field("type", "shutting_down").end_object();
  return w.str();
}

std::string error_frame(std::string_view id, ErrorCode code,
                        std::string_view message) {
  JsonWriter w;
  w.begin_object().field("type", "error");
  if (!id.empty()) w.field("id", id);
  w.field("code", error_code_name(code)).field("message", message)
      .end_object();
  return w.str();
}

}  // namespace ftspm::serve
