#include "ftspm/obs/metrics.h"

#include <algorithm>

#include "ftspm/util/error.h"
#include "ftspm/util/json.h"

namespace ftspm::obs {

Histogram::Histogram(std::vector<double> bucket_bounds)
    : bounds_(std::move(bucket_bounds)), buckets_(bounds_.size() + 1, 0) {
  FTSPM_REQUIRE(!bounds_.empty() &&
                    std::is_sorted(bounds_.begin(), bounds_.end()) &&
                    std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                        bounds_.end(),
                "histogram bounds must be non-empty and strictly increasing");
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double Histogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  const double rank = q * static_cast<double>(count_);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t below = cumulative;
    cumulative += buckets_[i];
    if (static_cast<double>(cumulative) < rank || buckets_[i] == 0) continue;
    // Interpolate inside bucket i. The first bucket opens at the
    // tracked min; the overflow bucket closes at the tracked max.
    const double lo = i == 0 ? min_ : std::max(bounds_[i - 1], min_);
    const double hi = i < bounds_.size() ? std::min(bounds_[i], max_) : max_;
    if (hi <= lo) return std::min(std::max(lo, min_), max_);
    const double inside =
        (rank - static_cast<double>(below)) / static_cast<double>(buckets_[i]);
    const double v = lo + (hi - lo) * std::min(std::max(inside, 0.0), 1.0);
    return std::min(std::max(v, min_), max_);
  }
  return max_;
}

void Histogram::reset() noexcept {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0.0;
}

void Histogram::merge_from(const Histogram& other) {
  FTSPM_REQUIRE(bounds_ == other.bounds_,
                "cannot merge histograms with different bucket bounds");
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Counter& Registry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bucket_bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_
      .emplace(std::string(name), Histogram(std::move(bucket_bounds)))
      .first->second;
}

TimerStat& Registry::timer(std::string_view name) {
  const auto it = timers_.find(name);
  if (it != timers_.end()) return it->second;
  return timers_.emplace(std::string(name), TimerStat{}).first->second;
}

Counter& Registry::counter(std::string_view name, const LabelSet& labels) {
  auto family = labelled_counters_.find(name);
  if (family == labelled_counters_.end())
    family = labelled_counters_
                 .emplace(std::string(name),
                          std::map<std::string, Counter, std::less<>>{})
                 .first;
  auto& series = family->second;
  const auto it = series.find(labels.encoded());
  if (it != series.end()) return it->second;
  return series.emplace(labels.encoded(), Counter{}).first->second;
}

Histogram& Registry::histogram(std::string_view name, const LabelSet& labels,
                               std::vector<double> bucket_bounds) {
  auto family = labelled_histograms_.find(name);
  if (family == labelled_histograms_.end())
    family = labelled_histograms_
                 .emplace(std::string(name),
                          HistogramFamily{std::move(bucket_bounds), {}})
                 .first;
  auto& series = family->second.series;
  const auto it = series.find(labels.encoded());
  if (it != series.end()) return it->second;
  return series.emplace(labels.encoded(), Histogram(family->second.bounds))
      .first->second;
}

std::string Registry::to_json(const SnapshotOptions& options) const {
  JsonWriter w;
  const auto histogram_body = [&w](const Histogram& h) {
    w.begin_array("bounds");
    for (double b : h.bounds()) w.element(b);
    w.end_array();
    w.begin_array("buckets");
    for (std::uint64_t n : h.buckets())
      w.element(static_cast<double>(n));
    w.end_array();
    w.field("count", h.count())
        .field("sum", h.sum())
        .field("min", h.min())
        .field("max", h.max())
        .field("p50", h.quantile(0.50))
        .field("p95", h.quantile(0.95))
        .field("p99", h.quantile(0.99));
  };
  w.begin_object();
  w.begin_object("counters");
  for (const auto& [name, c] : counters_) w.field(name, c.value());
  w.end_object();
  w.begin_object("gauges");
  for (const auto& [name, g] : gauges_) w.field(name, g.value());
  w.end_object();
  w.begin_object("histograms");
  for (const auto& [name, h] : histograms_) {
    w.begin_object(name);
    histogram_body(h);
    w.end_object();
  }
  w.end_object();
  // Labelled families appear only once one exists, so snapshots from
  // code that never labels stay byte-identical to the pre-label shape.
  if (!labelled_counters_.empty()) {
    w.begin_object("labelled_counters");
    for (const auto& [name, series] : labelled_counters_) {
      w.begin_object(name);
      for (const auto& [labels, c] : series) w.field(labels, c.value());
      w.end_object();
    }
    w.end_object();
  }
  if (!labelled_histograms_.empty()) {
    w.begin_object("labelled_histograms");
    for (const auto& [name, family] : labelled_histograms_) {
      w.begin_object(name);
      for (const auto& [labels, h] : family.series) {
        w.begin_object(labels);
        histogram_body(h);
        w.end_object();
      }
      w.end_object();
    }
    w.end_object();
  }
  if (options.include_wall_time) {
    w.begin_object("timers_ns");
    for (const auto& [name, t] : timers_) {
      w.begin_object(name)
          .field("count", t.count())
          .field("total_ns", t.total_ns())
          .field("max_ns", t.max_ns())
          .end_object();
    }
    w.end_object();
  }
  w.end_object();
  return w.str();
}

std::string Registry::to_csv(const SnapshotOptions& options) const {
  std::string out = "kind,name,field,value\n";
  auto row = [&out](std::string_view kind, const std::string& name,
                    std::string_view field, const std::string& value) {
    out += kind;
    out += ',';
    out += name;
    out += ',';
    out += field;
    out += ',';
    out += value;
    out += '\n';
  };
  auto num = [](double v) {
    std::string s = std::to_string(v);
    return s;
  };
  const auto histogram_rows = [&](std::string_view kind,
                                  const std::string& name,
                                  const Histogram& h) {
    row(kind, name, "count", std::to_string(h.count()));
    row(kind, name, "sum", num(h.sum()));
    row(kind, name, "min", num(h.min()));
    row(kind, name, "max", num(h.max()));
    row(kind, name, "p50", num(h.quantile(0.50)));
    row(kind, name, "p95", num(h.quantile(0.95)));
    row(kind, name, "p99", num(h.quantile(0.99)));
    for (std::size_t i = 0; i < h.buckets().size(); ++i) {
      const std::string field =
          i < h.bounds().size() ? "le_" + num(h.bounds()[i]) : "overflow";
      row(kind, name, field, std::to_string(h.buckets()[i]));
    }
  };
  for (const auto& [name, c] : counters_)
    row("counter", name, "value", std::to_string(c.value()));
  for (const auto& [name, g] : gauges_)
    row("gauge", name, "value", num(g.value()));
  for (const auto& [name, h] : histograms_)
    histogram_rows("histogram", name, h);
  // The ';'-separated label encoding (labels.h) keeps these names free
  // of commas, so the flat comma-split format stays parseable.
  for (const auto& [name, series] : labelled_counters_)
    for (const auto& [labels, c] : series)
      row("labelled_counter", name + "{" + labels + "}", "value",
          std::to_string(c.value()));
  for (const auto& [name, family] : labelled_histograms_)
    for (const auto& [labels, h] : family.series)
      histogram_rows("labelled_histogram", name + "{" + labels + "}", h);
  if (options.include_wall_time) {
    for (const auto& [name, t] : timers_) {
      row("timer", name, "count", std::to_string(t.count()));
      row("timer", name, "total_ns", std::to_string(t.total_ns()));
      row("timer", name, "max_ns", std::to_string(t.max_ns()));
    }
  }
  return out;
}

void Registry::reset_values() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
  for (auto& [name, t] : timers_) t.reset();
  for (auto& [name, series] : labelled_counters_)
    for (auto& [labels, c] : series) c.reset();
  for (auto& [name, family] : labelled_histograms_)
    for (auto& [labels, h] : family.series) h.reset();
}

void Registry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  timers_.clear();
  labelled_counters_.clear();
  labelled_histograms_.clear();
}

void Registry::merge_from(const Registry& other) {
  for (const auto& [name, c] : other.counters_)
    if (c.value() != 0) counter(name).add(c.value());
  for (const auto& [name, g] : other.gauges_) gauge(name).set(g.value());
  for (const auto& [name, h] : other.histograms_)
    histogram(name, h.bounds()).merge_from(h);
  for (const auto& [name, t] : other.timers_)
    if (t.count() != 0) timer(name).merge_from(t);
  // Labelled series merge like their plain counterparts; the series key
  // (canonical label encoding) needs no LabelSet round trip.
  for (const auto& [name, series] : other.labelled_counters_) {
    auto& mine = labelled_counters_[name];
    for (const auto& [labels, c] : series)
      if (c.value() != 0) mine[labels].add(c.value());
  }
  for (const auto& [name, family] : other.labelled_histograms_) {
    auto it = labelled_histograms_.find(name);
    if (it == labelled_histograms_.end())
      it = labelled_histograms_
               .emplace(name, HistogramFamily{family.bounds, {}})
               .first;
    for (const auto& [labels, h] : family.series) {
      auto& series = it->second.series;
      const auto hit = series.find(labels);
      if (hit != series.end()) {
        hit->second.merge_from(h);
      } else {
        series.emplace(labels, Histogram(it->second.bounds))
            .first->second.merge_from(h);
      }
    }
  }
}

namespace {
bool g_enabled = false;
thread_local int t_suppress_depth = 0;
thread_local Registry* t_registry = nullptr;
}  // namespace

Registry& registry() {
  if (t_registry != nullptr) return *t_registry;
  static Registry instance;
  return instance;
}

bool enabled() noexcept { return g_enabled && t_suppress_depth == 0; }
void set_enabled(bool on) noexcept { g_enabled = on; }

ThreadSuppressScope::ThreadSuppressScope() noexcept { ++t_suppress_depth; }
ThreadSuppressScope::~ThreadSuppressScope() { --t_suppress_depth; }

ThreadRegistryScope::ThreadRegistryScope(Registry& local) noexcept
    : prev_(t_registry) {
  t_registry = &local;
}
ThreadRegistryScope::~ThreadRegistryScope() { t_registry = prev_; }

bool thread_registry_redirected() noexcept { return t_registry != nullptr; }

}  // namespace ftspm::obs
