#include "ftspm/obs/event_log.h"

#include <fstream>

#include "ftspm/util/error.h"
#include "ftspm/util/json.h"

namespace ftspm::obs {

void EventLog::emit(std::string_view event, std::uint64_t ts,
                    std::vector<TraceArg> fields) {
  records_.push_back(Record{std::string(event), ts, std::move(fields)});
}

std::string EventLog::str() const {
  std::string out;
  for (std::size_t seq = 0; seq < records_.size(); ++seq) {
    const Record& r = records_[seq];
    JsonWriter w;
    w.begin_object()
        .field("schema", static_cast<std::uint64_t>(kSchemaVersion))
        .field("seq", static_cast<std::uint64_t>(seq))
        .field("ts", r.ts)
        .field("event", r.event);
    for (const TraceArg& f : r.fields) w.raw_field(f.key, f.value);
    w.end_object();
    out += w.str();
    out += '\n';
  }
  return out;
}

void EventLog::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  FTSPM_REQUIRE(out.good(), "cannot open event-log output '" + path + "'");
  out << str();
  out.close();
  if (!out.good())
    throw Error("failed writing event-log output '" + path + "'");
}

namespace {
EventLog* g_current_event_log = nullptr;
}  // namespace

EventLog* current_event_log() noexcept {
  // Single-writer, deterministic sink: invisible to suppressed or
  // redirected (worker) threads — the coordinator emits for them.
  if (!enabled() || thread_registry_redirected()) return nullptr;
  return g_current_event_log;
}

EventLogScope::EventLogScope(EventLog* log) : prev_(g_current_event_log) {
  g_current_event_log = log;
}

EventLogScope::~EventLogScope() { g_current_event_log = prev_; }

}  // namespace ftspm::obs
