#include "ftspm/obs/wall_trace.h"

namespace ftspm::obs {

WallTrace::WallTrace() : epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t WallTrace::now_us() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

WallTrace::LaneId WallTrace::lane(std::string_view process,
                                  std::string_view thread) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sink_.lane(process, thread);
}

void WallTrace::begin(LaneId lane, std::string_view name,
                      std::vector<TraceArg> args) {
  const std::uint64_t ts = now_us();
  const std::lock_guard<std::mutex> lock(mutex_);
  sink_.begin(lane, name, ts, std::move(args));
}

void WallTrace::end(LaneId lane) {
  const std::uint64_t ts = now_us();
  const std::lock_guard<std::mutex> lock(mutex_);
  sink_.end(lane, ts);
}

void WallTrace::complete(LaneId lane, std::string_view name,
                         std::uint64_t start_us, std::uint64_t end_us,
                         std::vector<TraceArg> args) {
  const std::uint64_t dur = end_us > start_us ? end_us - start_us : 0;
  const std::lock_guard<std::mutex> lock(mutex_);
  sink_.complete(lane, name, start_us, dur, std::move(args));
}

void WallTrace::instant(LaneId lane, std::string_view name,
                        std::vector<TraceArg> args) {
  const std::uint64_t ts = now_us();
  const std::lock_guard<std::mutex> lock(mutex_);
  sink_.instant(lane, name, ts, std::move(args));
}

void WallTrace::value(LaneId lane, std::string_view name, double value) {
  const std::uint64_t ts = now_us();
  const std::lock_guard<std::mutex> lock(mutex_);
  sink_.value(lane, name, ts, value);
}

std::size_t WallTrace::event_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sink_.event_count();
}

std::string WallTrace::str() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return sink_.str();
}

void WallTrace::write_file(const std::string& path) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  sink_.write_file(path);
}

}  // namespace ftspm::obs
