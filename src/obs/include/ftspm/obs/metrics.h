// Observability: the metrics registry.
//
// A process-wide registry of named counters, gauges, and fixed-bucket
// histograms that any layer can increment without threading a handle
// through every API. Two guards keep the cost near zero when nobody is
// looking:
//
//  * compile time — building with -DFTSPM_OBS=0 turns the FTSPM_OBS_*
//    macros into no-ops (no registry lookups are even compiled in);
//  * run time — the registry starts disabled; `set_enabled(false)`
//    (the default) makes every mutation a single predictable branch.
//
// Instruments cache their handles (`Counter&` etc.) outside hot loops:
// name lookup happens once per run, not per event. Snapshots are
// deterministic — entries are stored in a sorted map and the JSON/CSV
// dumps contain only simulation-derived quantities. Wall-clock timer
// entries (see timer.h) are excluded unless explicitly requested, so
// two runs with the same seed produce byte-identical dumps.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "ftspm/obs/labels.h"

#ifndef FTSPM_OBS
#define FTSPM_OBS 1
#endif

namespace ftspm::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  double value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram. Bucket `i` counts observations with
/// `value <= bounds[i]`; one implicit overflow bucket catches the rest.
/// Also tracks count/sum/min/max for cheap summary statistics.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bucket_bounds);

  void observe(double value) noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }
  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return sum_; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  /// Quantile estimate interpolated linearly inside the fixed buckets
  /// (Prometheus histogram_quantile style), with the tracked min/max
  /// standing in for the open edges of the first and overflow buckets.
  /// `q` is clamped to [0, 1]; returns 0 for an empty histogram. A
  /// pure function of the bucket counts, so snapshots stay
  /// deterministic.
  double quantile(double q) const noexcept;
  void reset() noexcept;

  /// Adds `other`'s observations into this histogram (bucket-wise).
  /// Requires identical bucket bounds.
  void merge_from(const Histogram& other);

 private:
  std::vector<double> bounds_;  ///< Strictly increasing.
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Wall-clock duration accumulator fed by ScopedTimer (timer.h).
/// Non-deterministic by nature, so snapshots skip timers by default.
class TimerStat {
 public:
  void record_ns(std::uint64_t ns) noexcept {
    ++count_;
    total_ns_ += ns;
    if (count_ == 1 || ns > max_ns_) max_ns_ = ns;
  }
  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t total_ns() const noexcept { return total_ns_; }
  std::uint64_t max_ns() const noexcept { return max_ns_; }
  void reset() noexcept { count_ = total_ns_ = max_ns_ = 0; }

  /// Folds another accumulator's summary in (count/total add, max
  /// keeps the larger).
  void merge_from(const TimerStat& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0 || other.max_ns_ > max_ns_) max_ns_ = other.max_ns_;
    count_ += other.count_;
    total_ns_ += other.total_ns_;
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t total_ns_ = 0;
  std::uint64_t max_ns_ = 0;
};

/// What a snapshot should include.
struct SnapshotOptions {
  /// Wall-clock timers vary run to run; keep them out of dumps that
  /// must be byte-identical for a fixed seed (the default).
  bool include_wall_time = false;
};

/// Named-instrument registry. Lookup creates on first use; names are
/// conventionally dot-separated ("sim.evictions", "mda.evicted.energy").
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Creates with `bucket_bounds` on first use; later calls with the
  /// same name ignore the bounds argument.
  Histogram& histogram(std::string_view name,
                       std::vector<double> bucket_bounds);
  TimerStat& timer(std::string_view name);

  /// Labelled (dimensional) variants: one family `name`, one series per
  /// distinct LabelSet (see labels.h). Series are keyed by the
  /// canonical label encoding, so lookup order never affects snapshots
  /// or merges. All series of a histogram family share the bounds fixed
  /// by its first call; later bounds arguments are ignored.
  Counter& counter(std::string_view name, const LabelSet& labels);
  Histogram& histogram(std::string_view name, const LabelSet& labels,
                       std::vector<double> bucket_bounds);

  /// Deterministic JSON document: {"counters":{...},"gauges":{...},
  /// "histograms":{...}} with keys in sorted order.
  std::string to_json(const SnapshotOptions& options = {}) const;
  /// Flat CSV: kind,name,field,value — one row per scalar.
  std::string to_csv(const SnapshotOptions& options = {}) const;

  /// Zeroes every instrument but keeps registrations (and histogram
  /// bucket layouts) so cached handles stay valid.
  void reset_values();
  /// Drops every instrument. Invalidates cached handles.
  void clear();

  /// Folds `other`'s instruments into this registry: counters and
  /// timers add, histograms merge bucket-wise (created here on first
  /// sight), gauges take `other`'s value (last write wins, matching
  /// what a serial run would have left behind). The parallel campaign
  /// runner merges per-shard delta registries through this, in shard
  /// order, so the root registry after a parallel run is byte-identical
  /// to the serial run's.
  void merge_from(const Registry& other);

  std::size_t size() const noexcept {
    std::size_t n = counters_.size() + gauges_.size() + histograms_.size() +
                    timers_.size();
    for (const auto& [name, family] : labelled_counters_)
      n += family.size();
    for (const auto& [name, family] : labelled_histograms_)
      n += family.series.size();
    return n;
  }

 private:
  /// Series of one labelled histogram family, sharing one bounds
  /// vector. Series keys are canonical label encodings.
  struct HistogramFamily {
    std::vector<double> bounds;
    std::map<std::string, Histogram, std::less<>> series;
  };

  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, TimerStat, std::less<>> timers_;
  std::map<std::string, std::map<std::string, Counter, std::less<>>,
           std::less<>>
      labelled_counters_;
  std::map<std::string, HistogramFamily, std::less<>> labelled_histograms_;
};

/// The process-wide registry used by the FTSPM_OBS_* macros and by all
/// built-in instrumentation.
Registry& registry();

/// Runtime master switch; instrumentation sites must check this before
/// touching the registry or the trace sink. Starts false.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// RAII per-thread kill switch: while alive on a thread, enabled()
/// returns false *on that thread only*. Parallel workers that have no
/// per-thread delta registry (e.g. the suite runner's pool tasks) hold
/// one so instrumentation sites never race on the registry or the
/// trace sink; the coordinating thread emits the aggregated per-shard
/// metrics deterministically after joining. Nests; reentrant on the
/// same thread.
class ThreadSuppressScope {
 public:
  ThreadSuppressScope() noexcept;
  ~ThreadSuppressScope();
  ThreadSuppressScope(const ThreadSuppressScope&) = delete;
  ThreadSuppressScope& operator=(const ThreadSuppressScope&) = delete;
};

/// RAII per-thread registry redirect: while alive, registry() on this
/// thread resolves to `local` instead of the process-wide instance, so
/// instrumentation keeps firing on worker threads without racing —
/// each worker tallies into its own delta registry and the coordinator
/// merges the deltas into the root (merge_from) in deterministic shard
/// order after the join. Tracing and the event log are suppressed on
/// redirected threads (current_trace()/current_event_log() return
/// nullptr): those sinks are single-writer by design, and their
/// deterministic records are emitted by the coordinator. Nests; the
/// innermost redirect wins.
class ThreadRegistryScope {
 public:
  explicit ThreadRegistryScope(Registry& local) noexcept;
  ~ThreadRegistryScope();
  ThreadRegistryScope(const ThreadRegistryScope&) = delete;
  ThreadRegistryScope& operator=(const ThreadRegistryScope&) = delete;

 private:
  Registry* prev_;
};

/// True while the calling thread's registry() is redirected by a
/// ThreadRegistryScope (used by the trace/event-log accessors to stay
/// coordinator-only).
bool thread_registry_redirected() noexcept;

/// RAII enable/disable for tests and tool scopes.
class EnabledScope {
 public:
  explicit EnabledScope(bool on) : prev_(enabled()) { set_enabled(on); }
  ~EnabledScope() { set_enabled(prev_); }
  EnabledScope(const EnabledScope&) = delete;
  EnabledScope& operator=(const EnabledScope&) = delete;

 private:
  bool prev_;
};

}  // namespace ftspm::obs

// Fire-and-forget instrumentation macros for sites too cold to bother
// caching a handle. Hot loops should hoist `obs::enabled()` and the
// handle lookup instead.
#if FTSPM_OBS
#define FTSPM_OBS_COUNT(name, n)                          \
  do {                                                    \
    if (::ftspm::obs::enabled())                          \
      ::ftspm::obs::registry().counter(name).add(n);      \
  } while (false)
#define FTSPM_OBS_GAUGE(name, v)                          \
  do {                                                    \
    if (::ftspm::obs::enabled())                          \
      ::ftspm::obs::registry().gauge(name).set(v);        \
  } while (false)
#else
#define FTSPM_OBS_COUNT(name, n) \
  do {                           \
  } while (false)
#define FTSPM_OBS_GAUGE(name, v) \
  do {                           \
  } while (false)
#endif
