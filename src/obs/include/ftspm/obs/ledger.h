// Observability: the durable run ledger.
//
// Every `ftspm_tool campaign` / `suite` invocation can append one
// self-contained record — manifest, final campaign counters, derived
// metrics, and wall timings — to an NDJSON ledger file (one JSON
// object per line, appended atomically in a single write). The ledger
// is the durable half of the observability story: it survives the
// process, so later invocations (`ftspm_tool runs list`,
// `ftspm_tool compare A B`) can diff any two historical runs and gate
// CI on counter drift.
//
// Counters and metrics are deterministic (pure functions of seed /
// strikes / shard_count); wall_ms and strikes_per_sec are wall-clock
// measurements and live in a separate "timing" block explicitly
// flagged "nondeterministic" so golden comparisons know to skip them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ftspm {
class JsonValue;
}  // namespace ftspm

namespace ftspm::obs {

/// One ledger line. `counters` and `metrics` keep insertion order in
/// memory but are written sorted by key so records from different
/// code paths compare cleanly.
struct LedgerRecord {
  /// Bump when the line shape changes incompatibly; documented in
  /// docs/observability.md.
  static constexpr std::uint32_t kSchemaVersion = 1;

  std::string id;       ///< "run-N" by default; --run-id overrides.
  std::string command;  ///< "campaign" or "suite".
  std::string workload;
  std::uint64_t scale = 1;
  std::uint64_t seed = 0;
  std::uint32_t jobs = 1;
  std::uint32_t shards = 1;
  std::string library_version;  ///< Filled by to_json when empty.

  /// Deterministic integer outcome counters ("strikes", "sdc", ...).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  /// Deterministic derived metrics ("vulnerability", ...).
  std::vector<std::pair<std::string, double>> metrics;

  /// Wall-clock, nondeterministic; excluded from compare gating.
  double wall_ms = 0.0;
  double strikes_per_sec = 0.0;

  /// The record as a single-line JSON object (no trailing newline).
  std::string to_json() const;
  /// Parses one ledger line; throws ftspm::Error on missing/ill-typed
  /// members or an unknown schema version.
  static LedgerRecord from_json(const JsonValue& v);
};

/// Reads every record from an NDJSON ledger file. A missing file is an
/// empty ledger; malformed lines throw ftspm::Error with line numbers.
std::vector<LedgerRecord> read_ledger(const std::string& path);

/// A lenient ledger read: the records that parsed plus one warning per
/// skipped line. Browsing commands (`runs list`, `report trend`) use
/// this so one truncated line — a crashed appender, a partial copy —
/// cannot hide every other run; gating commands (`compare`) stay on
/// the strict read_ledger.
struct LedgerScan {
  std::vector<LedgerRecord> records;
  /// One human-readable warning per skipped line, in file order, each
  /// naming the 1-based file line number.
  std::vector<std::string> warnings;
};

/// Reads `path` like read_ledger but skips malformed lines (bad JSON,
/// bad record shape, unknown schema) instead of throwing, collecting a
/// warning per skip. A missing file is an empty scan.
LedgerScan scan_ledger(const std::string& path);

/// Appends `record` to the ledger at `path` (created if absent). The
/// line is written with one append-mode write so concurrent appenders
/// never interleave partial lines. Throws ftspm::Error on I/O failure.
void append_ledger(const LedgerRecord& record, const std::string& path);

/// Resolves a run reference against the ledger: exact `id` match
/// first (last match wins, matching "most recent run named X"), then
/// `@N` or an all-digits ref as a 0-based index. Returns nullptr when
/// absent; throws InvalidArgument on a malformed `@` ref (non-digit
/// or overflowing index), naming the offending text.
const LedgerRecord* find_run(const std::vector<LedgerRecord>& runs,
                             std::string_view ref);

}  // namespace ftspm::obs
