// Observability: the structured event log.
//
// EventLog accumulates schema-versioned NDJSON records — one JSON
// object per line — describing the lifecycle of a run: the manifest,
// phase and shard boundaries, checkpoint writes, recovery scrub
// passes, and the final campaign summary. Every record carries a
// caller-supplied *simulated* timestamp (strike index, simulated
// cycle), never wall time, and a monotonically increasing sequence
// number, so the log for a fixed seed is byte-identical regardless of
// `--jobs`, chunk size, or host speed. Wall-clock liveness belongs to
// the heartbeat stream (see exec::HeartbeatConfig), not here.
//
// Line shape:
//   {"schema":1,"seq":0,"ts":0,"event":"run_manifest","command":...}
//
// The sink is single-writer: only the coordinating thread emits.
// current_event_log() returns nullptr on worker threads running under
// an obs::ThreadRegistryScope redirect or an obs::ThreadSuppressScope,
// mirroring current_trace().
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ftspm/obs/trace_sink.h"  // TraceArg

namespace ftspm::obs {

class EventLog {
 public:
  /// Bump when a record's field set changes incompatibly; documented
  /// in docs/observability.md.
  static constexpr std::uint32_t kSchemaVersion = 1;

  EventLog() = default;

  /// Appends one record. `ts` is a simulated timestamp (strike index
  /// or simulated cycle); `fields` are extra key/value pairs appended
  /// after the fixed header, in the given order.
  void emit(std::string_view event, std::uint64_t ts,
            std::vector<TraceArg> fields = {});

  std::size_t record_count() const noexcept { return records_.size(); }

  /// The full NDJSON document: one object per line, trailing newline.
  std::string str() const;

  /// Writes str() to `path` (throws ftspm::Error on I/O failure).
  void write_file(const std::string& path) const;

 private:
  struct Record {
    std::string event;
    std::uint64_t ts;
    std::vector<TraceArg> fields;
  };
  std::vector<Record> records_;
};

/// The process-wide event log instrumentation sites emit into, or
/// nullptr when event logging is off, or when the calling thread is
/// suppressed/redirected (the log is single-writer). Sites must also
/// check obs::enabled().
EventLog* current_event_log() noexcept;

/// Installs `log` as the current event log for this scope (RAII
/// restore).
class EventLogScope {
 public:
  explicit EventLogScope(EventLog* log);
  ~EventLogScope();
  EventLogScope(const EventLogScope&) = delete;
  EventLogScope& operator=(const EventLogScope&) = delete;

 private:
  EventLog* prev_;
};

}  // namespace ftspm::obs
