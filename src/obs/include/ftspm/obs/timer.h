// Observability: RAII spans.
//
// ScopedTimer measures wall-clock time into a registry TimerStat —
// cheap progress/ETA bookkeeping that never enters deterministic
// dumps (see SnapshotOptions::include_wall_time).
//
// PhaseSpan brackets a region of *simulated* (or otherwise
// deterministic) time on a trace lane: it emits a 'B' event on
// construction and the matching 'E' on destruction, reading the
// timestamp from a caller-supplied clock. The simulator uses its
// running cycle count as the clock; the campaign its strike index.
#pragma once

#include <chrono>
#include <cstdint>
#include <string_view>
#include <utility>

#include "ftspm/obs/metrics.h"
#include "ftspm/obs/trace_sink.h"

namespace ftspm::obs {

/// Accumulates the scope's wall-clock duration into
/// registry().timer(name). Inactive (and free of clock calls) when
/// observability is disabled at construction time.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name)
      : stat_(enabled() ? &registry().timer(name) : nullptr) {
    if (stat_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (stat_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start_);
    stat_->record_ns(static_cast<std::uint64_t>(ns.count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerStat* stat_;
  std::chrono::steady_clock::time_point start_{};
};

/// Emits a begin/end span on `lane` of `sink` using `Clock` (a
/// callable returning the current deterministic timestamp). A null
/// sink makes the span a no-op.
template <typename Clock>
class PhaseSpan {
 public:
  PhaseSpan(TraceEventSink* sink, TraceEventSink::LaneId lane,
            std::string_view name, Clock clock)
      : sink_(sink), lane_(lane), clock_(std::move(clock)) {
    if (sink_ != nullptr) sink_->begin(lane_, name, clock_());
  }
  ~PhaseSpan() {
    if (sink_ != nullptr) sink_->end(lane_, clock_());
  }
  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

 private:
  TraceEventSink* sink_;
  TraceEventSink::LaneId lane_;
  Clock clock_;
};

template <typename Clock>
PhaseSpan(TraceEventSink*, TraceEventSink::LaneId, std::string_view, Clock)
    -> PhaseSpan<Clock>;

}  // namespace ftspm::obs
