// Observability: label sets for dimensional metrics.
//
// A LabelSet is a small sorted collection of key=value pairs that
// identifies one series of a labelled metric family ("campaign.outcome"
// broken out by region / ECC scheme / outcome / phase). The canonical
// encoding — keys sorted, "key=value" pairs joined with ';' — is the
// series' identity: two LabelSets with the same pairs encode
// identically regardless of insertion order, so snapshots and shard
// merges stay deterministic. ';' (not ',') keeps the encoding safe to
// embed in the registry's CSV dump without quoting.
//
// Labels are for low-cardinality dimensions (a handful of regions, four
// outcomes, two phases). Every distinct label set allocates a series in
// the registry; never label by strike index, address, or anything else
// unbounded.
#pragma once

#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ftspm::obs {

/// Sorted key=value label pairs with a canonical string encoding.
/// Keys and values must be non-empty and free of the structural
/// characters '=', ';', ',', '{', '}', '"' and control characters;
/// violations throw ftspm::Error at construction, never at snapshot
/// time.
class LabelSet {
 public:
  LabelSet() = default;
  LabelSet(std::initializer_list<
           std::pair<std::string_view, std::string_view>>
               labels);

  /// Adds a pair (or replaces the value of an existing key), keeping
  /// the set sorted. Returns *this for chaining.
  LabelSet& set(std::string_view key, std::string_view value);

  /// Canonical encoding: "k1=v1;k2=v2" with keys in sorted order.
  /// Empty for an empty set.
  const std::string& encoded() const noexcept { return encoded_; }

  const std::vector<std::pair<std::string, std::string>>& pairs()
      const noexcept {
    return pairs_;
  }
  bool empty() const noexcept { return pairs_.empty(); }
  std::size_t size() const noexcept { return pairs_.size(); }

 private:
  void rebuild_encoding();

  std::vector<std::pair<std::string, std::string>> pairs_;  ///< Key-sorted.
  std::string encoded_;
};

}  // namespace ftspm::obs
