// Observability: the wall-clock span domain.
//
// WallTrace is the serving-side counterpart of TraceEventSink: the same
// Chrome trace-event document, but timestamped in real microseconds
// since the recorder was constructed instead of simulated cycles or
// strike indices, and safe to feed from several threads at once (the
// daemon's reader threads, its executor, and its telemetry emitter all
// record into one trace). Each WallTrace owns a private TraceEventSink
// guarded by a mutex — it never touches the process-wide current_trace()
// sink, so the deterministic simulated-time domains stay single-writer
// and byte-identical whether or not a wall trace is live.
//
// The two clock domains share one viewer: wall-clock lanes register
// under their own process rows ("serve"), so a trace written by
// `serve --trace-out` opens in Perfetto with the request spans on real
// time and never mixes timestamps with a simulated-time lane.
//
// Determinism contract: recording is reporting only. A WallTrace holds
// no RNG, mutates no counters, and is consulted by no campaign code —
// ledger records and campaign counters are bit-identical with tracing
// on or off (tests/serve pins this).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "ftspm/obs/trace_sink.h"

namespace ftspm::obs {

class WallTrace {
 public:
  using LaneId = TraceEventSink::LaneId;

  /// The epoch (timestamp zero) is the moment of construction.
  WallTrace();

  /// Microseconds since construction; the ts every recorder overload
  /// stamps when the caller does not supply one.
  std::uint64_t now_us() const;

  /// Registers (or finds) a lane; see TraceEventSink::lane. Lane
  /// numbering follows first-registration order, which under concurrent
  /// recording is arrival order — the span *set* is what stays stable,
  /// not the lane ids.
  LaneId lane(std::string_view process, std::string_view thread);

  void begin(LaneId lane, std::string_view name,
             std::vector<TraceArg> args = {});
  void end(LaneId lane);
  /// One complete span with explicit wall-clock bounds (µs since the
  /// epoch); `end_us < start_us` is clamped to a zero-length span.
  void complete(LaneId lane, std::string_view name, std::uint64_t start_us,
                std::uint64_t end_us, std::vector<TraceArg> args = {});
  void instant(LaneId lane, std::string_view name,
               std::vector<TraceArg> args = {});
  void value(LaneId lane, std::string_view name, double value);

  std::size_t event_count() const;

  /// The trace document (see TraceEventSink::str).
  std::string str() const;
  /// Writes str() to `path` (throws ftspm::Error on I/O failure).
  void write_file(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  TraceEventSink sink_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace ftspm::obs
