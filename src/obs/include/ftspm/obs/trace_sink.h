// Observability: structured event tracing.
//
// TraceEventSink accumulates Chrome trace-event-format records —
// loadable by chrome://tracing and by Perfetto's trace viewer — and
// serializes them as one deterministic JSON document. Tracks ("lanes")
// are registered up front as (process, thread) pairs and become named
// rows in the viewer via metadata events.
//
// Timestamps are caller-supplied integers, not wall time: the
// simulator passes simulated cycles, the fault campaign passes strike
// indices, the MDA mapper passes decision indices (each on its own
// process row so the domains never mix). This keeps traces
// byte-identical across runs with the same seed, which the golden
// tests assert.
//
// Event vocabulary (Chrome `ph` phases):
//   begin/end   B/E  nested spans (phase markers, call stack)
//   complete    X    one span with an explicit duration (DMA transfer)
//   instant     i    a point event (eviction, strike)
//   value       C    a counter sample (cache fills, campaign outcomes)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ftspm/obs/metrics.h"

namespace ftspm::obs {

/// One key/value pair attached to an event's `args` object. `value`
/// holds a raw JSON literal (already quoted/escaped for strings).
struct TraceArg {
  std::string key;
  std::string value;

  static TraceArg str(std::string_view key, std::string_view value);
  static TraceArg num(std::string_view key, std::uint64_t value);
  static TraceArg num(std::string_view key, double value);
};

class TraceEventSink {
 public:
  using LaneId = std::uint32_t;

  TraceEventSink() = default;

  /// Registers (or finds) the track named `thread` inside the process
  /// row `process`. Registration order fixes pid/tid numbering, so
  /// register lanes deterministically.
  LaneId lane(std::string_view process, std::string_view thread);

  void begin(LaneId lane, std::string_view name, std::uint64_t ts,
             std::vector<TraceArg> args = {});
  void end(LaneId lane, std::uint64_t ts);
  void complete(LaneId lane, std::string_view name, std::uint64_t ts,
                std::uint64_t dur, std::vector<TraceArg> args = {});
  void instant(LaneId lane, std::string_view name, std::uint64_t ts,
               std::vector<TraceArg> args = {});
  void value(LaneId lane, std::string_view name, std::uint64_t ts,
             double value);

  std::size_t event_count() const noexcept { return events_.size(); }

  /// The complete trace document:
  /// {"traceEvents":[...],"displayTimeUnit":"ms"}.
  std::string str() const;

  /// Writes str() to `path` (throws ftspm::Error on I/O failure).
  void write_file(const std::string& path) const;

 private:
  struct Lane {
    std::string process;
    std::string thread;
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
  };
  struct Event {
    char phase;  // 'B','E','X','i','C'
    LaneId lane;
    std::string name;
    std::uint64_t ts;
    std::uint64_t dur;     // X only
    double counter_value;  // C only
    std::vector<TraceArg> args;
  };

  std::vector<Lane> lanes_;
  std::vector<std::string> processes_;  ///< pid = index + 1.
  std::vector<Event> events_;
};

/// The process-wide sink instrumentation sites emit into, or nullptr
/// when tracing is off. Sites must also check obs::enabled().
TraceEventSink* current_trace() noexcept;

/// Installs `sink` as the current trace for this scope (RAII restore).
class TraceScope {
 public:
  explicit TraceScope(TraceEventSink* sink);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceEventSink* prev_;
};

}  // namespace ftspm::obs
