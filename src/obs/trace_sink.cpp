#include "ftspm/obs/trace_sink.h"

#include <algorithm>
#include <fstream>

#include "ftspm/util/error.h"
#include "ftspm/util/json.h"

namespace ftspm::obs {

TraceArg TraceArg::str(std::string_view key, std::string_view value) {
  return TraceArg{std::string(key), JsonWriter::quote(value)};
}

TraceArg TraceArg::num(std::string_view key, std::uint64_t value) {
  return TraceArg{std::string(key), std::to_string(value)};
}

TraceArg TraceArg::num(std::string_view key, double value) {
  JsonWriter w;
  w.begin_array().element(value).end_array();
  const std::string doc = w.str();  // "[<number>]"
  return TraceArg{std::string(key), doc.substr(1, doc.size() - 2)};
}

TraceEventSink::LaneId TraceEventSink::lane(std::string_view process,
                                            std::string_view thread) {
  for (std::size_t i = 0; i < lanes_.size(); ++i)
    if (lanes_[i].process == process && lanes_[i].thread == thread)
      return static_cast<LaneId>(i);

  std::uint32_t pid = 0;
  for (std::size_t i = 0; i < processes_.size(); ++i)
    if (processes_[i] == process) pid = static_cast<std::uint32_t>(i + 1);
  if (pid == 0) {
    processes_.emplace_back(process);
    pid = static_cast<std::uint32_t>(processes_.size());
  }
  std::uint32_t tid = 1;
  for (const Lane& l : lanes_)
    if (l.pid == pid) tid = std::max(tid, l.tid + 1);
  lanes_.push_back(Lane{std::string(process), std::string(thread), pid, tid});
  return static_cast<LaneId>(lanes_.size() - 1);
}

void TraceEventSink::begin(LaneId lane, std::string_view name,
                           std::uint64_t ts, std::vector<TraceArg> args) {
  events_.push_back(
      Event{'B', lane, std::string(name), ts, 0, 0.0, std::move(args)});
}

void TraceEventSink::end(LaneId lane, std::uint64_t ts) {
  events_.push_back(Event{'E', lane, std::string(), ts, 0, 0.0, {}});
}

void TraceEventSink::complete(LaneId lane, std::string_view name,
                              std::uint64_t ts, std::uint64_t dur,
                              std::vector<TraceArg> args) {
  events_.push_back(
      Event{'X', lane, std::string(name), ts, dur, 0.0, std::move(args)});
}

void TraceEventSink::instant(LaneId lane, std::string_view name,
                             std::uint64_t ts, std::vector<TraceArg> args) {
  events_.push_back(
      Event{'i', lane, std::string(name), ts, 0, 0.0, std::move(args)});
}

void TraceEventSink::value(LaneId lane, std::string_view name,
                           std::uint64_t ts, double value) {
  events_.push_back(Event{'C', lane, std::string(name), ts, 0, value, {}});
}

std::string TraceEventSink::str() const {
  JsonWriter w;
  w.begin_object();
  w.begin_array("traceEvents");

  // Metadata first: name each process row and each thread track.
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    w.begin_object()
        .field("ph", "M")
        .field("name", "process_name")
        .field("pid", static_cast<std::uint64_t>(i + 1))
        .field("tid", static_cast<std::uint64_t>(0));
    w.begin_object("args").field("name", processes_[i]).end_object();
    w.end_object();
  }
  for (const Lane& l : lanes_) {
    w.begin_object()
        .field("ph", "M")
        .field("name", "thread_name")
        .field("pid", static_cast<std::uint64_t>(l.pid))
        .field("tid", static_cast<std::uint64_t>(l.tid));
    w.begin_object("args").field("name", l.thread).end_object();
    w.end_object();
  }

  for (const Event& e : events_) {
    const Lane& l = lanes_[e.lane];
    w.begin_object().field("ph", std::string_view(&e.phase, 1));
    if (e.phase != 'E') w.field("name", e.name);
    w.field("pid", static_cast<std::uint64_t>(l.pid))
        .field("tid", static_cast<std::uint64_t>(l.tid))
        .field("ts", e.ts);
    if (e.phase == 'X') w.field("dur", e.dur);
    if (e.phase == 'i') w.field("s", "t");  // thread-scoped instant
    if (e.phase == 'C') {
      w.begin_object("args").field("value", e.counter_value).end_object();
    } else if (!e.args.empty()) {
      w.begin_object("args");
      for (const TraceArg& a : e.args) w.raw_field(a.key, a.value);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.field("displayTimeUnit", "ms");
  w.end_object();
  return w.str();
}

void TraceEventSink::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  FTSPM_REQUIRE(out.good(), "cannot open trace output '" + path + "'");
  out << str();
  out.close();
  if (!out.good()) throw Error("failed writing trace output '" + path + "'");
}

namespace {
TraceEventSink* g_current_trace = nullptr;
}  // namespace

TraceEventSink* current_trace() noexcept {
  // The trace sink is single-writer: worker threads running under a
  // per-shard registry redirect never see it, only the coordinator
  // emits (deterministic) trace records.
  return thread_registry_redirected() ? nullptr : g_current_trace;
}

TraceScope::TraceScope(TraceEventSink* sink) : prev_(g_current_trace) {
  g_current_trace = sink;
}

TraceScope::~TraceScope() { g_current_trace = prev_; }

}  // namespace ftspm::obs
