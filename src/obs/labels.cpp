#include "ftspm/obs/labels.h"

#include <algorithm>
#include <cctype>

#include "ftspm/util/error.h"

namespace ftspm::obs {

namespace {

void validate_token(std::string_view token, const char* what) {
  FTSPM_REQUIRE(!token.empty(),
                std::string("label ") + what + " must be non-empty");
  for (const char c : token) {
    const bool structural = c == '=' || c == ';' || c == ',' || c == '{' ||
                            c == '}' || c == '"';
    FTSPM_REQUIRE(!structural && !std::iscntrl(static_cast<unsigned char>(c)),
                  std::string("label ") + what + " '" + std::string(token) +
                      "' contains a reserved character");
  }
}

}  // namespace

LabelSet::LabelSet(
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  for (const auto& [key, value] : labels) set(key, value);
}

LabelSet& LabelSet::set(std::string_view key, std::string_view value) {
  validate_token(key, "key");
  validate_token(value, "value");
  const auto it = std::lower_bound(
      pairs_.begin(), pairs_.end(), key,
      [](const auto& pair, std::string_view k) { return pair.first < k; });
  if (it != pairs_.end() && it->first == key) {
    it->second = std::string(value);
  } else {
    pairs_.insert(it, {std::string(key), std::string(value)});
  }
  rebuild_encoding();
  return *this;
}

void LabelSet::rebuild_encoding() {
  encoded_.clear();
  for (const auto& [key, value] : pairs_) {
    if (!encoded_.empty()) encoded_ += ';';
    encoded_ += key;
    encoded_ += '=';
    encoded_ += value;
  }
}

}  // namespace ftspm::obs
