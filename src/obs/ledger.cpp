#include "ftspm/obs/ledger.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "ftspm/util/error.h"
#include "ftspm/util/json.h"
#include "ftspm/util/version.h"

namespace ftspm::obs {

namespace {

std::uint64_t as_u64(const JsonValue& v, std::string_view key) {
  const JsonValue& m = v.at(key);
  FTSPM_REQUIRE(m.is_number() && m.number >= 0,
                "ledger member '" + std::string(key) +
                    "' must be a non-negative number");
  return static_cast<std::uint64_t>(m.number);
}

std::string as_str(const JsonValue& v, std::string_view key) {
  const JsonValue& m = v.at(key);
  FTSPM_REQUIRE(m.is_string(),
                "ledger member '" + std::string(key) + "' must be a string");
  return m.string;
}

}  // namespace

std::string LedgerRecord::to_json() const {
  auto sorted_counters = counters;
  std::sort(sorted_counters.begin(), sorted_counters.end());
  auto sorted_metrics = metrics;
  std::sort(sorted_metrics.begin(), sorted_metrics.end());

  JsonWriter w;
  w.begin_object()
      .field("schema", static_cast<std::uint64_t>(kSchemaVersion))
      .field("id", id)
      .field("command", command)
      .field("workload", workload)
      .field("scale", scale)
      .field("seed", seed)
      .field("jobs", static_cast<std::uint64_t>(jobs))
      .field("shards", static_cast<std::uint64_t>(shards))
      .field("library_version",
             library_version.empty() ? std::string(kLibraryVersion)
                                     : library_version);
  w.begin_object("counters");
  for (const auto& [name, value] : sorted_counters) w.field(name, value);
  w.end_object();
  w.begin_object("metrics");
  for (const auto& [name, value] : sorted_metrics) w.field(name, value);
  w.end_object();
  w.begin_object("timing")
      .field("nondeterministic", true)
      .field("wall_ms", wall_ms)
      .field("strikes_per_sec", strikes_per_sec)
      .end_object();
  w.end_object();
  return w.str();
}

LedgerRecord LedgerRecord::from_json(const JsonValue& v) {
  FTSPM_REQUIRE(v.is_object(), "ledger record must be a JSON object");
  const std::uint64_t schema = as_u64(v, "schema");
  FTSPM_REQUIRE(schema == kSchemaVersion,
                "unsupported ledger schema version " + std::to_string(schema));
  LedgerRecord r;
  r.id = as_str(v, "id");
  r.command = as_str(v, "command");
  r.workload = as_str(v, "workload");
  r.scale = as_u64(v, "scale");
  r.seed = as_u64(v, "seed");
  r.jobs = static_cast<std::uint32_t>(as_u64(v, "jobs"));
  r.shards = static_cast<std::uint32_t>(as_u64(v, "shards"));
  r.library_version = as_str(v, "library_version");
  const JsonValue& counters = v.at("counters");
  FTSPM_REQUIRE(counters.is_object(), "ledger 'counters' must be an object");
  for (const auto& [name, value] : counters.object) {
    FTSPM_REQUIRE(value.is_number() && value.number >= 0,
                  "ledger counter '" + name + "' must be a non-negative "
                                              "number");
    r.counters.emplace_back(name, static_cast<std::uint64_t>(value.number));
  }
  const JsonValue& metrics = v.at("metrics");
  FTSPM_REQUIRE(metrics.is_object(), "ledger 'metrics' must be an object");
  for (const auto& [name, value] : metrics.object) {
    FTSPM_REQUIRE(value.is_number(),
                  "ledger metric '" + name + "' must be a number");
    r.metrics.emplace_back(name, value.number);
  }
  if (const JsonValue* timing = v.find("timing")) {
    if (const JsonValue* wall = timing->find("wall_ms"))
      r.wall_ms = wall->number;
    if (const JsonValue* rate = timing->find("strikes_per_sec"))
      r.strikes_per_sec = rate->number;
  }
  return r;
}

std::vector<LedgerRecord> read_ledger(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return {};  // A ledger that was never written to.
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::vector<LedgerRecord> records;
  const std::vector<JsonValue> docs = parse_ndjson(buffer.str());
  records.reserve(docs.size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    try {
      records.push_back(LedgerRecord::from_json(docs[i]));
    } catch (const Error& e) {
      throw Error("ledger '" + path + "' record " + std::to_string(i) + ": " +
                  e.what());
    }
  }
  return records;
}

LedgerScan scan_ledger(const std::string& path) {
  LedgerScan scan;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return scan;  // A ledger that was never written to.
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  // Split lines by hand (rather than parse_ndjson) so every warning can
  // carry the true file line number even after earlier lines failed.
  std::size_t pos = 0;
  std::size_t line_no = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    ++line_no;
    std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    try {
      scan.records.push_back(LedgerRecord::from_json(parse_json(line)));
    } catch (const Error& e) {
      scan.warnings.push_back("ledger '" + path + "' line " +
                              std::to_string(line_no) + " skipped: " +
                              e.what());
    }
  }
  return scan;
}

void append_ledger(const LedgerRecord& record, const std::string& path) {
  const std::string line = record.to_json() + "\n";
  std::ofstream out(path, std::ios::binary | std::ios::app);
  FTSPM_REQUIRE(out.good(), "cannot open ledger '" + path + "' for append");
  // One write call for the whole line: on POSIX the O_APPEND write is
  // atomic for tool-sized records, so concurrent runs never interleave.
  out.write(line.data(), static_cast<std::streamsize>(line.size()));
  out.close();
  if (!out.good()) throw Error("failed appending to ledger '" + path + "'");
}

namespace {

/// Strict 0-based run-index parse: digits only, overflow-guarded.
/// std::stoull would accept "+1", " 1", hex, and throw
/// std::out_of_range on a long digit string — an uncaught crash from
/// a CLI typo instead of exit 2.
bool parse_run_index(std::string_view digits, std::size_t& out) {
  if (digits.empty()) return false;
  std::size_t v = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<std::size_t>(c - '0');
    if (v > (SIZE_MAX - digit) / 10) return false;  // would overflow
    v = v * 10 + digit;
  }
  out = v;
  return true;
}

}  // namespace

const LedgerRecord* find_run(const std::vector<LedgerRecord>& runs,
                             std::string_view ref) {
  for (auto it = runs.rbegin(); it != runs.rend(); ++it)
    if (it->id == ref) return &*it;
  std::size_t index = 0;
  if (!ref.empty() && ref.front() == '@') {
    // Explicit index form: the ref can never be an id, so a malformed
    // tail is a usage error worth reporting, not a silent miss.
    if (!parse_run_index(ref.substr(1), index))
      throw InvalidArgument("run ref '" + std::string(ref) +
                            "' is malformed: expected @<0-based index>");
    return index < runs.size() ? &runs[index] : nullptr;
  }
  // Bare digits double as an index when no id matched; a value too
  // large for size_t cannot name a run, so it is simply absent.
  if (parse_run_index(ref, index) && index < runs.size())
    return &runs[index];
  return nullptr;
}

}  // namespace ftspm::obs
