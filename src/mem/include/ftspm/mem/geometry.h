// Physical geometry of a protected memory region.
//
// The fault injector needs to aim particle strikes at *physical* bits —
// data bits and check bits alike — and the AVF model needs each region's
// share of the total silicon area. RegionGeometry answers both: it maps
// a region's payload capacity to its physical bit count and translates a
// physical bit index into (word index, bit-within-codeword).
#pragma once

#include <cstdint>

#include "ftspm/mem/technology.h"

namespace ftspm {

/// Location of one physical bit inside a region.
struct PhysicalBit {
  std::uint64_t word_index = 0;  ///< Which protected word.
  std::uint32_t bit_in_codeword = 0;  ///< 0..codeword_bits-1 (data+check).
};

/// Geometry of a region storing `data_bytes` of payload in 64-bit words,
/// each extended by `check_bits_per_word` code bits.
class RegionGeometry {
 public:
  static constexpr std::uint32_t kDataBitsPerWord = 64;

  RegionGeometry(std::uint64_t data_bytes, std::uint32_t check_bits_per_word);

  /// Geometry implied by a TechnologyParams' protection kind.
  static RegionGeometry for_params(std::uint64_t data_bytes,
                                   const TechnologyParams& params);

  std::uint64_t data_bytes() const noexcept { return data_bytes_; }
  std::uint64_t words() const noexcept { return words_; }
  std::uint32_t check_bits_per_word() const noexcept { return check_bits_; }
  std::uint32_t codeword_bits() const noexcept {
    return kDataBitsPerWord + check_bits_;
  }

  /// Total physical storage bits (data + check).
  std::uint64_t physical_bits() const noexcept {
    return words_ * codeword_bits();
  }

  /// Maps a flat physical bit index in [0, physical_bits()) to its word
  /// and bit position. Codewords are laid out contiguously; within a
  /// codeword, bits 0..63 are data and 64.. are check bits. (The fault
  /// model's adjacency is defined over this layout.)
  PhysicalBit locate(std::uint64_t physical_bit_index) const;

 private:
  std::uint64_t data_bytes_;
  std::uint64_t words_;
  std::uint32_t check_bits_;
};

}  // namespace ftspm
