// Memory-technology parameter model.
//
// This is the reproduction's substitute for NVSim (circuit-level
// latency/energy/area model for emerging NVMs, Dong et al., TCAD'12) and
// for the Synopsys Design Compiler measurements of the parity/SEC-DED
// combinational circuits. The paper only consumes scalar per-access
// latencies/energies and per-array leakage (its Table IV and Fig. 3);
// `TechnologyLibrary` produces those scalars from a small, documented
// analytic model calibrated at the paper's 40 nm node.
#pragma once

#include <cstdint>
#include <string>

namespace ftspm {

/// Storage cell technology of a memory array.
enum class MemoryTech : std::uint8_t {
  Sram,    ///< 6T SRAM — fast, unlimited endurance, soft-error prone.
  SttRam,  ///< STT-MRAM — immune to particle strikes, slow/costly writes.
};

/// Error-protection scheme wrapped around an array.
enum class ProtectionKind : std::uint8_t {
  None,    ///< Raw cells (the paper's unprotected L1 caches).
  Parity,  ///< One even-parity bit per 64-bit word: detect 1 flip.
  SecDed,  ///< Hamming(72,64): correct 1 flip, detect 2.
  Immune,  ///< Structural immunity (STT-RAM cells); no code needed.
};

const char* to_string(MemoryTech tech) noexcept;
const char* to_string(ProtectionKind kind) noexcept;

/// Cost of the protection codec's combinational logic (the Synopsys DC
/// numbers in the paper). Latencies are absorbed into whole-cycle region
/// latencies at the paper's clock; energies are per protected word.
struct CodecCost {
  double encode_energy_pj = 0.0;  ///< Added to every write.
  double decode_energy_pj = 0.0;  ///< Added to every read.
  double static_power_mw = 0.0;   ///< Codec leakage per array instance.
  std::uint32_t check_bits_per_word = 0;  ///< Physical overhead bits.
};

/// Per-access and static characteristics of one memory region as seen by
/// the simulator. All energies are per 64-bit word access and already
/// include the protection codec where applicable.
struct TechnologyParams {
  MemoryTech tech = MemoryTech::Sram;
  ProtectionKind protection = ProtectionKind::None;

  std::uint32_t read_latency_cycles = 1;
  std::uint32_t write_latency_cycles = 1;

  double read_energy_pj = 0.0;
  double write_energy_pj = 0.0;

  /// Leakage of the cell array per physical KiB (check bits included via
  /// `physical_overhead`).
  double cell_leakage_mw_per_kib = 0.0;

  /// Fixed leakage per array instance: row/column decoders, sense amps,
  /// write drivers, and (when protected) the codec.
  double peripheral_static_mw = 0.0;

  /// Physical bits stored per data bit (1.0 none, 65/64 parity, 72/64
  /// SEC-DED).
  double physical_overhead = 1.0;

  /// Writes a cell tolerates before wear-out; 0 means unlimited (SRAM).
  double endurance_writes = 0.0;

  /// True when the cell structure cannot be upset by a particle strike.
  bool soft_error_immune = false;

  /// True when the array depends on periodic scrubbing (relaxed-
  /// retention STT-RAM refresh, whose duty-cycle power is already in
  /// `cell_leakage_mw_per_kib`). The recovery campaign's scrub engine
  /// sweeps these regions alongside the SEC-DED ones.
  bool needs_scrub = false;

  /// Total static power of an array holding `data_bytes` of payload.
  double static_power_mw(std::uint64_t data_bytes) const noexcept {
    const double kib = static_cast<double>(data_bytes) / 1024.0;
    return kib * physical_overhead * cell_leakage_mw_per_kib +
           peripheral_static_mw;
  }
};

}  // namespace ftspm
