// Analytic technology library (NVSim substitute).
//
// Produces `TechnologyParams` for any (MemoryTech, ProtectionKind) pair
// at a given process node. The model is intentionally simple — energy
// and leakage scale with node and with codec complexity — and is
// calibrated so the 40 nm defaults reproduce the paper's Table IV
// latencies, its Fig. 3 per-access energies, and its reported static
// powers (pure SRAM 15.8 mW, FTSPM 7.1 mW, pure STT-RAM 3 mW for the
// 16 KiB + 16 KiB SPM complement).
#pragma once

#include <cstdint>

#include "ftspm/mem/technology.h"

namespace ftspm {

/// Process/circuit assumptions the analytic model starts from.
struct ProcessCorner {
  double node_nm = 40.0;    ///< Feature size; the paper evaluates 40 nm.
  double clock_mhz = 200.0; ///< Embedded core clock used to discretise
                            ///< codec latency into whole cycles.
  double vdd = 1.1;         ///< Supply voltage (scales dynamic energy).
};

/// Analytic per-technology model. Thread-compatible; cheap to copy.
class TechnologyLibrary {
 public:
  explicit TechnologyLibrary(ProcessCorner corner = {});

  const ProcessCorner& corner() const noexcept { return corner_; }

  /// Parameters for a region of the given cell technology and
  /// protection. Throws InvalidArgument on nonsensical combinations
  /// (STT-RAM with parity/SEC-DED, SRAM declared Immune).
  TechnologyParams region(MemoryTech tech, ProtectionKind protection) const;

  /// Codec circuit cost in isolation (the Synopsys DC substitute).
  CodecCost codec(ProtectionKind protection) const;

  // Convenience presets matching the paper's Table IV row labels.
  TechnologyParams unprotected_sram() const;   ///< (1) L1 caches.
  TechnologyParams parity_sram() const;        ///< (2) parity region.
  TechnologyParams secded_sram() const;        ///< (3) SEC-DED region.
  TechnologyParams stt_ram() const;            ///< (4) STT-RAM regions.

  /// Relaxed-retention STT-RAM (Swaminathan et al., ASP-DAC'12 — the
  /// related-work direction the paper cites): shrinking the MTJ's
  /// thermal stability cuts the write pulse (faster, far cheaper
  /// writes, better endurance) at the cost of second-scale retention,
  /// paid here as periodic-scrub power folded into the leakage figure.
  /// Still structurally immune to particle strikes.
  TechnologyParams stt_ram_relaxed() const;

 private:
  ProcessCorner corner_;
  double scale_;  ///< Dynamic-energy scale factor relative to 40 nm.
};

}  // namespace ftspm
