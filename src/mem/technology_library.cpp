#include "ftspm/mem/technology_library.h"

#include <cmath>

#include "ftspm/util/error.h"

namespace ftspm {

const char* to_string(MemoryTech tech) noexcept {
  switch (tech) {
    case MemoryTech::Sram: return "SRAM";
    case MemoryTech::SttRam: return "STT-RAM";
  }
  return "?";
}

const char* to_string(ProtectionKind kind) noexcept {
  switch (kind) {
    case ProtectionKind::None: return "Unprotected";
    case ProtectionKind::Parity: return "Parity";
    case ProtectionKind::SecDed: return "SEC-DED";
    case ProtectionKind::Immune: return "Immune";
  }
  return "?";
}

namespace {

// 40 nm calibration anchors. Dynamic energies are per 64-bit word
// access; sources for the shape: STT-RAM reads cheaper than SRAM reads
// (smaller bitline swing), STT-RAM writes ~an order of magnitude more
// expensive and ~10x slower (Table IV: 1-cycle read / 10-cycle write at
// 200 MHz), SEC-DED codec adds ~2 gate-levels' worth of energy per
// access and one extra pipeline cycle (Table IV: 2-cycle SEC-DED SRAM vs
// 1-cycle raw SRAM).
constexpr double kSramReadPj40 = 20.0;
constexpr double kSramWritePj40 = 22.0;
constexpr double kSttReadPj40 = 9.0;
constexpr double kSttWritePj40 = 300.0;

constexpr double kSramLeakMwPerKib40 = 0.40;
constexpr double kSttLeakMwPerKib40 = 0.08;
constexpr double kPeripheralMw40 = 0.50;

constexpr double kSttEnduranceWrites = 4.0e14;  // mid-range of 10^12..10^16

// Relaxed-retention STT-RAM: ~60% lower write current and pulse width
// (Swaminathan et al. report 2-5x write energy/latency gains), paid as
// a scrub duty cycle that shows up as steady per-KiB power.
constexpr double kSttRelaxedWritePj40 = 90.0;
constexpr std::uint32_t kSttRelaxedWriteCycles = 4;
constexpr double kSttScrubMwPerKib40 = 0.06;
constexpr double kSttRelaxedEnduranceWrites = 4.0e15;

}  // namespace

TechnologyLibrary::TechnologyLibrary(ProcessCorner corner) : corner_(corner) {
  FTSPM_REQUIRE(corner_.node_nm >= 10.0 && corner_.node_nm <= 180.0,
                "process node out of modelled range [10,180] nm");
  FTSPM_REQUIRE(corner_.clock_mhz > 0.0, "clock must be positive");
  FTSPM_REQUIRE(corner_.vdd > 0.0, "vdd must be positive");
  // Dynamic energy ~ C * V^2; capacitance ~ node. Normalised to the
  // paper's 40 nm / 1.1 V corner.
  scale_ = (corner_.node_nm / 40.0) * (corner_.vdd * corner_.vdd) / (1.1 * 1.1);
}

CodecCost TechnologyLibrary::codec(ProtectionKind protection) const {
  CodecCost cost;
  switch (protection) {
    case ProtectionKind::None:
    case ProtectionKind::Immune:
      return cost;
    case ProtectionKind::Parity:
      // A 64-input XOR tree; negligible next to an array access.
      cost.encode_energy_pj = 0.6 * scale_;
      cost.decode_energy_pj = 0.7 * scale_;
      cost.static_power_mw = 0.05;
      cost.check_bits_per_word = 1;
      return cost;
    case ProtectionKind::SecDed:
      // Hamming(72,64): 8 parallel parity trees to encode, plus a
      // syndrome decoder and a 72-way correction mux on reads.
      cost.encode_energy_pj = 4.5 * scale_;
      cost.decode_energy_pj = 7.5 * scale_;
      cost.static_power_mw = 0.25;
      cost.check_bits_per_word = 8;
      return cost;
  }
  throw InvalidArgument("unknown protection kind");
}

TechnologyParams TechnologyLibrary::region(MemoryTech tech,
                                           ProtectionKind protection) const {
  if (tech == MemoryTech::SttRam) {
    FTSPM_REQUIRE(protection == ProtectionKind::Immune ||
                      protection == ProtectionKind::None,
                  "STT-RAM regions are structurally immune; parity/SEC-DED "
                  "on STT-RAM is not modelled");
  } else {
    FTSPM_REQUIRE(protection != ProtectionKind::Immune,
                  "SRAM cells are not soft-error immune");
  }

  const CodecCost cc = codec(protection);
  TechnologyParams p;
  p.tech = tech;
  p.protection = protection;
  p.physical_overhead = 1.0 + cc.check_bits_per_word / 64.0;
  p.peripheral_static_mw = kPeripheralMw40 + cc.static_power_mw;

  if (tech == MemoryTech::Sram) {
    p.read_latency_cycles = 1;
    p.write_latency_cycles = 1;
    p.read_energy_pj = kSramReadPj40 * scale_ + cc.decode_energy_pj;
    p.write_energy_pj = kSramWritePj40 * scale_ + cc.encode_energy_pj;
    p.cell_leakage_mw_per_kib = kSramLeakMwPerKib40 * (40.0 / corner_.node_nm);
    p.endurance_writes = 0.0;  // unlimited
    p.soft_error_immune = false;
    if (protection == ProtectionKind::SecDed) {
      // The syndrome decode does not fit in the array access cycle at
      // 200 MHz; the paper's Table IV charges 2 cycles for both
      // directions (read-modify-write of check bits on writes).
      p.read_latency_cycles = 2;
      p.write_latency_cycles = 2;
    }
  } else {  // SttRam
    p.protection = ProtectionKind::Immune;
    p.read_latency_cycles = 1;
    p.write_latency_cycles = 10;  // Table IV
    p.read_energy_pj = kSttReadPj40 * scale_;
    p.write_energy_pj = kSttWritePj40 * scale_;
    // MTJ cells have no leakage path; residual leakage is in the access
    // transistors and periphery.
    p.cell_leakage_mw_per_kib = kSttLeakMwPerKib40 * (40.0 / corner_.node_nm);
    p.endurance_writes = kSttEnduranceWrites;
    p.soft_error_immune = true;
    p.physical_overhead = 1.0;
  }
  return p;
}

TechnologyParams TechnologyLibrary::unprotected_sram() const {
  return region(MemoryTech::Sram, ProtectionKind::None);
}
TechnologyParams TechnologyLibrary::parity_sram() const {
  return region(MemoryTech::Sram, ProtectionKind::Parity);
}
TechnologyParams TechnologyLibrary::secded_sram() const {
  return region(MemoryTech::Sram, ProtectionKind::SecDed);
}
TechnologyParams TechnologyLibrary::stt_ram() const {
  return region(MemoryTech::SttRam, ProtectionKind::Immune);
}

TechnologyParams TechnologyLibrary::stt_ram_relaxed() const {
  TechnologyParams p = stt_ram();
  p.write_latency_cycles = kSttRelaxedWriteCycles;
  p.write_energy_pj = kSttRelaxedWritePj40 * scale_;
  p.cell_leakage_mw_per_kib += kSttScrubMwPerKib40 * (40.0 / corner_.node_nm);
  p.endurance_writes = kSttRelaxedEnduranceWrites;
  p.needs_scrub = true;
  return p;
}

}  // namespace ftspm
