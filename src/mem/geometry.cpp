#include "ftspm/mem/geometry.h"

#include "ftspm/util/error.h"

namespace ftspm {

RegionGeometry::RegionGeometry(std::uint64_t data_bytes,
                               std::uint32_t check_bits_per_word)
    : data_bytes_(data_bytes),
      words_(data_bytes / 8),
      check_bits_(check_bits_per_word) {
  FTSPM_REQUIRE(data_bytes > 0, "region must be non-empty");
  FTSPM_REQUIRE(data_bytes % 8 == 0, "region size must be word-aligned");
  FTSPM_REQUIRE(check_bits_per_word <= 16, "check-bit overhead out of range");
}

RegionGeometry RegionGeometry::for_params(std::uint64_t data_bytes,
                                          const TechnologyParams& params) {
  std::uint32_t check = 0;
  switch (params.protection) {
    case ProtectionKind::None:
    case ProtectionKind::Immune:
      check = 0;
      break;
    case ProtectionKind::Parity:
      check = 1;
      break;
    case ProtectionKind::SecDed:
      check = 8;
      break;
  }
  return RegionGeometry(data_bytes, check);
}

PhysicalBit RegionGeometry::locate(std::uint64_t physical_bit_index) const {
  FTSPM_REQUIRE(physical_bit_index < physical_bits(),
                "physical bit index out of range");
  PhysicalBit pb;
  pb.word_index = physical_bit_index / codeword_bits();
  pb.bit_in_codeword =
      static_cast<std::uint32_t>(physical_bit_index % codeword_bits());
  return pb;
}

}  // namespace ftspm
