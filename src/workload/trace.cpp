#include "ftspm/workload/trace.h"

#include "ftspm/util/error.h"
#include "ftspm/util/format.h"

namespace ftspm {

const char* to_string(AccessType type) noexcept {
  switch (type) {
    case AccessType::Fetch: return "fetch";
    case AccessType::Read: return "read";
    case AccessType::Write: return "write";
    case AccessType::CallEnter: return "call-enter";
    case AccessType::CallExit: return "call-exit";
  }
  return "?";
}

std::uint64_t Workload::total_accesses() const noexcept {
  std::uint64_t n = 0;
  for (const auto& e : trace) n += e.accesses();
  return n;
}

std::uint64_t Workload::nominal_cycles() const noexcept {
  std::uint64_t n = 0;
  for (const auto& e : trace) n += e.nominal_cycles();
  return n;
}

void validate_trace(const Program& program,
                    const std::vector<TraceEvent>& trace) {
  std::int64_t call_depth = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& e = trace[i];
    const auto where = [&] {
      return " (event " + with_commas(static_cast<std::uint64_t>(i)) + ")";
    };
    FTSPM_CHECK(e.block < program.block_count(),
                "trace references unknown block" + where());
    const Block& b = program.block(e.block);
    switch (e.type) {
      case AccessType::Fetch:
        FTSPM_CHECK(b.is_code(), "fetch from non-code block " + b.name + where());
        FTSPM_CHECK(e.offset < b.size_words(),
                    "fetch offset outside block " + b.name + where());
        FTSPM_CHECK(e.repeat >= 1, "empty fetch run" + where());
        break;
      case AccessType::Read:
      case AccessType::Write:
        FTSPM_CHECK(b.is_data(),
                    "data access to code block " + b.name + where());
        FTSPM_CHECK(e.offset < b.size_words(),
                    "data offset outside block " + b.name + where());
        FTSPM_CHECK(e.repeat >= 1, "empty access run" + where());
        break;
      case AccessType::CallEnter:
        FTSPM_CHECK(b.is_code(), "call into non-code block" + where());
        FTSPM_CHECK(e.repeat == 1, "markers must have repeat == 1" + where());
        ++call_depth;
        break;
      case AccessType::CallExit:
        FTSPM_CHECK(b.is_code(), "return from non-code block" + where());
        FTSPM_CHECK(e.repeat == 1, "markers must have repeat == 1" + where());
        --call_depth;
        FTSPM_CHECK(call_depth >= 0, "unbalanced call markers" + where());
        break;
    }
  }
  FTSPM_CHECK(call_depth == 0, "trace ends with open calls");
}

}  // namespace ftspm
