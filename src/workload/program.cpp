#include "ftspm/workload/program.h"

#include "ftspm/util/error.h"

namespace ftspm {

const char* to_string(BlockKind kind) noexcept {
  switch (kind) {
    case BlockKind::Code: return "code";
    case BlockKind::Data: return "data";
    case BlockKind::Stack: return "stack";
  }
  return "?";
}

Program::Program(std::string name, std::vector<Block> blocks)
    : name_(std::move(name)), blocks_(std::move(blocks)) {
  FTSPM_REQUIRE(!blocks_.empty(), "program must have at least one block");
  base_addresses_.reserve(blocks_.size());
  // Lay blocks out back-to-back in off-chip memory, code first —
  // mirrors a linker's .text / .data / stack placement.
  std::uint64_t addr = 0;
  std::size_t stack_blocks = 0;
  for (const auto& b : blocks_) {
    FTSPM_REQUIRE(!b.name.empty(), "block needs a name");
    FTSPM_REQUIRE(b.size_bytes > 0 && b.size_bytes % 8 == 0,
                  "block size must be a positive multiple of 8 bytes: " +
                      b.name);
    base_addresses_.push_back(addr);
    addr += b.size_bytes;
    if (b.kind == BlockKind::Stack) ++stack_blocks;
    if (b.is_code())
      code_bytes_ += b.size_bytes;
    else
      data_bytes_ += b.size_bytes;
  }
  FTSPM_REQUIRE(stack_blocks <= 1, "at most one stack block per program");
}

const Block& Program::block(BlockId id) const {
  FTSPM_REQUIRE(id < blocks_.size(), "block id out of range");
  return blocks_[id];
}

std::uint64_t Program::base_address(BlockId id) const {
  FTSPM_REQUIRE(id < blocks_.size(), "block id out of range");
  return base_addresses_[id];
}

std::optional<BlockId> Program::find(std::string_view name) const noexcept {
  for (std::size_t i = 0; i < blocks_.size(); ++i)
    if (blocks_[i].name == name) return static_cast<BlockId>(i);
  return std::nullopt;
}

}  // namespace ftspm
