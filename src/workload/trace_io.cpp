#include "ftspm/workload/trace_io.h"

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>

#include "ftspm/util/error.h"

namespace ftspm {

namespace {

char type_code(AccessType type) {
  switch (type) {
    case AccessType::Fetch: return 'F';
    case AccessType::Read: return 'R';
    case AccessType::Write: return 'W';
    case AccessType::CallEnter: return 'C';
    case AccessType::CallExit: return 'X';
  }
  return '?';
}

AccessType type_of(char code, std::size_t line) {
  switch (code) {
    case 'F': return AccessType::Fetch;
    case 'R': return AccessType::Read;
    case 'W': return AccessType::Write;
    case 'C': return AccessType::CallEnter;
    case 'X': return AccessType::CallExit;
    default:
      throw Error("trace line " + std::to_string(line) +
                  ": unknown event type '" + std::string(1, code) + "'");
  }
}

BlockKind kind_of(const std::string& word, std::size_t line) {
  if (word == "code") return BlockKind::Code;
  if (word == "data") return BlockKind::Data;
  if (word == "stack") return BlockKind::Stack;
  throw Error("trace line " + std::to_string(line) + ": unknown block kind '" +
              word + "'");
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw Error("trace line " + std::to_string(line) + ": " + what);
}

/// Narrows a parsed field to the width its TraceEvent/Block member
/// actually has. The old code static_cast the uint64_t straight down,
/// so an offset of 2^32 silently wrapped to 0 and validated fine.
template <typename Narrow>
Narrow narrow_field(std::uint64_t value, const char* field,
                    std::size_t line) {
  if (value > std::numeric_limits<Narrow>::max())
    fail(line, std::string(field) + " " + std::to_string(value) +
                   " exceeds the maximum of " +
                   std::to_string(std::numeric_limits<Narrow>::max()));
  return static_cast<Narrow>(value);
}

}  // namespace

std::string serialize_workload(const Workload& workload) {
  std::ostringstream os;
  os << "ftspm-trace v1\n";
  os << "program " << workload.program.name() << "\n";
  for (const Block& blk : workload.program.blocks())
    os << "block " << blk.name << " " << to_string(blk.kind) << " "
       << blk.size_bytes << "\n";
  os << "trace " << workload.trace.size() << "\n";
  for (const TraceEvent& e : workload.trace)
    os << type_code(e.type) << " " << e.block << " " << e.offset << " "
       << e.repeat << " " << e.gap << "\n";
  return os.str();
}

Workload parse_workload(std::string_view text) {
  std::istringstream is{std::string(text)};
  std::string line;
  std::size_t line_no = 0;
  auto next_line = [&]() -> bool {
    while (std::getline(is, line)) {
      ++line_no;
      // Tolerate CRLF files: getline only strips the '\n'.
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) return true;
    }
    return false;
  };

  if (!next_line() || line != "ftspm-trace v1")
    fail(line_no ? line_no : 1, "missing 'ftspm-trace v1' header");

  if (!next_line()) fail(line_no, "missing 'program' record");
  std::istringstream header(line);
  std::string keyword, program_name;
  header >> keyword >> program_name;
  if (keyword != "program" || program_name.empty())
    fail(line_no, "expected 'program <name>'");

  std::vector<Block> blocks;
  std::size_t event_count = 0;
  while (next_line()) {
    std::istringstream fields(line);
    fields >> keyword;
    if (keyword == "block") {
      std::string name, kind;
      std::uint64_t bytes = 0;
      fields >> name >> kind >> bytes;
      if (fields.fail()) fail(line_no, "expected 'block <name> <kind> <bytes>'");
      blocks.push_back(Block{name, kind_of(kind, line_no),
                             narrow_field<std::uint32_t>(bytes, "block size",
                                                         line_no)});
    } else if (keyword == "trace") {
      fields >> event_count;
      if (fields.fail()) fail(line_no, "expected 'trace <count>'");
      break;
    } else {
      fail(line_no, "unexpected record '" + keyword + "'");
    }
  }
  if (blocks.empty()) fail(line_no, "no blocks declared");

  std::vector<TraceEvent> trace;
  trace.reserve(event_count);
  for (std::size_t i = 0; i < event_count; ++i) {
    if (!next_line()) fail(line_no, "trace truncated: expected " +
                                        std::to_string(event_count) +
                                        " events");
    std::istringstream fields(line);
    std::string code;
    std::uint64_t block = 0, offset = 0, repeat = 0, gap = 0;
    fields >> code >> block >> offset >> repeat >> gap;
    if (fields.fail() || code.size() != 1)
      fail(line_no, "expected '<type> <block> <offset> <repeat> <gap>'");
    TraceEvent e;
    e.type = type_of(code[0], line_no);
    e.block = narrow_field<BlockId>(block, "block id", line_no);
    e.offset = narrow_field<std::uint32_t>(offset, "offset", line_no);
    e.repeat = narrow_field<std::uint32_t>(repeat, "repeat", line_no);
    e.gap = narrow_field<std::uint16_t>(gap, "gap", line_no);
    trace.push_back(e);
  }

  Workload workload{Program(program_name, std::move(blocks)),
                    std::move(trace)};
  validate_trace(workload.program, workload.trace);
  return workload;
}

void save_workload(const Workload& workload, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  FTSPM_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  out << serialize_workload(workload);
  FTSPM_REQUIRE(out.good(), "write to '" + path + "' failed");
}

Workload load_workload(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FTSPM_REQUIRE(in.good(), "cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_workload(buffer.str());
}

}  // namespace ftspm
