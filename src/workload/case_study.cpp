#include "ftspm/workload/case_study.h"

#include <algorithm>

#include "ftspm/util/error.h"
#include "ftspm/util/rng.h"
#include "ftspm/workload/even_split.h"
#include "ftspm/workload/trace_builder.h"

namespace ftspm {

CaseStudyTargets CaseStudyTargets::scaled_down(std::uint64_t divisor) const {
  FTSPM_REQUIRE(divisor >= 1, "divisor must be >= 1");
  CaseStudyTargets t = *this;
  auto div = [divisor](std::uint64_t v, std::uint64_t lo) {
    return std::max<std::uint64_t>(lo, v / divisor);
  };
  t.outer_iterations = div(outer_iterations, 1);
  t.mul_calls = div(mul_calls, t.outer_iterations);
  t.add_calls = div(add_calls, t.outer_iterations);
  t.qsort_calls = div(qsort_calls, t.outer_iterations);
  t.main_fetches = div(main_fetches, t.qsort_calls);
  t.mul_fetches = div(mul_fetches, t.mul_calls);
  t.add_fetches = div(add_fetches, t.add_calls);
  t.mul_reads_array2 = div(mul_reads_array2, 1);
  t.add_reads_array3 = div(add_reads_array3, 1);
  t.add_writes_array3 = div(add_writes_array3, 1);
  t.add_reads_array4 = div(add_reads_array4, 1);
  t.qsort_reads_array1 = div(qsort_reads_array1, 1);
  t.qsort_writes_array1 = div(qsort_writes_array1, 1);
  t.qsort_stack_writes = div(qsort_stack_writes, 1);
  t.qsort_stack_reads = div(qsort_stack_reads, 1);
  return t;
}

Workload make_case_study(const CaseStudyTargets& t) {
  FTSPM_REQUIRE(t.outer_iterations >= 1, "need at least one iteration");
  FTSPM_REQUIRE(t.mul_calls >= t.outer_iterations &&
                    t.add_calls >= t.outer_iterations &&
                    t.qsort_calls >= t.outer_iterations,
                "each phase needs at least one call per iteration");

  Program program(
      "case_study",
      {Block{"Main", BlockKind::Code, t.main_code_bytes},
       Block{"Mul", BlockKind::Code, t.mul_code_bytes},
       Block{"Add", BlockKind::Code, t.add_code_bytes},
       Block{"Array1", BlockKind::Data, t.array_bytes},
       Block{"Array2", BlockKind::Data, t.array_bytes},
       Block{"Array3", BlockKind::Data, t.array_bytes},
       Block{"Array4", BlockKind::Data, t.array_bytes},
       Block{"Stack", BlockKind::Stack, t.stack_bytes}});

  using B = CaseStudyBlocks;
  TraceBuilder builder(program);
  Rng rng(0xf75b'ca5e'57'0d11ULL);
  const std::uint32_t array_words = t.array_bytes / 8;

  // Main's fetch budget: a slice for initialisation, a slice for the
  // outer-loop bookkeeping, and the rest attributed to the inlined
  // quicksort. All three are exact splits, so the Main total matches
  // Table I to the access.
  const std::uint64_t init_fetches = t.main_fetches / 500;
  const std::uint64_t loop_fetches = t.main_fetches / 100;
  const std::uint64_t qsort_fetches =
      t.main_fetches - init_fetches - loop_fetches;

  const std::uint64_t n = t.outer_iterations;
  EvenSplit mul_calls_it(t.mul_calls, n);
  EvenSplit add_calls_it(t.add_calls, n);
  EvenSplit qsort_calls_it(t.qsort_calls, n);
  EvenSplit loop_fetch_it(loop_fetches, n);

  EvenSplit mul_fetch(t.mul_fetches, t.mul_calls);
  EvenSplit mul_a2(t.mul_reads_array2, t.mul_calls);
  EvenSplit add_fetch(t.add_fetches, t.add_calls);
  EvenSplit add_a3r(t.add_reads_array3, t.add_calls);
  EvenSplit add_a3w(t.add_writes_array3, t.add_calls);
  EvenSplit add_a4(t.add_reads_array4, t.add_calls);

  EvenSplit q_fetch(qsort_fetches, t.qsort_calls);
  EvenSplit q_a1r(t.qsort_reads_array1, t.qsort_calls);
  EvenSplit q_a1w(t.qsort_writes_array1, t.qsort_calls);
  EvenSplit q_sw(t.qsort_stack_writes, t.qsort_calls);
  EvenSplit q_sr(t.qsort_stack_reads, t.qsort_calls);

  builder.call(B::kMain, t.main_frame_bytes);

  // --- initialisation: Algorithm 2 line 1 ---------------------------
  builder.fetch(init_fetches);
  for (BlockId array : {B::kArray1, B::kArray2, B::kArray3, B::kArray4})
    builder.write(array, t.init_passes * array_words);

  for (std::uint64_t it = 0; it < n; ++it) {
    builder.fetch(loop_fetch_it.take());

    // --- Mul phase: Array1[i] = f(Array1[i], Array2[i]) -------------
    // The frame spill and reload are emitted back-to-back so the stack
    // block's "most recently referenced" intervals stay short — its
    // Table I signature (huge access count, tiny lifetime, and hence
    // low susceptibility).
    const std::uint64_t mul_calls = mul_calls_it.take();
    for (std::uint64_t c = 0; c < mul_calls; ++c) {
      builder.call(B::kMul, t.mul_frame_bytes);
      builder.fetch(mul_fetch.take());
      builder.stack_write(t.frame_spill_words);
      builder.stack_read(t.frame_spill_words);
      builder.read(B::kArray1, t.mul_reads_array1_per_call,
                   static_cast<std::uint32_t>(rng.next_below(array_words)));
      builder.write(B::kArray1, t.mul_writes_array1_per_call,
                    static_cast<std::uint32_t>(rng.next_below(array_words)));
      // The operand stream is read last (software pipelining: the next
      // call's inputs are prefetched), so Array2 — not Array1 — is the
      // "current" data block across Mul's long fetch runs.
      builder.read(B::kArray2, mul_a2.take(),
                   static_cast<std::uint32_t>(rng.next_below(array_words)));
      builder.ret();
    }

    // --- Add phase: Array3[i] = Array3[i] + Array4[i] ----------------
    const std::uint64_t add_calls = add_calls_it.take();
    for (std::uint64_t c = 0; c < add_calls; ++c) {
      builder.call(B::kAdd, t.add_frame_bytes);
      builder.stack_write(t.frame_spill_words);
      builder.stack_read(t.frame_spill_words);
      builder.read(B::kArray4, add_a4.take(),
                   static_cast<std::uint32_t>(rng.next_below(array_words)));
      builder.read(B::kArray3, add_a3r.take(),
                   static_cast<std::uint32_t>(rng.next_below(array_words)));
      builder.write(B::kArray3, add_a3w.take(),
                    static_cast<std::uint32_t>(rng.next_below(array_words)));
      // Add's arithmetic trails its loads, so Array3 stays current
      // across the fetch run — balancing its lifetime against Array1's.
      builder.fetch(add_fetch.take());
      builder.ret();
    }

    // --- quicksort phase over Array1 (inlined in Main) ---------------
    // Recursion is emulated as self-calls into Main; descents follow a
    // deterministic depth pattern that reaches qsort_max_depth, giving
    // Table I's 348-byte maximum stack (60 + 18*16). Array/stack work
    // is batched across groups of descents so Array1 accumulates long
    // references — its Table I signature alongside Array3's — instead
    // of one short run per recursion node.
    std::uint64_t q_remaining = qsort_calls_it.take();
    const std::uint64_t batch_target = std::max<std::uint64_t>(
        1, t.qsort_calls / (t.outer_iterations * 14));
    std::uint32_t pattern = 0;
    while (q_remaining > 0) {
      static constexpr std::uint32_t kDepths[] = {4, 9, 14, 18, 6, 11, 2, 16};
      std::uint64_t batch_calls = 0;
      while (batch_calls < batch_target && q_remaining > 0) {
        std::uint32_t depth = kDepths[pattern++ % 8];
        depth = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(depth, q_remaining));
        q_remaining -= depth;
        batch_calls += depth;
        for (std::uint32_t d = 0; d < depth; ++d)
          builder.call(B::kMain, t.qsort_frame_bytes);
        for (std::uint32_t d = 0; d < depth; ++d) builder.ret();
      }
      builder.fetch(q_fetch.take(batch_calls));
      const std::uint64_t sw = q_sw.take(batch_calls);
      if (sw > 0) builder.stack_write(sw);
      const std::uint64_t sr = q_sr.take(batch_calls);
      if (sr > 0) builder.stack_read(sr);
      builder.read(B::kArray1, q_a1r.take(batch_calls),
                   static_cast<std::uint32_t>(rng.next_below(array_words)));
      builder.write(B::kArray1, q_a1w.take(batch_calls),
                    static_cast<std::uint32_t>(rng.next_below(array_words)));
    }
  }

  builder.ret();
  std::vector<TraceEvent> trace = builder.take();
  return Workload{std::move(program), std::move(trace)};
}

}  // namespace ftspm
