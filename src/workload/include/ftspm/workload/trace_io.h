// Workload (program + trace) serialization.
//
// A small line-oriented text format so traces can be exported from the
// generators, inspected, edited, and fed back through the pipeline (or
// produced by external tooling — e.g. a real profiler — and mapped by
// MDA). Format, one record per line:
//
//   ftspm-trace v1
//   program <name>
//   block <name> <code|data|stack> <size_bytes>
//   ...
//   trace <event_count>
//   <F|R|W|C|X> <block_id> <offset> <repeat> <gap>
//   ...
//
// F = fetch, R = read, W = write, C = call-enter, X = call-exit.
// Parsing validates everything (block ids, offsets, marker balance)
// via the standard trace validator.
#pragma once

#include <string>
#include <string_view>

#include "ftspm/workload/trace.h"

namespace ftspm {

/// Serializes to the v1 text format.
std::string serialize_workload(const Workload& workload);

/// Parses the v1 text format; throws ftspm::Error with a line number
/// on any malformed input, and validates the resulting trace.
Workload parse_workload(std::string_view text);

/// File convenience wrappers. Throw on I/O failure.
void save_workload(const Workload& workload, const std::string& path);
Workload load_workload(const std::string& path);

}  // namespace ftspm
