// MiBench-style workload suite.
//
// The paper evaluates FTSPM on the MiBench embedded suite (Guthaus et
// al., WWC'01) compiled for ARM and run under FaCSim. Neither the
// binaries nor the simulator are reproducible offline, so this module
// provides twelve synthetic kernels named after and shaped like their
// MiBench counterparts: each defines the code/data block structure of
// the original (tables, streams, in-place buffers, hot small state,
// recursion) and emits a deterministic trace with a characteristic
// read/write mix. MDA and every evaluation metric depend only on these
// block-level statistics, which is what makes the substitution sound.
//
// Deliberate diversity across the suite (drives Figs 4-8):
//  * read-dominated streamers: stringsearch, crc32, bitcount, susan
//  * write-heavy in-place kernels: fft, qsort
//  * tiny write-hot state blocks that stress STT-RAM endurance:
//    sha (message schedule), crc32 (accumulator), adpcm (coder state),
//    rijndael (cipher state)
//  * blocks too large for the 2 KB protected SRAM regions, which MDA
//    must leave unmapped: qsort records, fft re/im, jpeg coefficients
//  * code footprints above the 16 KB I-SPM: jpeg
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ftspm/workload/trace.h"

namespace ftspm {

enum class MiBenchmark : std::uint8_t {
  Basicmath,
  Bitcount,
  Qsort,
  Susan,
  Jpeg,
  Dijkstra,
  StringSearch,
  Sha,
  Crc32,
  Fft,
  Adpcm,
  Rijndael,
};

inline constexpr std::size_t kMiBenchmarkCount = 12;

const char* to_string(MiBenchmark bench) noexcept;

/// All twelve benchmarks in evaluation order.
const std::vector<MiBenchmark>& all_benchmarks();

/// Builds one benchmark's workload. `scale_divisor` shrinks iteration
/// counts (structure preserved) for fast tests; 1 = evaluation scale.
Workload make_benchmark(MiBenchmark bench, std::uint64_t scale_divisor = 1);

}  // namespace ftspm
