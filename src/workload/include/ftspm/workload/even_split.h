// Exact integer apportionment of a total over N parts.
//
// Workload generators must hit the paper's access totals exactly while
// spreading them over thousands of calls/iterations; EvenSplit hands
// out floor-balanced shares (largest-remainder / Bresenham style) whose
// sum over all parts equals the total precisely.
#pragma once

#include <cstdint>

#include "ftspm/util/error.h"

namespace ftspm {

class EvenSplit {
 public:
  EvenSplit(std::uint64_t total, std::uint64_t parts)
      : total_(total), parts_(parts) {
    FTSPM_REQUIRE(parts > 0, "EvenSplit needs at least one part");
  }

  /// Budget for the next `k` parts. Sums to `total` once all parts are
  /// taken. Throws if more than `parts` parts are requested.
  std::uint64_t take(std::uint64_t k = 1) {
    FTSPM_REQUIRE(parts_taken_ + k <= parts_, "EvenSplit over-consumed");
    parts_taken_ += k;
    // total * taken can overflow u64 for huge totals; use __uint128_t.
    const auto target = static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(total_) * parts_taken_) / parts_);
    const std::uint64_t share = target - given_;
    given_ = target;
    return share;
  }

  std::uint64_t parts_left() const noexcept { return parts_ - parts_taken_; }
  std::uint64_t amount_left() const noexcept { return total_ - given_; }

 private:
  std::uint64_t total_;
  std::uint64_t parts_;
  std::uint64_t parts_taken_ = 0;
  std::uint64_t given_ = 0;
};

}  // namespace ftspm
