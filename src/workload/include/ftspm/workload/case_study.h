// The paper's Section-IV motivational example (its Algorithm 2): a
// program with two multiply phases, two add phases, and a quicksort over
// four ~2 KB arrays, profiled in the paper's Table I and mapped in its
// Table II.
//
// The generator distributes the Table-I access totals over the loop/call
// structure with Bresenham-style splits, so profiling the generated
// trace reproduces the paper's read/write/stack-call counts *exactly*
// (lifetime and reads-per-reference emerge from the structure and match
// in shape). Block sizes are chosen to trigger the same MDA decisions
// the paper reports: Main exceeds the 16 KB I-SPM; Mul and Add fit;
// Array1/Array3/Stack violate a 100k write threshold and are evicted
// from STT-RAM; Array1/Array3 land in the 2 KB SEC-DED region and the
// Stack in the parity region.
#pragma once

#include <cstdint>

#include "ftspm/workload/trace.h"

namespace ftspm {

/// Tunable knobs of the case-study generator. Defaults reproduce the
/// paper's Table I.
struct CaseStudyTargets {
  // Block geometry (bytes).
  std::uint32_t main_code_bytes = 18 * 1024;  ///< > 16 KB I-SPM: unmappable.
  std::uint32_t mul_code_bytes = 2 * 1024;
  std::uint32_t add_code_bytes = 1 * 1024;
  std::uint32_t array_bytes = 242 * 8;  ///< "about 2 KB" (1936 B).
  std::uint32_t stack_bytes = 512;

  // Call structure.
  std::uint64_t outer_iterations = 50;
  std::uint64_t mul_calls = 6'400;       // Table I "Number of Stack Calls"
  std::uint64_t add_calls = 7'100;
  std::uint64_t qsort_calls = 397'560;   // +1 top-level Main entry = 397,561
  std::uint32_t mul_frame_bytes = 72;    // Table I "Maximum Stack Size"
  std::uint32_t add_frame_bytes = 72;
  std::uint32_t main_frame_bytes = 60;
  std::uint32_t qsort_frame_bytes = 16;
  std::uint32_t qsort_max_depth = 18;    // 60 + 18*16 = 348 B max stack

  // Access totals (Table I).
  std::uint64_t main_fetches = 3'327'700;
  std::uint64_t mul_fetches = 25'973'000;
  std::uint64_t add_fetches = 906'200;
  std::uint64_t mul_reads_array1_per_call = 134;
  std::uint64_t mul_writes_array1_per_call = 134;
  std::uint64_t mul_reads_array2 = 1'113'200;
  std::uint64_t add_reads_array3 = 2'178'000;
  std::uint64_t add_writes_array3 = 1'113'200;
  std::uint64_t add_reads_array4 = 1'113'200;
  std::uint64_t qsort_reads_array1 = 1'324'030;
  std::uint64_t qsort_writes_array1 = 256'810;
  std::uint64_t init_passes = 2;  ///< 2 * 242 words = 484 init writes/array.
  std::uint64_t qsort_stack_writes = 55'552;
  std::uint64_t qsort_stack_reads = 112'509;
  std::uint32_t frame_spill_words = 9;  ///< 72-byte frames spill 9 words.

  /// Divides every count by `divisor` (structure preserved) — used by
  /// tests that need a fast trace. Divisor must be >= 1.
  CaseStudyTargets scaled_down(std::uint64_t divisor) const;
};

/// Fixed block ids of the case-study program, in Table I's row order.
struct CaseStudyBlocks {
  static constexpr BlockId kMain = 0;
  static constexpr BlockId kMul = 1;
  static constexpr BlockId kAdd = 2;
  static constexpr BlockId kArray1 = 3;
  static constexpr BlockId kArray2 = 4;
  static constexpr BlockId kArray3 = 5;
  static constexpr BlockId kArray4 = 6;
  static constexpr BlockId kStack = 7;
};

/// Builds the case-study workload (program + trace).
Workload make_case_study(const CaseStudyTargets& targets = {});

}  // namespace ftspm
