// Structured trace construction.
//
// Workload generators describe programs in terms of calls, loops, and
// streaming array passes; TraceBuilder turns that structure into a
// validated TraceEvent stream, tracking call depth and stack usage so
// the generated trace always has balanced markers and in-bounds
// offsets. Stack frames are materialised as reads/writes to the
// program's Stack block at the current depth, which is what makes the
// stack show up in the profile (and later in MDA's endurance filter)
// exactly like the paper's Table I "Stack" row.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ftspm/workload/trace.h"

namespace ftspm {

class TraceBuilder {
 public:
  /// `program` must outlive the builder.
  explicit TraceBuilder(const Program& program);

  // --- code ---------------------------------------------------------

  /// Emits a CallEnter marker for `fn` requesting `frame_bytes` of
  /// stack, then (when the program has a Stack block and
  /// `spill_words > 0`) writes `spill_words` words of the frame to the
  /// stack. Depth bookkeeping feeds max_stack_bytes().
  void call(BlockId fn, std::uint32_t frame_bytes,
            std::uint32_t spill_words = 0);

  /// Emits the matching CallExit; optionally reads back `reload_words`
  /// spilled words first.
  void ret(std::uint32_t reload_words = 0);

  /// Emits `count` instruction fetches from the innermost active code
  /// block, starting at word 0 and wrapping; `gap` compute cycles
  /// precede each fetch.
  void fetch(std::uint64_t count, std::uint16_t gap = 0);

  /// Fetches from an explicit code block (for sequences outside calls).
  void fetch_from(BlockId code_block, std::uint64_t count,
                  std::uint16_t gap = 0);

  // --- data ---------------------------------------------------------

  /// A run of `count` sequential word reads from `block` starting at
  /// word `offset` (wrapping modulo the block size).
  void read(BlockId block, std::uint64_t count, std::uint32_t offset = 0,
            std::uint16_t gap = 0);

  /// Sequential word writes, same conventions as read().
  void write(BlockId block, std::uint64_t count, std::uint32_t offset = 0,
             std::uint16_t gap = 0);

  /// Single-word accesses at an arbitrary offset (random-access
  /// patterns).
  void read_at(BlockId block, std::uint32_t offset, std::uint16_t gap = 0);
  void write_at(BlockId block, std::uint32_t offset, std::uint16_t gap = 0);

  /// Reads/writes near the current stack top (requires a Stack block).
  void stack_read(std::uint64_t count, std::uint16_t gap = 0);
  void stack_write(std::uint64_t count, std::uint16_t gap = 0);

  // --- results ------------------------------------------------------

  /// Deepest stack usage seen so far, in bytes.
  std::uint32_t max_stack_bytes() const noexcept { return max_stack_bytes_; }

  /// Current call depth (0 at top level).
  std::size_t call_depth() const noexcept { return frames_.size(); }

  /// Finishes the trace: requires all calls returned; validates and
  /// returns the event stream, leaving the builder empty.
  std::vector<TraceEvent> take();

 private:
  struct Frame {
    BlockId fn;
    std::uint32_t frame_bytes;
  };

  void push(TraceEvent event);
  std::uint32_t stack_top_word() const noexcept;

  const Program& program_;
  std::vector<TraceEvent> events_;
  std::vector<Frame> frames_;
  std::uint32_t stack_bytes_ = 0;
  std::uint32_t max_stack_bytes_ = 0;
  std::optional<BlockId> stack_block_;
};

}  // namespace ftspm
