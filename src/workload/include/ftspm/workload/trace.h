// Block-level access traces.
//
// The whole reproduction is trace-driven: workload generators emit a
// deterministic stream of block accesses which the profiler, the MDA
// mapping pipeline, the cycle-level simulator, and the fault campaign
// all consume. Events are *aggregated*: one TraceEvent can represent a
// run of `repeat` consecutive word accesses (a streaming loop), which
// keeps multi-million-access workloads compact while preserving exact
// per-word counts.
#pragma once

#include <cstdint>
#include <vector>

#include "ftspm/workload/program.h"

namespace ftspm {

/// What one trace event does to its block.
enum class AccessType : std::uint8_t {
  Fetch,      ///< Instruction fetch from a code block.
  Read,       ///< Data word read.
  Write,      ///< Data word write.
  CallEnter,  ///< Marker: a call into a code block begins; `offset`
              ///< carries the stack bytes the activation needs.
  CallExit,   ///< Marker: the matching return.
};

const char* to_string(AccessType type) noexcept;

/// One (possibly aggregated) trace event.
///
/// Semantics of an event with repeat == n > 1: n word accesses to
/// consecutive word offsets offset, offset+1, ... wrapping modulo the
/// block's word count; each access is preceded by `gap` cycles of pure
/// compute. CallEnter/CallExit markers always have repeat == 1 and cost
/// no memory access themselves.
struct TraceEvent {
  BlockId block = 0;
  AccessType type = AccessType::Read;
  std::uint16_t gap = 0;      ///< Compute cycles before each access.
  std::uint32_t offset = 0;   ///< Starting word offset (stack bytes for
                              ///< CallEnter).
  std::uint32_t repeat = 1;   ///< Number of consecutive word accesses.

  bool is_marker() const noexcept {
    return type == AccessType::CallEnter || type == AccessType::CallExit;
  }
  bool is_memory_access() const noexcept { return !is_marker(); }

  /// Nominal cycles the event occupies on a 1-cycle-per-access machine
  /// (the profiler's timebase). Markers take zero time.
  std::uint64_t nominal_cycles() const noexcept {
    if (is_marker()) return 0;
    return static_cast<std::uint64_t>(repeat) * (gap + 1ULL);
  }

  /// Word accesses this event performs.
  std::uint64_t accesses() const noexcept { return is_marker() ? 0 : repeat; }
};

/// A complete workload: the program plus its deterministic trace.
struct Workload {
  Program program;
  std::vector<TraceEvent> trace;

  /// Total word accesses across the trace.
  std::uint64_t total_accesses() const noexcept;
  /// Total nominal cycles (profiler timebase).
  std::uint64_t nominal_cycles() const noexcept;
};

/// Validates a trace against its program: block ids in range, offsets
/// within blocks, fetches only from code blocks, reads/writes only to
/// data blocks, and balanced call markers. Throws ftspm::Error on the
/// first violation.
void validate_trace(const Program& program,
                    const std::vector<TraceEvent>& trace);

}  // namespace ftspm
