// Program model: the unit the SPM mapping algorithm reasons about.
//
// Following the paper (and the SPM-management literature it builds on,
// Steinke et al. DATE'02), a program is partitioned into *blocks*:
// instruction blocks (functions or instruction sequences) and data
// blocks (arrays, and the stack treated as one block). FTSPM's MDA
// decides, per block, whether it lives in the SPM and in which region.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ftspm {

/// Index of a block within its Program. Stable across the whole
/// pipeline (trace -> profile -> mapping -> simulation).
using BlockId = std::uint32_t;

/// Kind of program block.
enum class BlockKind : std::uint8_t {
  Code,   ///< Instruction block (function / instruction sequence).
  Data,   ///< Data block (array, global buffer).
  Stack,  ///< The call stack, managed as a single data block.
};

const char* to_string(BlockKind kind) noexcept;

/// One program block.
struct Block {
  std::string name;
  BlockKind kind = BlockKind::Data;
  std::uint32_t size_bytes = 0;

  std::uint32_t size_words() const noexcept { return size_bytes / 8; }
  bool is_code() const noexcept { return kind == BlockKind::Code; }
  bool is_data() const noexcept { return kind != BlockKind::Code; }
};

/// A program: a named set of blocks. Blocks are word-aligned;
/// `Program` validates sizes on construction and assigns each block a
/// base address in a flat off-chip address space (used by the cache
/// model when a block is not SPM-resident).
class Program {
 public:
  Program(std::string name, std::vector<Block> blocks);

  const std::string& name() const noexcept { return name_; }
  const std::vector<Block>& blocks() const noexcept { return blocks_; }
  const Block& block(BlockId id) const;
  std::size_t block_count() const noexcept { return blocks_.size(); }

  /// Off-chip base address of a block (bytes).
  std::uint64_t base_address(BlockId id) const;

  /// Finds a block by name.
  std::optional<BlockId> find(std::string_view name) const noexcept;

  /// Sum of code / data block sizes.
  std::uint64_t total_code_bytes() const noexcept { return code_bytes_; }
  std::uint64_t total_data_bytes() const noexcept { return data_bytes_; }

 private:
  std::string name_;
  std::vector<Block> blocks_;
  std::vector<std::uint64_t> base_addresses_;
  std::uint64_t code_bytes_ = 0;
  std::uint64_t data_bytes_ = 0;
};

}  // namespace ftspm
