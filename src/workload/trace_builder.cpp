#include "ftspm/workload/trace_builder.h"

#include <algorithm>
#include <limits>

#include "ftspm/util/error.h"

namespace ftspm {

TraceBuilder::TraceBuilder(const Program& program) : program_(program) {
  for (std::size_t i = 0; i < program_.block_count(); ++i) {
    if (program_.block(static_cast<BlockId>(i)).kind == BlockKind::Stack) {
      stack_block_ = static_cast<BlockId>(i);
      break;
    }
  }
}

void TraceBuilder::push(TraceEvent event) { events_.push_back(event); }

std::uint32_t TraceBuilder::stack_top_word() const noexcept {
  if (frames_.empty() || stack_bytes_ == 0) return 0;
  const std::uint32_t frame = frames_.back().frame_bytes;
  const std::uint32_t base = stack_bytes_ >= frame ? stack_bytes_ - frame : 0;
  return base / 8;
}

void TraceBuilder::call(BlockId fn, std::uint32_t frame_bytes,
                        std::uint32_t spill_words) {
  FTSPM_REQUIRE(program_.block(fn).is_code(), "call target must be code");
  FTSPM_REQUIRE(frame_bytes % 4 == 0, "frame bytes must be 4-aligned");
  push(TraceEvent{fn, AccessType::CallEnter, 0, frame_bytes, 1});
  frames_.push_back(Frame{fn, frame_bytes});
  stack_bytes_ += frame_bytes;
  max_stack_bytes_ = std::max(max_stack_bytes_, stack_bytes_);
  if (spill_words > 0) stack_write(spill_words);
}

void TraceBuilder::ret(std::uint32_t reload_words) {
  FTSPM_REQUIRE(!frames_.empty(), "ret without matching call");
  if (reload_words > 0) stack_read(reload_words);
  const Frame frame = frames_.back();
  frames_.pop_back();
  stack_bytes_ -= std::min(stack_bytes_, frame.frame_bytes);
  push(TraceEvent{frame.fn, AccessType::CallExit, 0, 0, 1});
}

void TraceBuilder::fetch(std::uint64_t count, std::uint16_t gap) {
  FTSPM_REQUIRE(!frames_.empty(), "fetch needs an active call frame");
  fetch_from(frames_.back().fn, count, gap);
}

void TraceBuilder::fetch_from(BlockId code_block, std::uint64_t count,
                              std::uint16_t gap) {
  FTSPM_REQUIRE(program_.block(code_block).is_code(),
                "fetch target must be code");
  constexpr std::uint64_t kChunk = std::numeric_limits<std::uint32_t>::max();
  while (count > 0) {
    const auto n = static_cast<std::uint32_t>(std::min(count, kChunk));
    push(TraceEvent{code_block, AccessType::Fetch, gap, 0, n});
    count -= n;
  }
}

namespace {
void check_data_target(const Program& program, BlockId block,
                       std::uint32_t offset) {
  const Block& b = program.block(block);
  FTSPM_REQUIRE(b.is_data(), "data access target must be a data block");
  FTSPM_REQUIRE(offset < b.size_words(), "offset outside block " + b.name);
}
}  // namespace

void TraceBuilder::read(BlockId block, std::uint64_t count,
                        std::uint32_t offset, std::uint16_t gap) {
  check_data_target(program_, block, offset);
  constexpr std::uint64_t kChunk = std::numeric_limits<std::uint32_t>::max();
  while (count > 0) {
    const auto n = static_cast<std::uint32_t>(std::min(count, kChunk));
    push(TraceEvent{block, AccessType::Read, gap, offset, n});
    count -= n;
  }
}

void TraceBuilder::write(BlockId block, std::uint64_t count,
                         std::uint32_t offset, std::uint16_t gap) {
  check_data_target(program_, block, offset);
  constexpr std::uint64_t kChunk = std::numeric_limits<std::uint32_t>::max();
  while (count > 0) {
    const auto n = static_cast<std::uint32_t>(std::min(count, kChunk));
    push(TraceEvent{block, AccessType::Write, gap, offset, n});
    count -= n;
  }
}

void TraceBuilder::read_at(BlockId block, std::uint32_t offset,
                           std::uint16_t gap) {
  read(block, 1, offset, gap);
}

void TraceBuilder::write_at(BlockId block, std::uint32_t offset,
                            std::uint16_t gap) {
  write(block, 1, offset, gap);
}

void TraceBuilder::stack_read(std::uint64_t count, std::uint16_t gap) {
  FTSPM_REQUIRE(stack_block_.has_value(), "program has no stack block");
  read(*stack_block_, count,
       stack_top_word() % program_.block(*stack_block_).size_words(), gap);
}

void TraceBuilder::stack_write(std::uint64_t count, std::uint16_t gap) {
  FTSPM_REQUIRE(stack_block_.has_value(), "program has no stack block");
  write(*stack_block_, count,
        stack_top_word() % program_.block(*stack_block_).size_words(), gap);
}

std::vector<TraceEvent> TraceBuilder::take() {
  FTSPM_REQUIRE(frames_.empty(), "take() with unreturned calls");
  validate_trace(program_, events_);
  std::vector<TraceEvent> out;
  out.swap(events_);
  return out;
}

}  // namespace ftspm
