#include "ftspm/workload/suite.h"

#include <algorithm>

#include "ftspm/util/error.h"
#include "ftspm/util/rng.h"
#include "ftspm/workload/trace_builder.h"

namespace ftspm {

const char* to_string(MiBenchmark bench) noexcept {
  switch (bench) {
    case MiBenchmark::Basicmath: return "basicmath";
    case MiBenchmark::Bitcount: return "bitcount";
    case MiBenchmark::Qsort: return "qsort";
    case MiBenchmark::Susan: return "susan";
    case MiBenchmark::Jpeg: return "jpeg";
    case MiBenchmark::Dijkstra: return "dijkstra";
    case MiBenchmark::StringSearch: return "stringsearch";
    case MiBenchmark::Sha: return "sha";
    case MiBenchmark::Crc32: return "crc32";
    case MiBenchmark::Fft: return "fft";
    case MiBenchmark::Adpcm: return "adpcm";
    case MiBenchmark::Rijndael: return "rijndael";
  }
  return "?";
}

const std::vector<MiBenchmark>& all_benchmarks() {
  static const std::vector<MiBenchmark> kAll{
      MiBenchmark::Basicmath, MiBenchmark::Bitcount, MiBenchmark::Qsort,
      MiBenchmark::Susan,     MiBenchmark::Jpeg,     MiBenchmark::Dijkstra,
      MiBenchmark::StringSearch, MiBenchmark::Sha,   MiBenchmark::Crc32,
      MiBenchmark::Fft,       MiBenchmark::Adpcm,    MiBenchmark::Rijndael};
  return kAll;
}

namespace {

constexpr std::uint32_t KiB = 1024;

std::uint64_t scaled(std::uint64_t n, std::uint64_t divisor) {
  return std::max<std::uint64_t>(1, n / divisor);
}

std::uint32_t rand_off(Rng& rng, const Program& p, BlockId b) {
  return static_cast<std::uint32_t>(rng.next_below(p.block(b).size_words()));
}

// Each kernel below is shaped after its MiBench namesake: the block
// structure (tables, streams, in-place buffers, small hot state, call
// stack) and the read/write mix follow the original's character.
// Common tuning across the suite: instruction-fetch to data-access
// ratios around 3:1, data-write shares of 20-40% where the original is
// write-capable, and a deliberate wear hierarchy — tiny hot blocks and
// busy stacks accumulate enough writes to trip MDA's endurance filter,
// while a diffusely-written block stays behind in STT-RAM so endurance
// stays finite and measurable.

// ---- basicmath: compute-bound scalar math, light memory traffic ------
Workload make_basicmath(std::uint64_t div) {
  Program p("basicmath",
            {Block{"main", BlockKind::Code, 6 * KiB},
             Block{"cubic", BlockKind::Code, 3 * KiB},
             Block{"isqrt", BlockKind::Code, 2 * KiB},
             Block{"coeffs", BlockKind::Data, 2 * KiB},
             Block{"results", BlockKind::Data, 4 * KiB},
             Block{"stack", BlockKind::Stack, 512}});
  TraceBuilder b(p);
  Rng rng(0xba51c'0001);
  const std::uint64_t iters = scaled(36'000, div);
  b.call(0, 48);
  b.fetch(400);
  for (std::uint64_t i = 0; i < iters; ++i) {
    b.call(1, 64, 3);  // cubic(): solves one polynomial
    b.fetch(24, 1);    // gap=1: arithmetic between loads
    b.read(3, 4, rand_off(rng, p, 3));
    b.write_at(4, static_cast<std::uint32_t>(i % p.block(4).size_words()));
    b.ret(3);
    if (i % 4 == 0) {
      b.call(2, 32, 2);  // isqrt() on every 4th root
      b.fetch(16, 1);
      b.read_at(4, static_cast<std::uint32_t>(i % p.block(4).size_words()));
      b.write_at(4, static_cast<std::uint32_t>((i + 7) %
                                               p.block(4).size_words()));
      b.ret(2);
    }
  }
  b.fetch(600);
  b.ret();
  std::vector<TraceEvent> trace = b.take();
  return Workload{std::move(p), std::move(trace)};
}

// ---- bitcount: table-driven popcounts over an input stream -----------
Workload make_bitcount(std::uint64_t div) {
  Program p("bitcount",
            {Block{"main", BlockKind::Code, 3 * KiB},
             Block{"bitcnt", BlockKind::Code, 1 * KiB},
             Block{"lut", BlockKind::Data, 2 * KiB},
             Block{"input", BlockKind::Data, 8 * KiB},
             Block{"counters", BlockKind::Data, 512},
             Block{"hist", BlockKind::Data, 1 * KiB},
             Block{"stack", BlockKind::Stack, 256}});
  TraceBuilder b(p);
  Rng rng(0xb17c'0027);
  const std::uint64_t passes = scaled(800, div);
  const std::uint32_t in_words = p.block(3).size_words();  // 1024
  b.call(0, 32);
  b.fetch(300);
  for (std::uint64_t pass = 0; pass < passes; ++pass) {
    // One bitcnt activation per 64-word chunk; the counters block
    // (a handful of per-method totals) boils.
    for (std::uint32_t chunk = 0; chunk < in_words; chunk += 64) {
      b.call(1, 64, 8);
      b.fetch(420);
      b.read(3, 64, chunk);
      b.read(2, 48, rand_off(rng, p, 2));
      b.read(4, 24, 0);
      b.write(4, 24, 0);
      b.ret(8);
    }
    // Per-pass histogram flush: diffuse writes that stay in STT-RAM.
    b.fetch(200);
    b.write(5, 8, static_cast<std::uint32_t>((pass * 8) %
                                             p.block(5).size_words()));
  }
  b.ret();
  std::vector<TraceEvent> trace = b.take();
  return Workload{std::move(p), std::move(trace)};
}

// ---- qsort: deep recursion, write-heavy record shuffling --------------
Workload make_qsort(std::uint64_t div) {
  Program p("qsort",
            {Block{"main", BlockKind::Code, 4 * KiB},
             Block{"qsort_fn", BlockKind::Code, 3 * KiB},
             Block{"cmp", BlockKind::Code, 1 * KiB},
             Block{"records", BlockKind::Data, 8 * KiB},  // > 2 KB regions
             Block{"aux", BlockKind::Data, 2 * KiB},
             Block{"stack", BlockKind::Stack, 2 * KiB}});
  TraceBuilder b(p);
  Rng rng(0x9507'7a11);
  const std::uint64_t sorts = scaled(40, div);
  b.call(0, 64);
  b.fetch(500);
  b.write(3, p.block(3).size_words());  // load the records
  for (std::uint64_t s = 0; s < sorts; ++s) {
    // Partition sweep at each recursion node; depth sawtooth to 24.
    for (std::uint32_t node = 0; node < 220; ++node) {
      const std::uint32_t depth = 1 + node % 24;
      for (std::uint32_t d = 0; d < depth; ++d) b.call(1, 48, 3);
      b.fetch(90 * depth);
      for (std::uint32_t c = 0; c < 6; ++c) {
        b.call(2, 16, 0);
        b.fetch(18);
        b.read(3, 24, rand_off(rng, p, 3));
        b.ret();
      }
      b.write(3, 40, rand_off(rng, p, 3));  // swaps
      b.read(4, 2, rand_off(rng, p, 4));
      b.write(4, 2, rand_off(rng, p, 4));   // pivot scratch, diffuse
      for (std::uint32_t d = 0; d < depth; ++d) b.ret(3);
    }
  }
  b.ret();
  std::vector<TraceEvent> trace = b.take();
  return Workload{std::move(p), std::move(trace)};
}

// ---- susan: image smoothing — bright LUT + windowed input reads ------
Workload make_susan(std::uint64_t div) {
  Program p("susan",
            {Block{"main", BlockKind::Code, 5 * KiB},
             Block{"smooth", BlockKind::Code, 4 * KiB},
             Block{"usan", BlockKind::Code, 3 * KiB},
             Block{"img_in", BlockKind::Data, 6 * KiB},
             Block{"img_out", BlockKind::Data, 4 * KiB},
             Block{"lut", BlockKind::Data, 1 * KiB},
             Block{"edge_map", BlockKind::Data, 1 * KiB},
             Block{"stack", BlockKind::Stack, 512}});
  TraceBuilder b(p);
  Rng rng(0x5a5a'0000 ^ 0x1234);
  const std::uint64_t frames = scaled(260, div);
  b.call(0, 56);
  b.fetch(800);
  for (std::uint64_t f = 0; f < frames; ++f) {
    b.call(1, 72, 4);
    for (std::uint32_t row = 0; row < 32; ++row) {
      b.fetch(260);
      b.read(3, 40, static_cast<std::uint32_t>((row * 32) %
                                               p.block(3).size_words()));
      // Four USAN windows per row; their frames hammer the stack.
      for (std::uint32_t win = 0; win < 4; ++win) {
        b.call(2, 40, 4);
        b.fetch(60);
        b.read(5, 10, rand_off(rng, p, 5));  // brightness LUT, very hot
        b.ret(4);
      }
      b.write(4, 12, static_cast<std::uint32_t>((row * 24) %
                                                p.block(4).size_words()));
      b.write(6, 2, static_cast<std::uint32_t>((f * 4 + row / 8) %
                                               p.block(6).size_words()));
    }
    b.ret(4);
  }
  b.ret();
  std::vector<TraceEvent> trace = b.take();
  return Workload{std::move(p), std::move(trace)};
}

// ---- jpeg: 17 KB of code (exceeds the I-SPM), hot coefficient block ---
Workload make_jpeg(std::uint64_t div) {
  Program p("jpeg",
            {Block{"main", BlockKind::Code, 6 * KiB},
             Block{"dct", BlockKind::Code, 4 * KiB},
             Block{"huffman", BlockKind::Code, 5 * KiB},
             Block{"quant", BlockKind::Code, 2 * KiB},
             Block{"img", BlockKind::Data, 6 * KiB},
             Block{"coeff", BlockKind::Data, 4 * KiB},  // hot RW, > regions
             Block{"qtable", BlockKind::Data, 512},
             Block{"htable", BlockKind::Data, 2 * KiB},
             Block{"out", BlockKind::Data, 3 * KiB},
             Block{"stack", BlockKind::Stack, 512}});
  TraceBuilder b(p);
  Rng rng(0x0e9e'6000);
  const std::uint64_t mcus = scaled(6'500, div);
  b.call(0, 64);
  b.fetch(900);
  for (std::uint64_t m = 0; m < mcus; ++m) {
    b.fetch(40);
    b.read(4, 64, static_cast<std::uint32_t>((m * 64) %
                                             p.block(4).size_words()));
    b.call(1, 96, 8);  // dct
    b.fetch(200, 1);
    b.write(5, 64, rand_off(rng, p, 5));
    b.read(5, 64, rand_off(rng, p, 5));
    b.ret(8);
    b.call(3, 32, 4);  // quant
    b.fetch(60);
    b.read(6, 16, 0);
    b.write(5, 32, rand_off(rng, p, 5));
    b.ret(4);
    b.call(2, 64, 6);  // huffman
    b.fetch(150);
    b.read(7, 48, rand_off(rng, p, 7));
    b.read(5, 64, rand_off(rng, p, 5));
    b.write(8, 6, static_cast<std::uint32_t>((m * 6) %
                                             p.block(8).size_words()));
    b.ret(6);
  }
  b.ret();
  std::vector<TraceEvent> trace = b.take();
  return Workload{std::move(p), std::move(trace)};
}

// ---- dijkstra: graph reads + red-hot priority-queue root --------------
Workload make_dijkstra(std::uint64_t div) {
  Program p("dijkstra",
            {Block{"main", BlockKind::Code, 4 * KiB},
             Block{"dijkstra_fn", BlockKind::Code, 3 * KiB},
             Block{"adj", BlockKind::Data, 6 * KiB},
             Block{"dist", BlockKind::Data, 2 * KiB},
             Block{"visited", BlockKind::Data, 512},
             Block{"pq", BlockKind::Data, 2 * KiB},
             Block{"path_out", BlockKind::Data, 1 * KiB},
             Block{"stack", BlockKind::Stack, 512}});
  TraceBuilder b(p);
  Rng rng(0xd11c'57a1);
  const std::uint64_t queries = scaled(1'200, div);
  b.call(0, 48);
  b.fetch(600);
  for (std::uint64_t q = 0; q < queries; ++q) {
    b.call(1, 80, 4);
    b.write(3, p.block(3).size_words());  // dist = INF
    for (std::uint32_t settle = 0; settle < 64; ++settle) {
      b.fetch(130);
      b.read(5, 4, 0);    // pop-min at the heap root
      b.write(5, 4, 0);   // sift-down rewrites the root
      b.read(4, 2, static_cast<std::uint32_t>(settle % 56));
      b.write(4, 2, static_cast<std::uint32_t>(settle % 56));
      b.read(2, 20, rand_off(rng, p, 2));  // neighbour scan
      b.read(3, 8, rand_off(rng, p, 3));
      b.write(3, 5, rand_off(rng, p, 3));  // relaxations
      b.write(5, 3, rand_off(rng, p, 5));  // pushes, diffuse
    }
    // Emit the settled path: diffuse writes that stay in STT-RAM.
    b.write(6, 8, static_cast<std::uint32_t>((q * 8) %
                                             p.block(6).size_words()));
    b.ret(4);
  }
  b.ret();
  std::vector<TraceEvent> trace = b.take();
  return Workload{std::move(p), std::move(trace)};
}

// ---- stringsearch: Boyer-Moore-Horspool — almost pure reads -----------
Workload make_stringsearch(std::uint64_t div) {
  Program p("stringsearch",
            {Block{"main", BlockKind::Code, 3 * KiB},
             Block{"bmh", BlockKind::Code, 2 * KiB},
             Block{"text", BlockKind::Data, 10 * KiB},
             Block{"patterns", BlockKind::Data, 1 * KiB},
             Block{"shift_tbl", BlockKind::Data, 512},
             Block{"matches", BlockKind::Data, 64},
             Block{"stack", BlockKind::Stack, 256}});
  TraceBuilder b(p);
  Rng rng(0x57a1'6b3f);
  const std::uint64_t searches = scaled(1'100, div);
  b.call(0, 40);
  b.fetch(350);
  b.write(4, p.block(4).size_words());  // build shift table once
  for (std::uint64_t s = 0; s < searches; ++s) {
    b.call(1, 48, 2);
    b.read(3, 16, rand_off(rng, p, 3));  // load the pattern
    for (std::uint32_t win = 0; win < 24; ++win) {
      b.fetch(170);
      b.read(2, 40, rand_off(rng, p, 2));  // text window
      b.read(4, 10, rand_off(rng, p, 4));  // shift-table probes
      b.write(5, 6, 0);                    // match counters, red hot
    }
    b.ret(2);
  }
  b.ret();
  std::vector<TraceEvent> trace = b.take();
  return Workload{std::move(p), std::move(trace)};
}

// ---- sha: streaming input + ultra-hot 512 B message schedule ----------
Workload make_sha(std::uint64_t div) {
  Program p("sha",
            {Block{"main", BlockKind::Code, 3 * KiB},
             Block{"sha_transform", BlockKind::Code, 4 * KiB},
             Block{"msg", BlockKind::Data, 8 * KiB},
             Block{"w_sched", BlockKind::Data, 512},
             Block{"digest", BlockKind::Data, 64},
             Block{"lengths", BlockKind::Data, 1 * KiB},
             Block{"stack", BlockKind::Stack, 256}});
  TraceBuilder b(p);
  Rng rng(0x5aa5'1011);
  const std::uint64_t chunks = scaled(9'000, div);
  const std::uint32_t w_words = p.block(3).size_words();  // 64
  b.call(0, 40);
  b.fetch(300);
  for (std::uint64_t c = 0; c < chunks; ++c) {
    b.fetch(30);
    b.read(2, 8, static_cast<std::uint32_t>((c * 8) %
                                            p.block(2).size_words()));
    b.call(1, 96, 12);
    b.write(3, w_words);       // expand message schedule
    b.fetch(300, 1);
    b.read(3, 80, 0);          // 80 rounds read W
    b.write(3, 16, 0);         // and update it
    b.read(4, 8, 0);
    b.write(4, 16, 0);         // digest words churn (wraps the block)
    b.ret(12);
    // Length bookkeeping: diffuse, stays in STT-RAM.
    if (c % 4 == 0)
      b.write(5, 2, static_cast<std::uint32_t>((c / 4) %
                                               p.block(5).size_words()));
  }
  b.ret();
  std::vector<TraceEvent> trace = b.take();
  return Workload{std::move(p), std::move(trace)};
}

// ---- crc32: long read stream + one red-hot accumulator word -----------
Workload make_crc32(std::uint64_t div) {
  Program p("crc32",
            {Block{"main", BlockKind::Code, 2 * KiB},
             Block{"crc", BlockKind::Code, 1 * KiB},
             Block{"stream", BlockKind::Data, 8 * KiB},
             Block{"crc_tbl", BlockKind::Data, 2 * KiB},
             Block{"acc", BlockKind::Data, 64},
             Block{"block_sums", BlockKind::Data, 1 * KiB},
             Block{"stack", BlockKind::Stack, 256}});
  TraceBuilder b(p);
  Rng rng(0xc3c3'2023);
  const std::uint64_t passes = scaled(240, div);
  const std::uint32_t stream_words = p.block(2).size_words();  // 1024
  b.call(0, 32);
  b.fetch(250);
  for (std::uint64_t pass = 0; pass < passes; ++pass) {
    for (std::uint32_t chunk = 0; chunk < stream_words; chunk += 128) {
      b.call(1, 24, 2);
      b.fetch(520);
      b.read(2, 128, chunk);
      b.read(3, 96, rand_off(rng, p, 3));  // table lookups
      b.read(4, 64, 0);                    // accumulator spins (wraps)
      b.write(4, 64, 0);
      b.ret(2);
      // Rolling per-chunk checksum journal: diffuse STT-RAM writes.
      b.write(5, 2, static_cast<std::uint32_t>((pass * 12 + chunk / 128) %
                                               p.block(5).size_words()));
    }
  }
  b.ret();
  std::vector<TraceEvent> trace = b.take();
  return Workload{std::move(p), std::move(trace)};
}

// ---- fft: in-place butterflies — the write-heaviest kernel ------------
Workload make_fft(std::uint64_t div) {
  Program p("fft",
            {Block{"main", BlockKind::Code, 4 * KiB},
             Block{"fft_fn", BlockKind::Code, 4 * KiB},
             Block{"twiddle_gen", BlockKind::Code, 1 * KiB},
             Block{"re", BlockKind::Data, 4 * KiB},  // > 2 KB regions
             Block{"im", BlockKind::Data, 4 * KiB},  // > 2 KB regions
             Block{"twiddle", BlockKind::Data, 2 * KiB},
             Block{"stack", BlockKind::Stack, 512}});
  TraceBuilder b(p);
  Rng rng(0xff7'0512);
  const std::uint64_t transforms = scaled(1'200, div);
  const std::uint32_t n_words = p.block(3).size_words();  // 512
  b.call(0, 56);
  b.fetch(900);  // argument parsing / buffer setup in main
  b.call(2, 32, 2);
  b.fetch(2'000);
  b.write(5, p.block(5).size_words());
  b.ret(2);
  for (std::uint64_t tr = 0; tr < transforms; ++tr) {
    b.call(1, 88, 5);
    for (std::uint32_t stage = 0; stage < 9; ++stage) {  // log2(512)
      b.fetch(950);
      b.read(5, 64, static_cast<std::uint32_t>((stage * 32) %
                                               p.block(5).size_words()));
      b.read(3, n_words / 4, rand_off(rng, p, 3));
      b.read(4, n_words / 4, rand_off(rng, p, 4));
      b.write(3, n_words / 4, rand_off(rng, p, 3));
      b.write(4, n_words / 4, rand_off(rng, p, 4));
    }
    b.ret(5);
  }
  b.ret();
  std::vector<TraceEvent> trace = b.take();
  return Workload{std::move(p), std::move(trace)};
}

// ---- adpcm: byte-stream codec with a tiny boiling state block ---------
Workload make_adpcm(std::uint64_t div) {
  Program p("adpcm",
            {Block{"main", BlockKind::Code, 2 * KiB},
             Block{"coder", BlockKind::Code, 2 * KiB},
             Block{"pcm_in", BlockKind::Data, 10 * KiB},
             Block{"adpcm_out", BlockKind::Data, 3 * KiB},  // > regions
             Block{"state", BlockKind::Data, 64},
             Block{"history", BlockKind::Data, 512},
             Block{"stack", BlockKind::Stack, 256}});
  TraceBuilder b(p);
  Rng rng(0xadc0'de00);
  const std::uint64_t frames = scaled(2'600, div);
  b.call(0, 32);
  b.fetch(220);
  for (std::uint64_t f = 0; f < frames; ++f) {
    b.call(1, 40, 2);
    b.fetch(620, 1);
    b.read(2, 160, static_cast<std::uint32_t>((f * 160) %
                                              p.block(2).size_words()));
    b.read(4, 160, 0);   // predictor state consulted per sample
    b.write(4, 160, 0);  // and updated per sample (wraps 8 words)
    b.write(3, 40, static_cast<std::uint32_t>((f * 40) %
                                              p.block(3).size_words()));
    // Long-term prediction history: diffuse, stays in STT-RAM.
    b.write(5, 4, static_cast<std::uint32_t>((f * 4) %
                                             p.block(5).size_words()));
    b.ret(2);
  }
  b.ret();
  std::vector<TraceEvent> trace = b.take();
  return Workload{std::move(p), std::move(trace)};
}

// ---- rijndael: S-box reads, round-key reads, boiling cipher state -----
Workload make_rijndael(std::uint64_t div) {
  Program p("rijndael",
            {Block{"main", BlockKind::Code, 4 * KiB},
             Block{"aes_rounds", BlockKind::Code, 5 * KiB},
             Block{"keyexp", BlockKind::Code, 2 * KiB},
             Block{"sbox", BlockKind::Data, 2 * KiB},
             Block{"roundkeys", BlockKind::Data, 1 * KiB},
             Block{"buf_in", BlockKind::Data, 4 * KiB},
             Block{"buf_out", BlockKind::Data, 4 * KiB},
             Block{"state", BlockKind::Data, 128},
             Block{"stack", BlockKind::Stack, 256}});
  TraceBuilder b(p);
  Rng rng(0xae5'1337);
  const std::uint64_t aes_blocks = scaled(4'200, div);
  b.call(0, 48);
  b.call(2, 64, 4);  // key expansion, once
  b.fetch(1'500);
  b.read(3, 240, 0);
  b.write(4, p.block(4).size_words());
  b.ret(4);
  for (std::uint64_t blk = 0; blk < aes_blocks; ++blk) {
    b.fetch(45);
    b.read(5, 2, static_cast<std::uint32_t>((blk * 2) %
                                            p.block(5).size_words()));
    b.call(1, 72, 6);
    for (std::uint32_t round = 0; round < 10; ++round) {
      b.fetch(60, 1);
      b.read(3, 16, rand_off(rng, p, 3));  // S-box lookups
      b.read(4, 4, static_cast<std::uint32_t>((round * 4) %
                                              p.block(4).size_words()));
      b.read(7, 16, 0);
      b.write(7, 16, 0);  // state churns every round
    }
    b.ret(6);
    // Ciphertext stream: diffuse writes that stay in STT-RAM.
    b.write(6, 2, static_cast<std::uint32_t>((blk * 2) %
                                             p.block(6).size_words()));
  }
  b.ret();
  std::vector<TraceEvent> trace = b.take();
  return Workload{std::move(p), std::move(trace)};
}

}  // namespace

Workload make_benchmark(MiBenchmark bench, std::uint64_t scale_divisor) {
  FTSPM_REQUIRE(scale_divisor >= 1, "scale divisor must be >= 1");
  switch (bench) {
    case MiBenchmark::Basicmath: return make_basicmath(scale_divisor);
    case MiBenchmark::Bitcount: return make_bitcount(scale_divisor);
    case MiBenchmark::Qsort: return make_qsort(scale_divisor);
    case MiBenchmark::Susan: return make_susan(scale_divisor);
    case MiBenchmark::Jpeg: return make_jpeg(scale_divisor);
    case MiBenchmark::Dijkstra: return make_dijkstra(scale_divisor);
    case MiBenchmark::StringSearch: return make_stringsearch(scale_divisor);
    case MiBenchmark::Sha: return make_sha(scale_divisor);
    case MiBenchmark::Crc32: return make_crc32(scale_divisor);
    case MiBenchmark::Fft: return make_fft(scale_divisor);
    case MiBenchmark::Adpcm: return make_adpcm(scale_divisor);
    case MiBenchmark::Rijndael: return make_rijndael(scale_divisor);
  }
  throw InvalidArgument("unknown benchmark");
}

}  // namespace ftspm
