#include "ftspm/fault/avf.h"

#include <vector>

#include "ftspm/util/error.h"

namespace ftspm {

RegionErrorProbabilities region_error_probabilities(
    ProtectionKind protection, const StrikeMultiplicityModel& strikes,
    std::uint32_t interleave) {
  FTSPM_REQUIRE(interleave >= 1, "interleave degree must be >= 1");
  if (interleave == 1 || protection == ProtectionKind::Immune ||
      protection == ProtectionKind::None)
    return region_error_probabilities(protection, strikes);

  // Transform the multiplicity pmf: an m-bit adjacent MBU leaves at
  // most ceil(m / interleave) flips in any single codeword.
  RegionErrorProbabilities p;
  const std::vector<double> pmf = strikes.pmf();
  for (std::uint32_t m = 1; m < pmf.size(); ++m) {
    if (pmf[m] <= 0.0) continue;
    const std::uint32_t per_word = (m + interleave - 1) / interleave;
    switch (protection) {
      case ProtectionKind::Parity:
        (per_word == 1 ? p.p_due : p.p_sdc) += pmf[m];
        break;
      case ProtectionKind::SecDed:
        if (per_word == 1)
          p.p_dre += pmf[m];
        else if (per_word == 2)
          p.p_due += pmf[m];
        else
          p.p_sdc += pmf[m];
        break;
      default:
        break;  // unreachable: handled above
    }
  }
  return p;
}

RegionErrorProbabilities region_error_probabilities(
    ProtectionKind protection, const StrikeMultiplicityModel& strikes) {
  RegionErrorProbabilities p;
  switch (protection) {
    case ProtectionKind::Immune:
      // STT-RAM cells cannot be upset; every strike is masked.
      return p;
    case ProtectionKind::None:
      // No detection at all: every strike silently corrupts.
      p.p_sdc = 1.0;
      return p;
    case ProtectionKind::Parity:
      // Eq. (4): one flip is detected (no recovery); Eq. (6): two or
      // more flips defeat single parity.
      p.p_due = strikes.p_exactly(1);
      p.p_sdc = strikes.p_at_least(2);
      return p;
    case ProtectionKind::SecDed:
      // One flip is corrected; Eq. (5): exactly two flips are detected;
      // Eq. (7): three or more escape or miscorrect.
      p.p_dre = strikes.p_exactly(1);
      p.p_due = strikes.p_exactly(2);
      p.p_sdc = strikes.p_at_least(3);
      return p;
  }
  throw InvalidArgument("unknown protection kind");
}

AvfResult compute_avf(const std::vector<AvfBlockTerm>& blocks,
                      std::uint64_t total_physical_bits,
                      const StrikeMultiplicityModel& strikes) {
  FTSPM_REQUIRE(total_physical_bits > 0, "SPM has no physical bits");
  AvfResult result;
  const double total = static_cast<double>(total_physical_bits);
  for (const AvfBlockTerm& b : blocks) {
    FTSPM_REQUIRE(b.ace_fraction >= 0.0 && b.ace_fraction <= 1.0,
                  "ACE fraction out of [0,1]");
    FTSPM_REQUIRE(b.physical_bits <= total_physical_bits,
                  "block larger than the SPM");
    const RegionErrorProbabilities p =
        region_error_probabilities(b.protection, strikes, b.interleave);
    const double weight =
        (static_cast<double>(b.physical_bits) / total) * b.ace_fraction;
    result.sdc_avf += weight * p.p_sdc;
    result.due_avf += weight * p.p_due;
    result.dre_avf += weight * p.p_dre;
  }
  return result;
}

}  // namespace ftspm
