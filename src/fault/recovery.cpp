#include "ftspm/fault/recovery.h"

#include <algorithm>

#include "ftspm/ecc/parity_codec.h"
#include "ftspm/ecc/secded_codec.h"
#include "ftspm/fault/campaign_observer.h"
#include "ftspm/fault/sensitivity.h"
#include "ftspm/util/error.h"

namespace ftspm {

namespace {

/// Image fill streams live at this offset within the shard's salted
/// seed space, far from the strike stream.
constexpr std::uint64_t kImageStreamBase = 0x1000;

/// Deposits one physical-bit flip into the stored codeword.
void apply_flip(RegionImage& image, const PhysicalBit& pb) {
  if (pb.bit_in_codeword < RegionGeometry::kDataBitsPerWord) {
    image.data[pb.word_index] ^= 1ULL << pb.bit_in_codeword;
  } else {
    const std::uint32_t check_bit =
        pb.bit_in_codeword - RegionGeometry::kDataBitsPerWord;
    image.check[pb.word_index] =
        static_cast<std::uint8_t>(image.check[pb.word_index] ^
                                  (1u << check_bit));
  }
}

}  // namespace

void LiveArrayCampaign::write_back_word(ProtectionKind protection,
                                        RegionImage& image,
                                        std::uint64_t word,
                                        std::uint64_t value) {
  switch (protection) {
    case ProtectionKind::Immune:
      return;
    case ProtectionKind::None:
      image.data[word] = value;
      return;
    case ProtectionKind::Parity: {
      const ParityWord pw = ParityCodec::encode(value);
      image.data[word] = pw.data;
      image.check[word] = pw.parity;
      return;
    }
    case ProtectionKind::SecDed: {
      const SecDedWord sw = SecDedCodec::encode(value);
      image.data[word] = sw.data;
      image.check[word] = sw.check;
      return;
    }
  }
}

void RecoveryCounters::add(const RecoveryCounters& other) noexcept {
  demand_reads += other.demand_reads;
  corrections += other.corrections;
  scrub_passes += other.scrub_passes;
  scrub_words += other.scrub_words;
  scrub_corrections += other.scrub_corrections;
  refetches += other.refetches;
  unrecoverable += other.unrecoverable;
  sdc_reads += other.sdc_reads;
  recovery_cycles += other.recovery_cycles;
  recovery_energy_pj += other.recovery_energy_pj;
}

LiveArrayCampaign::LiveArrayCampaign(std::vector<RecoveryRegion> regions,
                                     const StrikeMultiplicityModel& strikes,
                                     const RecoveryPolicy& policy)
    : regions_(std::move(regions)), strikes_(strikes), policy_(policy) {
  FTSPM_REQUIRE(!regions_.empty(), "campaign needs at least one region");
  weights_.reserve(regions_.size());
  for (const RecoveryRegion& r : regions_) {
    FTSPM_REQUIRE(r.inject.ace_occupancy >= 0.0 && r.inject.ace_occupancy <= 1.0,
                  "ace_occupancy out of [0,1]");
    FTSPM_REQUIRE(r.inject.interleave >= 1, "interleave degree must be >= 1");
    FTSPM_REQUIRE(r.dirty_fraction >= 0.0 && r.dirty_fraction <= 1.0,
                  "dirty_fraction out of [0,1]");
    weights_.push_back(static_cast<double>(r.inject.geometry.physical_bits()));
  }
}

void LiveArrayCampaign::ensure_shard_images(RecoveryShardSide& side,
                                            std::uint64_t shard_seed) const {
  if (side.initialized) return;
  side.images.assign(regions_.size(), RegionImage{});
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    const RecoveryRegion& region = regions_[r];
    if (region.inject.protection == ProtectionKind::Immune) continue;
    const std::uint64_t words = region.inject.geometry.words();
    RegionImage& image = side.images[r];
    image.data.resize(words);
    image.truth.resize(words);
    if (region.inject.geometry.check_bits_per_word() != 0) {
      image.check.resize(words);
      image.truth_check.resize(words);
    }
    // A dedicated fill stream per (shard, region): image contents are
    // independent of the strike sequence, so enabling recovery can
    // never shift the aim draws, and every shard's array differs.
    Rng fill = Rng::for_stream(shard_seed ^ kSeedSalt, kImageStreamBase + r);
    for (std::uint64_t w = 0; w < words; ++w) {
      const std::uint64_t value = fill.next_u64();
      image.truth[w] = value;
      write_back_word(region.inject.protection, image, w, value);
      // A freshly-written word is a clean encoding of its truth.
      if (!image.truth_check.empty()) image.truth_check[w] = image.check[w];
    }
  }
  side.initialized = true;
}

LiveArrayCampaign::WordRepair LiveArrayCampaign::resolve_word(
    std::size_t region_index, RegionImage& image, std::uint64_t word,
    Rng& rng, RecoveryCounters& counters, bool scrub_pass) const {
  const RecoveryRegion& region = regions_[region_index];
  const ProtectionKind protection = region.inject.protection;
  const TechnologyParams& tech = region.tech;
  // The scrub engine is read-correct-write hardware, so it always
  // repairs; the demand path repairs only when the policy says so.
  const bool repairs = scrub_pass || policy_.recover;

  // The corruption escaped detection: the consumer now computes with
  // this value, so it becomes the reference for later reads. The
  // cached truth_check must follow the new truth.
  auto consume_silent = [&](std::uint64_t value) {
    ++counters.sdc_reads;
    image.truth[word] = value;
    if (protection == ProtectionKind::Parity)
      image.truth_check[word] = ParityCodec::encode(value).parity;
    else if (protection == ProtectionKind::SecDed)
      image.truth_check[word] = SecDedCodec::compute_check(value);
    return WordRepair::Silent;
  };

  // A detected-uncorrectable word is re-initialized either way (each
  // failure event is charged exactly once); with repair enabled the
  // re-fetch is booked at the DMA transfer cost, and dirty/stack data —
  // which has no valid off-chip copy — escalates instead.
  auto handle_due = [&]() {
    write_back_word(protection, image, word, image.truth[word]);
    if (!repairs) return WordRepair::Detected;
    if (rng.next_bool(region.dirty_fraction)) {
      ++counters.unrecoverable;
      return WordRepair::Unrecoverable;
    }
    ++counters.refetches;
    const std::uint64_t words =
        std::max<std::uint64_t>(1, region.refetch_words);
    const std::uint64_t per_word = std::max<std::uint32_t>(
        policy_.dma_word_cycles, tech.write_latency_cycles);
    counters.recovery_cycles += policy_.dma_setup_cycles +
                                policy_.dma_line_cycles + words * per_word;
    counters.recovery_energy_pj +=
        static_cast<double>(words) *
        (policy_.dram_read_energy_pj + tech.write_energy_pj);
    return WordRepair::Refetched;
  };

  // The hot path below never materializes a decode: the stored word's
  // error pattern is (data ^ truth, check ^ truth_check) — two XORs —
  // and the codecs are linear, so classify_pattern on that pattern
  // reproduces the full decode. A clean word (the overwhelming case in
  // a scrub sweep) exits on the mask comparison alone, and the decoded
  // value, when one is needed, is truth ^ residual_mask.
  switch (protection) {
    case ProtectionKind::Immune:
      return WordRepair::Clean;
    case ProtectionKind::None: {
      const std::uint64_t data_mask = image.data[word] ^ image.truth[word];
      if (data_mask == 0) return WordRepair::Clean;
      // No check bits: a scrub sweep cannot see the error, a demand
      // read consumes it.
      if (scrub_pass) return WordRepair::Clean;
      return consume_silent(image.data[word]);
    }
    case ProtectionKind::Parity: {
      const std::uint64_t data_mask = image.data[word] ^ image.truth[word];
      const std::uint8_t check_mask = static_cast<std::uint8_t>(
          image.check[word] ^ image.truth_check[word]);
      if ((data_mask | check_mask) == 0) return WordRepair::Clean;
      const PatternDecode p =
          ParityCodec::classify_pattern(data_mask, check_mask);
      if (p.status == DecodeStatus::Detected) return handle_due();
      // Even-flip alias: invisible to the code, latent to a scrub.
      if (scrub_pass) return WordRepair::Clean;
      return consume_silent(image.truth[word] ^ p.residual_mask);
    }
    case ProtectionKind::SecDed: {
      const std::uint64_t data_mask = image.data[word] ^ image.truth[word];
      const std::uint8_t check_mask = static_cast<std::uint8_t>(
          image.check[word] ^ image.truth_check[word]);
      if ((data_mask | check_mask) == 0) return WordRepair::Clean;
      const PatternDecode p =
          SecDedCodec::classify_pattern(data_mask, check_mask);
      switch (p.status) {
        case DecodeStatus::Clean:
          // Aliased to a valid codeword of the wrong data (a zero
          // syndrome with flips present always corrupts data bits).
          if (scrub_pass) return WordRepair::Clean;  // latent
          return consume_silent(image.truth[word] ^ p.residual_mask);
        case DecodeStatus::Corrected: {
          const bool right = p.data_intact();
          const std::uint64_t decoded = image.truth[word] ^ p.residual_mask;
          if (repairs) {
            // Write what the decoder produced — right or miscorrected
            // alike, the hardware cannot tell the difference.
            write_back_word(protection, image, word, decoded);
            counters.recovery_cycles += tech.write_latency_cycles;
            counters.recovery_energy_pj += tech.write_energy_pj;
            if (right) {
              if (scrub_pass)
                ++counters.scrub_corrections;
              else
                ++counters.corrections;
            }
          }
          if (right) return WordRepair::Corrected;
          // Miscorrection: the stored word is now self-consistent
          // wrong data. A scrub leaves it latent (nothing consumed
          // it yet); a demand read consumes it.
          if (scrub_pass) return WordRepair::Clean;
          return consume_silent(decoded);
        }
        case DecodeStatus::Detected:
          return handle_due();
      }
      return WordRepair::Clean;
    }
  }
  throw InvalidArgument("unknown protection kind");
}

void LiveArrayCampaign::scrub_sweep(RecoveryShardSide& side, Rng& rng) const {
  ++side.counters.scrub_passes;
  for (std::size_t ri = 0; ri < regions_.size(); ++ri) {
    const RecoveryRegion& region = regions_[ri];
    if (!region.scrub) continue;
    const std::uint64_t words = region.inject.geometry.words();
    side.counters.scrub_words += words;
    side.counters.recovery_cycles += words * region.tech.read_latency_cycles;
    side.counters.recovery_energy_pj +=
        static_cast<double>(words) * region.tech.read_energy_pj;
    // Immune arrays (relaxed-retention STT-RAM) are swept as a
    // retention refresh: the read cost is real, but there is no
    // codeword image to repair.
    if (region.inject.protection == ProtectionKind::Immune) continue;
    RegionImage& image = side.images[ri];
    for (std::uint64_t w = 0; w < words; ++w)
      resolve_word(ri, image, w, rng, side.counters, /*scrub_pass=*/true);
  }
}

void LiveArrayCampaign::run_chunk_reference(const CampaignConfig& config,
                                            CampaignShardState& core,
                                            RecoveryShardSide& side,
                                            std::uint64_t max_strikes,
                                            CampaignObserver* observer,
                                            SensitivityGrid* grid) const {
  FTSPM_REQUIRE(side.initialized,
                "ensure_shard_images must run before run_chunk");
  const auto outcome_of = [](WordRepair repair) {
    switch (repair) {
      case WordRepair::Clean: return StrikeOutcome::Masked;
      case WordRepair::Corrected: return StrikeOutcome::Dre;
      case WordRepair::Refetched: return StrikeOutcome::Dre;
      case WordRepair::Detected: return StrikeOutcome::Due;
      case WordRepair::Unrecoverable: return StrikeOutcome::Due;
      case WordRepair::Silent: return StrikeOutcome::Sdc;
    }
    return StrikeOutcome::Masked;
  };

  std::vector<std::uint64_t>& touched = side.touched;
  const std::uint64_t end = std::min(config.strikes, core.done + max_strikes);
  for (std::uint64_t s = core.done; s < end; ++s) {
    // Aim draws in the static campaign's order (region, origin,
    // multiplicity); recovery draws only ever happen after them,
    // within the strike.
    const std::size_t ri = core.rng.next_discrete(weights_);
    const RecoveryRegion& region = regions_[ri];
    const std::uint64_t surface = region.inject.geometry.physical_bits();
    const std::uint64_t origin = core.rng.next_below(surface);
    const std::uint32_t flips =
        strikes_.sample_flips(core.rng, config.max_flips);

    StrikeOutcome outcome = StrikeOutcome::Masked;
    if (region.inject.protection != ProtectionKind::Immune) {
      RegionImage& image = side.images[ri];
      touched.clear();
      for (std::uint32_t k = 0; k < flips && origin + k < surface; ++k) {
        const PhysicalBit pb = locate_strike_bit(region.inject, origin + k);
        if (pb.word_index >= region.inject.geometry.words()) continue;
        apply_flip(image, pb);
        touched.push_back(pb.word_index);
      }
      std::sort(touched.begin(), touched.end());
      touched.erase(std::unique(touched.begin(), touched.end()),
                    touched.end());
      // Each struck word is demand-read (and decoded) before the next
      // scrub with probability = ACE occupancy; the rest stay latent
      // in the array, free to combine with later strikes.
      for (const std::uint64_t w : touched) {
        if (!core.rng.next_bool(region.inject.ace_occupancy)) continue;
        ++side.counters.demand_reads;
        const WordRepair repair = resolve_word(ri, image, w, core.rng,
                                               side.counters,
                                               /*scrub_pass=*/false);
        outcome = std::max(outcome, outcome_of(repair));
      }
    }

    switch (outcome) {
      case StrikeOutcome::Masked: ++core.partial.masked; break;
      case StrikeOutcome::Dre: ++core.partial.dre; break;
      case StrikeOutcome::Due: ++core.partial.due; break;
      case StrikeOutcome::Sdc: ++core.partial.sdc; break;
    }
    ++core.partial.strikes;
    if (observer != nullptr) observer->on_strike(s, outcome);
    if (grid != nullptr) grid->record(ri, origin, outcome);

    if (policy_.scrub_interval != 0 &&
        (s + 1) % policy_.scrub_interval == 0) {
      scrub_sweep(side, core.rng);
      // Scrub cadence is a pure function of the strike index, so this
      // record is deterministic. Worker threads in a sharded run see a
      // null event log (single-writer sink); only serial runs log
      // per-pass records.
      if (obs::EventLog* events = obs::current_event_log())
        events->emit(
            "scrub_pass", s + 1,
            {obs::TraceArg::num("passes", side.counters.scrub_passes),
             obs::TraceArg::num("scrub_words", side.counters.scrub_words),
             obs::TraceArg::num("scrub_corrections",
                                side.counters.scrub_corrections)});
    }
  }
  core.done = end;
}

RecoveryResult run_recovery_campaign(const std::vector<RecoveryRegion>& regions,
                                     const StrikeMultiplicityModel& strikes,
                                     const CampaignConfig& config,
                                     const RecoveryPolicy& policy,
                                     SensitivityGrid* grid) {
  if (!policy.active()) {
    // Nothing stateful to model: delegate to the static injector so
    // the historical counters are reproduced bit for bit.
    std::vector<InjectionRegion> inject;
    inject.reserve(regions.size());
    for (const RecoveryRegion& r : regions) inject.push_back(r.inject);
    return RecoveryResult{run_campaign(inject, strikes, config, grid), {}};
  }
  const LiveArrayCampaign campaign(regions, strikes, policy);
  CampaignShardState core =
      begin_campaign_shard(config.seed ^ LiveArrayCampaign::kSeedSalt);
  RecoveryShardSide side;
  campaign.ensure_shard_images(side, config.seed);
  emit_campaign_phase_start("recovery", config);
  CampaignObserver observer(config, "recovery");
  campaign.run_chunk(config, core, side, config.strikes, &observer, grid);
  emit_campaign_phase_end("recovery", core.partial);
  emit_recovery_metrics(side.counters);
  return RecoveryResult{core.partial, side.counters};
}

void emit_recovery_metrics(const RecoveryCounters& m) {
  if (!obs::enabled()) return;
  obs::Registry& reg = obs::registry();
  reg.counter("recovery.demand_reads").add(m.demand_reads);
  reg.counter("recovery.corrections").add(m.corrections);
  reg.counter("recovery.scrub_passes").add(m.scrub_passes);
  reg.counter("recovery.scrub_words").add(m.scrub_words);
  reg.counter("recovery.scrub_corrections").add(m.scrub_corrections);
  reg.counter("recovery.refetches").add(m.refetches);
  reg.counter("recovery.unrecoverable").add(m.unrecoverable);
  reg.counter("recovery.sdc_reads").add(m.sdc_reads);
  reg.counter("recovery.cycles").add(m.recovery_cycles);
  reg.gauge("recovery.energy_pj").set(m.recovery_energy_pj);
}

}  // namespace ftspm
