// Live-array fault campaign with recovery.
//
// The static injector (injector.h) classifies every strike against a
// throwaway codeword and forgets it. A production fault-tolerant SPM
// *recovers*: SEC-DED corrections are written back, detected-
// uncorrectable words are re-fetched from DRAM, and a scrub engine
// sweeps the arrays so latent errors cannot accumulate into multi-bit
// upsets. This module models that pipeline on an actual stored image of
// every region:
//
//  * strikes flip bits of real encoded codewords and *stay there* until
//    something decodes the word, so errors from different strikes
//    combine in one codeword — exactly the accumulation scrubbing
//    exists to prevent;
//  * each struck word is demand-read with probability = the region's
//    ACE occupancy; the read decodes on access, corrections are written
//    back at the region's write latency/energy;
//  * a detected-uncorrectable word holding clean (re-fetchable) data is
//    repaired by a DMA transfer booked with the simulator's
//    transfer-cost formula (setup + line + words x max(DRAM word, SPM
//    write)); dirty/stack data has no valid off-chip copy and escalates
//    to `unrecoverable`;
//  * every `scrub_interval` strikes the scrub engine sweeps the regions
//    flagged for scrubbing (SEC-DED arrays and relaxed-retention
//    STT-RAM, whose TechnologyParams already budget the scrub power),
//    correcting single-bit errors and charging one read per word swept.
//
// Outcome accounting with recovery on: an ECC correction or a
// successful re-fetch counts as DRE (detected AND recovered), an
// unrecoverable DUE stays DUE, and a consumed wrong value (clean-status
// aliasing or a miscorrection) is SDC — so CampaignResult::
// vulnerability() measures *residual* vulnerability after recovery,
// which is the quantity the scrub-interval ablation trades against
// recovery energy.
//
// Determinism: a shard's counters are a pure function of (seed,
// strikes, regions, policy) and are chunk-size invariant; the sharded
// runner merges shards in index order, so results never depend on
// --jobs. With `!policy.active()` the entry points delegate to the
// static injector verbatim, reproducing its counters bit for bit.
#pragma once

#include <cstdint>
#include <vector>

#include "ftspm/fault/injector.h"
#include "ftspm/fault/strike_model.h"
#include "ftspm/mem/technology.h"
#include "ftspm/util/rng.h"

namespace ftspm {

class CampaignObserver;

/// What the recovery pipeline does and what each repair costs. The DMA
/// scalars mirror sim's DmaConfig/MainMemoryConfig defaults; core's
/// make_recovery_policy() fills them from a SimConfig so campaigns book
/// re-fetches exactly as the simulator books block map-ins (fault
/// cannot link against sim, hence plain scalars here).
struct RecoveryPolicy {
  /// Decode-on-access repair of demand-read words.
  bool recover = false;
  /// Strikes between scrub sweeps; 0 disables scrubbing.
  std::uint64_t scrub_interval = 0;

  /// DMA re-fetch cost model (per transfer / per 64-bit word).
  std::uint32_t dma_setup_cycles = 16;
  std::uint32_t dma_line_cycles = 20;
  std::uint32_t dma_word_cycles = 2;
  double dram_read_energy_pj = 90.0;

  /// Anything to model beyond the static classify-and-forget campaign?
  bool active() const noexcept { return recover || scrub_interval != 0; }
};

/// One region surface plus the recovery-relevant context the static
/// InjectionRegion lacks.
struct RecoveryRegion {
  InjectionRegion inject;
  /// Latency/energy of the array (write-back and scrub-read costs).
  TechnologyParams tech;
  /// Probability a detected-uncorrectable word belongs to dirty/stack
  /// data with no valid off-chip copy (escalates to unrecoverable).
  double dirty_fraction = 0.0;
  /// Words per DMA re-fetch (the mean mapped-block size; a re-fetch
  /// restores a whole block, not one word).
  std::uint64_t refetch_words = 64;
  /// Swept by the scrub engine (SEC-DED arrays, relaxed-STT refresh).
  bool scrub = false;
};

/// Recovery-side counters of one campaign (or shard). Cycles/energy are
/// the MTTR-style overhead the pipeline spent repairing, on top of the
/// baseline access traffic.
struct RecoveryCounters {
  std::uint64_t demand_reads = 0;   ///< Struck words decoded on access.
  std::uint64_t corrections = 0;    ///< Demand-read SEC-DED write-backs.
  std::uint64_t scrub_passes = 0;
  std::uint64_t scrub_words = 0;    ///< Words swept across all passes.
  std::uint64_t scrub_corrections = 0;
  std::uint64_t refetches = 0;      ///< DUEs repaired from DRAM.
  std::uint64_t unrecoverable = 0;  ///< DUEs on dirty/stack data.
  std::uint64_t sdc_reads = 0;      ///< Wrong values consumed silently.
  std::uint64_t recovery_cycles = 0;
  double recovery_energy_pj = 0.0;

  std::uint64_t repairs() const noexcept {
    return corrections + scrub_corrections + refetches;
  }
  /// Mean cycles per successful repair (MTTR analogue; 0 if none).
  double mean_repair_cycles() const noexcept {
    return repairs() != 0
               ? static_cast<double>(recovery_cycles) /
                     static_cast<double>(repairs())
               : 0.0;
  }
  void add(const RecoveryCounters& other) noexcept;
};

/// A full recovery campaign's output: the strike classification
/// counters plus the recovery pipeline's side of the story.
struct RecoveryResult {
  CampaignResult strikes;
  RecoveryCounters recovery;
};

/// Adds the final recovery counters to the process-wide metrics
/// registry ("recovery.*" names). Called once per campaign by whoever
/// owns the merged counters — the serial runner and the sharded
/// coordinator — so serial and sharded runs leave identical registry
/// entries. No-op when observability is disabled.
void emit_recovery_metrics(const RecoveryCounters& counters);

/// The stored codeword image of one region: per-word data bits, check
/// bits, and the ground-truth values written. Immune regions keep no
/// image (their cells cannot be upset).
struct RegionImage {
  std::vector<std::uint64_t> data;
  std::vector<std::uint8_t> check;
  std::vector<std::uint64_t> truth;
  /// Check bits a clean encoding of `truth` would carry
  /// (truth_check[w] = encode(truth[w]).check), cached so resolve_word
  /// obtains a word's error pattern with two XORs — (data ^ truth,
  /// check ^ truth_check) — instead of re-encoding. Maintained at fill
  /// and wherever `truth` changes (silent consumption). Sized like
  /// `check` (empty for unchecked protections).
  std::vector<std::uint8_t> truth_check;
};

/// One shard's mutable recovery state, owned by the caller alongside
/// the shard's CampaignShardState. Images are seeded lazily from the
/// shard seed (never from the strike RNG, so image fill cannot shift
/// the strike sequence).
struct RecoveryShardSide {
  bool initialized = false;
  std::vector<RegionImage> images;
  RecoveryCounters counters;
  /// Struck-word scratch of run_chunk (cleared per strike, capacity
  /// kept across chunks). Pure workspace, never checkpointed.
  std::vector<std::uint64_t> touched;
  /// Batched-engine scratch (recovery_batch.cpp): the scrub sweep's
  /// clean-word bitmap plus the gathered (word index, data mask, check
  /// mask, syndrome) SoA of words headed for a batched classify. Pure
  /// workspace like `touched`.
  std::vector<std::uint64_t> batch_bitmap;
  std::vector<std::uint64_t> batch_words;
  std::vector<std::uint64_t> batch_data;
  std::vector<std::uint8_t> batch_check;
  std::vector<std::uint8_t> batch_syndrome;
};

/// Immutable shared context of a live-array campaign. Safe to share
/// across shards: run_chunk only mutates the per-shard state it is
/// handed.
class LiveArrayCampaign {
 public:
  /// Seed salt of the recovery campaign kind, applied to shard seeds
  /// (and, re-salted, to the image fill streams) so recovery campaigns
  /// never share a strike sequence with static ones.
  static constexpr std::uint64_t kSeedSalt = 0x5c7ab5eedULL;

  LiveArrayCampaign(std::vector<RecoveryRegion> regions,
                    const StrikeMultiplicityModel& strikes,
                    const RecoveryPolicy& policy);
  LiveArrayCampaign(const LiveArrayCampaign&) = delete;
  LiveArrayCampaign& operator=(const LiveArrayCampaign&) = delete;

  /// Fills `side`'s images from `shard_seed` (the shard's unsalted
  /// campaign seed) on first call; later calls are no-ops.
  void ensure_shard_images(RecoveryShardSide& side,
                           std::uint64_t shard_seed) const;

  /// Advances the shard by up to `max_strikes` strikes, stopping at
  /// config.strikes. Aim draws match the static campaign draw for
  /// draw; recovery draws happen strictly within a strike, so any
  /// chunking schedule yields identical counters. The observer
  /// (nullable) sees absolute strike indices; `grid` (nullable, see
  /// fault/sensitivity.h) records each strike's origin and final
  /// outcome without affecting results.
  ///
  /// This is the batched engine (recovery_batch.cpp): integer-domain
  /// aim draws over per-chunk region tables, XOR-mask flip scatter,
  /// demand decode and scrub sweeps through the batched ECC entry
  /// points. Counters, images, grids, observer calls, and the RNG
  /// stream are bit-identical to run_chunk_reference — pinned by
  /// tests/fault/batch_engine_test.cpp.
  void run_chunk(const CampaignConfig& config, CampaignShardState& core,
                 RecoveryShardSide& side, std::uint64_t max_strikes,
                 CampaignObserver* observer = nullptr,
                 SensitivityGrid* grid = nullptr) const;

  /// The strike-at-a-time reference loop run_chunk replaced: one
  /// next_discrete/next_bool/classify_pattern call per draw, per-bit
  /// located flips, per-word scrub resolution. Kept as the equivalence
  /// oracle for tests and bench/micro_recovery; identical behavior by
  /// contract, ~severalfold slower.
  void run_chunk_reference(const CampaignConfig& config,
                           CampaignShardState& core, RecoveryShardSide& side,
                           std::uint64_t max_strikes,
                           CampaignObserver* observer = nullptr,
                           SensitivityGrid* grid = nullptr) const;

  const std::vector<RecoveryRegion>& regions() const noexcept {
    return regions_;
  }

 private:
  enum class WordRepair : std::uint8_t {
    Clean,          ///< Decoded to the right value, nothing to do.
    Corrected,      ///< SEC-DED fixed it (written back when repairing).
    Refetched,      ///< DUE repaired by a DMA re-fetch.
    Detected,       ///< DUE with demand-path repair disabled.
    Unrecoverable,  ///< DUE on dirty/stack data; block lost.
    Silent,         ///< Wrong value consumed without detection.
  };

  WordRepair resolve_word(std::size_t region_index, RegionImage& image,
                          std::uint64_t word, Rng& rng,
                          RecoveryCounters& counters, bool scrub_pass) const;
  void scrub_sweep(RecoveryShardSide& side, Rng& rng) const;

  /// Per-chunk constants of the batched engine (recovery_batch.cpp):
  /// region tables with integer-domain draw thresholds and precomputed
  /// repair costs, region-pick breakpoints, flip cutoffs.
  struct BatchTables;
  void build_batch_tables(BatchTables& tables, std::uint32_t max_flips) const;
  void scrub_sweep_batched(RecoveryShardSide& side, Rng& rng,
                           const BatchTables& tables) const;

  /// Re-encodes `value` into the stored codeword (ground truth is the
  /// caller's business — a hardware write-back never learns it).
  static void write_back_word(ProtectionKind protection, RegionImage& image,
                              std::uint64_t word, std::uint64_t value);

  std::vector<RecoveryRegion> regions_;
  const StrikeMultiplicityModel& strikes_;
  RecoveryPolicy policy_;
  std::vector<double> weights_;
};

/// Serial recovery campaign. With `!policy.active()` this is exactly
/// run_campaign (same seed handling, same counters); otherwise the
/// live-array loop runs under `config.seed ^ LiveArrayCampaign::
/// kSeedSalt`.
RecoveryResult run_recovery_campaign(const std::vector<RecoveryRegion>& regions,
                                     const StrikeMultiplicityModel& strikes,
                                     const CampaignConfig& config,
                                     const RecoveryPolicy& policy,
                                     SensitivityGrid* grid = nullptr);

}  // namespace ftspm
