// Radiation-strike multiplicity model.
//
// The paper takes its bit-flip multiplicity distribution from Dixit &
// Wood, IRPS'11: at the 40 nm node, a particle strike flips one bit with
// probability 62%, two bits 25%, three bits 6%, and more than three 7%.
// Multi-bit upsets flip *physically adjacent* cells, which is what makes
// word-interleaving an effective countermeasure (exercised as an
// ablation) and what the Monte-Carlo injector models by flipping
// consecutive physical bits.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "ftspm/util/rng.h"

namespace ftspm {

/// Distribution of flips-per-strike at one process node.
class StrikeMultiplicityModel {
 public:
  /// The paper's node (Dixit & Wood 40 nm numbers).
  static StrikeMultiplicityModel at_40nm();
  /// Older / newer nodes for sensitivity studies (MBUs grow as cells
  /// shrink; values follow the same source's trend).
  static StrikeMultiplicityModel at_90nm();
  static StrikeMultiplicityModel at_65nm();
  static StrikeMultiplicityModel at_22nm();
  /// Nearest modelled node for an arbitrary feature size.
  static StrikeMultiplicityModel for_node(double node_nm);

  /// p1..p3 are P(exactly k flips); p_gt3 = P(more than 3). Must sum
  /// to 1 (validated).
  StrikeMultiplicityModel(double p1, double p2, double p3, double p_gt3);

  double p_exactly(unsigned flips) const;      ///< flips in {1,2,3}.
  double p_at_least(unsigned flips) const;     ///< flips in {1..4}; 4
                                               ///< means "> 3" tail.
  double p_more_than_3() const noexcept { return p_gt3_; }

  /// Samples a concrete flip count. The ">3" tail is drawn as
  /// 4 + Geometric(1/2), capped at `max_flips`.
  std::uint32_t sample_flips(Rng& rng, std::uint32_t max_flips = 16) const;

  /// The concrete probability mass function the sampler realises:
  /// index k (1-based) holds P(exactly k flips); the ">3" tail is
  /// spread as 4 + Geometric(1/2) truncated at `max_flips`. Sums to 1.
  /// This is what makes the analytic equations and the Monte-Carlo
  /// campaign agree on the tail.
  std::vector<double> pmf(std::uint32_t max_flips = 16) const;

 private:
  double p1_, p2_, p3_, p_gt3_;
};

}  // namespace ftspm
