// Analytic vulnerability model — the paper's Eqs. (1)-(7).
//
//   Vulnerability = SDC_AVF + DUE_AVF                              (1)
//   SDC_AVF = sum_i ACE_i * P_SDC(region_i)                        (2)
//   DUE_AVF = sum_i ACE_i * P_DUE(region_i)                        (3)
//   P_DUE(parity)  = P(1 flip)            P_DUE(ECC) = P(2 flips)  (4,5)
//   P_SDC(parity)  = P(>=2 flips)         P_SDC(ECC) = P(>=3)      (6,7)
//
// Each block's term is additionally weighted by the block's share of
// the SPM's physical strike surface (a uniformly-aimed particle must
// hit the block for its ACE time to matter). This weighting is what
// produces the paper's observation that the pure-SRAM baseline is flat
// across workloads — its whole surface is SEC-DED SRAM — while FTSPM's
// vulnerability scales with the little SRAM it still exposes, giving
// the ~7x reduction of Fig. 5.
#pragma once

#include <cstdint>
#include <vector>

#include "ftspm/fault/strike_model.h"
#include "ftspm/mem/technology.h"

namespace ftspm {

/// Conditional outcome probabilities for a strike landing on live data
/// in a region with the given protection.
struct RegionErrorProbabilities {
  double p_dre = 0.0;  ///< Detected & recovered (corrected).
  double p_due = 0.0;  ///< Detected, unrecoverable.
  double p_sdc = 0.0;  ///< Silent data corruption.

  double p_harmful() const noexcept { return p_due + p_sdc; }
};

/// Eqs. (4)-(7) plus the immune/unprotected cases.
RegionErrorProbabilities region_error_probabilities(
    ProtectionKind protection, const StrikeMultiplicityModel& strikes);

/// Interleaving-aware generalisation: with `interleave`-way physical
/// bit interleaving an m-bit adjacent MBU deposits at most
/// ceil(m / interleave) flips in any one codeword, so the outcome
/// classes are evaluated over the transformed multiplicity pmf.
/// `interleave == 1` reduces exactly to the paper's Eqs. (4)-(7).
RegionErrorProbabilities region_error_probabilities(
    ProtectionKind protection, const StrikeMultiplicityModel& strikes,
    std::uint32_t interleave);

/// One SPM-resident block, as the AVF equations see it.
struct AvfBlockTerm {
  std::uint64_t physical_bits = 0;  ///< Block words x codeword bits.
  double ace_fraction = 0.0;        ///< From the profiler, in [0,1].
  ProtectionKind protection = ProtectionKind::None;
  std::uint32_t interleave = 1;     ///< Region's bit interleaving.
};

/// AVF decomposition for one structure/workload pair.
struct AvfResult {
  double sdc_avf = 0.0;
  double due_avf = 0.0;
  double dre_avf = 0.0;  ///< Not part of Eq. 1; reported for insight.

  /// Eq. (1).
  double vulnerability() const noexcept { return sdc_avf + due_avf; }
};

/// Evaluates the equations. `total_physical_bits` is the whole SPM
/// strike surface (occupied or not); block terms outside the SPM must
/// simply be omitted.
AvfResult compute_avf(const std::vector<AvfBlockTerm>& blocks,
                      std::uint64_t total_physical_bits,
                      const StrikeMultiplicityModel& strikes);

}  // namespace ftspm
