// Monte-Carlo fault injection with real codecs.
//
// Where the AVF equations *assume* what parity and SEC-DED do under
// 1/2/3/>3-bit upsets, the injector finds out: each simulated strike
// flips `m` physically adjacent bits of a region surface holding real
// encoded codewords, runs the real decoders, and classifies the outcome
// against ground truth. Differences from the analytic model are real
// physics, not bugs:
//
//  * an MBU that straddles a codeword boundary splits into smaller
//    per-word errors (two adjacent single-bit errors -> both corrected),
//    so measured SDC/DUE sit *below* the analytic Eqs. 6-7;
//  * with bit interleaving (interleave > 1) an m-bit MBU scatters into
//    m different codewords and SEC-DED corrects all of them — the
//    classic mitigation, exposed here as an ablation knob.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "ftspm/ecc/codec.h"
#include "ftspm/fault/strike_model.h"
#include "ftspm/mem/geometry.h"
#include "ftspm/mem/technology.h"
#include "ftspm/util/fastdiv.h"
#include "ftspm/util/rng.h"

namespace ftspm {

/// Severity-ordered outcome of one strike.
enum class StrikeOutcome : std::uint8_t {
  Masked = 0,  ///< No architectural effect (immune cells, dead data, or
               ///< flips that cancelled).
  Dre,         ///< Detected and recovered (ECC corrected everything).
  Due,         ///< Detected, unrecoverable.
  Sdc,         ///< Silent data corruption.
};

const char* to_string(StrikeOutcome outcome) noexcept;

/// One region surface as the injector sees it.
struct InjectionRegion {
  RegionGeometry geometry{8, 0};
  ProtectionKind protection = ProtectionKind::None;
  /// Probability that a struck word holds architecturally-required
  /// data (occupancy x ACE); strikes on dead words are masked.
  double ace_occupancy = 1.0;
  /// Physical bit interleaving degree: adjacent physical bits belong
  /// to `interleave` different codewords. 1 = no interleaving.
  std::uint32_t interleave = 1;
};

struct CampaignConfig {
  std::uint64_t strikes = 100'000;
  std::uint64_t seed = 0x57a1ce5eed;
  std::uint32_t max_flips = 16;

  /// When non-zero, `progress` is invoked every `progress_interval`
  /// strikes and once at completion with (strikes_done, strikes_total).
  /// Reporting only — it must not touch the RNG, so enabling it cannot
  /// change campaign results.
  std::uint64_t progress_interval = 0;
  std::function<void(std::uint64_t, std::uint64_t)> progress;
};

struct CampaignResult {
  std::uint64_t strikes = 0;
  std::uint64_t masked = 0;
  std::uint64_t dre = 0;
  std::uint64_t due = 0;
  std::uint64_t sdc = 0;

  double fraction(std::uint64_t n) const noexcept {
    return strikes ? static_cast<double>(n) / static_cast<double>(strikes)
                   : 0.0;
  }
  /// Comparable to AvfResult::vulnerability().
  double vulnerability() const noexcept {
    return fraction(due + sdc);
  }
};

class SensitivityGrid;

/// Runs a campaign of uniformly-aimed strikes over the given surfaces
/// (weighted by physical bits). Deterministic for a fixed config.
/// `grid` (nullable) receives every strike's (region, origin bit,
/// final outcome) — see fault/sensitivity.h; it never affects results.
CampaignResult run_campaign(const std::vector<InjectionRegion>& regions,
                            const StrikeMultiplicityModel& strikes,
                            const CampaignConfig& config = {},
                            SensitivityGrid* grid = nullptr);

class CampaignObserver;

/// Strikes per block of the batched campaign engine: generation,
/// syndrome folding, and tallying each sweep arrays of this many
/// strikes (docs/performance.md, "Batched classification"). Block size
/// is pure scheduling — any width yields bit-identical results — and
/// tests pin that by overriding CampaignScratch::Batch::width.
inline constexpr std::uint32_t kCampaignBatchWidth = 256;

/// Per-region constants the batched engine derives from an
/// InjectionRegion once per chunk: geometry scalars hoisted out of the
/// strike loop plus exact magic-multiply dividers for the bit -> (word,
/// bit-in-codeword) aim arithmetic.
struct BatchRegionInfo {
  double weight = 0.0;  ///< physical_bits as double (discrete pick).
  std::uint64_t physical_bits = 0;
  std::uint64_t words = 0;
  std::uint32_t codeword_bits = 0;
  std::uint32_t interleave = 1;
  /// codeword_bits * interleave: physical span of one interleave group.
  std::uint64_t group_bits = 0;
  ProtectionKind protection = ProtectionKind::None;
  double ace_occupancy = 1.0;
  FastDiv64 div_codeword;    ///< by codeword_bits (interleave == 1 aim).
  FastDiv64 div_group;       ///< by group_bits (interleave > 1 aim).
  FastDiv64 div_interleave;  ///< by interleave (interleave > 1 aim).

  /// True when the region qualifies for the branch-free classify path:
  /// no interleaving and a geometry whose per-word outcome is fully
  /// determined by (min(bit count, 3), pattern parity) — see the
  /// class_lut build in injector_batch.cpp. Exotic geometries (e.g. a
  /// parity region with extra check bits) and interleaved regions take
  /// the general per-word path instead; both paths share every RNG
  /// draw and produce identical outcomes.
  bool fast = false;
  /// How the ACE-occupancy draw resolves: 0 = always masked (no draw),
  /// 1 = always kept (no draw), 2 = one Bernoulli draw per non-masked
  /// strike — mirroring Rng::next_bool's p <= 0 / p >= 1 / else arms.
  std::uint8_t ace_mode = 1;
  /// ceil(ace_occupancy * 2^53): the mode-2 Bernoulli draw in the
  /// integer domain. next_double() returns (x >> 11) * 2^-53 exactly,
  /// so `u < p  <=>  (x >> 11) < ceil(p * 2^53)` — the product is
  /// exact (p < 1 keeps it under 2^53) and an integer u_bits is below
  /// a real threshold iff it is below its ceiling. Comparing raw draw
  /// bits resolves branches earlier than the convert-to-double chain.
  std::uint64_t ace_bits = 0;
  /// Word-pattern outcome LUT for the fast path, indexed by
  /// min(popcount, 3) * 2 + parity: StrikeOutcome values 0..3, or 4 =
  /// defer to the batched SEC-DED syndrome fold. A single-group strike
  /// flips a contiguous run of bits, so its pattern weight IS the run
  /// length and the lookup needs no mask materialization at all.
  std::uint8_t class_lut[8] = {};
};

/// Reusable hot-loop scratch of one campaign shard. The classifier
/// records each strike's per-word hits in the fixed inline array
/// (`flips <= kInlineHits` covers any realistic CampaignConfig::
/// max_flips) and only falls back to the heap — once, then reusing the
/// buffer — beyond it, and the chunk loop keeps its batch workspace
/// here across calls; together the campaign inner loop performs
/// no per-strike allocation. Scratch is pure workspace: it never
/// affects results and is not checkpointed.
struct CampaignScratch {
  static constexpr std::uint32_t kInlineHits = 64;
  /// (word index, bit-in-codeword) hits of the strike being classified.
  std::array<std::pair<std::uint64_t, std::uint32_t>, kInlineHits> hits;
  /// Spill buffer for strikes with more than kInlineHits surviving
  /// flips; cleared, not shrunk, so it allocates at most once.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> spill;

  /// Structure-of-arrays workspace of the batched chunk engine. One
  /// block of `width` strikes at a time, run_campaign_chunk fills the
  /// per-strike arrays sequentially from the shard RNG (preserving the
  /// documented draw order exactly), parks every >= 2-flip SEC-DED word
  /// pattern in the fold_* arrays, resolves those with one batched
  /// SecDedCodec::fold_syndromes call, then tallies the block. All
  /// vectors are sized on first use and reused for the whole campaign.
  struct Batch {
    /// Block width. kCampaignBatchWidth for real campaigns; tests set
    /// other values (down to 1) to pin width-invariance of results.
    std::uint32_t width = kCampaignBatchWidth;

    /// Region constant table + total pick weight, rebuilt per chunk.
    std::vector<BatchRegionInfo> regions;
    /// Compact copy of the pick weights (the discrete-pick scan walks
    /// one cache line instead of striding through BatchRegionInfo).
    std::vector<double> weights;
    double total_weight = 0.0;
    /// Region-pick breakpoints in draw-bits space: pick_bits[k] is the
    /// smallest u_bits = x >> 11 whose subtract-scan partial k is
    /// non-negative (2^53 when none is). Every partial is monotone in
    /// u, so per-chunk binary searches recover the exact FP decision
    /// boundaries once and the per-strike pick becomes integer
    /// compares against the raw draw — bit-identical to
    /// Rng::next_discrete's scan (see pick_region).
    std::vector<std::uint64_t> pick_bits;
    /// Index next_discrete's underflow fallback resolves to (the last
    /// positive weight), precomputed per chunk.
    std::size_t pick_fallback = 0;

    // Per-strike arrays, indexed by slot in the current block.
    std::vector<std::uint32_t> region_of;
    std::vector<std::uint64_t> origin;
    std::vector<std::uint8_t> outcome;   ///< StrikeOutcome, pre-ACE.
    std::vector<std::uint8_t> ace_keep;  ///< 0 = ACE draw masked it.

    // Deferred SEC-DED word patterns of the block (strike `fold_slot`
    // contributed pattern (fold_data, fold_check)); resolved by the
    // batched syndrome fold into fold_syndrome.
    std::vector<std::uint64_t> fold_data;
    std::vector<std::uint8_t> fold_check;
    std::vector<std::uint32_t> fold_slot;
    std::vector<std::uint8_t> fold_syndrome;
    /// Tight-mode side-cars, parallel to fold_data: the deferring
    /// strike's inline worst outcome and its ACE keep flag, so the
    /// post-fold tally can finish each strike without per-slot outcome
    /// arrays (tight mode stores nothing per slot — see
    /// run_campaign_chunk).
    std::vector<std::uint8_t> fold_worst;
    std::vector<std::uint8_t> fold_keep;
  };
  Batch batch;
};

/// Mutable state of one in-flight campaign (or campaign shard):
/// completed-strike count, partial counters, and the generator
/// positioned after the last completed strike. Everything needed to
/// suspend the loop, serialize it to a checkpoint, and resume later —
/// resuming from (done, partial, rng) continues the exact sequence an
/// uninterrupted run would have produced. The scratch member is
/// transient workspace owned by whichever worker drives the shard;
/// checkpoints ignore it.
struct CampaignShardState {
  std::uint64_t done = 0;
  CampaignResult partial;
  Rng rng{0};
  CampaignScratch scratch;
};

/// Fresh state for a campaign whose generator is seeded with `seed`
/// (callers apply any kind-specific seed salt before calling).
CampaignShardState begin_campaign_shard(std::uint64_t seed) noexcept;

/// Advances `state` by up to `max_strikes` strikes of the campaign
/// described by (regions, strikes, config), stopping early at
/// config.strikes. Consumes the RNG exactly as `run_campaign` does, so
/// chunking never changes results: any chunk-size schedule reaching
/// config.strikes yields the same counters as one serial run. The
/// observer (nullable) sees absolute strike indices; `grid` (nullable,
/// must be active) accumulates per-(region, bucket) outcome counts off
/// the hot path.
void run_campaign_chunk(const std::vector<InjectionRegion>& regions,
                        const StrikeMultiplicityModel& strikes,
                        const CampaignConfig& config,
                        CampaignShardState& state, std::uint64_t max_strikes,
                        CampaignObserver* observer = nullptr,
                        SensitivityGrid* grid = nullptr);

/// Injects one m-bit adjacent upset starting at `first_bit` of a region
/// and classifies it (ACE filtering excluded — pure code behaviour).
/// Exposed for unit tests and the analytic-vs-MC ablation.
///
/// Classification runs on the codecs' syndrome kernel
/// (classify_pattern): parity and SEC-DED are linear, so the outcome
/// depends only on which bits flipped, never on the stored data. RNG
/// consumption matches classify_strike_oracle draw for draw — one
/// next_u64 per struck codeword — so campaign counters at a fixed seed
/// are bit-identical to the pre-kernel implementation.
StrikeOutcome classify_strike(const InjectionRegion& region,
                              std::uint64_t first_bit, std::uint32_t flips,
                              Rng& rng);

/// classify_strike with caller-owned scratch — the campaign hot loops
/// thread their shard's CampaignScratch through this overload so no
/// per-strike temporaries are created.
StrikeOutcome classify_strike(const InjectionRegion& region,
                              std::uint64_t first_bit, std::uint32_t flips,
                              Rng& rng, CampaignScratch& scratch);

/// Reference implementation over the full encode/flip/decode oracle
/// (heap-allocating, data-materializing). Kept as the ground truth the
/// syndrome kernel is verified against (tests) and the perf baseline
/// bench/micro_campaign and bench/perf_harness measure the kernel's
/// speedup over. Identical outcomes and RNG consumption.
StrikeOutcome classify_strike_oracle(const InjectionRegion& region,
                                     std::uint64_t first_bit,
                                     std::uint32_t flips, Rng& rng);

/// Locates physical bit `i` of a region under its interleaving: with
/// degree IL, consecutive physical bits rotate across IL codewords, so
/// an adjacent MBU spreads over IL words. This is the aim function
/// classify_strike uses; the live-array recovery campaign shares it so
/// its deposited flips land at identical physical locations.
PhysicalBit locate_strike_bit(const InjectionRegion& region, std::uint64_t i);

}  // namespace ftspm
