// Per-strike observability shared by every Monte-Carlo campaign loop
// (the static injector campaign and core's temporal campaign): registry
// tallies, trace instants for vulnerable outcomes on a strike-indexed
// lane, and the throttled progress callback from CampaignConfig.
//
// Construct once per campaign, call on_strike() after classifying each
// strike. All members resolve to no-ops when observability is disabled,
// and nothing here touches the RNG — attaching an observer can never
// change campaign results.
#pragma once

#include <cstdint>

#include "ftspm/fault/injector.h"
#include "ftspm/obs/event_log.h"
#include "ftspm/obs/metrics.h"
#include "ftspm/obs/trace_sink.h"

namespace ftspm {

class CampaignObserver {
 public:
  CampaignObserver(const CampaignConfig& config, const char* lane_name)
      : config_(config) {
    if (obs::enabled()) {
      obs::Registry& reg = obs::registry();
      strikes_ = &reg.counter("campaign.strikes");
      vulnerable_ = &reg.counter("campaign.vulnerable");
      if ((trace_ = obs::current_trace()) != nullptr)
        lane_ = trace_->lane("campaign", lane_name);
    }
  }

  /// True when on_strike would do anything at all. The batched campaign
  /// loop checks this once per block and skips the per-strike observer
  /// sweep entirely for inert observers (observability disabled and no
  /// progress callback) — on_strike would no-op per strike anyway, so
  /// skipping it is invisible.
  bool active() const noexcept {
    return strikes_ != nullptr ||
           (config_.progress_interval != 0 &&
            static_cast<bool>(config_.progress));
  }

  /// Call after classifying strike `s` (0-based). Timestamps in the
  /// trace are strike indices, keeping the lane deterministic.
  void on_strike(std::uint64_t s, StrikeOutcome outcome) {
    if (strikes_ != nullptr) {
      strikes_->add(1);
      if (outcome == StrikeOutcome::Due || outcome == StrikeOutcome::Sdc)
        vulnerable_->add(1);
      if (trace_ != nullptr) {
        if (outcome != StrikeOutcome::Masked)
          trace_->instant(lane_, to_string(outcome), s);
        if ((s + 1) % kCounterSamplePeriod == 0)
          trace_->value(lane_, "vulnerable", s,
                        static_cast<double>(vulnerable_->value()));
      }
    }
    if (config_.progress_interval != 0 && config_.progress) {
      const bool at_completion = s + 1 == config_.strikes;
      if (at_completion || (s + 1) % config_.progress_interval == 0) {
        // The completion call must fire exactly once, including when
        // `strikes` is an exact multiple of the interval (both branches
        // true on the last strike) and when a resumed shard replays its
        // final strike.
        if (at_completion) {
          if (completion_fired_) return;
          completion_fired_ = true;
        }
        config_.progress(s + 1, config_.strikes);
      }
    }
  }

 private:
  static constexpr std::uint64_t kCounterSamplePeriod = 4096;
  bool completion_fired_ = false;
  const CampaignConfig& config_;
  obs::Counter* strikes_ = nullptr;
  obs::Counter* vulnerable_ = nullptr;
  obs::TraceEventSink* trace_ = nullptr;
  obs::TraceEventSink::LaneId lane_ = 0;
};

/// Event-log records bracketing a *serial* campaign, with the same
/// field shapes as the sharded runner's phase records (shards = 1,
/// nothing resumed). The sharded runner emits its own richer set —
/// per-shard start/end and checkpoint records — from the coordinator.
inline void emit_campaign_phase_start(const char* kind,
                                      const CampaignConfig& config) {
  if (obs::EventLog* events = obs::current_event_log())
    events->emit("phase_start", 0,
                 {obs::TraceArg::str("kind", kind),
                  obs::TraceArg::num("shards", std::uint64_t{1}),
                  obs::TraceArg::num("strikes", config.strikes),
                  obs::TraceArg::num("resumed_strikes", std::uint64_t{0})});
}

inline void emit_campaign_phase_end(const char* kind,
                                    const CampaignResult& result) {
  if (obs::EventLog* events = obs::current_event_log())
    events->emit("phase_end", result.strikes,
                 {obs::TraceArg::str("kind", kind),
                  obs::TraceArg{"complete", "true"},
                  obs::TraceArg::num("strikes", result.strikes),
                  obs::TraceArg::num("masked", result.masked),
                  obs::TraceArg::num("dre", result.dre),
                  obs::TraceArg::num("due", result.due),
                  obs::TraceArg::num("sdc", result.sdc)});
}

}  // namespace ftspm
