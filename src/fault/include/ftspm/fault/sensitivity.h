// Fault-sensitivity grid: where strikes land and what became of them.
//
// The campaign counters say *how many* strikes ended masked/DRE/DUE/
// SDC; the grid says *where*. Each region's physical bit range is
// split into a configurable number of equal buckets, and every strike
// increments one (region, bucket, outcome) cell — a single array
// increment off a precomputed base, no allocation, so recording stays
// out of the campaign hot path's way. The paper's MDA story is spatial
// (the most-vulnerable blocks live in the most-protected regions), and
// the grid is what makes that claim inspectable per run: rendered as a
// heatmap by `ftspm_tool report`, or diffed as CSV.
//
// Sharding follows the PR-5 delta-registry pattern: each shard records
// into its own grid and the coordinator merges them post-join in shard
// order (merge_from), so the merged grid is byte-identical to a serial
// run's for any --jobs. A default-constructed grid is inactive
// (active() == false); campaign loops take a nullable pointer and skip
// recording entirely when no grid was requested.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ftspm/fault/injector.h"
#include "ftspm/fault/recovery.h"

namespace ftspm {

/// Per-(region, bucket) outcome accumulator over the SPM address space.
class SensitivityGrid {
 public:
  /// One count per StrikeOutcome (Masked, Dre, Due, Sdc).
  static constexpr std::size_t kOutcomes = 4;

  /// What the grid knows about one region: a short display label, the
  /// ECC scheme name (for metric labels and report tables), and the
  /// physical surface size the buckets divide.
  struct RegionSpec {
    std::string label;
    std::string protection;
    std::uint64_t physical_bits = 0;
  };

  /// Inactive grid: record() must not be called, merge_from/to_csv are
  /// errors. Campaign drivers pass nullptr instead of an inactive grid.
  SensitivityGrid() = default;

  /// `buckets` equal-width buckets per region. Every region needs a
  /// non-zero surface, and buckets * physical_bits must fit in 64 bits
  /// (true for any real SPM geometry).
  SensitivityGrid(std::vector<RegionSpec> regions, std::uint32_t buckets);

  bool active() const noexcept { return buckets_ != 0; }
  std::uint32_t buckets() const noexcept { return buckets_; }
  std::size_t region_count() const noexcept { return regions_.size(); }
  const std::vector<RegionSpec>& regions() const noexcept { return regions_; }

  /// Which bucket physical bit `bit` of `region` falls into. Exact
  /// integer arithmetic (no float rounding), so shard merges and CSV
  /// round trips agree bit for bit.
  std::size_t bucket_of(std::size_t region, std::uint64_t bit) const noexcept {
    const std::size_t b = static_cast<std::size_t>(
        bit * buckets_ / regions_[region].physical_bits);
    return b < buckets_ ? b : buckets_ - 1;
  }

  /// Hot-path record: one strike at `bit` of `region` with final
  /// outcome `outcome` (after ACE masking). Requires active().
  void record(std::size_t region, std::uint64_t bit,
              StrikeOutcome outcome) noexcept {
    ++counts_[(region * buckets_ + bucket_of(region, bit)) * kOutcomes +
              static_cast<std::size_t>(outcome)];
  }

  std::uint64_t count(std::size_t region, std::size_t bucket,
                      StrikeOutcome outcome) const noexcept {
    return counts_[(region * buckets_ + bucket) * kOutcomes +
                   static_cast<std::size_t>(outcome)];
  }
  /// All outcomes of one cell summed.
  std::uint64_t bucket_strikes(std::size_t region,
                               std::size_t bucket) const noexcept;
  /// One region's outcome totals folded into campaign-counter form.
  CampaignResult region_totals(std::size_t region) const noexcept;
  /// Grid-wide totals; equals the campaign's merged counters when every
  /// strike of the run was recorded.
  CampaignResult totals() const noexcept;

  /// Adds `other`'s cells into this grid. Requires identical geometry
  /// (bucket count and per-region spec). The sharded runners merge in
  /// shard order, so merged grids are jobs-invariant.
  void merge_from(const SensitivityGrid& other);

  /// Deterministic CSV, one row per (region, bucket):
  /// region,label,protection,bucket,first_bit,last_bit,strikes,masked,
  /// dre,due,sdc.
  std::string to_csv() const;

  /// Parses a to_csv() document back into a grid (used by the report
  /// toolchain). Throws ftspm::Error on a malformed document.
  static SensitivityGrid from_csv(std::string_view text);

 private:
  std::vector<RegionSpec> regions_;
  std::uint32_t buckets_ = 0;
  /// Region-major, then bucket, then outcome.
  std::vector<std::uint64_t> counts_;
};

/// Grid builders over the campaign region types. Labels default to
/// "r<index>"; pass `labels` to override (size must match).
SensitivityGrid make_sensitivity_grid(
    const std::vector<InjectionRegion>& regions, std::uint32_t buckets,
    const std::vector<std::string>& labels = {});
SensitivityGrid make_sensitivity_grid(
    const std::vector<RecoveryRegion>& regions, std::uint32_t buckets,
    const std::vector<std::string>& labels = {});

/// Folds a merged grid into the process-wide labelled metrics:
/// "campaign.outcome" counters keyed by {region, ecc, outcome, phase}
/// (zero cells skipped) and a "campaign.bucket_strikes" histogram per
/// {region, ecc, phase} observing every bucket's strike count — its
/// p50/p95/p99 quantify how concentrated the region's exposure is.
/// Coordinator-only, once per campaign, after any shard merge; a pure
/// function of the grid, so snapshots stay jobs-invariant. No-op when
/// observability is disabled or the grid is inactive.
void emit_sensitivity_metrics(const SensitivityGrid& grid,
                              std::string_view phase);

}  // namespace ftspm
