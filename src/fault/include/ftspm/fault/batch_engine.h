// Internal machinery of the batched campaign engines.
//
// PR 8's static-campaign engine (injector_batch.cpp) replaced the
// per-strike FP draw pipeline with exact integer-domain equivalents:
// region picks as compares against precomputed subtract-scan
// breakpoints, Bernoulli trials as compares against ceil(p * 2^53),
// and flip multiplicities as compares against cumulative cutoffs. The
// live-array recovery and temporal campaigns batch their hot loops on
// the same machinery, so the shared pieces live here. Everything in
// ftspm::detail is an implementation detail of the campaign engines —
// not API — but the equivalences are load-bearing: each helper is
// bit-identical to the Rng primitive it replaces (see
// docs/performance.md, "Integer-domain draws", and
// tests/fault/batch_engine_test.cpp).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "ftspm/fault/injector.h"
#include "ftspm/fault/strike_model.h"
#include "ftspm/util/rng.h"

namespace ftspm {
namespace detail {

/// One draw past the largest value next_double() can yield: draw bits
/// (x >> 11) live in [0, 2^53).
inline constexpr std::uint64_t kDrawBitsEnd = std::uint64_t{1} << 53;

/// class_lut value 4: only the real syndrome fold can classify.
inline constexpr std::uint8_t kDeferClass = 4;

/// ceil(p * 2^53), the integer-domain image of a [0, 1] probability:
/// `next_double() < p  <=>  (x >> 11) < ceil(p * 2^53)`. The product
/// is exact (a double times a power of two only shifts the exponent),
/// and an integer is below a real threshold iff below its ceiling, so
/// the raw-bits comparison is bit-identical to the double one while
/// resolving ~10 cycles earlier.
inline std::uint64_t prob_to_draw_bits(double p) noexcept {
  return static_cast<std::uint64_t>(std::ceil(p * 0x1.0p53));
}

/// Rng::next_bool's three arms resolved once per probability: mode 0
/// (p <= 0, always false, no draw), mode 1 (p >= 1, always true, no
/// draw), mode 2 (one draw compared in the draw-bits domain).
struct DrawBernoulli {
  std::uint8_t mode = 1;
  std::uint64_t bits = 0;
};

inline DrawBernoulli make_draw_bernoulli(double p) noexcept {
  DrawBernoulli b;
  b.mode = p <= 0.0 ? std::uint8_t{0} : p >= 1.0 ? std::uint8_t{1}
                                                 : std::uint8_t{2};
  if (b.mode == 2) b.bits = prob_to_draw_bits(p);
  return b;
}

/// Draws (or doesn't) exactly as Rng::next_bool(p) would for the
/// probability `b` was built from.
inline bool draw_bernoulli(Rng& rng, const DrawBernoulli& b) noexcept {
  if (b.mode == 2) return (rng.next_u64() >> 11) < b.bits;
  return b.mode != 0;
}

/// (data, check) masks of one contiguous struck run [lo, hi) within a
/// codeword, branchless: an empty half shifts a zero mask (the & 63
/// keeps the shift defined when the data half is empty; check spans
/// are accumulated in 32 bits).
struct GroupMasks {
  std::uint64_t data;
  std::uint32_t check;
};

inline GroupMasks group_masks(std::uint32_t lo, std::uint32_t hi) noexcept {
  const std::uint32_t lo_d = std::min(lo, RegionGeometry::kDataBitsPerWord);
  const std::uint32_t hi_d = std::min(hi, RegionGeometry::kDataBitsPerWord);
  const std::uint32_t len_d = hi_d - lo_d;
  const std::uint64_t data =
      (len_d >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << len_d) - 1)
      << (lo_d & 63);
  const std::uint32_t lo_c = std::max(lo, RegionGeometry::kDataBitsPerWord) -
                             RegionGeometry::kDataBitsPerWord;
  const std::uint32_t hi_c = std::max(hi, RegionGeometry::kDataBitsPerWord) -
                             RegionGeometry::kDataBitsPerWord;
  const std::uint32_t check = ((1u << (hi_c - lo_c)) - 1) << lo_c;
  return GroupMasks{data, check};
}

/// Recovers Rng::next_discrete's decision boundaries in draw-bits
/// space: pick_bits[k] is the smallest u_bits = x >> 11 whose
/// subtract-scan partial k is non-negative (kDrawBitsEnd when none
/// is), found by per-chunk binary search over the 2^53 draw grid;
/// `fallback` is the scan's underflow fallback (the last positive
/// weight). Pads pick_bits with never-reached sentinels to at least 4
/// entries so pick_region can run a fixed unrolled compare for the
/// common small mixes. Weights must contain at least one positive
/// entry summing to `total` exactly as the caller accumulated it.
void build_pick_bits(const std::vector<double>& weights, double total,
                     std::vector<std::uint64_t>& pick_bits,
                     std::size_t& fallback);

/// The discrete region pick, replicating Rng::next_discrete's
/// subtract-scan (and its underflow fallback) bit for bit via the
/// precomputed draw-bits breakpoints. Branch-free over the table: the
/// partials only decrease down the scan, so the count of
/// draws-at-or-past-breakpoint equals the count of non-negative
/// partials — the scan's answer.
inline std::size_t pick_region(Rng& rng, const std::uint64_t* breaks,
                               std::size_t count,
                               std::size_t fallback) noexcept {
  const std::uint64_t ub = rng.next_u64() >> 11;
  std::size_t idx;
  if (count <= 4) {
    idx = static_cast<std::size_t>(ub >= breaks[0]) +
          static_cast<std::size_t>(ub >= breaks[1]) +
          static_cast<std::size_t>(ub >= breaks[2]) +
          static_cast<std::size_t>(ub >= breaks[3]);
  } else {
    idx = 0;
    for (std::size_t i = 0; i < count; ++i) idx += ub >= breaks[i] ? 1 : 0;
  }
  return idx >= count ? fallback : idx;
}

/// StrikeMultiplicityModel::sample_flips' cumulative cutoffs mapped to
/// the draw-bits domain, associating the sums exactly as sample_flips
/// does (c3 = (p1 + p2) + p3) so every comparison sees the identical
/// double.
struct FlipCutoffs {
  std::uint64_t b1 = 0;
  std::uint64_t b2 = 0;
  std::uint64_t b3 = 0;
};

/// Builds the cutoffs, hoisting the validation sample_flips re-ran per
/// strike (max_flips must fit the >3 tail; cutoffs must be monotone).
FlipCutoffs make_flip_cutoffs(const StrikeMultiplicityModel& strikes,
                              std::uint32_t max_flips);

/// sample_flips inlined draw for draw in the draw-bits domain: the
/// if-chain `u < c1 -> 1, ...` with the branches folded into flag
/// adds; only the rare >3-bit tail still loops, one next_u64 per coin
/// flip exactly as next_bool(0.5) draws.
inline std::uint32_t sample_flips_draw(Rng& rng, const FlipCutoffs& c,
                                       std::uint32_t max_flips) noexcept {
  // next_bool(0.5) of the >3-bit tail: u < 0.5 <=> draw bits < 2^52.
  constexpr std::uint64_t kHalfBits = std::uint64_t{1} << 52;
  const std::uint64_t ub = rng.next_u64() >> 11;
  std::uint32_t flips = 1 + static_cast<std::uint32_t>(ub >= c.b1) +
                        static_cast<std::uint32_t>(ub >= c.b2) +
                        static_cast<std::uint32_t>(ub >= c.b3);
  if (flips == 4)
    while (flips < max_flips && (rng.next_u64() >> 11) < kHalfBits) ++flips;
  return flips;
}

/// Rebuilds the per-region constant table (allocation-free after the
/// first chunk), applying the same validation the per-strike loop ran,
/// and the region-pick breakpoints (build_pick_bits) into `batch`.
void build_region_table(const std::vector<InjectionRegion>& regions,
                        CampaignScratch::Batch& batch);

/// Classifies one strike through the batch engine's fast / straddle /
/// general paths against the region table entry `R`, pushing deferred
/// SEC-DED patterns onto scratch.batch.fold_* under `slot` and
/// returning the inline worst outcome (StrikeOutcome values; deferred
/// words can never resolve to Masked). Burns exactly one next_u64 per
/// struck codeword — the documented RNG contract. The caller owns the
/// ACE-occupancy draw: `R.ace_occupancy` must be 1.0 (no draw taken
/// here), which is how the temporal campaign applies its per-span ACE
/// fractions after classification. Immune regions early-out with no
/// draw at all.
std::uint8_t classify_batch_strike(const BatchRegionInfo& R, Rng& rng,
                                   CampaignScratch& scratch,
                                   std::uint32_t slot, std::uint64_t origin,
                                   std::uint32_t flips);

/// StrikeOutcome (as a raw value) of one deferred SEC-DED word pattern
/// from its folded syndrome and data mask — the verdict
/// classify_pattern reaches one word at a time. Callers max-merge it
/// into the deferring strike's inline worst after a fold_syndromes
/// pass over scratch.batch.fold_*.
std::uint8_t decode_fold_outcome(std::uint8_t syndrome,
                                 std::uint64_t data_mask);

}  // namespace detail
}  // namespace ftspm
