#include "ftspm/fault/strike_model.h"

#include <cmath>

#include "ftspm/util/error.h"

namespace ftspm {

StrikeMultiplicityModel::StrikeMultiplicityModel(double p1, double p2,
                                                 double p3, double p_gt3)
    : p1_(p1), p2_(p2), p3_(p3), p_gt3_(p_gt3) {
  for (double p : {p1, p2, p3, p_gt3})
    FTSPM_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of [0,1]");
  FTSPM_REQUIRE(std::fabs(p1 + p2 + p3 + p_gt3 - 1.0) < 1e-9,
                "multiplicity probabilities must sum to 1");
}

StrikeMultiplicityModel StrikeMultiplicityModel::at_40nm() {
  return StrikeMultiplicityModel(0.62, 0.25, 0.06, 0.07);
}
StrikeMultiplicityModel StrikeMultiplicityModel::at_90nm() {
  return StrikeMultiplicityModel(0.87, 0.09, 0.02, 0.02);
}
StrikeMultiplicityModel StrikeMultiplicityModel::at_65nm() {
  return StrikeMultiplicityModel(0.76, 0.17, 0.04, 0.03);
}
StrikeMultiplicityModel StrikeMultiplicityModel::at_22nm() {
  return StrikeMultiplicityModel(0.52, 0.29, 0.09, 0.10);
}

StrikeMultiplicityModel StrikeMultiplicityModel::for_node(double node_nm) {
  FTSPM_REQUIRE(node_nm > 0.0, "node must be positive");
  if (node_nm >= 78.0) return at_90nm();
  if (node_nm >= 53.0) return at_65nm();
  if (node_nm >= 31.0) return at_40nm();
  return at_22nm();
}

double StrikeMultiplicityModel::p_exactly(unsigned flips) const {
  switch (flips) {
    case 1: return p1_;
    case 2: return p2_;
    case 3: return p3_;
    default:
      throw InvalidArgument("p_exactly is defined for 1..3 flips");
  }
}

double StrikeMultiplicityModel::p_at_least(unsigned flips) const {
  switch (flips) {
    case 1: return 1.0;
    case 2: return p2_ + p3_ + p_gt3_;
    case 3: return p3_ + p_gt3_;
    case 4: return p_gt3_;
    default:
      throw InvalidArgument("p_at_least is defined for 1..4 flips");
  }
}

std::vector<double> StrikeMultiplicityModel::pmf(
    std::uint32_t max_flips) const {
  FTSPM_REQUIRE(max_flips >= 4, "max_flips must allow the >3 tail");
  std::vector<double> p(max_flips + 1, 0.0);
  p[1] = p1_;
  p[2] = p2_;
  p[3] = p3_;
  // Tail: 4 + Geometric(1/2), truncated — the remaining mass collapses
  // onto the cap, exactly as sample_flips realises it.
  double remaining = p_gt3_;
  for (std::uint32_t k = 4; k < max_flips; ++k) {
    p[k] = remaining / 2.0;
    remaining /= 2.0;
  }
  p[max_flips] = remaining;
  return p;
}

std::uint32_t StrikeMultiplicityModel::sample_flips(
    Rng& rng, std::uint32_t max_flips) const {
  FTSPM_REQUIRE(max_flips >= 4, "max_flips must allow the >3 tail");
  const double u = rng.next_double();
  if (u < p1_) return 1;
  if (u < p1_ + p2_) return 2;
  if (u < p1_ + p2_ + p3_) return 3;
  // Tail: 4 + Geometric(1/2), capped.
  std::uint32_t n = 4;
  while (n < max_flips && rng.next_bool(0.5)) ++n;
  return n;
}

}  // namespace ftspm
