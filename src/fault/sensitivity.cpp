#include "ftspm/fault/sensitivity.h"

#include <algorithm>
#include <functional>
#include <limits>

#include "ftspm/mem/technology.h"
#include "ftspm/obs/metrics.h"
#include "ftspm/util/error.h"

namespace ftspm {

namespace {

constexpr std::string_view kCsvHeader =
    "region,label,protection,bucket,first_bit,last_bit,strikes,masked,dre,"
    "due,sdc";

/// First physical bit mapped to `bucket` (the inverse of bucket_of's
/// floor(bit * buckets / bits)). A bucket narrower than one bit comes
/// out with first_bit > last_bit and simply never receives strikes.
std::uint64_t bucket_first_bit(std::uint64_t bucket, std::uint64_t bits,
                               std::uint64_t buckets) {
  return (bucket * bits + buckets - 1) / buckets;
}

}  // namespace

SensitivityGrid::SensitivityGrid(std::vector<RegionSpec> regions,
                                 std::uint32_t buckets)
    : regions_(std::move(regions)), buckets_(buckets) {
  FTSPM_REQUIRE(buckets_ >= 1, "sensitivity grid needs at least one bucket");
  FTSPM_REQUIRE(!regions_.empty(),
                "sensitivity grid needs at least one region");
  for (const RegionSpec& r : regions_) {
    FTSPM_REQUIRE(r.physical_bits != 0,
                  "sensitivity region '" + r.label + "' has no surface");
    FTSPM_REQUIRE(r.physical_bits <=
                      std::numeric_limits<std::uint64_t>::max() / buckets_,
                  "sensitivity bucket math would overflow for region '" +
                      r.label + "'");
  }
  counts_.assign(regions_.size() * buckets_ * kOutcomes, 0);
}

std::uint64_t SensitivityGrid::bucket_strikes(std::size_t region,
                                              std::size_t bucket)
    const noexcept {
  const std::size_t base = (region * buckets_ + bucket) * kOutcomes;
  std::uint64_t total = 0;
  for (std::size_t o = 0; o < kOutcomes; ++o) total += counts_[base + o];
  return total;
}

CampaignResult SensitivityGrid::region_totals(std::size_t region)
    const noexcept {
  CampaignResult r;
  for (std::size_t b = 0; b < buckets_; ++b) {
    r.masked += count(region, b, StrikeOutcome::Masked);
    r.dre += count(region, b, StrikeOutcome::Dre);
    r.due += count(region, b, StrikeOutcome::Due);
    r.sdc += count(region, b, StrikeOutcome::Sdc);
  }
  r.strikes = r.masked + r.dre + r.due + r.sdc;
  return r;
}

CampaignResult SensitivityGrid::totals() const noexcept {
  CampaignResult r;
  for (std::size_t region = 0; region < regions_.size(); ++region) {
    const CampaignResult part = region_totals(region);
    r.strikes += part.strikes;
    r.masked += part.masked;
    r.dre += part.dre;
    r.due += part.due;
    r.sdc += part.sdc;
  }
  return r;
}

void SensitivityGrid::merge_from(const SensitivityGrid& other) {
  FTSPM_REQUIRE(active() && other.active(),
                "cannot merge an inactive sensitivity grid");
  FTSPM_REQUIRE(buckets_ == other.buckets_ &&
                    regions_.size() == other.regions_.size(),
                "sensitivity grids have different geometry");
  for (std::size_t i = 0; i < regions_.size(); ++i)
    FTSPM_REQUIRE(regions_[i].label == other.regions_[i].label &&
                      regions_[i].protection == other.regions_[i].protection &&
                      regions_[i].physical_bits ==
                          other.regions_[i].physical_bits,
                  "sensitivity grids have different regions");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
}

std::string SensitivityGrid::to_csv() const {
  FTSPM_REQUIRE(active(), "cannot serialize an inactive sensitivity grid");
  std::string out(kCsvHeader);
  out += '\n';
  for (std::size_t region = 0; region < regions_.size(); ++region) {
    const RegionSpec& spec = regions_[region];
    for (std::uint64_t b = 0; b < buckets_; ++b) {
      const std::uint64_t first =
          bucket_first_bit(b, spec.physical_bits, buckets_);
      const std::uint64_t next =
          bucket_first_bit(b + 1, spec.physical_bits, buckets_);
      out += std::to_string(region);
      out += ',';
      out += spec.label;
      out += ',';
      out += spec.protection;
      out += ',';
      out += std::to_string(b);
      out += ',';
      out += std::to_string(first);
      out += ',';
      // An empty bucket (grid finer than the surface) renders with
      // last_bit = first_bit - 1.
      out += std::to_string(next == 0 ? 0 : next - 1);
      out += ',';
      out += std::to_string(bucket_strikes(region, b));
      for (const StrikeOutcome o :
           {StrikeOutcome::Masked, StrikeOutcome::Dre, StrikeOutcome::Due,
            StrikeOutcome::Sdc}) {
        out += ',';
        out += std::to_string(count(region, b, o));
      }
      out += '\n';
    }
  }
  return out;
}

SensitivityGrid SensitivityGrid::from_csv(std::string_view text) {
  std::vector<std::string_view> lines;
  while (!text.empty()) {
    const std::size_t eol = text.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? text : text.substr(0, eol);
    text = eol == std::string_view::npos ? std::string_view()
                                         : text.substr(eol + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) lines.push_back(line);
  }
  FTSPM_REQUIRE(!lines.empty() && lines[0] == kCsvHeader,
                "not a sensitivity grid CSV (bad header)");
  FTSPM_REQUIRE(lines.size() >= 2, "sensitivity grid CSV has no rows");

  const auto split = [](std::string_view line) {
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
      const std::size_t comma = line.find(',', start);
      fields.emplace_back(line.substr(
          start, comma == std::string_view::npos ? comma : comma - start));
      if (comma == std::string_view::npos) break;
      start = comma + 1;
    }
    return fields;
  };
  const auto number = [](const std::string& field, const char* what) {
    try {
      std::size_t consumed = 0;
      const unsigned long long v = std::stoull(field, &consumed);
      FTSPM_REQUIRE(consumed == field.size(),
                    std::string("bad ") + what + " '" + field +
                        "' in sensitivity grid CSV");
      return static_cast<std::uint64_t>(v);
    } catch (const Error&) {
      throw;
    } catch (const std::exception&) {
      throw Error(std::string("bad ") + what + " '" + field +
                  "' in sensitivity grid CSV");
    }
  };

  std::vector<RegionSpec> regions;
  std::uint64_t buckets = 0;
  struct Cell {
    std::size_t region;
    std::uint64_t bucket;
    std::uint64_t outcomes[kOutcomes];
  };
  std::vector<Cell> cells;
  cells.reserve(lines.size() - 1);
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::vector<std::string> f = split(lines[i]);
    FTSPM_REQUIRE(f.size() == 11, "sensitivity grid CSV row " +
                                      std::to_string(i) +
                                      " has the wrong field count");
    const std::uint64_t region = number(f[0], "region index");
    const std::uint64_t bucket = number(f[3], "bucket index");
    if (region == regions.size()) {
      FTSPM_REQUIRE(bucket == 0,
                    "sensitivity grid CSV region must start at bucket 0");
      regions.push_back(RegionSpec{f[1], f[2], 0});
    }
    FTSPM_REQUIRE(region + 1 == regions.size(),
                  "sensitivity grid CSV rows must be region-major");
    const std::uint64_t last_bit = number(f[5], "last_bit");
    regions.back().physical_bits =
        std::max(regions.back().physical_bits, last_bit + 1);
    buckets = std::max(buckets, bucket + 1);
    Cell cell{static_cast<std::size_t>(region), bucket, {}};
    const std::uint64_t strikes = number(f[6], "strikes");
    std::uint64_t sum = 0;
    for (std::size_t o = 0; o < kOutcomes; ++o) {
      cell.outcomes[o] = number(f[7 + o], "outcome count");
      sum += cell.outcomes[o];
    }
    FTSPM_REQUIRE(sum == strikes,
                  "sensitivity grid CSV row " + std::to_string(i) +
                      ": outcome counts do not sum to strikes");
    cells.push_back(cell);
  }
  FTSPM_REQUIRE(buckets <= std::numeric_limits<std::uint32_t>::max(),
                "sensitivity grid CSV bucket count out of range");
  SensitivityGrid grid(std::move(regions),
                       static_cast<std::uint32_t>(buckets));
  FTSPM_REQUIRE(cells.size() == grid.region_count() * grid.buckets(),
                "sensitivity grid CSV is missing rows");
  for (const Cell& cell : cells) {
    FTSPM_REQUIRE(cell.bucket < grid.buckets(),
                  "sensitivity grid CSV bucket index out of range");
    const std::size_t base =
        (cell.region * grid.buckets_ + cell.bucket) * kOutcomes;
    for (std::size_t o = 0; o < kOutcomes; ++o)
      grid.counts_[base + o] = cell.outcomes[o];
  }
  return grid;
}

namespace {

std::vector<SensitivityGrid::RegionSpec> make_specs(
    std::size_t count, const std::vector<std::string>& labels,
    const std::function<SensitivityGrid::RegionSpec(std::size_t)>& spec_of) {
  FTSPM_REQUIRE(labels.empty() || labels.size() == count,
                "sensitivity grid label count does not match regions");
  std::vector<SensitivityGrid::RegionSpec> specs;
  specs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    SensitivityGrid::RegionSpec spec = spec_of(i);
    spec.label = labels.empty() ? "r" + std::to_string(i) : labels[i];
    specs.push_back(std::move(spec));
  }
  return specs;
}

}  // namespace

SensitivityGrid make_sensitivity_grid(
    const std::vector<InjectionRegion>& regions, std::uint32_t buckets,
    const std::vector<std::string>& labels) {
  return SensitivityGrid(
      make_specs(regions.size(), labels,
                 [&](std::size_t i) {
                   return SensitivityGrid::RegionSpec{
                       "", to_string(regions[i].protection),
                       regions[i].geometry.physical_bits()};
                 }),
      buckets);
}

SensitivityGrid make_sensitivity_grid(
    const std::vector<RecoveryRegion>& regions, std::uint32_t buckets,
    const std::vector<std::string>& labels) {
  return SensitivityGrid(
      make_specs(regions.size(), labels,
                 [&](std::size_t i) {
                   return SensitivityGrid::RegionSpec{
                       "", to_string(regions[i].inject.protection),
                       regions[i].inject.geometry.physical_bits()};
                 }),
      buckets);
}

void emit_sensitivity_metrics(const SensitivityGrid& grid,
                              std::string_view phase) {
  if (!obs::enabled() || !grid.active()) return;
  obs::Registry& reg = obs::registry();
  // Log-spaced strike-count buckets: wide enough for anything from a
  // smoke test to a billion-strike campaign.
  const std::vector<double> bounds{1.0,    10.0,    100.0,    1000.0,
                                   10000.0, 100000.0, 1000000.0};
  for (std::size_t r = 0; r < grid.region_count(); ++r) {
    const SensitivityGrid::RegionSpec& spec = grid.regions()[r];
    const CampaignResult totals = grid.region_totals(r);
    const std::pair<const char*, std::uint64_t> outcomes[] = {
        {"masked", totals.masked},
        {"dre", totals.dre},
        {"due", totals.due},
        {"sdc", totals.sdc}};
    for (const auto& [outcome, n] : outcomes) {
      if (n == 0) continue;
      reg.counter("campaign.outcome", obs::LabelSet{{"ecc", spec.protection},
                                                    {"outcome", outcome},
                                                    {"phase", phase},
                                                    {"region", spec.label}})
          .add(n);
    }
    obs::Histogram& concentration = reg.histogram(
        "campaign.bucket_strikes",
        obs::LabelSet{
            {"ecc", spec.protection}, {"phase", phase}, {"region", spec.label}},
        bounds);
    for (std::size_t b = 0; b < grid.buckets(); ++b)
      concentration.observe(
          static_cast<double>(grid.bucket_strikes(r, b)));
  }
}

}  // namespace ftspm
