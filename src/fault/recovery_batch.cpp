// Batched hot loop of the live-array recovery campaign.
//
// run_chunk_reference (recovery.cpp) spends its time in per-strike FP
// draws (next_discrete's subtract-scan, next_bool conversions), a
// locate_strike_bit divide per flipped bit, and one classify_pattern
// call per decoded word. This file replays the identical campaign on
// the batch engine (batch_engine.h):
//
//  * aim draws become integer compares against per-chunk tables —
//    region-pick breakpoints, Bernoulli thresholds, flip cutoffs — each
//    bit-identical to the Rng primitive it replaces;
//  * an uninterleaved strike deposits its flips as one or two XOR
//    masks (group_masks) instead of bit-by-bit locate calls, and the
//    struck words come out ascending and unique for free;
//  * demand decodes gather the touched words' error patterns
//    (data ^ truth, check ^ truth_check) into a small SoA and resolve
//    them through the batched codec entry points
//    (SecDedCodec::fold_syndromes / ParityCodec::fold_parity) plus the
//    syndrome LUT, instead of per-word classify_pattern calls;
//  * a scrub sweep is a contiguous fold over each region's mask pair
//    building a dirty-word bitmap — the overwhelmingly-clean words exit
//    through an auto-vectorized compare, and only set bits are gathered
//    for the batched classify.
//
// Equivalence contract: counters, images, grids, observer calls, and
// the RNG stream match run_chunk_reference bit for bit, for every
// chunk schedule. The draw schedule per strike is pick, origin,
// multiplicity, then per struck word (ascending) one ACE Bernoulli,
// then (only inside a detected-uncorrectable repair) one dirty-
// fraction Bernoulli; classification itself never draws. Precomputing
// every touched word's error pattern before the ACE walk is safe
// because resolving word w only ever rewrites word w. The floating-
// point energy accumulator sees the same additions in the same order
// (bulk scrub costs first, then per-word events in word order), so
// even recovery_energy_pj is bit-identical. Pinned by
// tests/fault/batch_engine_test.cpp and the CampaignGolden suite.
#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "ftspm/ecc/parity_codec.h"
#include "ftspm/ecc/secded_codec.h"
#include "ftspm/fault/batch_engine.h"
#include "ftspm/fault/campaign_observer.h"
#include "ftspm/fault/recovery.h"
#include "ftspm/fault/sensitivity.h"
#include "ftspm/util/bitops.h"
#include "ftspm/util/error.h"

namespace ftspm {

/// Per-chunk constants of the batched engine: every scalar resolve_word
/// re-derived per word, hoisted to one cache-friendly row per region,
/// with the draw probabilities pre-resolved into next_bool's three arms
/// (DrawBernoulli) and the repair costs pre-multiplied.
struct LiveArrayCampaign::BatchTables {
  struct Region {
    std::uint64_t physical_bits = 0;
    std::uint64_t words = 0;
    std::uint32_t codeword_bits = 0;
    std::uint32_t interleave = 1;
    std::uint64_t group_bits = 0;
    FastDiv64 div_codeword;    ///< by codeword_bits (interleave == 1).
    FastDiv64 div_group;       ///< by group_bits (interleave > 1).
    FastDiv64 div_interleave;  ///< by interleave (interleave > 1).
    ProtectionKind protection = ProtectionKind::None;
    bool has_check = false;
    bool scrub = false;
    detail::DrawBernoulli ace;    ///< inject.ace_occupancy.
    detail::DrawBernoulli dirty;  ///< dirty_fraction (DUE escalation).
    std::uint32_t write_latency = 0;
    double write_energy = 0.0;
    /// Bulk per-sweep read cost of this region (words * per-read).
    std::uint64_t scrub_read_cycles = 0;
    double scrub_read_energy = 0.0;
    /// One DMA re-fetch, exactly as handle_due books it.
    std::uint64_t refetch_cycles = 0;
    double refetch_energy = 0.0;
  };
  std::vector<Region> regions;
  std::vector<std::uint64_t> pick_bits;
  std::size_t pick_fallback = 0;
  detail::FlipCutoffs cuts;
};

namespace {

/// write_back_word(protection, image, w, image.truth[w]) without the
/// re-encode: truth_check caches the clean encoding's check bits
/// (recovery.h), so restoring a word to its ground truth is two stores.
/// Unchecked regions have no check array (write_back_word leaves it
/// alone for None too).
inline void restore_clean(ProtectionKind protection, RegionImage& image,
                          std::uint64_t word) {
  image.data[word] = image.truth[word];
  if (protection != ProtectionKind::None)
    image.check[word] = image.truth_check[word];
}

/// One-time process-wide proof of the popcount shortcuts the demand
/// walk takes for SEC-DED patterns: the Hsiao code is distance 4, so
/// every 1-bit pattern decodes back to the clean codeword (residual
/// zero — a data flip is corrected in place, a check flip leaves the
/// data intact) and every 2-bit pattern raises the detected flag.
/// Checked exhaustively against the real decoder rather than assumed,
/// mirroring how the static engine derives its popcount class LUT.
bool verify_secded_popcount_shortcuts() {
  const auto pattern = [](std::uint32_t bit, std::uint64_t& dm,
                          std::uint8_t& cm) {
    if (bit < SecDedCodec::kDataBits) {
      dm |= std::uint64_t{1} << bit;
    } else {
      cm = static_cast<std::uint8_t>(
          cm | (1u << (bit - SecDedCodec::kDataBits)));
    }
  };
  for (std::uint32_t a = 0; a < SecDedCodec::kCodewordBits; ++a) {
    std::uint64_t dm = 0;
    std::uint8_t cm = 0;
    pattern(a, dm, cm);
    const PatternDecode one = SecDedCodec::classify_pattern(dm, cm);
    FTSPM_REQUIRE(one.status == DecodeStatus::Corrected &&
                      (dm ^ one.correction_mask) == 0,
                  "SEC-DED 1-bit pattern must decode to the clean word");
    for (std::uint32_t b = a + 1; b < SecDedCodec::kCodewordBits; ++b) {
      std::uint64_t dm2 = dm;
      std::uint8_t cm2 = cm;
      pattern(b, dm2, cm2);
      FTSPM_REQUIRE(
          SecDedCodec::classify_pattern(dm2, cm2).status ==
              DecodeStatus::Detected,
          "SEC-DED 2-bit pattern must be detected");
    }
  }
  return true;
}

}  // namespace

void LiveArrayCampaign::build_batch_tables(BatchTables& tables,
                                           std::uint32_t max_flips) const {
  tables.regions.clear();
  tables.regions.reserve(regions_.size());
  for (const RecoveryRegion& r : regions_) {
    const RegionGeometry& g = r.inject.geometry;
    BatchTables::Region b;
    b.physical_bits = g.physical_bits();
    b.words = g.words();
    b.codeword_bits = g.codeword_bits();
    b.interleave = r.inject.interleave;
    b.group_bits = static_cast<std::uint64_t>(b.codeword_bits) * b.interleave;
    b.div_codeword = FastDiv64(b.codeword_bits, b.physical_bits);
    if (b.interleave > 1) {
      b.div_group = FastDiv64(b.group_bits, b.physical_bits);
      b.div_interleave = FastDiv64(b.interleave, b.group_bits);
    }
    b.protection = r.inject.protection;
    b.has_check = g.check_bits_per_word() != 0;
    b.scrub = r.scrub;
    b.ace = detail::make_draw_bernoulli(r.inject.ace_occupancy);
    b.dirty = detail::make_draw_bernoulli(r.dirty_fraction);
    b.write_latency = r.tech.write_latency_cycles;
    b.write_energy = r.tech.write_energy_pj;
    b.scrub_read_cycles = b.words * r.tech.read_latency_cycles;
    b.scrub_read_energy =
        static_cast<double>(b.words) * r.tech.read_energy_pj;
    const std::uint64_t refetch_words =
        std::max<std::uint64_t>(1, r.refetch_words);
    const std::uint64_t per_word = std::max<std::uint32_t>(
        policy_.dma_word_cycles, r.tech.write_latency_cycles);
    b.refetch_cycles = policy_.dma_setup_cycles + policy_.dma_line_cycles +
                       refetch_words * per_word;
    b.refetch_energy =
        static_cast<double>(refetch_words) *
        (policy_.dram_read_energy_pj + r.tech.write_energy_pj);
    tables.regions.push_back(b);
  }
  // next_discrete accumulated the total left to right on every strike;
  // the breakpoints must see the identical sum.
  double total = 0.0;
  for (const double w : weights_) total += w;
  detail::build_pick_bits(weights_, total, tables.pick_bits,
                          tables.pick_fallback);
  tables.cuts = detail::make_flip_cutoffs(strikes_, max_flips);
}

void LiveArrayCampaign::scrub_sweep_batched(RecoveryShardSide& side, Rng& rng,
                                            const BatchTables& tables) const {
  ++side.counters.scrub_passes;
  for (std::size_t ri = 0; ri < tables.regions.size(); ++ri) {
    const BatchTables::Region& R = tables.regions[ri];
    if (!R.scrub) continue;
    side.counters.scrub_words += R.words;
    side.counters.recovery_cycles += R.scrub_read_cycles;
    side.counters.recovery_energy_pj += R.scrub_read_energy;
    // Immune arrays are swept as a retention refresh (cost only);
    // unchecked arrays cannot surface an error to the scrubber at all —
    // the reference resolve_word returns Clean for every word of both,
    // touching neither counters nor the RNG.
    if (R.protection == ProtectionKind::Immune ||
        R.protection == ProtectionKind::None)
      continue;

    RegionImage& image = side.images[ri];
    const std::uint64_t words = R.words;
    const std::uint64_t* const data = image.data.data();
    const std::uint64_t* const truth = image.truth.data();
    const std::uint8_t* const check = image.check.data();
    const std::uint8_t* const truth_check = image.truth_check.data();

    // Contiguous fold: one pass marks the (rare) dirty words in a
    // bitmap; the clean bulk costs two loads and a compare per word.
    const std::size_t bitmap_words =
        static_cast<std::size_t>((words + 63) / 64);
    side.batch_bitmap.resize(bitmap_words);
    std::uint64_t* const bitmap = side.batch_bitmap.data();
    for (std::size_t bw = 0; bw < bitmap_words; ++bw) {
      // 64 words per bitmap entry, accumulated in a register so the
      // clean bulk is a pure load-compare-shift stream.
      const std::uint64_t lo = static_cast<std::uint64_t>(bw) << 6;
      const std::uint64_t hi = std::min<std::uint64_t>(words, lo + 64);
      std::uint64_t bits = 0;
      for (std::uint64_t w = lo; w < hi; ++w) {
        const std::uint64_t nz =
            (data[w] ^ truth[w]) |
            static_cast<std::uint64_t>(
                static_cast<std::uint8_t>(check[w] ^ truth_check[w]));
        bits |= static_cast<std::uint64_t>(nz != 0) << (w & 63);
      }
      bitmap[bw] = bits;
    }

    // Gather the dirty words (ascending, like the reference sweep) into
    // the SoA the batched classify consumes.
    side.batch_words.clear();
    side.batch_data.clear();
    side.batch_check.clear();
    for (std::size_t bw = 0; bw < bitmap_words; ++bw) {
      std::uint64_t bits = bitmap[bw];
      while (bits != 0) {
        const std::uint64_t w =
            (static_cast<std::uint64_t>(bw) << 6) +
            static_cast<std::uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
        side.batch_words.push_back(w);
        side.batch_data.push_back(data[w] ^ truth[w]);
        side.batch_check.push_back(
            static_cast<std::uint8_t>(check[w] ^ truth_check[w]));
      }
    }
    const std::size_t n = side.batch_words.size();
    if (n == 0) continue;
    side.batch_syndrome.resize(n);

    // The scrub engine always repairs (reference: repairs = true), so
    // the per-status actions below are resolve_word's scrub arms
    // verbatim. Only a detected-uncorrectable word draws.
    if (R.protection == ProtectionKind::SecDed) {
      SecDedCodec::fold_syndromes(side.batch_data.data(),
                                  side.batch_check.data(), n,
                                  side.batch_syndrome.data());
      const auto& table = SecDedCodec::syndrome_table();
      for (std::size_t i = 0; i < n; ++i) {
        const SecDedCodec::SyndromeDecode& sd =
            table[side.batch_syndrome[i]];
        const std::uint64_t w = side.batch_words[i];
        switch (sd.status) {
          case DecodeStatus::Clean:
            break;  // aliased to a valid codeword: latent to a scrub
          case DecodeStatus::Corrected: {
            const std::uint64_t residual =
                side.batch_data[i] ^ sd.correction_mask;
            if (residual == 0) {
              // Right correction: the decoder rewrote the clean
              // encoding, which truth/truth_check already hold.
              restore_clean(R.protection, image, w);
              ++side.counters.scrub_corrections;
            } else {
              // Miscorrection: self-consistent wrong data. The codec is
              // linear, so the re-encoded check bits are the cached
              // clean ones XOR the residual's check image.
              image.data[w] = image.truth[w] ^ residual;
              image.check[w] = static_cast<std::uint8_t>(
                  image.truth_check[w] ^ SecDedCodec::compute_check(residual));
            }
            side.counters.recovery_cycles += R.write_latency;
            side.counters.recovery_energy_pj += R.write_energy;
            break;
          }
          case DecodeStatus::Detected: {
            restore_clean(R.protection, image, w);
            if (detail::draw_bernoulli(rng, R.dirty)) {
              ++side.counters.unrecoverable;
            } else {
              ++side.counters.refetches;
              side.counters.recovery_cycles += R.refetch_cycles;
              side.counters.recovery_energy_pj += R.refetch_energy;
            }
            break;
          }
        }
      }
    } else {  // Parity
      ParityCodec::fold_parity(side.batch_data.data(),
                               side.batch_check.data(), n,
                               side.batch_syndrome.data());
      for (std::size_t i = 0; i < n; ++i) {
        // Even-flip aliases (zero syndrome) are invisible to the code:
        // latent, exactly like the reference.
        if (side.batch_syndrome[i] == 0) continue;
        const std::uint64_t w = side.batch_words[i];
        restore_clean(R.protection, image, w);
        if (detail::draw_bernoulli(rng, R.dirty)) {
          ++side.counters.unrecoverable;
        } else {
          ++side.counters.refetches;
          side.counters.recovery_cycles += R.refetch_cycles;
          side.counters.recovery_energy_pj += R.refetch_energy;
        }
      }
    }
  }
}

void LiveArrayCampaign::run_chunk(const CampaignConfig& config,
                                  CampaignShardState& core,
                                  RecoveryShardSide& side,
                                  std::uint64_t max_strikes,
                                  CampaignObserver* observer,
                                  SensitivityGrid* grid) const {
  FTSPM_REQUIRE(side.initialized,
                "ensure_shard_images must run before run_chunk");
  const auto outcome_of = [](WordRepair repair) {
    switch (repair) {
      case WordRepair::Clean: return StrikeOutcome::Masked;
      case WordRepair::Corrected: return StrikeOutcome::Dre;
      case WordRepair::Refetched: return StrikeOutcome::Dre;
      case WordRepair::Detected: return StrikeOutcome::Due;
      case WordRepair::Unrecoverable: return StrikeOutcome::Due;
      case WordRepair::Silent: return StrikeOutcome::Sdc;
    }
    return StrikeOutcome::Masked;
  };

  const std::uint64_t end = std::min(config.strikes, core.done + max_strikes);
  if (end <= core.done) {
    core.done = end;
    return;
  }

  // An inert observer's on_strike is a no-op per strike; skip the calls
  // outright (same block-level check the static batch engine makes).
  if (observer != nullptr && !observer->active()) observer = nullptr;

  // Process-wide, once: prove the distance-4 popcount shortcuts the
  // demand walk takes against the real decoder before relying on them.
  static const bool secded_shortcuts_proven =
      verify_secded_popcount_shortcuts();
  (void)secded_shortcuts_proven;

  BatchTables tables;
  build_batch_tables(tables, config.max_flips);
  const BatchTables::Region* const region_table = tables.regions.data();
  const std::uint64_t* const pick_breaks = tables.pick_bits.data();
  const std::size_t region_count = tables.regions.size();
  const std::size_t pick_fallback = tables.pick_fallback;
  const detail::FlipCutoffs cuts = tables.cuts;

  // The generator runs as a stack copy, written back once per chunk.
  Rng rng = core.rng;
  std::vector<std::uint64_t>& touched = side.touched;
  RecoveryCounters& counters = side.counters;

  // Scrub cadence as a countdown, sparing the per-strike modulo.
  const std::uint64_t interval = policy_.scrub_interval;
  std::uint64_t until_scrub =
      interval != 0 ? interval - core.done % interval : 0;

  // Outcomes tally into a branchless local array (indexed by the enum's
  // 0..3 values), flushed into core.partial once per chunk — the same
  // integer additions the per-strike switch performed, reordered.
  std::uint64_t tallies[4] = {0, 0, 0, 0};

  for (std::uint64_t s = core.done; s < end; ++s) {
    // Aim draws in the reference order: region, origin, multiplicity.
    const std::size_t ri =
        detail::pick_region(rng, pick_breaks, region_count, pick_fallback);
    const BatchTables::Region& R = region_table[ri];
    const std::uint64_t origin = rng.next_below(R.physical_bits);
    const std::uint32_t flips =
        detail::sample_flips_draw(rng, cuts, config.max_flips);

    StrikeOutcome outcome = StrikeOutcome::Masked;
    if (R.protection != ProtectionKind::Immune) {
      RegionImage& image = side.images[ri];
      touched.clear();
      const std::uint64_t m =
          std::min<std::uint64_t>(flips, R.physical_bits - origin);
      if (R.interleave == 1) {
        // Contiguous flips split into per-codeword runs: one XOR mask
        // pair per struck word, words ascending and unique by
        // construction (matching the reference's sort + unique).
        std::uint64_t word = R.div_codeword.divide(origin);
        auto bit = static_cast<std::uint32_t>(origin - word * R.codeword_bits);
        std::uint64_t remaining = m;
        while (remaining > 0) {
          const auto len = static_cast<std::uint32_t>(
              std::min<std::uint64_t>(R.codeword_bits - bit, remaining));
          const detail::GroupMasks gm = detail::group_masks(bit, bit + len);
          image.data[word] ^= gm.data;
          if (gm.check != 0)
            image.check[word] =
                static_cast<std::uint8_t>(image.check[word] ^ gm.check);
          touched.push_back(word);
          ++word;
          bit = 0;
          remaining -= len;
        }
      } else {
        // Interleaved: each flip lands in its own codeword via the
        // magic-multiply form of locate_strike_bit's arithmetic.
        for (std::uint64_t k = 0; k < m; ++k) {
          const std::uint64_t index = origin + k;
          const std::uint64_t group = R.div_group.divide(index);
          const std::uint64_t within = index - group * R.group_bits;
          const std::uint64_t cw_bit = R.div_interleave.divide(within);
          const std::uint64_t lane = within - cw_bit * R.interleave;
          const std::uint64_t word = group * R.interleave + lane;
          if (word >= R.words) continue;  // partial final group
          if (cw_bit < RegionGeometry::kDataBitsPerWord) {
            image.data[word] ^= std::uint64_t{1} << cw_bit;
          } else {
            image.check[word] = static_cast<std::uint8_t>(
                image.check[word] ^
                (1u << (cw_bit - RegionGeometry::kDataBitsPerWord)));
          }
          touched.push_back(word);
        }
        std::sort(touched.begin(), touched.end());
        touched.erase(std::unique(touched.begin(), touched.end()),
                      touched.end());
      }

      // Demand walk. ace mode 0 (occupancy <= 0) skips every word with
      // no draw in the reference too — the flips stay latent either
      // way. Otherwise resolve the touched words through the batched
      // codec entry points. The gather + fold is deferred until the
      // first word that survives its ACE draw: classification is
      // draw-free and resolving word w only rewrites word w, so folding
      // all n patterns at the first kept word sees exactly the masks an
      // eager fold would have — and a strike whose every touched word
      // misses the ACE window (the common case at low occupancy) never
      // touches the codec at all.
      if (!touched.empty() && R.ace.mode != 0) {
        const std::size_t n = touched.size();
        if (side.batch_data.size() < n) {
          side.batch_data.resize(n);
          side.batch_check.resize(n);
          side.batch_syndrome.resize(n);
        }
        bool masks_ready = false;
        bool syndromes_ready = false;
        // Fold every gathered pattern in one batched codec call, run
        // only when a kept word actually needs its syndrome — patterns
        // of <= 2 surviving bits resolve through the distance-4
        // popcount shortcuts below, so most strikes never fold at all.
        const auto ensure_syndromes = [&]() {
          if (syndromes_ready) return;
          syndromes_ready = true;
          if (R.protection == ProtectionKind::SecDed) {
            // Syndromes are backend-invariant, and below a vector's
            // width of words the SIMD entry's setup outweighs its
            // throughput; a demand batch is almost always 1-2 words.
            if (n >= 8) {
              SecDedCodec::fold_syndromes(side.batch_data.data(),
                                          side.batch_check.data(), n,
                                          side.batch_syndrome.data());
            } else {
              SecDedCodec::fold_syndromes_scalar(side.batch_data.data(),
                                                 side.batch_check.data(), n,
                                                 side.batch_syndrome.data());
            }
          } else {
            ParityCodec::fold_parity(side.batch_data.data(),
                                     side.batch_check.data(), n,
                                     side.batch_syndrome.data());
          }
        };

        for (std::size_t i = 0; i < n; ++i) {
          if (!detail::draw_bernoulli(rng, R.ace)) continue;
          if (!masks_ready) {
            masks_ready = true;
            for (std::size_t j = 0; j < n; ++j) {
              const std::uint64_t w = touched[j];
              side.batch_data[j] = image.data[w] ^ image.truth[w];
              side.batch_check[j] =
                  R.has_check ? static_cast<std::uint8_t>(
                                    image.check[w] ^ image.truth_check[w])
                              : std::uint8_t{0};
            }
          }
          ++counters.demand_reads;
          const std::uint64_t w = touched[i];
          const std::uint64_t data_mask = side.batch_data[i];
          const std::uint8_t check_mask = side.batch_check[i];

          // A detected-uncorrectable word is restored to its truth
          // either way; with repair on, the re-fetch is booked (or
          // dirty data escalates) — resolve_word's handle_due verbatim.
          const auto handle_due = [&]() {
            restore_clean(R.protection, image, w);
            if (!policy_.recover) return WordRepair::Detected;
            if (detail::draw_bernoulli(rng, R.dirty)) {
              ++counters.unrecoverable;
              return WordRepair::Unrecoverable;
            }
            ++counters.refetches;
            counters.recovery_cycles += R.refetch_cycles;
            counters.recovery_energy_pj += R.refetch_energy;
            return WordRepair::Refetched;
          };

          WordRepair repair = WordRepair::Clean;
          if (R.protection == ProtectionKind::None) {
            // Unchecked words never see their check-half geometry (the
            // reference compares data alone); corruption is consumed.
            if (data_mask != 0) {
              ++counters.sdc_reads;
              image.truth[w] = image.data[w];
              repair = WordRepair::Silent;
            }
          } else if ((data_mask |
                      static_cast<std::uint64_t>(check_mask)) == 0) {
            repair = WordRepair::Clean;
          } else if (R.protection == ProtectionKind::Parity) {
            ensure_syndromes();
            if (side.batch_syndrome[i] != 0) {
              repair = handle_due();
            } else {
              // Even-flip alias consumed: the new truth's parity is the
              // cached clean parity folded with the residual's (the
              // code is linear).
              ++counters.sdc_reads;
              image.truth[w] ^= data_mask;
              image.truth_check[w] = static_cast<std::uint8_t>(
                  image.truth_check[w] ^ parity64(data_mask));
              repair = WordRepair::Silent;
            }
          } else if (int pc = std::popcount(data_mask) +
                              std::popcount(static_cast<unsigned>(check_mask));
                     pc <= 2) {  // SecDed, distance-4 shortcuts
            if (pc == 1) {
              // A single surviving flip decodes straight back to the
              // clean word (verify_secded_popcount_shortcuts) — the
              // Corrected / residual == 0 arm of the syndrome walk.
              if (policy_.recover) {
                restore_clean(R.protection, image, w);
                counters.recovery_cycles += R.write_latency;
                counters.recovery_energy_pj += R.write_energy;
                ++counters.corrections;
              }
              repair = WordRepair::Corrected;
            } else {
              // Every 2-bit pattern raises the detected flag (ditto).
              repair = handle_due();
            }
          } else {  // SecDed, >= 3 surviving bits: real syndrome
            ensure_syndromes();
            const SecDedCodec::SyndromeDecode& sd =
                SecDedCodec::syndrome_table()[side.batch_syndrome[i]];
            switch (sd.status) {
              case DecodeStatus::Clean:
                // Aliased to a valid codeword of the wrong data: the
                // residual is the data mask itself, and its check image
                // folds into the cached truth_check (linearity).
                ++counters.sdc_reads;
                image.truth[w] ^= data_mask;
                image.truth_check[w] = static_cast<std::uint8_t>(
                    image.truth_check[w] ^
                    SecDedCodec::compute_check(data_mask));
                repair = WordRepair::Silent;
                break;
              case DecodeStatus::Corrected: {
                const std::uint64_t residual =
                    data_mask ^ sd.correction_mask;
                if (residual == 0) {
                  // Right correction: the decoder rewrote the clean
                  // encoding truth/truth_check already hold.
                  if (policy_.recover) {
                    restore_clean(R.protection, image, w);
                    counters.recovery_cycles += R.write_latency;
                    counters.recovery_energy_pj += R.write_energy;
                    ++counters.corrections;
                  }
                  repair = WordRepair::Corrected;
                } else {
                  // Miscorrection, then consumed: decoded becomes both
                  // the stored word (when repairing) and the new truth,
                  // so one linear re-encode serves both.
                  const std::uint64_t decoded = image.truth[w] ^ residual;
                  const std::uint8_t decoded_check =
                      static_cast<std::uint8_t>(
                          image.truth_check[w] ^
                          SecDedCodec::compute_check(residual));
                  if (policy_.recover) {
                    image.data[w] = decoded;
                    image.check[w] = decoded_check;
                    counters.recovery_cycles += R.write_latency;
                    counters.recovery_energy_pj += R.write_energy;
                  }
                  ++counters.sdc_reads;
                  image.truth[w] = decoded;
                  image.truth_check[w] = decoded_check;
                  repair = WordRepair::Silent;
                }
                break;
              }
              case DecodeStatus::Detected:
                repair = handle_due();
                break;
            }
          }
          outcome = std::max(outcome, outcome_of(repair));
        }
      }
    }

    ++tallies[static_cast<std::size_t>(outcome)];
    if (observer != nullptr) observer->on_strike(s, outcome);
    if (grid != nullptr) grid->record(ri, origin, outcome);

    if (interval != 0 && --until_scrub == 0) {
      until_scrub = interval;
      scrub_sweep_batched(side, rng, tables);
      // Scrub cadence is a pure function of the strike index, so this
      // record is deterministic (see run_chunk_reference).
      if (obs::EventLog* events = obs::current_event_log())
        events->emit(
            "scrub_pass", s + 1,
            {obs::TraceArg::num("passes", side.counters.scrub_passes),
             obs::TraceArg::num("scrub_words", side.counters.scrub_words),
             obs::TraceArg::num("scrub_corrections",
                                side.counters.scrub_corrections)});
    }
  }
  core.partial.strikes += end - core.done;
  core.partial.masked += tallies[static_cast<std::size_t>(StrikeOutcome::Masked)];
  core.partial.dre += tallies[static_cast<std::size_t>(StrikeOutcome::Dre)];
  core.partial.due += tallies[static_cast<std::size_t>(StrikeOutcome::Due)];
  core.partial.sdc += tallies[static_cast<std::size_t>(StrikeOutcome::Sdc)];
  core.rng = rng;
  core.done = end;
}

}  // namespace ftspm
