// Batched structure-of-arrays campaign engine (run_campaign_chunk).
//
// The per-strike loop this replaces (PR 4's syndrome kernel driving one
// strike at a time) spent most of its cycles on per-strike call and
// branch overhead: re-validated weight tables, hardware divides for the
// aim arithmetic, a generic per-word classify call, and observer/grid
// virtual-ish hops for every strike. This engine processes strikes in
// blocks of CampaignScratch::Batch::width:
//
//  stage 1 — sequential generation + LUT classification. Each slot
//      draws its region, origin, and flip count from the shard RNG in
//      EXACTLY the documented per-strike order (docs/performance.md),
//      aims the flips with precomputed magic-multiply dividers, and
//      classifies via the 8-entry (min(popcount, 3), parity) region
//      LUT. A single-group strike flips a contiguous run of bits, so
//      its pattern weight IS the run length: the common case needs no
//      mask materialization, no popcount — one table byte indexed by
//      the group length. Masks are built only for the ~2% of SEC-DED
//      patterns parked in the fold arrays, and for the rare shapes
//      handled out of line (codeword straddles, interleaved aim,
//      exotic check-bit geometries). The ACE-occupancy draw also
//      happens here, keeping the stream position exact; a fast-path
//      strike is never Masked pre-ACE (>= 1 surviving bit always
//      corrupts or trips a check, and deferred patterns can never fold
//      clean), so the draw predicate needs no classify result.
//  stage 2 — batched syndrome fold. One SecDedCodec::fold_syndromes
//      call resolves every deferred pattern of the block (SIMD where
//      available), and the 256-entry syndrome LUT merges each word's
//      outcome back into its strike.
//  stage 3 — ACE filtering, bulk counter tally, and the observer /
//      sensitivity-grid sweeps.
//
// When nothing consumes per-strike state — observer inactive, no
// sensitivity grid — the chunk runs in TIGHT mode: outcomes tally
// straight into register counters inside stage 1 and the per-slot SoA
// stores disappear entirely; deferred strikes carry their inline worst
// and ACE keep alongside the fold entries so the post-fold tally can
// finish them without slot arrays. Both modes draw and count
// identically; tight mode just skips materializing state nobody reads.
//
// The draw-domain primitives (integer-image Bernoulli/discrete picks,
// flip cutoffs, the region table build) live in
// ftspm/fault/batch_engine.h and are shared with the batched recovery
// and temporal engines (recovery_batch.cpp, system_campaign.cpp); the
// non-trivial ones are defined at the bottom of this file.
//
// Equivalence contract: identical counters, grids, observer calls, and
// RNG stream position to the old per-strike loop for every
// (regions, strikes, config, chunking) — pinned by
// tests/fault/batch_engine_test.cpp against classify_strike and by
// tests/integration/campaign_golden_test.cpp end to end.
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <utility>

#include "ftspm/ecc/secded_codec.h"
#include "ftspm/fault/batch_engine.h"
#include "ftspm/fault/campaign_observer.h"
#include "ftspm/fault/injector.h"
#include "ftspm/fault/sensitivity.h"
#include "ftspm/util/bitops.h"
#include "ftspm/util/error.h"

namespace ftspm {

using detail::group_masks;
using detail::GroupMasks;
using detail::kDeferClass;
using detail::kDrawBitsEnd;
using detail::pick_region;
using detail::prob_to_draw_bits;

namespace {

/// Mask of data-word bits [lo, hi), hi <= 64, lo < hi.
inline std::uint64_t range_mask64(std::uint32_t lo, std::uint32_t hi) {
  const std::uint32_t len = hi - lo;
  return (len >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << len) - 1) << lo;
}

/// Mask of check bits [lo, hi) (0-based above the data word), hi - lo
/// <= 32 — check_mask has always been accumulated in 32 bits.
inline std::uint32_t range_mask32(std::uint32_t lo, std::uint32_t hi) {
  const std::uint32_t len = hi - lo;
  return (len >= 32 ? ~0u : (1u << len) - 1) << lo;
}

/// Whether (protection, geometry) qualifies for the LUT classify path:
/// every word pattern's outcome must be a function of
/// (min(popcount, 3), parity) alone.
///  * None with <= 8 check bits: >= 1 surviving bit is always Sdc, and
///    the 8-bit popcount sees every check bit.
///  * Parity with <= 1 check bit: the syndrome IS the pattern parity,
///    odd -> Due, even (>= 1 bit, which then includes a data bit) ->
///    Sdc. Extra check bits would alias flips the parity check cannot
///    see (b = 2 with even parity can then be either Masked or Sdc).
///  * SEC-DED with <= 8 check bits: the uint8 check cast is faithful,
///    so 1 bit corrects, 2 bits detect, >= 3 defer to the fold.
bool lut_classifiable(ProtectionKind protection, std::uint32_t check_bits) {
  switch (protection) {
    case ProtectionKind::None: return check_bits <= 8;
    case ProtectionKind::Parity: return check_bits <= 1;
    case ProtectionKind::SecDed: return check_bits <= 8;
    default: return false;
  }
}

void build_class_lut(ProtectionKind protection, std::uint8_t (&lut)[8]) {
  for (std::uint32_t b = 0; b < 4; ++b) {
    for (std::uint32_t syn = 0; syn < 2; ++syn) {
      std::uint8_t cls = static_cast<std::uint8_t>(StrikeOutcome::Masked);
      if (protection == ProtectionKind::None) {
        cls = static_cast<std::uint8_t>(b == 0 ? StrikeOutcome::Masked
                                               : StrikeOutcome::Sdc);
      } else if (protection == ProtectionKind::Parity) {
        // b == 0 is unreachable (a group has >= 1 bit); odd parity
        // trips the check, even parity with bits present corrupts.
        cls = static_cast<std::uint8_t>(
            syn != 0 ? StrikeOutcome::Due
                     : (b == 0 ? StrikeOutcome::Masked : StrikeOutcome::Sdc));
      } else if (protection == ProtectionKind::SecDed) {
        cls = b == 0   ? static_cast<std::uint8_t>(StrikeOutcome::Masked)
              : b == 1 ? static_cast<std::uint8_t>(StrikeOutcome::Dre)
              : b == 2 ? static_cast<std::uint8_t>(StrikeOutcome::Due)
                       : kDeferClass;
      }
      lut[b * 2 + syn] = cls;
    }
  }
}

/// StrikeOutcome of one folded SEC-DED word, decoded from its batched
/// syndrome — the same verdict classify_pattern reaches one word at a
/// time.
inline std::uint8_t decode_fold_outcome(const SecDedCodec::SyndromeDecode& d,
                                        std::uint64_t data_mask) {
  switch (d.status) {
    case DecodeStatus::Detected:
      return static_cast<std::uint8_t>(StrikeOutcome::Due);
    case DecodeStatus::Corrected:
      return static_cast<std::uint8_t>(data_mask == d.correction_mask
                                           ? StrikeOutcome::Dre
                                           : StrikeOutcome::Sdc);
    case DecodeStatus::Clean:
    default:
      return static_cast<std::uint8_t>(data_mask != 0 ? StrikeOutcome::Sdc
                                                      : StrikeOutcome::Masked);
  }
}

/// Outcome of one struck word decided from its error pattern's bit
/// counts alone, or Deferred when only the real SEC-DED syndrome can
/// tell (>= 3 bits after the 8-bit check cast).
enum class InlineWord : std::uint8_t {
  Masked = 0,  // == StrikeOutcome values for the first four
  Dre,
  Due,
  Sdc,
  Deferred,
};

/// Per-word inline classification. Exactly classify_pattern's verdict
/// for every case it decides (see tests/fault/batch_engine_test.cpp):
///  * None: any flipped bit is silent corruption;
///  * parity: one parity fold of the pattern;
///  * SEC-DED by popcount of (data, uint8 check) — 0 bits survive the
///    cast only on exotic geometries (check_bits > 8) and alias to a
///    clean word; 1 bit is always corrected (odd-weight columns);
///    2 bits XOR two distinct odd columns into a non-zero even-weight
///    syndrome, always detected; >= 3 bits need the fold.
inline InlineWord classify_word_inline(ProtectionKind protection,
                                       std::uint64_t data_mask,
                                       std::uint32_t check_mask) {
  switch (protection) {
    case ProtectionKind::Immune:
      return InlineWord::Masked;  // unreachable: immune strikes early-out
    case ProtectionKind::None:
      return (data_mask | check_mask) != 0 ? InlineWord::Sdc
                                           : InlineWord::Masked;
    case ProtectionKind::Parity: {
      if ((parity64(data_mask) ^ (check_mask & 1)) != 0)
        return InlineWord::Due;
      return data_mask != 0 ? InlineWord::Sdc : InlineWord::Masked;
    }
    case ProtectionKind::SecDed: {
      const auto check8 = static_cast<std::uint8_t>(check_mask);
      const int bits = std::popcount(data_mask) + std::popcount(
                           static_cast<std::uint32_t>(check8));
      if (bits >= 3) return InlineWord::Deferred;
      if (bits == 2) return InlineWord::Due;
      if (bits == 1) return InlineWord::Dre;
      return InlineWord::Masked;
    }
  }
  throw InvalidArgument("unknown protection kind");
}

/// The general per-strike path: interleaved regions, exotic check-bit
/// geometries, and Immune-adjacent cases the LUT cannot decide. Kept
/// out of line so the dominant fast path compiles to a small loop body
/// with no spills from this machinery; identical RNG draws and
/// outcomes to the per-strike classifier. Returns the inline worst
/// outcome; deferred words ride the fold arrays under `slot`.
[[gnu::noinline]] std::uint8_t classify_general_strike(
    const BatchRegionInfo& R, Rng& rng, CampaignScratch& scratch,
    std::uint32_t slot, std::uint64_t origin, std::uint32_t flips,
    std::uint8_t& ace_keep_out) {
  CampaignScratch::Batch& batch = scratch.batch;
  const std::uint32_t cw = R.codeword_bits;
  InlineWord worst = InlineWord::Masked;
  bool deferred = false;
  const auto note_word = [&](std::uint64_t data_mask,
                             std::uint32_t check_mask) {
    // One draw per struck codeword — the retained oracle draw the
    // RNG contract pins (docs/performance.md).
    (void)rng.next_u64();
    const InlineWord w =
        classify_word_inline(R.protection, data_mask, check_mask);
    if (w == InlineWord::Deferred) {
      deferred = true;
      batch.fold_data.push_back(data_mask);
      batch.fold_check.push_back(static_cast<std::uint8_t>(check_mask));
      batch.fold_slot.push_back(slot);
    } else {
      worst = std::max(worst, w);
    }
  };

  if (R.interleave <= 1) {
    // Contiguous aim: surviving flips clip at the surface edge and
    // split into runs of consecutive bits per codeword, so each
    // word's masks are plain bit ranges — no per-bit loop, no sort.
    auto remaining = static_cast<std::uint64_t>(
        std::min<std::uint64_t>(flips, R.physical_bits - origin));
    std::uint64_t word = R.div_codeword.divide(origin);
    auto bit = static_cast<std::uint32_t>(origin - word * cw);
    while (remaining > 0) {
      const auto len = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(cw - bit, remaining));
      const std::uint32_t hi = bit + len;
      std::uint64_t data_mask = 0;
      std::uint32_t check_mask = 0;
      if (bit < RegionGeometry::kDataBitsPerWord)
        data_mask = range_mask64(
            bit, std::min(hi, RegionGeometry::kDataBitsPerWord));
      if (hi > RegionGeometry::kDataBitsPerWord)
        check_mask = range_mask32(
            std::max(bit, RegionGeometry::kDataBitsPerWord) -
                RegionGeometry::kDataBitsPerWord,
            hi - RegionGeometry::kDataBitsPerWord);
      note_word(data_mask, check_mask);
      remaining -= len;
      bit = 0;
      ++word;
    }
  } else {
    // Interleaved aim (the ablation path): per-bit located hits,
    // word-sorted, grouped — the shape of the per-strike
    // classifier, with the divides replaced by the magic multiply.
    using WordHit = std::pair<std::uint64_t, std::uint32_t>;
    WordHit* hits = scratch.hits.data();
    if (flips > CampaignScratch::kInlineHits) {
      scratch.spill.clear();
      scratch.spill.resize(flips);
      hits = scratch.spill.data();
    }
    std::size_t n = 0;
    for (std::uint32_t k = 0; k < flips && origin + k < R.physical_bits;
         ++k) {
      const std::uint64_t g = origin + k;
      const std::uint64_t group = R.div_group.divide(g);
      const std::uint64_t within = g - group * R.group_bits;
      const std::uint64_t word =
          group * R.interleave + R.div_interleave.modulo(within);
      if (word >= R.words) continue;
      hits[n++] = WordHit{
          word, static_cast<std::uint32_t>(R.div_interleave.divide(within))};
    }
    for (std::size_t i = 1; i < n; ++i) {
      const WordHit h = hits[i];
      std::size_t j = i;
      for (; j > 0 && hits[j - 1].first > h.first; --j) hits[j] = hits[j - 1];
      hits[j] = h;
    }
    std::size_t i = 0;
    while (i < n) {
      const std::uint64_t word = hits[i].first;
      std::uint64_t data_mask = 0;
      std::uint32_t check_mask = 0;
      for (; i < n && hits[i].first == word; ++i) {
        const std::uint32_t b = hits[i].second;
        if (b < RegionGeometry::kDataBitsPerWord)
          data_mask |= std::uint64_t{1} << b;
        else
          check_mask |= 1u << (b - RegionGeometry::kDataBitsPerWord);
      }
      note_word(data_mask, check_mask);
    }
  }

  // ACE draw, in stream position: the old loop drew exactly when
  // the pre-ACE outcome was not Masked. Deferred words can never
  // resolve to Masked (their non-zero pattern either trips the
  // syndrome or corrupts data), so the predicate is known here.
  if (worst != InlineWord::Masked || deferred)
    ace_keep_out = rng.next_bool(R.ace_occupancy) ? 1 : 0;
  else
    ace_keep_out = 1;
  return static_cast<std::uint8_t>(worst);
}

/// Fast-path strike that straddles codeword boundaries (< 1% of
/// strikes at realistic word sizes): split into per-word runs,
/// classify each through the region LUT, park defers. Out of line for
/// the same reason as classify_general_strike; returns the inline
/// worst. Draw order matches the inline path — one burned draw per
/// struck codeword, in address order.
[[gnu::noinline]] std::uint8_t classify_straddle_strike(
    const BatchRegionInfo& R, Rng& rng, CampaignScratch::Batch& batch,
    std::uint32_t slot, std::uint32_t bit, std::uint64_t m) {
  const std::uint32_t cw = R.codeword_bits;
  std::uint8_t worst = 0;
  std::uint64_t remaining = m;
  while (remaining > 0) {
    const auto len =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(cw - bit, remaining));
    (void)rng.next_u64();
    const GroupMasks gm = group_masks(bit, bit + len);
    const auto b = static_cast<std::uint32_t>(std::popcount(gm.data) +
                                              std::popcount(gm.check));
    const std::uint8_t cls = R.class_lut[std::min(b, 3u) * 2 + (b & 1)];
    if (cls == kDeferClass) {
      batch.fold_data.push_back(gm.data);
      batch.fold_check.push_back(static_cast<std::uint8_t>(gm.check));
      batch.fold_slot.push_back(slot);
    } else {
      worst = std::max(worst, cls);
    }
    remaining -= len;
    bit = 0;
  }
  return worst;
}

}  // namespace

namespace detail {

void build_pick_bits(const std::vector<double>& weights, double total,
                     std::vector<std::uint64_t>& pick_bits,
                     std::size_t& fallback) {
  FTSPM_REQUIRE(total > 0.0, "at least one weight must be positive");
  // Sign of subtract-scan partial k at draw bits `ub`, exactly as the
  // per-strike scan computed it: u converts exactly (53-bit integer
  // scaled by a power of two), then one rounded multiply and k + 1
  // rounded subtractions.
  const auto partial_nonneg = [&](std::uint64_t ub, std::size_t k) {
    double r = static_cast<double>(ub) * 0x1.0p-53 * total;
    for (std::size_t i = 0; i <= k; ++i) r -= weights[i];
    return r >= 0.0;
  };
  pick_bits.resize(weights.size());
  for (std::size_t k = 0; k < weights.size(); ++k) {
    if (!partial_nonneg(kDrawBitsEnd - 1, k)) {
      pick_bits[k] = kDrawBitsEnd;  // this partial is never >= 0
      continue;
    }
    std::uint64_t lo = 0, hi = kDrawBitsEnd - 1;
    while (lo < hi) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      if (partial_nonneg(mid, k))
        hi = mid;
      else
        lo = mid + 1;
    }
    pick_bits[k] = hi;
  }
  // Pad with never-reached sentinels so the per-strike pick can always
  // run a fixed four compares for the common <= 4-region mixes: draw
  // bits are < 2^53, so a sentinel never increments the index.
  while (pick_bits.size() < 4) pick_bits.push_back(kDrawBitsEnd);
  // next_discrete's underflow fallback: the last positive weight.
  fallback = weights.size() - 1;
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) {
      fallback = i;
      break;
    }
  }
}

void build_region_table(const std::vector<InjectionRegion>& regions,
                        CampaignScratch::Batch& batch) {
  std::vector<BatchRegionInfo>& table = batch.regions;
  std::vector<double>& weights = batch.weights;
  table.clear();
  table.reserve(regions.size());
  weights.clear();
  weights.reserve(regions.size());
  double total = 0.0;
  for (const auto& r : regions) {
    FTSPM_REQUIRE(r.ace_occupancy >= 0.0 && r.ace_occupancy <= 1.0,
                  "ace_occupancy out of [0,1]");
    FTSPM_REQUIRE(r.interleave >= 1, "interleave degree must be >= 1");
    BatchRegionInfo info;
    info.physical_bits = r.geometry.physical_bits();
    info.weight = static_cast<double>(info.physical_bits);
    info.words = r.geometry.words();
    info.codeword_bits = r.geometry.codeword_bits();
    info.interleave = r.interleave;
    info.group_bits =
        static_cast<std::uint64_t>(info.codeword_bits) * r.interleave;
    info.protection = r.protection;
    info.ace_occupancy = r.ace_occupancy;
    info.div_codeword = FastDiv64(info.codeword_bits, info.physical_bits);
    if (r.interleave > 1) {
      info.div_group = FastDiv64(info.group_bits, info.physical_bits);
      info.div_interleave = FastDiv64(r.interleave, info.group_bits);
    }
    info.fast = r.interleave == 1 && info.physical_bits > 0 &&
                lut_classifiable(r.protection,
                                 r.geometry.check_bits_per_word());
    if (info.fast) build_class_lut(r.protection, info.class_lut);
    info.ace_mode = r.ace_occupancy <= 0.0   ? std::uint8_t{0}
                    : r.ace_occupancy >= 1.0 ? std::uint8_t{1}
                                             : std::uint8_t{2};
    if (info.ace_mode == 2)
      info.ace_bits = prob_to_draw_bits(r.ace_occupancy);
    // next_discrete validated the weights on every strike; the weights
    // are per-chunk constants, so once per chunk is the same check.
    total += info.weight;
    weights.push_back(info.weight);
    table.push_back(info);
  }
  batch.total_weight = total;
  build_pick_bits(weights, total, batch.pick_bits, batch.pick_fallback);
}

FlipCutoffs make_flip_cutoffs(const StrikeMultiplicityModel& strikes,
                              std::uint32_t max_flips) {
  // sample_flips REQUIREs the >3 tail fits, per strike; hoisted here
  // since max_flips is a chunk constant. The branchless comparison sum
  // in sample_flips_draw needs the cutoffs monotone, which holds for
  // any non-negative probabilities. The sums associate exactly as
  // sample_flips does (c3 = (p1 + p2) + p3) so every comparison sees
  // the identical double.
  FTSPM_REQUIRE(max_flips >= 4, "max_flips must allow the >3 tail");
  const double c1 = strikes.p_exactly(1);
  const double c2 = c1 + strikes.p_exactly(2);
  const double c3 = c2 + strikes.p_exactly(3);
  FTSPM_REQUIRE(c1 >= 0.0 && c2 >= c1 && c3 >= c2,
                "flip multiplicities must be non-negative");
  FlipCutoffs cuts;
  cuts.b1 = prob_to_draw_bits(c1);
  cuts.b2 = prob_to_draw_bits(c2);
  cuts.b3 = prob_to_draw_bits(c3);
  return cuts;
}

std::uint8_t decode_fold_outcome(std::uint8_t syndrome,
                                 std::uint64_t data_mask) {
  return ftspm::decode_fold_outcome(SecDedCodec::syndrome_table()[syndrome],
                                    data_mask);
}

std::uint8_t classify_batch_strike(const BatchRegionInfo& R, Rng& rng,
                                   CampaignScratch& scratch,
                                   std::uint32_t slot, std::uint64_t origin,
                                   std::uint32_t flips) {
  if (R.protection == ProtectionKind::Immune)
    return static_cast<std::uint8_t>(StrikeOutcome::Masked);
  CampaignScratch::Batch& batch = scratch.batch;
  if (R.fast) [[likely]] {
    const std::uint32_t cw = R.codeword_bits;
    const std::uint64_t m =
        std::min<std::uint64_t>(flips, R.physical_bits - origin);
    const std::uint64_t word = R.div_codeword.divide(origin);
    const auto bit = static_cast<std::uint32_t>(origin - word * cw);
    if (bit + m <= cw) [[likely]] {
      (void)rng.next_u64();
      const auto b = static_cast<std::uint32_t>(m);
      const std::uint8_t cls = R.class_lut[std::min(b, 3u) * 2 + (b & 1)];
      if (cls == kDeferClass) [[unlikely]] {
        const GroupMasks gm = group_masks(bit, bit + b);
        batch.fold_data.push_back(gm.data);
        batch.fold_check.push_back(static_cast<std::uint8_t>(gm.check));
        batch.fold_slot.push_back(slot);
        return 0;
      }
      return cls;
    }
    return classify_straddle_strike(R, rng, batch, slot, bit, m);
  }
  // ace_occupancy is 1.0 by contract, so the internal ACE draw is the
  // no-draw arm and the out-param is discarded.
  std::uint8_t ace_unused = 1;
  return classify_general_strike(R, rng, scratch, slot, origin, flips,
                                 ace_unused);
}

}  // namespace detail

void run_campaign_chunk(const std::vector<InjectionRegion>& regions,
                        const StrikeMultiplicityModel& strikes,
                        const CampaignConfig& config,
                        CampaignShardState& state, std::uint64_t max_strikes,
                        CampaignObserver* observer, SensitivityGrid* grid) {
  FTSPM_REQUIRE(!regions.empty(), "campaign needs at least one region");
  CampaignScratch::Batch& batch = state.scratch.batch;
  FTSPM_REQUIRE(batch.width >= 1, "batch width must be >= 1");

  const std::uint64_t end =
      std::min(config.strikes, state.done + max_strikes);
  if (end <= state.done) {
    state.done = end;
    return;
  }

  detail::build_region_table(regions, batch);

  // Flip-count cutoffs in the draw-bits domain (see make_flip_cutoffs
  // for the exactness argument).
  const detail::FlipCutoffs cuts =
      detail::make_flip_cutoffs(strikes, config.max_flips);
  const std::uint64_t flips_b1 = cuts.b1;
  const std::uint64_t flips_b2 = cuts.b2;
  const std::uint64_t flips_b3 = cuts.b3;
  // next_bool(0.5) of the >3-bit tail: u < 0.5 <=> draw bits < 2^52.
  constexpr std::uint64_t kHalfBits = std::uint64_t{1} << 52;

  const std::uint32_t width = batch.width;
  batch.region_of.resize(width);
  batch.origin.resize(width);
  batch.outcome.resize(width);
  batch.ace_keep.resize(width);

  // Hot-loop locals. The generator runs as a stack copy (written back
  // once per chunk) and the SoA arrays as raw pointers: the outcome /
  // ace_keep stores are byte stores, which the compiler must otherwise
  // assume alias the RNG state and the vectors' own bookkeeping,
  // forcing a reload of all four state words around every draw.
  Rng rng = state.rng;
  const BatchRegionInfo* const region_table = batch.regions.data();
  const std::uint64_t* const pick_breaks = batch.pick_bits.data();
  const std::size_t pick_fallback = batch.pick_fallback;
  const std::size_t region_count = batch.regions.size();
  std::uint32_t* const region_of = batch.region_of.data();
  std::uint64_t* const origin_of = batch.origin.data();
  std::uint8_t* const outcome_of = batch.outcome.data();
  std::uint8_t* const ace_keep_of = batch.ace_keep.data();

  // Nothing reads per-strike state? Then tally outcomes straight into
  // registers and skip every per-slot store (see the header comment).
  const bool tight =
      (observer == nullptr || !observer->active()) && grid == nullptr;

  if (tight) {
    std::uint64_t n_masked = 0, n_dre = 0, n_due = 0, n_sdc = 0;
    for (std::uint64_t base = state.done; base < end; base += width) {
      const auto block = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(width, end - base));
      batch.fold_data.clear();
      batch.fold_check.clear();
      batch.fold_slot.clear();
      batch.fold_worst.clear();
      batch.fold_keep.clear();

      for (std::uint32_t slot = 0; slot < block; ++slot) {
        const std::size_t ri =
            pick_region(rng, pick_breaks, region_count, pick_fallback);
        const BatchRegionInfo& R = region_table[ri];
        const std::uint64_t origin = rng.next_below(R.physical_bits);

        // Flip multiplicity (sample_flips inlined draw for draw, in
        // the draw-bits domain): the if-chain `u < c1 -> 1, ...` with
        // the branches folded into flag adds — exact because the
        // cutoffs are monotone (checked at build); only the rare
        // >3-bit tail still loops, one next_u64 per coin flip exactly
        // as next_bool(0.5) draws.
        const std::uint64_t ub = rng.next_u64() >> 11;
        std::uint32_t flips = 1 + static_cast<std::uint32_t>(ub >= flips_b1) +
                              static_cast<std::uint32_t>(ub >= flips_b2) +
                              static_cast<std::uint32_t>(ub >= flips_b3);
        if (flips == 4)
          while (flips < config.max_flips &&
                 (rng.next_u64() >> 11) < kHalfBits)
            ++flips;

        if (R.protection == ProtectionKind::Immune) {
          // classify_strike early-outs before any word draw, and the
          // old loop skipped the ACE draw for Masked outcomes.
          ++n_masked;
          continue;
        }

        if (R.fast) [[likely]] {
          const std::uint32_t cw = R.codeword_bits;
          const std::uint64_t m =
              std::min<std::uint64_t>(flips, R.physical_bits - origin);
          const std::uint64_t word = R.div_codeword.divide(origin);
          const auto bit = static_cast<std::uint32_t>(origin - word * cw);
          if (bit + m <= cw) [[likely]] {
            // One burned draw for the single struck codeword (the RNG
            // contract), then the LUT byte — the group is a contiguous
            // run of m bits, so its pattern weight is m and no mask
            // ever materializes unless the verdict defers.
            (void)rng.next_u64();
            const auto b = static_cast<std::uint32_t>(m);
            const std::uint8_t cls =
                R.class_lut[std::min(b, 3u) * 2 + (b & 1)];
            // next_bool's three arms, resolved per region at table
            // build: 0 / 1 skip the draw, 2 consumes exactly one draw
            // compared in the draw-bits domain. Unconditional for fast
            // strikes — never Masked pre-ACE.
            std::uint8_t keep;
            if (R.ace_mode == 2)
              keep = (rng.next_u64() >> 11) < R.ace_bits ? 1 : 0;
            else
              keep = R.ace_mode;
            if (cls == kDeferClass) [[unlikely]] {
              const GroupMasks gm = group_masks(bit, bit + b);
              batch.fold_data.push_back(gm.data);
              batch.fold_check.push_back(static_cast<std::uint8_t>(gm.check));
              batch.fold_slot.push_back(slot);
              batch.fold_worst.push_back(0);
              batch.fold_keep.push_back(keep);
              continue;
            }
            const std::uint8_t o = static_cast<std::uint8_t>(cls * keep);
            n_masked += o == 0;
            n_dre += o == 1;
            n_due += o == 2;
            n_sdc += o == 3;
            continue;
          }
          // Straddles codeword boundaries — rare, classified out of
          // line; its fold entries (if any) carry worst and keep.
          const std::size_t before = batch.fold_data.size();
          const std::uint8_t worst =
              classify_straddle_strike(R, rng, batch, slot, bit, m);
          std::uint8_t keep;
          if (R.ace_mode == 2)
            keep = (rng.next_u64() >> 11) < R.ace_bits ? 1 : 0;
          else
            keep = R.ace_mode;
          const std::size_t after = batch.fold_data.size();
          if (after != before) {
            batch.fold_worst.resize(after);
            batch.fold_keep.resize(after);
            for (std::size_t k = before; k < after; ++k) {
              batch.fold_worst[k] = worst;
              batch.fold_keep[k] = keep;
            }
            continue;
          }
          const std::uint8_t o = static_cast<std::uint8_t>(worst * keep);
          n_masked += o == 0;
          n_dre += o == 1;
          n_due += o == 2;
          n_sdc += o == 3;
          continue;
        }

        const std::size_t before = batch.fold_data.size();
        std::uint8_t keep = 1;
        const std::uint8_t worst = classify_general_strike(
            R, rng, state.scratch, slot, origin, flips, keep);
        const std::size_t after = batch.fold_data.size();
        if (after != before) {
          batch.fold_worst.resize(after);
          batch.fold_keep.resize(after);
          for (std::size_t k = before; k < after; ++k) {
            batch.fold_worst[k] = worst;
            batch.fold_keep[k] = keep;
          }
          continue;
        }
        const std::uint8_t o = static_cast<std::uint8_t>(worst * keep);
        n_masked += o == 0;
        n_dre += o == 1;
        n_due += o == 2;
        n_sdc += o == 3;
      }

      // Batched syndrome fold, then finish each deferring strike: its
      // entries are consecutive (pushed while its slot was current),
      // so one grouped sweep max-merges fold verdicts with the carried
      // inline worst and applies the carried ACE keep.
      if (!batch.fold_data.empty()) {
        const std::size_t n = batch.fold_data.size();
        batch.fold_syndrome.resize(n);
        SecDedCodec::fold_syndromes(batch.fold_data.data(),
                                    batch.fold_check.data(), n,
                                    batch.fold_syndrome.data());
        const auto& table = SecDedCodec::syndrome_table();
        std::size_t k = 0;
        while (k < n) {
          const std::uint32_t slot = batch.fold_slot[k];
          std::uint8_t w = batch.fold_worst[k];
          const std::uint8_t keep = batch.fold_keep[k];
          do {
            w = std::max(w, decode_fold_outcome(table[batch.fold_syndrome[k]],
                                                batch.fold_data[k]));
            ++k;
          } while (k < n && batch.fold_slot[k] == slot);
          const std::uint8_t o = static_cast<std::uint8_t>(w * keep);
          n_masked += o == 0;
          n_dre += o == 1;
          n_due += o == 2;
          n_sdc += o == 3;
        }
      }
      state.partial.strikes += block;
      state.done = base + block;
    }
    state.partial.masked += n_masked;
    state.partial.dre += n_dre;
    state.partial.due += n_due;
    state.partial.sdc += n_sdc;
    state.rng = rng;
    state.done = end;
    return;
  }

  for (std::uint64_t base = state.done; base < end; base += width) {
    const auto block =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(width, end - base));
    batch.fold_data.clear();
    batch.fold_check.clear();
    batch.fold_slot.clear();

    // ---- Stage 1: sequential generation + LUT classification.
    for (std::uint32_t slot = 0; slot < block; ++slot) {
      const std::size_t ri =
          pick_region(rng, pick_breaks, region_count, pick_fallback);
      const BatchRegionInfo& R = region_table[ri];
      const std::uint64_t origin = rng.next_below(R.physical_bits);
      region_of[slot] = static_cast<std::uint32_t>(ri);
      origin_of[slot] = origin;

      const std::uint64_t ub = rng.next_u64() >> 11;
      std::uint32_t flips = 1 + static_cast<std::uint32_t>(ub >= flips_b1) +
                            static_cast<std::uint32_t>(ub >= flips_b2) +
                            static_cast<std::uint32_t>(ub >= flips_b3);
      if (flips == 4)
        while (flips < config.max_flips && (rng.next_u64() >> 11) < kHalfBits)
          ++flips;

      if (R.protection == ProtectionKind::Immune) {
        outcome_of[slot] = static_cast<std::uint8_t>(StrikeOutcome::Masked);
        ace_keep_of[slot] = 1;
        continue;
      }

      if (R.fast) [[likely]] {
        const std::uint32_t cw = R.codeword_bits;
        const std::uint64_t m =
            std::min<std::uint64_t>(flips, R.physical_bits - origin);
        const std::uint64_t word = R.div_codeword.divide(origin);
        const auto bit = static_cast<std::uint32_t>(origin - word * cw);
        std::uint8_t worst;
        if (bit + m <= cw) [[likely]] {
          (void)rng.next_u64();
          const auto b = static_cast<std::uint32_t>(m);
          const std::uint8_t cls = R.class_lut[std::min(b, 3u) * 2 + (b & 1)];
          if (cls == kDeferClass) [[unlikely]] {
            const GroupMasks gm = group_masks(bit, bit + b);
            batch.fold_data.push_back(gm.data);
            batch.fold_check.push_back(static_cast<std::uint8_t>(gm.check));
            batch.fold_slot.push_back(slot);
            worst = 0;
          } else {
            worst = cls;
          }
        } else {
          worst = classify_straddle_strike(R, rng, batch, slot, bit, m);
        }
        outcome_of[slot] = worst;
        if (R.ace_mode == 2)
          ace_keep_of[slot] = (rng.next_u64() >> 11) < R.ace_bits ? 1 : 0;
        else
          ace_keep_of[slot] = R.ace_mode;
        continue;
      }

      outcome_of[slot] = classify_general_strike(
          R, rng, state.scratch, slot, origin, flips, ace_keep_of[slot]);
    }

    // ---- Stage 2: batched syndrome fold of the deferred patterns.
    if (!batch.fold_data.empty()) {
      const std::size_t n = batch.fold_data.size();
      batch.fold_syndrome.resize(n);
      SecDedCodec::fold_syndromes(batch.fold_data.data(),
                                  batch.fold_check.data(), n,
                                  batch.fold_syndrome.data());
      const auto& table = SecDedCodec::syndrome_table();
      for (std::size_t k = 0; k < n; ++k) {
        const std::uint8_t w = decode_fold_outcome(
            table[batch.fold_syndrome[k]], batch.fold_data[k]);
        std::uint8_t& slot_outcome = outcome_of[batch.fold_slot[k]];
        slot_outcome = std::max(slot_outcome, w);
      }
    }

    // ---- Stage 3: ACE filter, bulk tally, observability sweeps. The
    // filter is a multiply (keep is 0/1 and Masked is 0) and the tally
    // runs on register counters — no data-dependent branches, no
    // store-forward chain through a memory histogram.
    std::uint64_t n_masked = 0, n_dre = 0, n_due = 0, n_sdc = 0;
    for (std::uint32_t slot = 0; slot < block; ++slot) {
      const std::uint8_t o =
          static_cast<std::uint8_t>(outcome_of[slot] * ace_keep_of[slot]);
      outcome_of[slot] = o;
      n_masked += o == 0;
      n_dre += o == 1;
      n_due += o == 2;
      n_sdc += o == 3;
    }
    state.partial.masked += n_masked;
    state.partial.dre += n_dre;
    state.partial.due += n_due;
    state.partial.sdc += n_sdc;
    state.partial.strikes += block;

    if (observer != nullptr && observer->active()) {
      for (std::uint32_t slot = 0; slot < block; ++slot)
        observer->on_strike(base + slot,
                            static_cast<StrikeOutcome>(outcome_of[slot]));
    }
    if (grid != nullptr) {
      for (std::uint32_t slot = 0; slot < block; ++slot)
        grid->record(region_of[slot], origin_of[slot],
                     static_cast<StrikeOutcome>(outcome_of[slot]));
    }
    state.done = base + block;
  }
  state.rng = rng;
  state.done = end;
}

}  // namespace ftspm
