#include "ftspm/fault/injector.h"

#include <algorithm>
#include <utility>

#include "ftspm/ecc/parity_codec.h"
#include "ftspm/ecc/secded_codec.h"
#include "ftspm/fault/campaign_observer.h"
#include "ftspm/fault/sensitivity.h"
#include "ftspm/util/error.h"

namespace ftspm {

const char* to_string(StrikeOutcome outcome) noexcept {
  switch (outcome) {
    case StrikeOutcome::Masked: return "masked";
    case StrikeOutcome::Dre: return "DRE";
    case StrikeOutcome::Due: return "DUE";
    case StrikeOutcome::Sdc: return "SDC";
  }
  return "?";
}

PhysicalBit locate_strike_bit(const InjectionRegion& region,
                              std::uint64_t i) {
  const std::uint32_t cw = region.geometry.codeword_bits();
  if (region.interleave <= 1) return region.geometry.locate(i);
  const std::uint64_t group_bits =
      static_cast<std::uint64_t>(cw) * region.interleave;
  const std::uint64_t group = i / group_bits;
  const std::uint64_t within = i % group_bits;
  PhysicalBit pb;
  pb.word_index = group * region.interleave + (within % region.interleave);
  pb.bit_in_codeword = static_cast<std::uint32_t>(within / region.interleave);
  return pb;
}

namespace {

/// Classifies the flips that landed in one codeword via the full
/// encode/flip/decode oracle. Superseded by classify_word_pattern in
/// the campaign hot loop; kept as the ground truth classify_strike_
/// oracle exposes to tests and benchmarks.
StrikeOutcome classify_word_oracle(ProtectionKind protection,
                                   const std::vector<std::uint32_t>& bits,
                                   Rng& rng) {
  const std::uint64_t original = rng.next_u64();
  switch (protection) {
    case ProtectionKind::Immune:
      return StrikeOutcome::Masked;
    case ProtectionKind::None: {
      // No check bits: any flip silently corrupts the stored word.
      return bits.empty() ? StrikeOutcome::Masked : StrikeOutcome::Sdc;
    }
    case ProtectionKind::Parity: {
      ParityWord w = ParityCodec::encode(original);
      for (std::uint32_t b : bits) ParityCodec::flip_bit(w, b);
      const DecodeResult r = ParityCodec::decode(w);
      if (r.status == DecodeStatus::Detected) return StrikeOutcome::Due;
      return r.data == original ? StrikeOutcome::Masked : StrikeOutcome::Sdc;
    }
    case ProtectionKind::SecDed: {
      SecDedWord w = SecDedCodec::encode(original);
      for (std::uint32_t b : bits) SecDedCodec::flip_bit(w, b);
      const DecodeResult r = SecDedCodec::decode(w);
      switch (r.status) {
        case DecodeStatus::Clean:
          return r.data == original ? StrikeOutcome::Masked
                                    : StrikeOutcome::Sdc;
        case DecodeStatus::Corrected:
          return r.data == original ? StrikeOutcome::Dre
                                    : StrikeOutcome::Sdc;
        case DecodeStatus::Detected:
          return StrikeOutcome::Due;
      }
      return StrikeOutcome::Sdc;
    }
  }
  throw InvalidArgument("unknown protection kind");
}

/// Classifies one struck codeword from its error pattern alone (the
/// codecs are linear, so stored data is irrelevant — see
/// PatternDecode). `check_mask` holds the flipped check bits shifted
/// down to bit 0.
StrikeOutcome classify_word_pattern(ProtectionKind protection,
                                    std::uint64_t data_mask,
                                    std::uint32_t check_mask, Rng& rng) {
  // Immune words never reach here from classify_strike (it returns
  // before gathering hits), so no draw happens on this path and
  // skipping it cannot perturb any established RNG stream.
  if (protection == ProtectionKind::Immune) return StrikeOutcome::Masked;
  // The oracle drew the word's original contents here. The outcome
  // never depended on that value (linearity) — including for
  // unprotected words, where it was always wasted — but the draw is
  // retained so RNG streams, and therefore campaign counters at a
  // fixed seed, stay bit-identical with the pre-kernel implementation.
  // Any future hot-loop change must preserve this draw order; see
  // docs/performance.md.
  (void)rng.next_u64();
  switch (protection) {
    case ProtectionKind::Immune:
      return StrikeOutcome::Masked;  // handled above
    case ProtectionKind::None:
      // No check bits: any flip silently corrupts the stored word.
      return (data_mask | check_mask) != 0 ? StrikeOutcome::Sdc
                                           : StrikeOutcome::Masked;
    case ProtectionKind::Parity: {
      const PatternDecode p = ParityCodec::classify_pattern(
          data_mask, static_cast<std::uint8_t>(check_mask));
      if (p.status == DecodeStatus::Detected) return StrikeOutcome::Due;
      return p.data_intact() ? StrikeOutcome::Masked : StrikeOutcome::Sdc;
    }
    case ProtectionKind::SecDed: {
      const PatternDecode p = SecDedCodec::classify_pattern(
          data_mask, static_cast<std::uint8_t>(check_mask));
      switch (p.status) {
        case DecodeStatus::Clean:
          return p.data_intact() ? StrikeOutcome::Masked : StrikeOutcome::Sdc;
        case DecodeStatus::Corrected:
          return p.data_intact() ? StrikeOutcome::Dre : StrikeOutcome::Sdc;
        case DecodeStatus::Detected:
          return StrikeOutcome::Due;
      }
      return StrikeOutcome::Sdc;
    }
  }
  throw InvalidArgument("unknown protection kind");
}

using WordHit = std::pair<std::uint64_t, std::uint32_t>;

/// Classifies the gathered, word-sorted hits of one strike by folding
/// each codeword's hits into (data_mask, check_mask) and running the
/// syndrome kernel. One RNG draw per struck word, like the oracle.
StrikeOutcome classify_hits(ProtectionKind protection, const WordHit* hits,
                            std::size_t count, Rng& rng) {
  StrikeOutcome worst = StrikeOutcome::Masked;
  std::size_t i = 0;
  while (i < count) {
    const std::uint64_t word = hits[i].first;
    std::uint64_t data_mask = 0;
    std::uint32_t check_mask = 0;
    for (; i < count && hits[i].first == word; ++i) {
      const std::uint32_t bit = hits[i].second;
      if (bit < RegionGeometry::kDataBitsPerWord)
        data_mask |= 1ULL << bit;
      else
        check_mask |= 1u << (bit - RegionGeometry::kDataBitsPerWord);
    }
    worst = std::max(worst,
                     classify_word_pattern(protection, data_mask, check_mask,
                                           rng));
  }
  return worst;
}

/// Gathers a strike's surviving flips into `hits` (clipped at the array
/// edge, interleave-aware) and sorts them by word. `hits` must hold
/// `flips` entries. Small strike footprints make insertion sort the
/// right tool — the common multiplicities are 1-4 hits.
std::size_t gather_hits(const InjectionRegion& region,
                        std::uint64_t first_bit, std::uint32_t flips,
                        std::uint64_t surface, WordHit* hits) {
  std::size_t n = 0;
  for (std::uint32_t k = 0; k < flips && first_bit + k < surface; ++k) {
    const PhysicalBit pb = locate_strike_bit(region, first_bit + k);
    if (pb.word_index >= region.geometry.words()) continue;
    hits[n++] = WordHit{pb.word_index, pb.bit_in_codeword};
  }
  for (std::size_t i = 1; i < n; ++i) {
    const WordHit h = hits[i];
    std::size_t j = i;
    for (; j > 0 && hits[j - 1].first > h.first; --j) hits[j] = hits[j - 1];
    hits[j] = h;
  }
  return n;
}

}  // namespace

StrikeOutcome classify_strike(const InjectionRegion& region,
                              std::uint64_t first_bit, std::uint32_t flips,
                              Rng& rng, CampaignScratch& scratch) {
  FTSPM_REQUIRE(flips >= 1, "a strike flips at least one bit");
  if (region.protection == ProtectionKind::Immune)
    return StrikeOutcome::Masked;

  const std::uint64_t surface = region.geometry.physical_bits();
  FTSPM_REQUIRE(first_bit < surface, "strike origin outside the region");

  WordHit* hits = scratch.hits.data();
  if (flips > CampaignScratch::kInlineHits) {
    scratch.spill.clear();
    scratch.spill.resize(flips);
    hits = scratch.spill.data();
  }
  const std::size_t n = gather_hits(region, first_bit, flips, surface, hits);
  return classify_hits(region.protection, hits, n, rng);
}

StrikeOutcome classify_strike(const InjectionRegion& region,
                              std::uint64_t first_bit, std::uint32_t flips,
                              Rng& rng) {
  // The inline hit array lives on the stack; only pathological flip
  // counts (> kInlineHits) cost an allocation on this scratch-less
  // convenience overload.
  CampaignScratch scratch;
  return classify_strike(region, first_bit, flips, rng, scratch);
}

StrikeOutcome classify_strike_oracle(const InjectionRegion& region,
                                     std::uint64_t first_bit,
                                     std::uint32_t flips, Rng& rng) {
  FTSPM_REQUIRE(flips >= 1, "a strike flips at least one bit");
  if (region.protection == ProtectionKind::Immune)
    return StrikeOutcome::Masked;

  const std::uint64_t surface = region.geometry.physical_bits();
  FTSPM_REQUIRE(first_bit < surface, "strike origin outside the region");

  // Gather flips per codeword (clipped at the array edge).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> hits;
  for (std::uint32_t k = 0; k < flips && first_bit + k < surface; ++k) {
    const PhysicalBit pb = locate_strike_bit(region, first_bit + k);
    if (pb.word_index >= region.geometry.words()) continue;
    hits.emplace_back(pb.word_index, pb.bit_in_codeword);
  }
  std::sort(hits.begin(), hits.end());

  StrikeOutcome worst = StrikeOutcome::Masked;
  std::size_t i = 0;
  while (i < hits.size()) {
    std::vector<std::uint32_t> word_bits;
    const std::uint64_t word = hits[i].first;
    for (; i < hits.size() && hits[i].first == word; ++i)
      word_bits.push_back(hits[i].second);
    worst = std::max(worst, classify_word_oracle(region.protection, word_bits,
                                                 rng));
  }
  return worst;
}

CampaignShardState begin_campaign_shard(std::uint64_t seed) noexcept {
  CampaignShardState state;
  state.rng = Rng(seed);
  return state;
}

// run_campaign_chunk — the batched block engine — lives in
// injector_batch.cpp.

CampaignResult run_campaign(const std::vector<InjectionRegion>& regions,
                            const StrikeMultiplicityModel& strikes,
                            const CampaignConfig& config,
                            SensitivityGrid* grid) {
  CampaignShardState state = begin_campaign_shard(config.seed);
  emit_campaign_phase_start("static", config);
  CampaignObserver observer(config, "static");
  run_campaign_chunk(regions, strikes, config, state, config.strikes,
                     &observer, grid);
  emit_campaign_phase_end("static", state.partial);
  return state.partial;
}

}  // namespace ftspm
