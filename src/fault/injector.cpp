#include "ftspm/fault/injector.h"

#include <algorithm>
#include <utility>

#include "ftspm/ecc/parity_codec.h"
#include "ftspm/ecc/secded_codec.h"
#include "ftspm/fault/campaign_observer.h"
#include "ftspm/util/error.h"

namespace ftspm {

const char* to_string(StrikeOutcome outcome) noexcept {
  switch (outcome) {
    case StrikeOutcome::Masked: return "masked";
    case StrikeOutcome::Dre: return "DRE";
    case StrikeOutcome::Due: return "DUE";
    case StrikeOutcome::Sdc: return "SDC";
  }
  return "?";
}

PhysicalBit locate_strike_bit(const InjectionRegion& region,
                              std::uint64_t i) {
  const std::uint32_t cw = region.geometry.codeword_bits();
  if (region.interleave <= 1) return region.geometry.locate(i);
  const std::uint64_t group_bits =
      static_cast<std::uint64_t>(cw) * region.interleave;
  const std::uint64_t group = i / group_bits;
  const std::uint64_t within = i % group_bits;
  PhysicalBit pb;
  pb.word_index = group * region.interleave + (within % region.interleave);
  pb.bit_in_codeword = static_cast<std::uint32_t>(within / region.interleave);
  return pb;
}

namespace {

/// Classifies the flips that landed in one codeword.
StrikeOutcome classify_word(ProtectionKind protection,
                            const std::vector<std::uint32_t>& bits,
                            Rng& rng) {
  const std::uint64_t original = rng.next_u64();
  switch (protection) {
    case ProtectionKind::Immune:
      return StrikeOutcome::Masked;
    case ProtectionKind::None: {
      // No check bits: any flip silently corrupts the stored word.
      return bits.empty() ? StrikeOutcome::Masked : StrikeOutcome::Sdc;
    }
    case ProtectionKind::Parity: {
      ParityWord w = ParityCodec::encode(original);
      for (std::uint32_t b : bits) ParityCodec::flip_bit(w, b);
      const DecodeResult r = ParityCodec::decode(w);
      if (r.status == DecodeStatus::Detected) return StrikeOutcome::Due;
      return r.data == original ? StrikeOutcome::Masked : StrikeOutcome::Sdc;
    }
    case ProtectionKind::SecDed: {
      SecDedWord w = SecDedCodec::encode(original);
      for (std::uint32_t b : bits) SecDedCodec::flip_bit(w, b);
      const DecodeResult r = SecDedCodec::decode(w);
      switch (r.status) {
        case DecodeStatus::Clean:
          return r.data == original ? StrikeOutcome::Masked
                                    : StrikeOutcome::Sdc;
        case DecodeStatus::Corrected:
          return r.data == original ? StrikeOutcome::Dre
                                    : StrikeOutcome::Sdc;
        case DecodeStatus::Detected:
          return StrikeOutcome::Due;
      }
      return StrikeOutcome::Sdc;
    }
  }
  throw InvalidArgument("unknown protection kind");
}

}  // namespace

StrikeOutcome classify_strike(const InjectionRegion& region,
                              std::uint64_t first_bit, std::uint32_t flips,
                              Rng& rng) {
  FTSPM_REQUIRE(flips >= 1, "a strike flips at least one bit");
  if (region.protection == ProtectionKind::Immune)
    return StrikeOutcome::Masked;

  const std::uint64_t surface = region.geometry.physical_bits();
  FTSPM_REQUIRE(first_bit < surface, "strike origin outside the region");

  // Gather flips per codeword (clipped at the array edge).
  std::vector<std::pair<std::uint64_t, std::uint32_t>> hits;
  for (std::uint32_t k = 0; k < flips && first_bit + k < surface; ++k) {
    const PhysicalBit pb = locate_strike_bit(region, first_bit + k);
    if (pb.word_index >= region.geometry.words()) continue;
    hits.emplace_back(pb.word_index, pb.bit_in_codeword);
  }
  std::sort(hits.begin(), hits.end());

  StrikeOutcome worst = StrikeOutcome::Masked;
  std::size_t i = 0;
  while (i < hits.size()) {
    std::vector<std::uint32_t> word_bits;
    const std::uint64_t word = hits[i].first;
    for (; i < hits.size() && hits[i].first == word; ++i)
      word_bits.push_back(hits[i].second);
    worst = std::max(worst, classify_word(region.protection, word_bits, rng));
  }
  return worst;
}

CampaignShardState begin_campaign_shard(std::uint64_t seed) noexcept {
  CampaignShardState state;
  state.rng = Rng(seed);
  return state;
}

void run_campaign_chunk(const std::vector<InjectionRegion>& regions,
                        const StrikeMultiplicityModel& strikes,
                        const CampaignConfig& config,
                        CampaignShardState& state, std::uint64_t max_strikes,
                        CampaignObserver* observer) {
  FTSPM_REQUIRE(!regions.empty(), "campaign needs at least one region");
  std::vector<double> weights;
  weights.reserve(regions.size());
  for (const auto& r : regions) {
    FTSPM_REQUIRE(r.ace_occupancy >= 0.0 && r.ace_occupancy <= 1.0,
                  "ace_occupancy out of [0,1]");
    FTSPM_REQUIRE(r.interleave >= 1, "interleave degree must be >= 1");
    weights.push_back(static_cast<double>(r.geometry.physical_bits()));
  }

  const std::uint64_t end =
      std::min(config.strikes, state.done + max_strikes);
  for (std::uint64_t s = state.done; s < end; ++s) {
    const std::size_t ri = state.rng.next_discrete(weights);
    const InjectionRegion& region = regions[ri];
    const std::uint64_t origin =
        state.rng.next_below(region.geometry.physical_bits());
    const std::uint32_t flips =
        strikes.sample_flips(state.rng, config.max_flips);
    StrikeOutcome outcome = classify_strike(region, origin, flips, state.rng);
    // Strikes on words holding no architecturally-required value are
    // harmless regardless of what the codec would have reported.
    if (outcome != StrikeOutcome::Masked &&
        !state.rng.next_bool(region.ace_occupancy))
      outcome = StrikeOutcome::Masked;
    switch (outcome) {
      case StrikeOutcome::Masked: ++state.partial.masked; break;
      case StrikeOutcome::Dre: ++state.partial.dre; break;
      case StrikeOutcome::Due: ++state.partial.due; break;
      case StrikeOutcome::Sdc: ++state.partial.sdc; break;
    }
    ++state.partial.strikes;
    if (observer != nullptr) observer->on_strike(s, outcome);
  }
  state.done = end;
}

CampaignResult run_campaign(const std::vector<InjectionRegion>& regions,
                            const StrikeMultiplicityModel& strikes,
                            const CampaignConfig& config) {
  CampaignShardState state = begin_campaign_shard(config.seed);
  CampaignObserver observer(config, "static");
  run_campaign_chunk(regions, strikes, config, state, config.strikes,
                     &observer);
  return state.partial;
}

}  // namespace ftspm
