// Static profiling — the off-line phase's input (the paper's Table I).
//
// The profiler replays a workload trace on a nominal timebase (one
// cycle per word access plus declared compute gaps — mapping-independent
// by construction, like the paper's pre-characterisation run) and
// produces per-block statistics:
//
//  * reads / writes             — code-block instruction fetches are
//                                 reported in `reads`, matching Table I;
//  * references                 — maximal runs of accesses to the block
//                                 uninterrupted by another block of the
//                                 same class (code vs data);
//  * stack calls / max stack    — CallEnter counts and the deepest stack
//                                 growth observed inside an activation;
//  * lifetime                   — the paper's definition: total time the
//                                 block was the most recently referenced
//                                 block of its class;
//  * ACE time                   — architecturally correct execution
//                                 residency (Mukherjee et al., MICRO'03):
//                                 per-word write -> last-read intervals,
//                                 summed over the block. Feeds Eqs. 2-3;
//  * max word writes            — the hottest word's write count, the
//                                 quantity STT-RAM endurance dies by.
#pragma once

#include <cstdint>
#include <vector>

#include "ftspm/workload/trace.h"

namespace ftspm {

/// Per-block profiling results (one Table I row).
struct BlockProfile {
  BlockId id = 0;
  std::uint64_t reads = 0;   ///< Word reads; instruction fetches for code.
  std::uint64_t writes = 0;
  std::uint64_t references = 0;
  std::uint64_t stack_calls = 0;
  std::uint32_t max_stack_bytes = 0;
  std::uint64_t lifetime_cycles = 0;
  std::uint64_t ace_cycles = 0;  ///< Sum of per-word vulnerable cycles.
  std::uint64_t max_word_writes = 0;

  std::uint64_t accesses() const noexcept { return reads + writes; }
  double avg_reads_per_reference() const noexcept {
    return references ? static_cast<double>(reads) / references : 0.0;
  }
  double avg_writes_per_reference() const noexcept {
    return references ? static_cast<double>(writes) / references : 0.0;
  }

  /// The paper's block susceptibility: references x lifetime
  /// (Algorithm 1 line 10).
  double susceptibility() const noexcept {
    return static_cast<double>(references) *
           static_cast<double>(lifetime_cycles);
  }
};

/// Whole-program profile.
struct ProgramProfile {
  std::vector<BlockProfile> blocks;  ///< Indexed by BlockId.
  std::uint64_t total_cycles = 0;    ///< Nominal timebase length.
  std::uint64_t total_accesses = 0;

  /// The block-reference sequence: one entry per reference run, in
  /// execution order (code and data runs interleaved). This is the
  /// "sequence of blocks accesses ... extracted from the static
  /// profiling information" the paper's on-line phase is generated
  /// from; the mapping pipeline replays it to price region
  /// time-sharing exactly.
  std::vector<BlockId> reference_sequence;

  const BlockProfile& block(BlockId id) const;

  /// ACE fraction of a block: vulnerable word-cycles over the block's
  /// total word-cycles. In [0, 1].
  double ace_fraction(const Program& program, BlockId id) const;
};

/// Profiles a workload. Deterministic; throws on malformed traces.
ProgramProfile profile_workload(const Workload& workload);

}  // namespace ftspm
