// LRU reuse-distance (stack-distance) analysis.
//
// The scenario estimator prices unmapped blocks with an assumed L1 hit
// rate; this module computes the real quantity from the trace: the LRU
// stack distance of every cache-line access. For a fully-associative
// LRU cache of C lines the hit rate is exactly the fraction of accesses
// with distance < C (Mattson et al., 1970) — and a good approximation
// for the set-associative L1 the simulator models. Exposed for
// analysis tooling and validated against the simulator's caches in the
// test suite.
#pragma once

#include <array>
#include <cstdint>

#include "ftspm/workload/trace.h"

namespace ftspm {

/// Which accesses to include.
enum class ReuseScope : std::uint8_t {
  Data,          ///< Reads/writes (the D-cache stream).
  Instructions,  ///< Fetches (the I-cache stream).
};

struct ReuseProfile {
  /// histogram[k] counts accesses with LRU stack distance in
  /// [2^k, 2^(k+1)) lines; bucket 0 holds distance 0 (immediate reuse)
  /// and 1. The last bucket collects cold misses and distances beyond
  /// the tracking horizon.
  static constexpr std::size_t kBuckets = 21;
  std::array<std::uint64_t, kBuckets> histogram{};
  std::uint64_t total_accesses = 0;
  std::uint32_t line_bytes = 32;

  /// Expected hit rate of a fully-associative LRU cache with
  /// `cache_lines` lines: P(distance < cache_lines).
  double hit_rate_estimate(std::uint64_t cache_lines) const;

  /// Mean over the histogrammed (finite) distances, in lines.
  double mean_finite_distance() const;
};

/// Computes the reuse profile of one access class. Distances beyond
/// `horizon_lines` are treated as cold (exact up to the horizon; the
/// computation is O(distance) per access).
ReuseProfile compute_reuse_profile(const Workload& workload,
                                   ReuseScope scope,
                                   std::uint32_t line_bytes = 32,
                                   std::size_t horizon_lines = 4096);

}  // namespace ftspm
