#include "ftspm/profile/reuse.h"

#include <bit>
#include <list>
#include <unordered_map>

#include "ftspm/util/error.h"

namespace ftspm {

double ReuseProfile::hit_rate_estimate(std::uint64_t cache_lines) const {
  FTSPM_REQUIRE(cache_lines > 0, "cache must have at least one line");
  if (total_accesses == 0) return 0.0;
  std::uint64_t hits = 0;
  // Bucket k spans [2^k, 2^(k+1)); it is fully under `cache_lines` when
  // 2^(k+1) <= cache_lines. Partial buckets are credited by midpoint.
  for (std::size_t k = 0; k + 1 < kBuckets; ++k) {
    const std::uint64_t lo = k == 0 ? 0 : (1ULL << k);
    const std::uint64_t hi = 1ULL << (k + 1);
    if (hi <= cache_lines) {
      hits += histogram[k];
    } else if (lo < cache_lines) {
      hits += histogram[k] / 2;  // straddling bucket: midpoint credit
    }
  }
  return static_cast<double>(hits) / static_cast<double>(total_accesses);
}

double ReuseProfile::mean_finite_distance() const {
  std::uint64_t n = 0;
  double weighted = 0.0;
  for (std::size_t k = 0; k + 1 < kBuckets; ++k) {
    const double mid = k == 0 ? 1.0 : 1.5 * static_cast<double>(1ULL << k);
    weighted += mid * static_cast<double>(histogram[k]);
    n += histogram[k];
  }
  return n ? weighted / static_cast<double>(n) : 0.0;
}

ReuseProfile compute_reuse_profile(const Workload& workload, ReuseScope scope,
                                   std::uint32_t line_bytes,
                                   std::size_t horizon_lines) {
  FTSPM_REQUIRE(line_bytes >= 8 && std::has_single_bit(line_bytes),
                "line size must be a power of two >= 8");
  FTSPM_REQUIRE(horizon_lines >= 2, "horizon too small");
  validate_trace(workload.program, workload.trace);

  ReuseProfile profile;
  profile.line_bytes = line_bytes;

  // LRU stack of line ids; front = most recently used. O(d) per access
  // (d = reuse distance, clipped at the horizon), which is fine for the
  // analysis-scale traces this is meant for.
  std::list<std::uint64_t> stack;
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> pos;

  auto touch = [&](std::uint64_t line) {
    ++profile.total_accesses;
    auto it = pos.find(line);
    if (it == pos.end()) {
      profile.histogram.back()++;  // cold
    } else {
      std::size_t distance = 0;
      for (auto walk = stack.begin(); walk != it->second; ++walk) ++distance;
      const std::size_t bucket =
          distance <= 1
              ? 0
              : std::min<std::size_t>(ReuseProfile::kBuckets - 2,
                                      static_cast<std::size_t>(
                                          std::bit_width(distance) - 1));
      profile.histogram[bucket]++;
      stack.erase(it->second);
    }
    stack.push_front(line);
    pos[line] = stack.begin();
    if (stack.size() > horizon_lines) {
      pos.erase(stack.back());
      stack.pop_back();
    }
  };

  const bool want_code = scope == ReuseScope::Instructions;
  for (const TraceEvent& e : workload.trace) {
    if (e.is_marker()) continue;
    const bool is_fetch = e.type == AccessType::Fetch;
    if (is_fetch != want_code) continue;
    const Block& blk = workload.program.block(e.block);
    const std::uint64_t base = workload.program.base_address(e.block);
    const std::uint32_t words = blk.size_words();
    for (std::uint32_t k = 0; k < e.repeat; ++k) {
      const std::uint64_t addr =
          base + static_cast<std::uint64_t>((e.offset + k) % words) * 8;
      touch(addr / line_bytes);
    }
  }
  return profile;
}

}  // namespace ftspm
