#include "ftspm/profile/profiler.h"

#include <algorithm>
#include <optional>

#include "ftspm/util/error.h"

namespace ftspm {

const BlockProfile& ProgramProfile::block(BlockId id) const {
  FTSPM_REQUIRE(id < blocks.size(), "block id out of range");
  return blocks[id];
}

double ProgramProfile::ace_fraction(const Program& program,
                                    BlockId id) const {
  const BlockProfile& bp = block(id);
  const std::uint64_t words = program.block(id).size_words();
  if (words == 0 || total_cycles == 0) return 0.0;
  const double denom =
      static_cast<double>(words) * static_cast<double>(total_cycles);
  return std::min(1.0, static_cast<double>(bp.ace_cycles) / denom);
}

namespace {

/// Per-word ACE bookkeeping for one data block.
struct WordState {
  std::vector<std::uint64_t> value_born;   ///< Cycle the live value was
                                           ///< written (0 = initial load).
  std::vector<std::uint64_t> last_read;    ///< Last read of that value.
  std::vector<std::uint64_t> write_count;  ///< Wear per word.
};

/// Tracks one open activation for max-stack accounting.
struct Activation {
  BlockId fn;
  std::uint32_t entry_depth_bytes;
  std::uint32_t max_depth_bytes;
};

}  // namespace

ProgramProfile profile_workload(const Workload& workload) {
  const Program& program = workload.program;
  validate_trace(program, workload.trace);

  ProgramProfile out;
  out.blocks.resize(program.block_count());
  for (std::size_t i = 0; i < out.blocks.size(); ++i)
    out.blocks[i].id = static_cast<BlockId>(i);

  std::vector<WordState> words(program.block_count());
  for (std::size_t i = 0; i < program.block_count(); ++i) {
    const Block& b = program.block(static_cast<BlockId>(i));
    if (b.is_data()) {
      words[i].value_born.assign(b.size_words(), 0);
      words[i].last_read.assign(b.size_words(), 0);
      words[i].write_count.assign(b.size_words(), 0);
    }
  }

  std::uint64_t now = 0;
  std::optional<BlockId> current_code, current_data;
  std::uint64_t code_since = 0, data_since = 0;
  std::vector<std::uint64_t> last_fetch(program.block_count(), 0);
  std::vector<Activation> activations;
  std::uint32_t stack_depth_bytes = 0;

  auto switch_current = [&](std::optional<BlockId>& current,
                            std::uint64_t& since, BlockId next) {
    if (current == next) return;
    if (current) out.blocks[*current].lifetime_cycles += now - since;
    current = next;
    since = now;
    ++out.blocks[next].references;
    out.reference_sequence.push_back(next);
  };

  for (const TraceEvent& e : workload.trace) {
    BlockProfile& bp = out.blocks[e.block];
    switch (e.type) {
      case AccessType::CallEnter: {
        ++bp.stack_calls;
        stack_depth_bytes += e.offset;  // offset carries frame bytes
        for (auto& act : activations)
          act.max_depth_bytes = std::max(act.max_depth_bytes,
                                         stack_depth_bytes);
        activations.push_back(
            Activation{e.block, stack_depth_bytes - e.offset,
                       stack_depth_bytes});
        break;
      }
      case AccessType::CallExit: {
        FTSPM_CHECK(!activations.empty(), "exit without activation");
        const Activation act = activations.back();
        activations.pop_back();
        const std::uint32_t needed =
            act.max_depth_bytes - act.entry_depth_bytes;
        BlockProfile& fn = out.blocks[act.fn];
        fn.max_stack_bytes = std::max(fn.max_stack_bytes, needed);
        stack_depth_bytes = act.entry_depth_bytes;
        break;
      }
      case AccessType::Fetch: {
        switch_current(current_code, code_since, e.block);
        bp.reads += e.repeat;
        now += e.nominal_cycles();
        last_fetch[e.block] = now;
        break;
      }
      case AccessType::Read:
      case AccessType::Write: {
        switch_current(current_data, data_since, e.block);
        WordState& ws = words[e.block];
        const std::uint32_t n_words = program.block(e.block).size_words();
        const std::uint64_t step = e.gap + 1ULL;
        const bool is_read = e.type == AccessType::Read;
        if (is_read)
          bp.reads += e.repeat;
        else
          bp.writes += e.repeat;
        for (std::uint32_t k = 0; k < e.repeat; ++k) {
          const std::uint32_t w = (e.offset + k) % n_words;
          const std::uint64_t t = now + (k + 1) * step;
          if (is_read) {
            ws.last_read[w] = t;
          } else {
            // Close the previous value's vulnerable interval.
            if (ws.last_read[w] > ws.value_born[w])
              bp.ace_cycles += ws.last_read[w] - ws.value_born[w];
            ws.value_born[w] = t;
            ws.last_read[w] = 0;
            ++ws.write_count[w];
          }
        }
        now += e.nominal_cycles();
        break;
      }
    }
  }

  // Close open state at end-of-trace.
  if (current_code)
    out.blocks[*current_code].lifetime_cycles += now - code_since;
  if (current_data)
    out.blocks[*current_data].lifetime_cycles += now - data_since;
  for (std::size_t i = 0; i < program.block_count(); ++i) {
    const Block& b = program.block(static_cast<BlockId>(i));
    BlockProfile& bp = out.blocks[i];
    if (b.is_data()) {
      WordState& ws = words[i];
      for (std::uint32_t w = 0; w < b.size_words(); ++w) {
        if (ws.last_read[w] > ws.value_born[w])
          bp.ace_cycles += ws.last_read[w] - ws.value_born[w];
        bp.max_word_writes = std::max(bp.max_word_writes, ws.write_count[w]);
      }
    } else {
      // Instructions are read-only: every word is needed from program
      // start until the block's last fetch.
      bp.ace_cycles = static_cast<std::uint64_t>(b.size_words()) *
                      last_fetch[i];
    }
  }

  out.total_cycles = now;
  out.total_accesses = workload.total_accesses();
  return out;
}

}  // namespace ftspm
