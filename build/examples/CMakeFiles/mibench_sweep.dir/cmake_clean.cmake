file(REMOVE_RECURSE
  "CMakeFiles/mibench_sweep.dir/mibench_sweep.cpp.o"
  "CMakeFiles/mibench_sweep.dir/mibench_sweep.cpp.o.d"
  "mibench_sweep"
  "mibench_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mibench_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
