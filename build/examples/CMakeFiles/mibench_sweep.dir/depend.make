# Empty dependencies file for mibench_sweep.
# This may be replaced when dependencies are built.
