file(REMOVE_RECURSE
  "CMakeFiles/multitask_partitioning.dir/multitask_partitioning.cpp.o"
  "CMakeFiles/multitask_partitioning.dir/multitask_partitioning.cpp.o.d"
  "multitask_partitioning"
  "multitask_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multitask_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
