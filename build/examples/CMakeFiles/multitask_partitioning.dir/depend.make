# Empty dependencies file for multitask_partitioning.
# This may be replaced when dependencies are built.
