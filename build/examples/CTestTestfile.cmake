# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_case_study_walkthrough "/root/repo/build/examples/case_study_walkthrough")
set_tests_properties(example_case_study_walkthrough PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mibench_sweep "/root/repo/build/examples/mibench_sweep")
set_tests_properties(example_mibench_sweep PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_priority_tuning "/root/repo/build/examples/priority_tuning")
set_tests_properties(example_priority_tuning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multitask_partitioning "/root/repo/build/examples/multitask_partitioning")
set_tests_properties(example_multitask_partitioning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fault_injection_demo "/root/repo/build/examples/fault_injection_demo")
set_tests_properties(example_fault_injection_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
