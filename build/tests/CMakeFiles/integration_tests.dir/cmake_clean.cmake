file(REMOVE_RECURSE
  "CMakeFiles/integration_tests.dir/integration/block_report_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/block_report_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/csv_export_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/csv_export_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/fuzz_pipeline_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/fuzz_pipeline_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/golden_tables_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/golden_tables_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/json_report_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/json_report_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/relaxed_stt_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/relaxed_stt_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/report_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/report_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/suite_invariants_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/suite_invariants_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/suite_mapping_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/suite_mapping_test.cpp.o.d"
  "CMakeFiles/integration_tests.dir/integration/systems_test.cpp.o"
  "CMakeFiles/integration_tests.dir/integration/systems_test.cpp.o.d"
  "integration_tests"
  "integration_tests.pdb"
  "integration_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
