
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/block_report_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/block_report_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/block_report_test.cpp.o.d"
  "/root/repo/tests/integration/csv_export_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/csv_export_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/csv_export_test.cpp.o.d"
  "/root/repo/tests/integration/fuzz_pipeline_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/fuzz_pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/fuzz_pipeline_test.cpp.o.d"
  "/root/repo/tests/integration/golden_tables_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/golden_tables_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/golden_tables_test.cpp.o.d"
  "/root/repo/tests/integration/json_report_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/json_report_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/json_report_test.cpp.o.d"
  "/root/repo/tests/integration/relaxed_stt_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/relaxed_stt_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/relaxed_stt_test.cpp.o.d"
  "/root/repo/tests/integration/report_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/report_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/report_test.cpp.o.d"
  "/root/repo/tests/integration/suite_invariants_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/suite_invariants_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/suite_invariants_test.cpp.o.d"
  "/root/repo/tests/integration/suite_mapping_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/suite_mapping_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/suite_mapping_test.cpp.o.d"
  "/root/repo/tests/integration/systems_test.cpp" "tests/CMakeFiles/integration_tests.dir/integration/systems_test.cpp.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/systems_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/report/CMakeFiles/ftspm_report.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ftspm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/ftspm_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ftspm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ftspm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/ftspm_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ftspm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/ftspm_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftspm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
