
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/baseline_mapper_test.cpp" "tests/CMakeFiles/core_tests.dir/core/baseline_mapper_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/baseline_mapper_test.cpp.o.d"
  "/root/repo/tests/core/endurance_test.cpp" "tests/CMakeFiles/core_tests.dir/core/endurance_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/endurance_test.cpp.o.d"
  "/root/repo/tests/core/energy_hybrid_test.cpp" "tests/CMakeFiles/core_tests.dir/core/energy_hybrid_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/energy_hybrid_test.cpp.o.d"
  "/root/repo/tests/core/estimator_consistency_test.cpp" "tests/CMakeFiles/core_tests.dir/core/estimator_consistency_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/estimator_consistency_test.cpp.o.d"
  "/root/repo/tests/core/estimator_test.cpp" "tests/CMakeFiles/core_tests.dir/core/estimator_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/estimator_test.cpp.o.d"
  "/root/repo/tests/core/mapping_determiner_test.cpp" "tests/CMakeFiles/core_tests.dir/core/mapping_determiner_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/mapping_determiner_test.cpp.o.d"
  "/root/repo/tests/core/mapping_plan_test.cpp" "tests/CMakeFiles/core_tests.dir/core/mapping_plan_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/mapping_plan_test.cpp.o.d"
  "/root/repo/tests/core/mda_threshold_sweep_test.cpp" "tests/CMakeFiles/core_tests.dir/core/mda_threshold_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/mda_threshold_sweep_test.cpp.o.d"
  "/root/repo/tests/core/partition_test.cpp" "tests/CMakeFiles/core_tests.dir/core/partition_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/partition_test.cpp.o.d"
  "/root/repo/tests/core/spm_config_test.cpp" "tests/CMakeFiles/core_tests.dir/core/spm_config_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/spm_config_test.cpp.o.d"
  "/root/repo/tests/core/system_campaign_test.cpp" "tests/CMakeFiles/core_tests.dir/core/system_campaign_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/system_campaign_test.cpp.o.d"
  "/root/repo/tests/core/transfer_schedule_test.cpp" "tests/CMakeFiles/core_tests.dir/core/transfer_schedule_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/transfer_schedule_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/report/CMakeFiles/ftspm_report.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ftspm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/ftspm_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ftspm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ftspm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/ftspm_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ftspm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/ftspm_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftspm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
