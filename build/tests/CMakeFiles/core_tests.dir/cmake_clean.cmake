file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/baseline_mapper_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/baseline_mapper_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/endurance_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/endurance_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/energy_hybrid_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/energy_hybrid_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/estimator_consistency_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/estimator_consistency_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/estimator_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/estimator_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/mapping_determiner_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/mapping_determiner_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/mapping_plan_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/mapping_plan_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/mda_threshold_sweep_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/mda_threshold_sweep_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/partition_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/partition_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/spm_config_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/spm_config_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/system_campaign_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/system_campaign_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/transfer_schedule_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/transfer_schedule_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
