# Empty dependencies file for ecc_tests.
# This may be replaced when dependencies are built.
