# Empty compiler generated dependencies file for profile_tests.
# This may be replaced when dependencies are built.
