file(REMOVE_RECURSE
  "CMakeFiles/profile_tests.dir/profile/profiler_test.cpp.o"
  "CMakeFiles/profile_tests.dir/profile/profiler_test.cpp.o.d"
  "CMakeFiles/profile_tests.dir/profile/reuse_test.cpp.o"
  "CMakeFiles/profile_tests.dir/profile/reuse_test.cpp.o.d"
  "profile_tests"
  "profile_tests.pdb"
  "profile_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
