# Empty compiler generated dependencies file for case_study_summary.
# This may be replaced when dependencies are built.
