file(REMOVE_RECURSE
  "CMakeFiles/case_study_summary.dir/case_study_summary.cpp.o"
  "CMakeFiles/case_study_summary.dir/case_study_summary.cpp.o.d"
  "case_study_summary"
  "case_study_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_study_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
