# Empty compiler generated dependencies file for ablation_ispm_sizing.
# This may be replaced when dependencies are built.
