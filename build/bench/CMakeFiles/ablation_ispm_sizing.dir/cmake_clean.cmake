file(REMOVE_RECURSE
  "CMakeFiles/ablation_ispm_sizing.dir/ablation_ispm_sizing.cpp.o"
  "CMakeFiles/ablation_ispm_sizing.dir/ablation_ispm_sizing.cpp.o.d"
  "ablation_ispm_sizing"
  "ablation_ispm_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ispm_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
