file(REMOVE_RECURSE
  "CMakeFiles/fig8_endurance.dir/fig8_endurance.cpp.o"
  "CMakeFiles/fig8_endurance.dir/fig8_endurance.cpp.o.d"
  "fig8_endurance"
  "fig8_endurance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_endurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
