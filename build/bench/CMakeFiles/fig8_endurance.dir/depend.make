# Empty dependencies file for fig8_endurance.
# This may be replaced when dependencies are built.
