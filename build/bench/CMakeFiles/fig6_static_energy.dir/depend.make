# Empty dependencies file for fig6_static_energy.
# This may be replaced when dependencies are built.
