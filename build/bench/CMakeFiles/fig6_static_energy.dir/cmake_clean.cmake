file(REMOVE_RECURSE
  "CMakeFiles/fig6_static_energy.dir/fig6_static_energy.cpp.o"
  "CMakeFiles/fig6_static_energy.dir/fig6_static_energy.cpp.o.d"
  "fig6_static_energy"
  "fig6_static_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_static_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
