# Empty compiler generated dependencies file for fig2_case_rw_dist.
# This may be replaced when dependencies are built.
