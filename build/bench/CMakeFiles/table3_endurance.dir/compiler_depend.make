# Empty compiler generated dependencies file for table3_endurance.
# This may be replaced when dependencies are built.
