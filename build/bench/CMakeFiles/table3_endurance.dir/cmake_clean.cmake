file(REMOVE_RECURSE
  "CMakeFiles/table3_endurance.dir/table3_endurance.cpp.o"
  "CMakeFiles/table3_endurance.dir/table3_endurance.cpp.o.d"
  "table3_endurance"
  "table3_endurance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_endurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
