# Empty compiler generated dependencies file for fig3_energy_per_access.
# This may be replaced when dependencies are built.
