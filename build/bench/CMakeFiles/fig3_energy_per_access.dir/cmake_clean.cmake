file(REMOVE_RECURSE
  "CMakeFiles/fig3_energy_per_access.dir/fig3_energy_per_access.cpp.o"
  "CMakeFiles/fig3_energy_per_access.dir/fig3_energy_per_access.cpp.o.d"
  "fig3_energy_per_access"
  "fig3_energy_per_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_energy_per_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
