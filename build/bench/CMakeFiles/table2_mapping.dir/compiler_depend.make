# Empty compiler generated dependencies file for table2_mapping.
# This may be replaced when dependencies are built.
