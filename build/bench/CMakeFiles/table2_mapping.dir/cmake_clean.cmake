file(REMOVE_RECURSE
  "CMakeFiles/table2_mapping.dir/table2_mapping.cpp.o"
  "CMakeFiles/table2_mapping.dir/table2_mapping.cpp.o.d"
  "table2_mapping"
  "table2_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
