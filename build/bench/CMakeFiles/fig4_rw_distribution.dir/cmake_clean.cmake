file(REMOVE_RECURSE
  "CMakeFiles/fig4_rw_distribution.dir/fig4_rw_distribution.cpp.o"
  "CMakeFiles/fig4_rw_distribution.dir/fig4_rw_distribution.cpp.o.d"
  "fig4_rw_distribution"
  "fig4_rw_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_rw_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
