file(REMOVE_RECURSE
  "CMakeFiles/ablation_technology_node.dir/ablation_technology_node.cpp.o"
  "CMakeFiles/ablation_technology_node.dir/ablation_technology_node.cpp.o.d"
  "ablation_technology_node"
  "ablation_technology_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_technology_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
