# Empty dependencies file for ablation_technology_node.
# This may be replaced when dependencies are built.
