file(REMOVE_RECURSE
  "CMakeFiles/ablation_region_sizing.dir/ablation_region_sizing.cpp.o"
  "CMakeFiles/ablation_region_sizing.dir/ablation_region_sizing.cpp.o.d"
  "ablation_region_sizing"
  "ablation_region_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_region_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
