# Empty dependencies file for ablation_region_sizing.
# This may be replaced when dependencies are built.
