file(REMOVE_RECURSE
  "CMakeFiles/fig7_dynamic_energy.dir/fig7_dynamic_energy.cpp.o"
  "CMakeFiles/fig7_dynamic_energy.dir/fig7_dynamic_energy.cpp.o.d"
  "fig7_dynamic_energy"
  "fig7_dynamic_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_dynamic_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
