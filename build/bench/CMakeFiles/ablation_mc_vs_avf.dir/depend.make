# Empty dependencies file for ablation_mc_vs_avf.
# This may be replaced when dependencies are built.
