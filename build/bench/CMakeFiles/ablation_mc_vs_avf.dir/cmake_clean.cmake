file(REMOVE_RECURSE
  "CMakeFiles/ablation_mc_vs_avf.dir/ablation_mc_vs_avf.cpp.o"
  "CMakeFiles/ablation_mc_vs_avf.dir/ablation_mc_vs_avf.cpp.o.d"
  "ablation_mc_vs_avf"
  "ablation_mc_vs_avf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mc_vs_avf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
