file(REMOVE_RECURSE
  "CMakeFiles/ablation_relaxed_stt.dir/ablation_relaxed_stt.cpp.o"
  "CMakeFiles/ablation_relaxed_stt.dir/ablation_relaxed_stt.cpp.o.d"
  "ablation_relaxed_stt"
  "ablation_relaxed_stt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_relaxed_stt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
