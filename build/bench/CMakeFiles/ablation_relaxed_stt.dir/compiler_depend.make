# Empty compiler generated dependencies file for ablation_relaxed_stt.
# This may be replaced when dependencies are built.
