file(REMOVE_RECURSE
  "CMakeFiles/ablation_vs_energy_hybrid.dir/ablation_vs_energy_hybrid.cpp.o"
  "CMakeFiles/ablation_vs_energy_hybrid.dir/ablation_vs_energy_hybrid.cpp.o.d"
  "ablation_vs_energy_hybrid"
  "ablation_vs_energy_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_vs_energy_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
