# Empty dependencies file for ablation_vs_energy_hybrid.
# This may be replaced when dependencies are built.
