# Empty dependencies file for ablation_priority_modes.
# This may be replaced when dependencies are built.
