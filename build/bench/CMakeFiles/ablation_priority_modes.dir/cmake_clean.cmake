file(REMOVE_RECURSE
  "CMakeFiles/ablation_priority_modes.dir/ablation_priority_modes.cpp.o"
  "CMakeFiles/ablation_priority_modes.dir/ablation_priority_modes.cpp.o.d"
  "ablation_priority_modes"
  "ablation_priority_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_priority_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
