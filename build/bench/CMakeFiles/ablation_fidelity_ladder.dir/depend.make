# Empty dependencies file for ablation_fidelity_ladder.
# This may be replaced when dependencies are built.
