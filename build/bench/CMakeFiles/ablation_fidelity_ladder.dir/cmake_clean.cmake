file(REMOVE_RECURSE
  "CMakeFiles/ablation_fidelity_ladder.dir/ablation_fidelity_ladder.cpp.o"
  "CMakeFiles/ablation_fidelity_ladder.dir/ablation_fidelity_ladder.cpp.o.d"
  "ablation_fidelity_ladder"
  "ablation_fidelity_ladder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fidelity_ladder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
