file(REMOVE_RECURSE
  "CMakeFiles/ftspm_tool.dir/ftspm_tool.cpp.o"
  "CMakeFiles/ftspm_tool.dir/ftspm_tool.cpp.o.d"
  "ftspm_tool"
  "ftspm_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftspm_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
