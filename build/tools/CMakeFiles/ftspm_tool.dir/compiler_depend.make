# Empty compiler generated dependencies file for ftspm_tool.
# This may be replaced when dependencies are built.
