file(REMOVE_RECURSE
  "CMakeFiles/ftspm_profile.dir/profiler.cpp.o"
  "CMakeFiles/ftspm_profile.dir/profiler.cpp.o.d"
  "CMakeFiles/ftspm_profile.dir/reuse.cpp.o"
  "CMakeFiles/ftspm_profile.dir/reuse.cpp.o.d"
  "libftspm_profile.a"
  "libftspm_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftspm_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
