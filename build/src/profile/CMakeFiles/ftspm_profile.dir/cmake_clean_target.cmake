file(REMOVE_RECURSE
  "libftspm_profile.a"
)
