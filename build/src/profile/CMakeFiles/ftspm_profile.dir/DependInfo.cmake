
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/profiler.cpp" "src/profile/CMakeFiles/ftspm_profile.dir/profiler.cpp.o" "gcc" "src/profile/CMakeFiles/ftspm_profile.dir/profiler.cpp.o.d"
  "/root/repo/src/profile/reuse.cpp" "src/profile/CMakeFiles/ftspm_profile.dir/reuse.cpp.o" "gcc" "src/profile/CMakeFiles/ftspm_profile.dir/reuse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/ftspm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftspm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
