# Empty compiler generated dependencies file for ftspm_profile.
# This may be replaced when dependencies are built.
