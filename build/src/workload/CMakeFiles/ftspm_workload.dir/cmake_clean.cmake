file(REMOVE_RECURSE
  "CMakeFiles/ftspm_workload.dir/case_study.cpp.o"
  "CMakeFiles/ftspm_workload.dir/case_study.cpp.o.d"
  "CMakeFiles/ftspm_workload.dir/program.cpp.o"
  "CMakeFiles/ftspm_workload.dir/program.cpp.o.d"
  "CMakeFiles/ftspm_workload.dir/suite.cpp.o"
  "CMakeFiles/ftspm_workload.dir/suite.cpp.o.d"
  "CMakeFiles/ftspm_workload.dir/trace.cpp.o"
  "CMakeFiles/ftspm_workload.dir/trace.cpp.o.d"
  "CMakeFiles/ftspm_workload.dir/trace_builder.cpp.o"
  "CMakeFiles/ftspm_workload.dir/trace_builder.cpp.o.d"
  "CMakeFiles/ftspm_workload.dir/trace_io.cpp.o"
  "CMakeFiles/ftspm_workload.dir/trace_io.cpp.o.d"
  "libftspm_workload.a"
  "libftspm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftspm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
