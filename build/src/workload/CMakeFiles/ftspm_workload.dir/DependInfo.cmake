
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/case_study.cpp" "src/workload/CMakeFiles/ftspm_workload.dir/case_study.cpp.o" "gcc" "src/workload/CMakeFiles/ftspm_workload.dir/case_study.cpp.o.d"
  "/root/repo/src/workload/program.cpp" "src/workload/CMakeFiles/ftspm_workload.dir/program.cpp.o" "gcc" "src/workload/CMakeFiles/ftspm_workload.dir/program.cpp.o.d"
  "/root/repo/src/workload/suite.cpp" "src/workload/CMakeFiles/ftspm_workload.dir/suite.cpp.o" "gcc" "src/workload/CMakeFiles/ftspm_workload.dir/suite.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/ftspm_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/ftspm_workload.dir/trace.cpp.o.d"
  "/root/repo/src/workload/trace_builder.cpp" "src/workload/CMakeFiles/ftspm_workload.dir/trace_builder.cpp.o" "gcc" "src/workload/CMakeFiles/ftspm_workload.dir/trace_builder.cpp.o.d"
  "/root/repo/src/workload/trace_io.cpp" "src/workload/CMakeFiles/ftspm_workload.dir/trace_io.cpp.o" "gcc" "src/workload/CMakeFiles/ftspm_workload.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ftspm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
