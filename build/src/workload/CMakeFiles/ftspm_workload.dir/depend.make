# Empty dependencies file for ftspm_workload.
# This may be replaced when dependencies are built.
