file(REMOVE_RECURSE
  "libftspm_workload.a"
)
