file(REMOVE_RECURSE
  "CMakeFiles/ftspm_ecc.dir/parity_codec.cpp.o"
  "CMakeFiles/ftspm_ecc.dir/parity_codec.cpp.o.d"
  "CMakeFiles/ftspm_ecc.dir/secded_codec.cpp.o"
  "CMakeFiles/ftspm_ecc.dir/secded_codec.cpp.o.d"
  "libftspm_ecc.a"
  "libftspm_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftspm_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
