# Empty dependencies file for ftspm_ecc.
# This may be replaced when dependencies are built.
