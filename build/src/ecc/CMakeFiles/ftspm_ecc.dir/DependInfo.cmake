
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecc/parity_codec.cpp" "src/ecc/CMakeFiles/ftspm_ecc.dir/parity_codec.cpp.o" "gcc" "src/ecc/CMakeFiles/ftspm_ecc.dir/parity_codec.cpp.o.d"
  "/root/repo/src/ecc/secded_codec.cpp" "src/ecc/CMakeFiles/ftspm_ecc.dir/secded_codec.cpp.o" "gcc" "src/ecc/CMakeFiles/ftspm_ecc.dir/secded_codec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ftspm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
