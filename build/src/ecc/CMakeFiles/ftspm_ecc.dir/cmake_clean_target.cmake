file(REMOVE_RECURSE
  "libftspm_ecc.a"
)
