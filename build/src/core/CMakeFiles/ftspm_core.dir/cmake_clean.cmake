file(REMOVE_RECURSE
  "CMakeFiles/ftspm_core.dir/baseline_mapper.cpp.o"
  "CMakeFiles/ftspm_core.dir/baseline_mapper.cpp.o.d"
  "CMakeFiles/ftspm_core.dir/endurance.cpp.o"
  "CMakeFiles/ftspm_core.dir/endurance.cpp.o.d"
  "CMakeFiles/ftspm_core.dir/energy_hybrid_mapper.cpp.o"
  "CMakeFiles/ftspm_core.dir/energy_hybrid_mapper.cpp.o.d"
  "CMakeFiles/ftspm_core.dir/mapping_determiner.cpp.o"
  "CMakeFiles/ftspm_core.dir/mapping_determiner.cpp.o.d"
  "CMakeFiles/ftspm_core.dir/mapping_plan.cpp.o"
  "CMakeFiles/ftspm_core.dir/mapping_plan.cpp.o.d"
  "CMakeFiles/ftspm_core.dir/partition.cpp.o"
  "CMakeFiles/ftspm_core.dir/partition.cpp.o.d"
  "CMakeFiles/ftspm_core.dir/scenario_estimator.cpp.o"
  "CMakeFiles/ftspm_core.dir/scenario_estimator.cpp.o.d"
  "CMakeFiles/ftspm_core.dir/spm_config.cpp.o"
  "CMakeFiles/ftspm_core.dir/spm_config.cpp.o.d"
  "CMakeFiles/ftspm_core.dir/system_campaign.cpp.o"
  "CMakeFiles/ftspm_core.dir/system_campaign.cpp.o.d"
  "CMakeFiles/ftspm_core.dir/systems.cpp.o"
  "CMakeFiles/ftspm_core.dir/systems.cpp.o.d"
  "CMakeFiles/ftspm_core.dir/transfer_schedule.cpp.o"
  "CMakeFiles/ftspm_core.dir/transfer_schedule.cpp.o.d"
  "libftspm_core.a"
  "libftspm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftspm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
