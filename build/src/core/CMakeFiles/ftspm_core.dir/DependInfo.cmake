
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline_mapper.cpp" "src/core/CMakeFiles/ftspm_core.dir/baseline_mapper.cpp.o" "gcc" "src/core/CMakeFiles/ftspm_core.dir/baseline_mapper.cpp.o.d"
  "/root/repo/src/core/endurance.cpp" "src/core/CMakeFiles/ftspm_core.dir/endurance.cpp.o" "gcc" "src/core/CMakeFiles/ftspm_core.dir/endurance.cpp.o.d"
  "/root/repo/src/core/energy_hybrid_mapper.cpp" "src/core/CMakeFiles/ftspm_core.dir/energy_hybrid_mapper.cpp.o" "gcc" "src/core/CMakeFiles/ftspm_core.dir/energy_hybrid_mapper.cpp.o.d"
  "/root/repo/src/core/mapping_determiner.cpp" "src/core/CMakeFiles/ftspm_core.dir/mapping_determiner.cpp.o" "gcc" "src/core/CMakeFiles/ftspm_core.dir/mapping_determiner.cpp.o.d"
  "/root/repo/src/core/mapping_plan.cpp" "src/core/CMakeFiles/ftspm_core.dir/mapping_plan.cpp.o" "gcc" "src/core/CMakeFiles/ftspm_core.dir/mapping_plan.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/core/CMakeFiles/ftspm_core.dir/partition.cpp.o" "gcc" "src/core/CMakeFiles/ftspm_core.dir/partition.cpp.o.d"
  "/root/repo/src/core/scenario_estimator.cpp" "src/core/CMakeFiles/ftspm_core.dir/scenario_estimator.cpp.o" "gcc" "src/core/CMakeFiles/ftspm_core.dir/scenario_estimator.cpp.o.d"
  "/root/repo/src/core/spm_config.cpp" "src/core/CMakeFiles/ftspm_core.dir/spm_config.cpp.o" "gcc" "src/core/CMakeFiles/ftspm_core.dir/spm_config.cpp.o.d"
  "/root/repo/src/core/system_campaign.cpp" "src/core/CMakeFiles/ftspm_core.dir/system_campaign.cpp.o" "gcc" "src/core/CMakeFiles/ftspm_core.dir/system_campaign.cpp.o.d"
  "/root/repo/src/core/systems.cpp" "src/core/CMakeFiles/ftspm_core.dir/systems.cpp.o" "gcc" "src/core/CMakeFiles/ftspm_core.dir/systems.cpp.o.d"
  "/root/repo/src/core/transfer_schedule.cpp" "src/core/CMakeFiles/ftspm_core.dir/transfer_schedule.cpp.o" "gcc" "src/core/CMakeFiles/ftspm_core.dir/transfer_schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ftspm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/ftspm_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/ftspm_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ftspm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ftspm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftspm_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/ftspm_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
