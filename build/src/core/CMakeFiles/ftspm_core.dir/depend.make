# Empty dependencies file for ftspm_core.
# This may be replaced when dependencies are built.
