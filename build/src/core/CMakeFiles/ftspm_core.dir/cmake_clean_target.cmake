file(REMOVE_RECURSE
  "libftspm_core.a"
)
