# Empty dependencies file for ftspm_fault.
# This may be replaced when dependencies are built.
