
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/avf.cpp" "src/fault/CMakeFiles/ftspm_fault.dir/avf.cpp.o" "gcc" "src/fault/CMakeFiles/ftspm_fault.dir/avf.cpp.o.d"
  "/root/repo/src/fault/injector.cpp" "src/fault/CMakeFiles/ftspm_fault.dir/injector.cpp.o" "gcc" "src/fault/CMakeFiles/ftspm_fault.dir/injector.cpp.o.d"
  "/root/repo/src/fault/strike_model.cpp" "src/fault/CMakeFiles/ftspm_fault.dir/strike_model.cpp.o" "gcc" "src/fault/CMakeFiles/ftspm_fault.dir/strike_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/ftspm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/ftspm_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ftspm_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
