file(REMOVE_RECURSE
  "CMakeFiles/ftspm_fault.dir/avf.cpp.o"
  "CMakeFiles/ftspm_fault.dir/avf.cpp.o.d"
  "CMakeFiles/ftspm_fault.dir/injector.cpp.o"
  "CMakeFiles/ftspm_fault.dir/injector.cpp.o.d"
  "CMakeFiles/ftspm_fault.dir/strike_model.cpp.o"
  "CMakeFiles/ftspm_fault.dir/strike_model.cpp.o.d"
  "libftspm_fault.a"
  "libftspm_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftspm_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
