file(REMOVE_RECURSE
  "libftspm_fault.a"
)
