file(REMOVE_RECURSE
  "libftspm_sim.a"
)
