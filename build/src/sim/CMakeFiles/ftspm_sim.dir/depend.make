# Empty dependencies file for ftspm_sim.
# This may be replaced when dependencies are built.
