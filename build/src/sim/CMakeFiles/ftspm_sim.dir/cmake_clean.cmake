file(REMOVE_RECURSE
  "CMakeFiles/ftspm_sim.dir/cache.cpp.o"
  "CMakeFiles/ftspm_sim.dir/cache.cpp.o.d"
  "CMakeFiles/ftspm_sim.dir/simulator.cpp.o"
  "CMakeFiles/ftspm_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/ftspm_sim.dir/spm.cpp.o"
  "CMakeFiles/ftspm_sim.dir/spm.cpp.o.d"
  "libftspm_sim.a"
  "libftspm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftspm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
