# Empty compiler generated dependencies file for ftspm_util.
# This may be replaced when dependencies are built.
