file(REMOVE_RECURSE
  "libftspm_util.a"
)
