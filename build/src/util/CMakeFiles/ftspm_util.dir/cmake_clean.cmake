file(REMOVE_RECURSE
  "CMakeFiles/ftspm_util.dir/args.cpp.o"
  "CMakeFiles/ftspm_util.dir/args.cpp.o.d"
  "CMakeFiles/ftspm_util.dir/format.cpp.o"
  "CMakeFiles/ftspm_util.dir/format.cpp.o.d"
  "CMakeFiles/ftspm_util.dir/json.cpp.o"
  "CMakeFiles/ftspm_util.dir/json.cpp.o.d"
  "CMakeFiles/ftspm_util.dir/rng.cpp.o"
  "CMakeFiles/ftspm_util.dir/rng.cpp.o.d"
  "CMakeFiles/ftspm_util.dir/table.cpp.o"
  "CMakeFiles/ftspm_util.dir/table.cpp.o.d"
  "libftspm_util.a"
  "libftspm_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftspm_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
