file(REMOVE_RECURSE
  "libftspm_mem.a"
)
