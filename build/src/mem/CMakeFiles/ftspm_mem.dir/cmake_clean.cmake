file(REMOVE_RECURSE
  "CMakeFiles/ftspm_mem.dir/geometry.cpp.o"
  "CMakeFiles/ftspm_mem.dir/geometry.cpp.o.d"
  "CMakeFiles/ftspm_mem.dir/technology_library.cpp.o"
  "CMakeFiles/ftspm_mem.dir/technology_library.cpp.o.d"
  "libftspm_mem.a"
  "libftspm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftspm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
