# Empty compiler generated dependencies file for ftspm_mem.
# This may be replaced when dependencies are built.
