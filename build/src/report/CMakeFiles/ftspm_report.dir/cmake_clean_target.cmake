file(REMOVE_RECURSE
  "libftspm_report.a"
)
