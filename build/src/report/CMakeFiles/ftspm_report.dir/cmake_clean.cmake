file(REMOVE_RECURSE
  "CMakeFiles/ftspm_report.dir/csv_export.cpp.o"
  "CMakeFiles/ftspm_report.dir/csv_export.cpp.o.d"
  "CMakeFiles/ftspm_report.dir/json_report.cpp.o"
  "CMakeFiles/ftspm_report.dir/json_report.cpp.o.d"
  "CMakeFiles/ftspm_report.dir/render.cpp.o"
  "CMakeFiles/ftspm_report.dir/render.cpp.o.d"
  "CMakeFiles/ftspm_report.dir/suite_runner.cpp.o"
  "CMakeFiles/ftspm_report.dir/suite_runner.cpp.o.d"
  "libftspm_report.a"
  "libftspm_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftspm_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
