# Empty compiler generated dependencies file for ftspm_report.
# This may be replaced when dependencies are built.
