// ftspm_tool — command-line driver over the whole library.
//
//   ftspm_tool list
//   ftspm_tool profile  <workload> [--scale N] [--csv]
//   ftspm_tool map      <workload> [--priority P] [--perf-overhead F]
//                       [--energy-overhead F] [--write-threshold N]
//                       [--word-threshold N] [--scale N]
//   ftspm_tool simulate <workload> [--structure ftspm|sram|stt] [--scale N]
//   ftspm_tool evaluate <workload> [--scale N]
//   ftspm_tool schedule <workload> [--scale N] [--max-commands N]
//   ftspm_tool suite    [--scale N]
//   ftspm_tool stats    <workload> [--structure ftspm|sram|stt] [--scale N]
//   ftspm_tool campaign [--protection parity|secded] [--strikes N]
//                       [--interleave K] [--node NM] [--shards N]
//                       [--checkpoint FILE] [--resume FILE]
//                       [--checkpoint-interval N]
//                       [--recover] [--scrub-interval N]
//                       [--dirty-fraction F] [--refetch-words N]
//                       [--sensitivity-out FILE] [--sensitivity-buckets N]
//                       [--json] [--csv]
//
//   ftspm_tool serve    [--socket PATH] [--tcp PORT] [--max-queue N]
//                       [--max-connections N] [--max-frame-bytes N]
//   ftspm_tool load     [--socket PATH] [--tcp PORT] [--connections N]
//                       [--requests N] [--mix name:w[:strikes],...]
//                       [--rate R] [--seed N] [--quick] [--json] [--csv]
//   ftspm_tool runs list [--ledger FILE] [--last N]
//   ftspm_tool compare <runA> <runB> [--ledger FILE] [--threshold PCT]
//                      [--metric NAME]
//   ftspm_tool report <run> [--metrics FILE] [--sensitivity FILE]
//                     [--html FILE] [--out-csv FILE]
//   ftspm_tool report trend [--csv]
//
// Global options (accepted by every command, any position):
//   --trace-out FILE    write a Chrome trace-event JSON of the run
//   --metrics-out FILE  write the metrics registry snapshot as JSON
//   --events-out FILE   write the structured NDJSON event log
//   --heartbeat-out FILE        live NDJSON heartbeats (campaign)
//   --heartbeat-interval-ms N   milliseconds between heartbeats (1000)
//   --ledger FILE       append this run's record to an NDJSON ledger
//   --run-id NAME       ledger record id (default run-<index>)
//   --progress          report progress on stderr (suite/report/campaign)
//   --jobs N            worker threads for suite/report/campaign
//                       (default 1 = serial; 0 = hardware concurrency)
//
// Workloads: `case_study` (the paper's Section-IV program) or any
// MiBench-style suite name (`ftspm_tool list`).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "ftspm/core/partition.h"
#include "ftspm/core/system_campaign.h"
#include "ftspm/core/systems.h"
#include "ftspm/core/transfer_schedule.h"
#include "ftspm/exec/parallel_campaign.h"
#include "ftspm/exec/thread_pool.h"
#include "ftspm/obs/event_log.h"
#include "ftspm/obs/ledger.h"
#include "ftspm/obs/metrics.h"
#include "ftspm/obs/timer.h"
#include "ftspm/obs/trace_sink.h"
#include "ftspm/profile/reuse.h"
#include "ftspm/fault/injector.h"
#include "ftspm/fault/sensitivity.h"
#include "ftspm/report/campaign_report.h"
#include "ftspm/report/csv_export.h"
#include "ftspm/report/json_report.h"
#include "ftspm/report/render.h"
#include "ftspm/report/run_compare.h"
#include "ftspm/report/saturation.h"
#include "ftspm/report/suite_runner.h"
#include "ftspm/serve/client.h"
#include "ftspm/serve/load.h"
#include "ftspm/serve/server.h"
#include "ftspm/util/args.h"
#include "ftspm/util/error.h"
#include "ftspm/util/format.h"
#include "ftspm/util/table.h"
#include "ftspm/util/version.h"
#include "ftspm/workload/case_study.h"
#include "ftspm/workload/trace_io.h"
#include "ftspm/workload/suite.h"

namespace ftspm {
namespace {

/// Options every subcommand accepts (extracted before subcommand
/// parsing so they work in any argv position).
struct GlobalOptions {
  std::string trace_out;
  std::string metrics_out;
  std::string events_out;
  std::string heartbeat_out;
  std::uint32_t heartbeat_interval_ms = 1000;
  std::string ledger;  ///< Append a run record here (campaign/suite).
  std::string run_id;  ///< Ledger id override (default run-<index>).
  bool progress = false;
  std::uint32_t jobs = 1;  // 0 = hardware concurrency
};

/// Owns the observability state for one tool invocation: enables the
/// registry when any output was requested, installs the trace sink for
/// the duration of the command, and writes the files at the end.
class ObsSession {
 public:
  explicit ObsSession(GlobalOptions opts) : opts_(std::move(opts)) {
    if (!opts_.trace_out.empty() || !opts_.metrics_out.empty() ||
        !opts_.events_out.empty())
      obs::set_enabled(true);
    if (!opts_.trace_out.empty()) {
      sink_ = std::make_unique<obs::TraceEventSink>();
      scope_ = std::make_unique<obs::TraceScope>(sink_.get());
    }
    if (!opts_.events_out.empty()) {
      events_ = std::make_unique<obs::EventLog>();
      event_scope_ = std::make_unique<obs::EventLogScope>(events_.get());
    }
  }

  bool progress() const noexcept { return opts_.progress; }
  std::uint32_t jobs() const noexcept { return opts_.jobs; }
  const GlobalOptions& options() const noexcept { return opts_; }

  /// Hands the --trace-out destination to a command that records its
  /// own trace in the wall-clock domain (`serve`) and disarms the
  /// simulated-time sink, so finish() neither clobbers the file nor
  /// reports a second write. Returns the path (empty when none).
  std::string take_trace_out() {
    scope_.reset();
    sink_.reset();
    std::string path = std::move(opts_.trace_out);
    opts_.trace_out.clear();
    return path;
  }

  /// Writes the requested artefacts. Called after the command ran so
  /// I/O errors surface as a nonzero exit instead of dying in a dtor.
  void finish() {
    if (sink_ != nullptr) {
      scope_.reset();
      sink_->write_file(opts_.trace_out);
      std::cerr << "wrote trace (" << sink_->event_count() << " events) to "
                << opts_.trace_out << "\n";
    }
    if (!opts_.metrics_out.empty()) {
      std::ofstream out(opts_.metrics_out);
      FTSPM_CHECK(out.good(), "cannot open " + opts_.metrics_out);
      out << obs::registry().to_json() << "\n";
      FTSPM_CHECK(out.good(), "write failed for " + opts_.metrics_out);
      std::cerr << "wrote metrics to " << opts_.metrics_out << "\n";
    }
    if (events_ != nullptr) {
      event_scope_.reset();
      events_->write_file(opts_.events_out);
      std::cerr << "wrote event log (" << events_->record_count()
                << " records) to " << opts_.events_out << "\n";
    }
  }

 private:
  GlobalOptions opts_;
  std::unique_ptr<obs::TraceEventSink> sink_;
  std::unique_ptr<obs::TraceScope> scope_;
  std::unique_ptr<obs::EventLog> events_;
  std::unique_ptr<obs::EventLogScope> event_scope_;
};

/// The invocation's session, set by dispatch() before any cmd_* runs.
ObsSession* g_session = nullptr;

bool progress_requested() {
  return g_session != nullptr && g_session->progress();
}

/// Worker threads requested via the global --jobs option; resolves the
/// "0 = auto" spelling so callers see a concrete count.
std::uint32_t jobs_requested() {
  const std::uint32_t jobs = g_session != nullptr ? g_session->jobs() : 1;
  return jobs == 0 ? exec::default_jobs() : jobs;
}

/// Pulls --trace-out/--metrics-out/--progress out of argv; everything
/// else passes through (in order) to the subcommand's own parser.
std::vector<std::string> extract_global_options(int argc,
                                                const char* const* argv,
                                                GlobalOptions& g) {
  std::vector<std::string> rest;
  rest.reserve(static_cast<std::size_t>(argc));
  auto take_value = [&](std::string_view arg, std::string_view name,
                        std::string* out, int& i) {
    if (arg == name) {
      FTSPM_REQUIRE(i + 1 < argc,
                    std::string(name) + " requires a file argument");
      *out = argv[++i];
      return true;
    }
    if (arg.size() > name.size() + 1 &&
        arg.substr(0, name.size()) == name && arg[name.size()] == '=') {
      *out = std::string(arg.substr(name.size() + 1));
      return true;
    }
    return false;
  };
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--progress") {
      g.progress = true;
      continue;
    }
    if (take_value(arg, "--trace-out", &g.trace_out, i)) continue;
    if (take_value(arg, "--metrics-out", &g.metrics_out, i)) continue;
    if (take_value(arg, "--events-out", &g.events_out, i)) continue;
    if (take_value(arg, "--heartbeat-out", &g.heartbeat_out, i)) continue;
    if (take_value(arg, "--ledger", &g.ledger, i)) continue;
    if (take_value(arg, "--run-id", &g.run_id, i)) continue;
    // stoul stops at the first non-digit, so "8x" would silently parse
    // as 8; demand that the whole token was consumed.
    auto parse_count = [](std::string_view name, const std::string& text,
                          unsigned long max) {
      try {
        std::size_t consumed = 0;
        const unsigned long v = std::stoul(text, &consumed);
        if (consumed != text.size())
          throw InvalidArgument(std::string(name) + " value '" + text +
                                "' has trailing characters");
        if (v > max)
          throw InvalidArgument(std::string(name) + " must be at most " +
                                std::to_string(max));
        return v;
      } catch (const InvalidArgument&) {
        throw;
      } catch (const std::exception&) {
        throw InvalidArgument(std::string(name) +
                              " requires a non-negative integer");
      }
    };
    std::string jobs_text;
    if (take_value(arg, "--jobs", &jobs_text, i)) {
      g.jobs =
          static_cast<std::uint32_t>(parse_count("--jobs", jobs_text, 1024));
      continue;
    }
    std::string interval_text;
    if (take_value(arg, "--heartbeat-interval-ms", &interval_text, i)) {
      const unsigned long v =
          parse_count("--heartbeat-interval-ms", interval_text, 3600000);
      FTSPM_REQUIRE(v > 0, "--heartbeat-interval-ms must be positive");
      g.heartbeat_interval_ms = static_cast<std::uint32_t>(v);
      continue;
    }
    rest.emplace_back(arg);
  }
  return rest;
}

/// Appends one run record to the --ledger file; a no-op when the
/// option is absent. Fills the id: --run-id wins, else run-<index>
/// over the records already in the file. Indexing uses the lenient
/// scan so one torn line (a crashed appender) cannot brick every
/// future append to the ledger.
void append_run_record(obs::LedgerRecord record) {
  if (g_session == nullptr) return;
  const GlobalOptions& g = g_session->options();
  if (g.ledger.empty()) return;
  record.id =
      !g.run_id.empty()
          ? g.run_id
          : "run-" + std::to_string(obs::scan_ledger(g.ledger).records.size());
  obs::append_ledger(record, g.ledger);
  std::cerr << "appended run '" << record.id << "' to " << g.ledger << "\n";
}

/// The ledger the read-side commands (`runs`, `compare`) consult:
/// --ledger when given, else the conventional ./ledger.jsonl.
std::string ledger_path_or_default() {
  const std::string path =
      g_session != nullptr ? g_session->options().ledger : std::string();
  return path.empty() ? "ledger.jsonl" : path;
}

/// Progress reporter for the suite-shaped commands; ETA comes from the
/// wall clock (reporting only — results stay deterministic).
SuiteProgress make_suite_progress() {
  if (!progress_requested()) return {};
  const auto start = std::chrono::steady_clock::now();
  return [start](std::size_t done, std::size_t total,
                 const std::string& name) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const double eta =
        done ? elapsed / static_cast<double>(done) *
                   static_cast<double>(total - done)
             : 0.0;
    std::cerr << "[" << done << "/" << total << "] " << name << "  (ETA "
              << fixed(eta, 1) << "s)\n";
  };
}

Workload resolve_workload(const std::string& name, std::uint64_t scale) {
  // Anything that looks like a path is loaded from the trace format.
  if (name.find('/') != std::string::npos ||
      name.find(".trace") != std::string::npos) {
    return load_workload(name);
  }
  if (name == "case_study") {
    return make_case_study(scale > 1 ? CaseStudyTargets{}.scaled_down(scale)
                                     : CaseStudyTargets{});
  }
  for (MiBenchmark bench : all_benchmarks())
    if (name == to_string(bench)) return make_benchmark(bench, scale);
  throw InvalidArgument("unknown workload '" + name +
                        "' (try `ftspm_tool list`)");
}

OptimizationPriority resolve_priority(const std::string& name) {
  for (OptimizationPriority p :
       {OptimizationPriority::Reliability, OptimizationPriority::Performance,
        OptimizationPriority::Power, OptimizationPriority::Endurance})
    if (name == to_string(p)) return p;
  throw InvalidArgument("unknown priority '" + name + "'");
}

MdaConfig mda_config_from(const ArgParser& args) {
  MdaConfig cfg;
  cfg.priority = resolve_priority(args.option("priority"));
  cfg.thresholds.performance_overhead = args.option_double("perf-overhead");
  cfg.thresholds.energy_overhead = args.option_double("energy-overhead");
  cfg.thresholds.write_cycles_threshold =
      static_cast<std::uint64_t>(args.option_int("write-threshold"));
  cfg.thresholds.word_write_threshold =
      static_cast<std::uint64_t>(args.option_int("word-threshold"));
  return cfg;
}

void add_common_options(ArgParser& args) {
  args.add_option("scale", "trace scale divisor (1 = full size)", "1");
  args.add_option("priority",
                  "MDA priority: reliability|performance|power|endurance",
                  "reliability");
  args.add_option("perf-overhead", "MDA performance threshold", "0.75");
  args.add_option("energy-overhead", "MDA energy threshold", "0.80");
  args.add_option("write-threshold", "MDA block write-cycles threshold",
                  "100000");
  args.add_option("word-threshold", "MDA per-word write threshold (0=off)",
                  "1000");
}

int cmd_list() {
  std::cout << "case_study  (the paper's Section-IV motivational example)\n";
  for (MiBenchmark bench : all_benchmarks())
    std::cout << to_string(bench) << "\n";
  return 0;
}

int cmd_profile(int argc, const char* const* argv) {
  ArgParser args("ftspm_tool profile", "profile a workload (Table I)");
  args.add_option("scale", "trace scale divisor", "1");
  args.add_flag("csv", "emit CSV instead of an ASCII table");
  args.parse(argc, argv, 2);
  FTSPM_REQUIRE(args.positionals().size() == 1, "expected one workload name");
  const Workload w = resolve_workload(
      args.positionals()[0],
      static_cast<std::uint64_t>(args.option_int("scale")));
  const ProgramProfile prof = profile_workload(w);
  if (args.flag("csv")) {
    CsvWriter csv({"block", "kind", "size_bytes", "reads", "writes",
                   "references", "stack_calls", "max_stack_bytes",
                   "lifetime_cycles", "ace_cycles", "max_word_writes"});
    for (const BlockProfile& bp : prof.blocks) {
      const Block& blk = w.program.block(bp.id);
      csv.add_row({blk.name, to_string(blk.kind),
                   std::to_string(blk.size_bytes), std::to_string(bp.reads),
                   std::to_string(bp.writes), std::to_string(bp.references),
                   std::to_string(bp.stack_calls),
                   std::to_string(bp.max_stack_bytes),
                   std::to_string(bp.lifetime_cycles),
                   std::to_string(bp.ace_cycles),
                   std::to_string(bp.max_word_writes)});
    }
    std::cout << csv.render();
  } else {
    std::cout << render_profile_table(w.program, prof);
  }
  return 0;
}

int cmd_map(int argc, const char* const* argv) {
  ArgParser args("ftspm_tool map", "run MDA on a workload (Table II)");
  add_common_options(args);
  args.parse(argc, argv, 2);
  FTSPM_REQUIRE(args.positionals().size() == 1, "expected one workload name");
  const Workload w = resolve_workload(
      args.positionals()[0],
      static_cast<std::uint64_t>(args.option_int("scale")));
  const ProgramProfile prof = profile_workload(w);
  const StructureEvaluator evaluator(TechnologyLibrary(),
                                     mda_config_from(args));
  const SystemResult r = evaluator.evaluate_ftspm(w, prof);
  std::cout << render_mapping_table(w.program, r.plan,
                                    evaluator.ftspm_layout());
  return 0;
}

int cmd_simulate(int argc, const char* const* argv) {
  ArgParser args("ftspm_tool simulate",
                 "simulate a workload on one structure");
  add_common_options(args);
  args.add_option("structure", "ftspm|sram|stt", "ftspm");
  args.add_flag("blocks", "print the per-block diagnostic table");
  args.parse(argc, argv, 2);
  FTSPM_REQUIRE(args.positionals().size() == 1, "expected one workload name");
  const Workload w = resolve_workload(
      args.positionals()[0],
      static_cast<std::uint64_t>(args.option_int("scale")));
  const ProgramProfile prof = profile_workload(w);
  const StructureEvaluator evaluator(TechnologyLibrary(),
                                     mda_config_from(args));

  const std::string structure = args.option("structure");
  SystemResult r = [&] {
    if (structure == "ftspm") return evaluator.evaluate_ftspm(w, prof);
    if (structure == "sram") return evaluator.evaluate_pure_sram(w, prof);
    if (structure == "stt") return evaluator.evaluate_pure_stt(w, prof);
    throw InvalidArgument("unknown structure '" + structure + "'");
  }();
  const SpmLayout& layout = structure == "ftspm"
                                ? evaluator.ftspm_layout()
                                : (structure == "sram"
                                       ? evaluator.pure_sram_layout()
                                       : evaluator.pure_stt_layout());

  std::cout << render_rw_distribution(layout, r.run) << "\n";
  if (args.flag("blocks"))
    std::cout << render_block_report(w.program, r, layout, prof,
                                     evaluator.strike_model())
              << "\n";
  std::cout << "cycles:             " << with_commas(r.run.total_cycles)
            << "  (compute " << with_commas(r.run.compute_cycles) << ", SPM "
            << with_commas(r.run.spm_cycles) << ", cache "
            << with_commas(r.run.cache_cycles) << ", DRAM "
            << with_commas(r.run.dram_penalty_cycles) << ", DMA "
            << with_commas(r.run.dma_cycles) << ")\n";
  std::cout << "SPM dynamic energy: "
            << si_string(r.run.spm_dynamic_energy_pj() * 1e-12, "J") << "\n";
  std::cout << "SPM static energy:  "
            << si_string(r.run.spm_static_energy_pj * 1e-12, "J") << "\n";
  std::cout << "vulnerability:      " << percent(r.avf.vulnerability())
            << "  (SDC " << percent(r.avf.sdc_avf) << ", DUE "
            << percent(r.avf.due_avf) << ")\n";
  std::cout << "max STT write rate: "
            << (r.endurance.unlimited()
                    ? std::string("none (unlimited endurance)")
                    : fixed(r.endurance.max_word_write_rate_per_s, 2) +
                          "/s")
            << "\n";
  return 0;
}

int cmd_evaluate(int argc, const char* const* argv) {
  ArgParser args("ftspm_tool evaluate",
                 "compare all three structures on a workload");
  add_common_options(args);
  args.add_flag("json", "emit machine-readable JSON");
  args.parse(argc, argv, 2);
  FTSPM_REQUIRE(args.positionals().size() == 1, "expected one workload name");
  const std::uint64_t scale =
      static_cast<std::uint64_t>(args.option_int("scale"));
  const Workload w = resolve_workload(args.positionals()[0], scale);
  const StructureEvaluator evaluator(TechnologyLibrary(),
                                     mda_config_from(args));
  if (args.flag("json")) {
    const RunManifest manifest{"ftspm_tool evaluate", args.positionals()[0],
                               scale, 0};
    const ProgramProfile prof = profile_workload(w);
    std::cout << "[" << system_result_json(evaluator.evaluate_ftspm(w, prof),
                                           evaluator.ftspm_layout(),
                                           w.program, manifest)
              << ","
              << system_result_json(evaluator.evaluate_pure_sram(w, prof),
                                    evaluator.pure_sram_layout(), w.program,
                                    manifest)
              << ","
              << system_result_json(evaluator.evaluate_pure_stt(w, prof),
                                    evaluator.pure_stt_layout(), w.program,
                                    manifest)
              << "]\n";
    return 0;
  }
  AsciiTable t({"Structure", "Cycles", "Vulnerability", "Dyn E (uJ)",
                "Stat E (uJ)", "Max STT wr/s"});
  t.set_align(0, Align::Left);
  for (const SystemResult& r : evaluator.evaluate_all(w)) {
    t.add_row({r.structure, with_commas(r.run.total_cycles),
               fixed(r.avf.vulnerability(), 4),
               fixed(r.run.spm_dynamic_energy_pj() / 1e6, 1),
               fixed(r.run.spm_static_energy_pj / 1e6, 1),
               r.endurance.unlimited()
                   ? "unlimited"
                   : fixed(r.endurance.max_word_write_rate_per_s, 2)});
  }
  std::cout << t.render();
  return 0;
}

int cmd_schedule(int argc, const char* const* argv) {
  ArgParser args("ftspm_tool schedule",
                 "emit the on-line phase transfer commands");
  add_common_options(args);
  args.add_option("max-commands", "listing length cap", "40");
  args.parse(argc, argv, 2);
  FTSPM_REQUIRE(args.positionals().size() == 1, "expected one workload name");
  const Workload w = resolve_workload(
      args.positionals()[0],
      static_cast<std::uint64_t>(args.option_int("scale")));
  const ProgramProfile prof = profile_workload(w);
  const StructureEvaluator evaluator(TechnologyLibrary(),
                                     mda_config_from(args));
  const SystemResult r = evaluator.evaluate_ftspm(w, prof);
  const TransferSchedule sched = TransferSchedule::generate(
      w.program, prof, r.plan, evaluator.ftspm_layout());
  std::cout << sched.render(
      w.program, evaluator.ftspm_layout(),
      static_cast<std::size_t>(args.option_int("max-commands")));
  return 0;
}

int cmd_suite(int argc, const char* const* argv) {
  ArgParser args("ftspm_tool suite", "run the full evaluation sweep");
  args.add_option("scale", "trace scale divisor", "1");
  args.add_flag("json", "emit machine-readable JSON");
  args.parse(argc, argv, 2);
  const std::uint64_t scale =
      static_cast<std::uint64_t>(args.option_int("scale"));
  const StructureEvaluator evaluator;
  const auto wall_start = std::chrono::steady_clock::now();
  const std::vector<SuiteRow> rows = run_suite_parallel(
      evaluator, scale, jobs_requested(), make_suite_progress());
  {
    obs::LedgerRecord record;
    record.command = "suite";
    record.workload = "suite";
    record.scale = scale;
    record.jobs = jobs_requested();
    for (const SuiteRow& row : rows) {
      record.counters.emplace_back(row.name + ".cycles",
                                   row.ftspm.run.total_cycles);
      record.metrics.emplace_back(row.name + ".vulnerability",
                                  row.ftspm.avf.vulnerability());
    }
    record.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
    append_run_record(std::move(record));
  }
  if (args.flag("json")) {
    std::cout << suite_json(rows, evaluator,
                            RunManifest{"ftspm_tool suite", "suite", scale, 0})
              << "\n";
    return 0;
  }
  AsciiTable t({"Benchmark", "Vuln FT", "Vuln SRAM", "Dyn FT/SRAM",
                "Dyn FT/STT", "Endurance gain"});
  for (const SuiteRow& row : rows) {
    const double ft_rate = row.ftspm.endurance.max_word_write_rate_per_s;
    t.add_row({row.name, fixed(row.ftspm.avf.vulnerability(), 4),
               fixed(row.pure_sram.avf.vulnerability(), 4),
               percent(row.ftspm.run.spm_dynamic_energy_pj() /
                       row.pure_sram.run.spm_dynamic_energy_pj()),
               percent(row.ftspm.run.spm_dynamic_energy_pj() /
                       row.pure_stt.run.spm_dynamic_energy_pj()),
               ft_rate > 0
                   ? fixed(row.pure_stt.endurance.max_word_write_rate_per_s /
                               ft_rate,
                           0) +
                         "x"
                   : "unlimited"});
  }
  std::cout << t.render();
  return 0;
}

int cmd_reuse(int argc, const char* const* argv) {
  ArgParser args("ftspm_tool reuse",
                 "LRU reuse-distance analysis of a workload");
  args.add_option("scale", "trace scale divisor", "8");
  args.add_option("line-bytes", "cache line size", "32");
  args.add_option("scope", "data|instructions", "data");
  args.parse(argc, argv, 2);
  FTSPM_REQUIRE(args.positionals().size() == 1, "expected one workload name");
  const Workload w = resolve_workload(
      args.positionals()[0],
      static_cast<std::uint64_t>(args.option_int("scale")));
  const ReuseScope scope = args.option("scope") == "instructions"
                               ? ReuseScope::Instructions
                               : ReuseScope::Data;
  const ReuseProfile prof = compute_reuse_profile(
      w, scope, static_cast<std::uint32_t>(args.option_int("line-bytes")));
  std::cout << "accesses: " << with_commas(prof.total_accesses)
            << ", mean finite reuse distance "
            << fixed(prof.mean_finite_distance(), 1) << " lines\n";
  AsciiTable t({"Distance (lines)", "Accesses", "Share"});
  t.set_align(0, Align::Left);
  for (std::size_t k = 0; k < ReuseProfile::kBuckets; ++k) {
    if (prof.histogram[k] == 0) continue;
    std::string label;
    if (k + 1 == ReuseProfile::kBuckets) {
      label = "cold / beyond horizon";
    } else if (k == 0) {
      label = "[0, 2)";
    } else {
      label = "[" + std::to_string(1ULL << k) + ", " +
              std::to_string(1ULL << (k + 1)) + ")";
    }
    t.add_row({label, with_commas(prof.histogram[k]),
               percent(static_cast<double>(prof.histogram[k]) /
                       prof.total_accesses)});
  }
  std::cout << t.render();
  for (std::uint64_t lines : {64ull, 256ull, 1024ull}) {
    std::cout << "predicted hit rate @ " << lines
              << "-line LRU cache: " << percent(prof.hit_rate_estimate(lines))
              << "\n";
  }
  return 0;
}

int cmd_partition(int argc, const char* const* argv) {
  ArgParser args("ftspm_tool partition",
                 "split the hybrid SPM among a weighted task set");
  args.add_option("scale", "trace scale divisor", "2");
  args.add_option("granule", "allocation granule in bytes", "512");
  args.parse(argc, argv, 2);
  // Positionals: workload[:weight] ...
  FTSPM_REQUIRE(!args.positionals().empty(),
                "expected one or more workload[:weight] arguments");
  std::vector<Workload> workloads;
  std::vector<double> weights;
  for (const std::string& spec : args.positionals()) {
    std::string name = spec;
    double weight = 1.0;
    if (const auto colon = spec.rfind(':'); colon != std::string::npos) {
      name = spec.substr(0, colon);
      // std::stod would throw std::invalid_argument (exit 1, no usage
      // hint) on "jpeg:abc" and silently accept "jpeg:1.5x"; parse with
      // strtod and demand full consumption of a positive finite value.
      const std::string text = spec.substr(colon + 1);
      char* end = nullptr;
      weight = std::strtod(text.c_str(), &end);
      if (text.empty() || end != text.c_str() + text.size() ||
          !std::isfinite(weight) || weight <= 0.0)
        throw InvalidArgument("bad weight in '" + spec +
                              "': expected a positive number after ':'");
    }
    workloads.push_back(resolve_workload(
        name, static_cast<std::uint64_t>(args.option_int("scale"))));
    weights.push_back(weight);
  }
  std::vector<TaskSpec> tasks;
  for (std::size_t i = 0; i < workloads.size(); ++i)
    tasks.push_back(TaskSpec{&workloads[i], weights[i]});
  PartitionConfig pcfg;
  pcfg.granule_bytes =
      static_cast<std::uint64_t>(args.option_int("granule"));
  const PartitionResult result = partition_and_evaluate(
      tasks, TechnologyLibrary(), MdaConfig{}, FtspmDimensions{}, pcfg);

  AsciiTable t({"Task", "Weight", "I-SPM B", "D-STT B", "D-ECC B",
                "D-Par B", "Cycles", "Vulnerability"});
  t.set_align(0, Align::Left);
  for (const TaskPartition& task : result.tasks) {
    t.add_row({task.task_name, fixed(task.weight, 1),
               with_commas(task.dims.ispm_bytes),
               with_commas(task.dims.dspm_stt_bytes),
               with_commas(task.dims.dspm_secded_bytes),
               with_commas(task.dims.dspm_parity_bytes),
               with_commas(task.result.run.total_cycles),
               fixed(task.result.avf.vulnerability(), 4)});
  }
  std::cout << t.render();
  std::cout << "weighted vulnerability: "
            << fixed(result.weighted_vulnerability(), 4) << "\n";
  return 0;
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FTSPM_REQUIRE(in.good(), "cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// `report trend`: the whole ledger reduced to its strikes/sec and
/// residual-SDC-rate trajectories, as a table or CSV.
int cmd_report_trend(int argc, const char* const* argv) {
  ArgParser args("ftspm_tool report trend",
                 "throughput and residual-SDC trajectories over the ledger");
  args.add_flag("csv", "emit CSV instead of an ASCII table");
  args.parse(argc, argv, 3);
  FTSPM_REQUIRE(args.positionals().empty(),
                "report trend takes no further arguments");
  const std::string path = ledger_path_or_default();
  const obs::LedgerScan scan = obs::scan_ledger(path);
  for (const std::string& warning : scan.warnings)
    std::cerr << "warning: " << warning << "\n";
  if (scan.records.empty()) {
    std::cout << "ledger " << path << " has no runs\n";
    return 0;
  }
  const std::vector<report::TrendPoint> points =
      report::ledger_trend(scan.records);
  if (args.flag("csv"))
    std::cout << report::trend_csv(points);
  else
    std::cout << report::trend_table(points);
  return 0;
}

/// `report <run>`: one completed run rendered as a self-contained HTML
/// report (heatmaps, outcome tables, percentiles) plus optional CSV.
int cmd_report_run(int argc, const char* const* argv) {
  ArgParser args("ftspm_tool report <run>",
                 "render one completed campaign run as HTML (+ CSV)");
  args.add_option("metrics",
                  "the run's metrics snapshot JSON (--metrics-out file)", "");
  args.add_option("sensitivity",
                  "the run's sensitivity grid CSV (--sensitivity-out file)",
                  "");
  args.add_option("html", "HTML output path", "ftspm_report.html");
  args.add_option("out-csv", "also write the report as CSV to FILE", "");
  args.parse(argc, argv, 2);
  FTSPM_REQUIRE(args.positionals().size() == 1,
                "expected one run reference (id or index)");
  const std::string path = ledger_path_or_default();
  const obs::LedgerScan scan = obs::scan_ledger(path);
  for (const std::string& warning : scan.warnings)
    std::cerr << "warning: " << warning << "\n";
  const obs::LedgerRecord* run =
      obs::find_run(scan.records, args.positionals()[0]);
  if (run == nullptr)
    throw InvalidArgument("run '" + args.positionals()[0] +
                          "' not found in " + path);

  report::CampaignReportInput input;
  input.record = *run;
  if (!args.option("metrics").empty())
    input.metrics = parse_json(read_text_file(args.option("metrics")));
  if (!args.option("sensitivity").empty())
    input.grid =
        SensitivityGrid::from_csv(read_text_file(args.option("sensitivity")));

  const std::string html_path = args.option("html");
  {
    std::ofstream out(html_path, std::ios::binary);
    FTSPM_CHECK(out.good(), "cannot open " + html_path);
    out << report::campaign_report_html(input);
    FTSPM_CHECK(out.good(), "write failed for " + html_path);
  }
  std::cout << "wrote report for run '" << run->id << "' to " << html_path
            << "\n";
  if (!args.option("out-csv").empty()) {
    std::ofstream out(args.option("out-csv"), std::ios::binary);
    FTSPM_CHECK(out.good(), "cannot open " + args.option("out-csv"));
    out << report::campaign_report_csv(input);
    FTSPM_CHECK(out.good(), "write failed for " + args.option("out-csv"));
    std::cout << "wrote report CSV to " << args.option("out-csv") << "\n";
  }
  return 0;
}

/// `report saturation`: render a BENCH_saturation.json sweep (see
/// bench/saturation_sweep.cpp) as the knee chart HTML, plus optional
/// CSV for external plotting.
int cmd_report_saturation(int argc, const char* const* argv) {
  ArgParser args("ftspm_tool report saturation",
                 "render a saturation sweep artefact as the knee chart");
  args.add_option("in", "the sweep artefact", "BENCH_saturation.json");
  args.add_option("html", "HTML output path", "ftspm_saturation.html");
  args.add_option("out-csv", "also write the flat CSV to FILE", "");
  args.parse(argc, argv, 3);
  FTSPM_REQUIRE(args.positionals().empty(),
                "report saturation takes no further arguments");
  const report::SaturationSweep sweep = report::saturation_from_json(
      parse_json(read_text_file(args.option("in"))));

  const std::string html_path = args.option("html");
  {
    std::ofstream out(html_path, std::ios::binary);
    FTSPM_CHECK(out.good(), "cannot open " + html_path);
    out << report::saturation_report_html(sweep);
    FTSPM_CHECK(out.good(), "write failed for " + html_path);
  }
  const std::size_t knee = report::saturation_knee_index(sweep);
  std::cout << "wrote saturation report (" << sweep.steps.size()
            << " rungs) to " << html_path << "\n";
  if (knee < sweep.steps.size())
    std::cout << "saturation knee at rate " << sweep.steps[knee].rate
              << " req/s per connection (shed "
              << fixed(sweep.steps[knee].shed_rate * 100.0, 1) << "%)\n";
  else
    std::cout << "no saturation knee inside the swept rates\n";
  if (!args.option("out-csv").empty()) {
    std::ofstream out(args.option("out-csv"), std::ios::binary);
    FTSPM_CHECK(out.good(), "cannot open " + args.option("out-csv"));
    out << report::saturation_report_csv(sweep);
    FTSPM_CHECK(out.good(), "write failed for " + args.option("out-csv"));
    std::cout << "wrote saturation CSV to " << args.option("out-csv")
              << "\n";
  }
  return 0;
}

int cmd_report(int argc, const char* const* argv) {
  // Four shapes share the verb: `report` (the historical full-suite
  // CSV export), `report trend`, `report saturation`, and
  // `report <run>` — disambiguated by the first positional so the
  // historical spelling keeps working.
  if (argc > 2) {
    const std::string_view first = argv[2];
    if (first == "trend") return cmd_report_trend(argc, argv);
    if (first == "saturation") return cmd_report_saturation(argc, argv);
    if (!first.empty() && first[0] != '-') return cmd_report_run(argc, argv);
  }
  ArgParser args("ftspm_tool report",
                 "write every table/figure as CSV for external plotting");
  args.add_option("scale", "trace scale divisor for the suite", "1");
  args.add_option("out-dir", "output directory", "ftspm_report");
  args.parse(argc, argv, 2);
  const StructureEvaluator evaluator;
  const std::vector<SuiteRow> rows = run_suite_parallel(
      evaluator, static_cast<std::uint64_t>(args.option_int("scale")),
      jobs_requested(), make_suite_progress());
  for (const std::string& path :
       write_all_csv(evaluator, rows, args.option("out-dir")))
    std::cout << "wrote " << path << "\n";
  return 0;
}

int cmd_campaign(int argc, const char* const* argv) {
  ArgParser args("ftspm_tool campaign",
                 "Monte-Carlo strike campaign on one protected surface");
  args.add_option("protection", "parity|secded|none", "secded");
  args.add_option("strikes", "number of simulated strikes", "100000");
  args.add_option("interleave", "physical bit interleaving degree", "1");
  args.add_option("node", "process node in nm (multiplicity model)", "40");
  args.add_option("size", "surface payload size in bytes", "8192");
  args.add_option("occupancy", "ACE occupancy of the surface [0,1]", "1.0");
  args.add_option("shards", "campaign shards (0 = one per job)", "0");
  args.add_option("checkpoint", "write resumable progress to FILE", "");
  args.add_option("resume", "resume from a checkpoint FILE", "");
  args.add_option("checkpoint-interval",
                  "strikes between checkpoint writes", "1048576");
  args.add_flag("recover", "repair demand-read errors (live-array mode)");
  args.add_option("scrub-interval",
                  "strikes between scrub sweeps (0 = no scrubbing)", "0");
  args.add_option("dirty-fraction",
                  "probability a DUE word is dirty (unrecoverable)", "0.25");
  args.add_option("refetch-words", "words per DUE re-fetch transfer", "64");
  args.add_option("sensitivity-out",
                  "write the per-region fault-sensitivity grid CSV to FILE",
                  "");
  args.add_option("sensitivity-buckets",
                  "address buckets per region in the sensitivity grid", "64");
  args.add_flag("json", "emit machine-readable JSON");
  args.add_flag("csv", "emit a single-row CSV");
  args.add_flag("time", "report wall-clock time and strikes/sec (stderr)");
  args.parse(argc, argv, 2);

  const std::string name = args.option("protection");
  ProtectionKind kind;
  std::uint32_t check_bits;
  if (name == "parity") {
    kind = ProtectionKind::Parity;
    check_bits = 1;
  } else if (name == "secded") {
    kind = ProtectionKind::SecDed;
    check_bits = 8;
  } else if (name == "none") {
    kind = ProtectionKind::None;
    check_bits = 0;
  } else {
    throw InvalidArgument("unknown protection '" + name + "'");
  }

  const InjectionRegion region{
      RegionGeometry(static_cast<std::uint64_t>(args.option_int("size")),
                     check_bits),
      kind, args.option_double("occupancy", 0.0, 1.0),
      static_cast<std::uint32_t>(args.option_int("interleave"))};
  CampaignConfig cfg;
  cfg.strikes = static_cast<std::uint64_t>(args.option_int("strikes"));
  if (progress_requested()) {
    cfg.progress_interval = std::max<std::uint64_t>(1, cfg.strikes / 20);
    const auto start = std::chrono::steady_clock::now();
    cfg.progress = [start](std::uint64_t done, std::uint64_t total) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      const double eta = done ? elapsed / static_cast<double>(done) *
                                    static_cast<double>(total - done)
                              : 0.0;
      std::cerr << "strikes " << done << "/" << total << "  ("
                << percent(static_cast<double>(done) /
                           static_cast<double>(total))
                << ", ETA " << fixed(eta, 1) << "s)\n";
    };
  }
  exec::ExecConfig exec_cfg;
  exec_cfg.jobs = jobs_requested();
  exec_cfg.shards = static_cast<std::uint32_t>(args.option_int("shards"));
  exec_cfg.checkpoint_path = args.option("checkpoint");
  exec_cfg.resume_path = args.option("resume");
  exec_cfg.checkpoint_interval =
      static_cast<std::uint64_t>(args.option_int("checkpoint-interval"));
  if (g_session != nullptr) {
    exec_cfg.heartbeat.out_path = g_session->options().heartbeat_out;
    exec_cfg.heartbeat.interval_ms = g_session->options().heartbeat_interval_ms;
    exec_cfg.heartbeat.stderr_line = progress_requested();
  }
  const StrikeMultiplicityModel strikes =
      StrikeMultiplicityModel::for_node(args.option_double("node"));

  // Recovery setup. With neither --recover nor --scrub-interval the
  // policy is inactive and the recovery entry points delegate to the
  // static campaign, reproducing its counters (and this command's
  // historical stdout) bit for bit.
  const RecoveryPolicy policy = make_recovery_policy(
      SimConfig{}, args.flag("recover"),
      static_cast<std::uint64_t>(args.option_int("scrub-interval")));
  RecoveryRegion rregion;
  rregion.inject = region;
  const TechnologyLibrary lib;
  rregion.tech = kind == ProtectionKind::SecDed
                     ? lib.secded_sram()
                     : (kind == ProtectionKind::Parity
                            ? lib.parity_sram()
                            : lib.unprotected_sram());
  rregion.dirty_fraction = args.option_double("dirty-fraction", 0.0, 1.0);
  rregion.refetch_words =
      static_cast<std::uint64_t>(args.option_int("refetch-words"));
  rregion.scrub = kind == ProtectionKind::SecDed;

  // Sensitivity grid: opt-in via --sensitivity-out. The grid never
  // affects counters or RNG draws, and the sharded runner merges its
  // per-shard grids in shard order, so the CSV is byte-identical for a
  // fixed (seed, strikes, shard count) whatever --jobs says.
  const std::string sensitivity_out = args.option("sensitivity-out");
  const std::uint32_t sensitivity_buckets = static_cast<std::uint32_t>(
      args.option_uint("sensitivity-buckets", 1u << 20));
  FTSPM_REQUIRE(sensitivity_buckets > 0,
                "--sensitivity-buckets must be positive");

  // The serial path is the golden reference; only engage the sharded
  // engine when a parallel/resumable feature was actually asked for.
  // The heartbeat emitter lives in the sharded runner, so asking for
  // one engages it too (with its defaults: one shard per job).
  const bool wants_exec = exec_cfg.jobs > 1 || exec_cfg.shards > 1 ||
                          !exec_cfg.checkpoint_path.empty() ||
                          !exec_cfg.resume_path.empty() ||
                          exec_cfg.heartbeat.enabled();
  RecoveryResult result;
  SensitivityGrid grid;
  std::uint32_t used_jobs = 1;
  std::uint32_t used_shards = 1;
  const auto wall_start = std::chrono::steady_clock::now();
  {
    // --time books the run into the obs wall-timer registry (forcing
    // observability on for the duration so the timer is live); the
    // reading happens after the scope closes the span.
    std::optional<obs::EnabledScope> timed;
    std::optional<obs::ScopedTimer> span;
    if (args.flag("time")) {
      timed.emplace(true);
      span.emplace("campaign.wall");
    }
    if (wants_exec) {
      if (!sensitivity_out.empty())
        exec_cfg.sensitivity_buckets = sensitivity_buckets;
      exec::RecoveryShardedRun run = exec::run_recovery_campaign_sharded(
          {rregion}, strikes, cfg, policy, exec_cfg);
      result = run.merged;
      grid = std::move(run.sensitivity);
      used_jobs = exec_cfg.effective_jobs();
      used_shards = static_cast<std::uint32_t>(run.shard_results.size());
      // Informational only, and on stderr: stdout must stay byte-identical
      // for a given (seed, strikes, shard count) whatever --jobs says.
      std::cerr << "shards " << run.shard_results.size() << ", jobs "
                << exec_cfg.effective_jobs() << "\n";
    } else {
      if (!sensitivity_out.empty())
        grid = make_sensitivity_grid(std::vector<RecoveryRegion>{rregion},
                                     sensitivity_buckets);
      result = run_recovery_campaign({rregion}, strikes, cfg, policy,
                                     grid.active() ? &grid : nullptr);
    }
  }
  if (!sensitivity_out.empty()) {
    // Labelled registry entries first, so a --metrics-out snapshot
    // written at session end carries the per-region outcome breakdown.
    emit_sensitivity_metrics(grid, policy.active() ? "recovery" : "static");
    std::ofstream out(sensitivity_out, std::ios::binary);
    FTSPM_CHECK(out.good(), "cannot open " + sensitivity_out);
    out << grid.to_csv();
    FTSPM_CHECK(out.good(), "write failed for " + sensitivity_out);
    std::cerr << "wrote sensitivity grid to " << sensitivity_out << "\n";
  }
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();
  const double strikes_per_sec =
      wall_ms > 0.0 ? static_cast<double>(cfg.strikes) * 1e3 / wall_ms : 0.0;
  if (args.flag("time")) {
    // Wall time is machine-dependent, so like the shard note it goes to
    // stderr: stdout stays byte-identical run to run.
    const obs::TimerStat& wall = obs::registry().timer("campaign.wall");
    const double seconds = static_cast<double>(wall.total_ns()) * 1e-9;
    const double rate = seconds > 0.0
                            ? static_cast<double>(cfg.strikes) / seconds
                            : 0.0;
    std::cerr << "wall time " << fixed(seconds * 1e3, 3) << " ms, "
              << with_commas(static_cast<std::uint64_t>(rate))
              << " strikes/sec\n";
  }
  const CampaignResult& r = result.strikes;
  const RecoveryCounters* rec = policy.active() ? &result.recovery : nullptr;

  if (obs::EventLog* events = obs::current_event_log()) {
    std::vector<obs::TraceArg> fields;
    fields.push_back(obs::TraceArg::str("protection", name));
    fields.push_back(obs::TraceArg::num("seed", cfg.seed));
    fields.push_back(
        obs::TraceArg::num("shards", static_cast<std::uint64_t>(used_shards)));
    fields.push_back(obs::TraceArg::num("strikes", r.strikes));
    fields.push_back(obs::TraceArg::num("masked", r.masked));
    fields.push_back(obs::TraceArg::num("dre", r.dre));
    fields.push_back(obs::TraceArg::num("due", r.due));
    fields.push_back(obs::TraceArg::num("sdc", r.sdc));
    fields.push_back(obs::TraceArg::num("vulnerability", r.vulnerability()));
    if (rec != nullptr) {
      fields.push_back(obs::TraceArg::num("corrections", rec->corrections));
      fields.push_back(
          obs::TraceArg::num("scrub_corrections", rec->scrub_corrections));
      fields.push_back(obs::TraceArg::num("refetches", rec->refetches));
      fields.push_back(obs::TraceArg::num("unrecoverable", rec->unrecoverable));
      fields.push_back(
          obs::TraceArg::num("recovery_cycles", rec->recovery_cycles));
    }
    events->emit("campaign_summary", r.strikes, std::move(fields));
  }

  // The serve daemon builds its records through the same helper, so a
  // served run and this one-shot path stay construction-identical.
  append_run_record(report::campaign_run_record(r, rec, name, cfg.seed,
                                                used_jobs, used_shards,
                                                wall_ms, strikes_per_sec));

  if (args.flag("json")) {
    const CampaignTiming timing{wall_ms, strikes_per_sec};
    std::cout << campaign_json(r, rec,
                               RunManifest{"ftspm_tool campaign", name, 1,
                                           cfg.seed},
                               args.flag("time") ? &timing : nullptr)
              << "\n";
    return 0;
  }
  if (args.flag("csv")) {
    std::cout << campaign_csv(r, rec);
    return 0;
  }
  std::cout << "strikes: " << with_commas(r.strikes) << "\n"
            << "masked:  " << percent(r.fraction(r.masked)) << "\n"
            << "DRE:     " << percent(r.fraction(r.dre)) << "\n"
            << "DUE:     " << percent(r.fraction(r.due)) << "\n"
            << "SDC:     " << percent(r.fraction(r.sdc)) << "\n"
            << "vulnerability (DUE+SDC): " << percent(r.vulnerability())
            << "\n";
  if (rec != nullptr) {
    std::cout << "demand reads:  " << with_commas(rec->demand_reads) << "\n"
              << "corrections:   " << with_commas(rec->corrections)
              << "  (+" << with_commas(rec->scrub_corrections)
              << " by scrub over " << with_commas(rec->scrub_passes)
              << " passes)\n"
              << "re-fetches:    " << with_commas(rec->refetches) << "\n"
              << "unrecoverable: " << with_commas(rec->unrecoverable) << "\n"
              << "recovery cost: " << with_commas(rec->recovery_cycles)
              << " cycles, "
              << si_string(rec->recovery_energy_pj * 1e-12, "J") << "\n";
  }
  return 0;
}

int cmd_stats(int argc, const char* const* argv) {
  ArgParser args("ftspm_tool stats",
                 "per-phase cycle and energy breakdown of one run");
  add_common_options(args);
  args.add_option("structure", "ftspm|sram|stt", "ftspm");
  args.parse(argc, argv, 2);
  FTSPM_REQUIRE(args.positionals().size() == 1, "expected one workload name");
  const Workload w = resolve_workload(
      args.positionals()[0],
      static_cast<std::uint64_t>(args.option_int("scale")));
  const ProgramProfile prof = profile_workload(w);
  const StructureEvaluator evaluator(TechnologyLibrary(),
                                     mda_config_from(args));

  // Phase attribution is only collected while observability is on.
  const obs::EnabledScope enable(true);
  const std::string structure = args.option("structure");
  const SystemResult r = [&] {
    if (structure == "ftspm") return evaluator.evaluate_ftspm(w, prof);
    if (structure == "sram") return evaluator.evaluate_pure_sram(w, prof);
    if (structure == "stt") return evaluator.evaluate_pure_stt(w, prof);
    throw InvalidArgument("unknown structure '" + structure + "'");
  }();

  AsciiTable t({"Phase", "Cycles", "Compute", "SPM", "Cache", "DRAM", "DMA",
                "Accesses", "Energy (uJ)"});
  t.set_align(0, Align::Left);
  PhaseStats total;
  total.name = "total";
  for (const PhaseStats& p : r.run.phases) {
    t.add_row({p.name, with_commas(p.total_cycles()),
               with_commas(p.compute_cycles), with_commas(p.spm_cycles),
               with_commas(p.cache_cycles),
               with_commas(p.dram_penalty_cycles), with_commas(p.dma_cycles),
               with_commas(p.accesses), fixed(p.energy_pj() / 1e6, 2)});
    total.compute_cycles += p.compute_cycles;
    total.spm_cycles += p.spm_cycles;
    total.cache_cycles += p.cache_cycles;
    total.dram_penalty_cycles += p.dram_penalty_cycles;
    total.dma_cycles += p.dma_cycles;
    total.accesses += p.accesses;
    total.spm_energy_pj += p.spm_energy_pj;
    total.cache_energy_pj += p.cache_energy_pj;
    total.dram_energy_pj += p.dram_energy_pj;
  }
  t.add_row({total.name, with_commas(total.total_cycles()),
             with_commas(total.compute_cycles),
             with_commas(total.spm_cycles), with_commas(total.cache_cycles),
             with_commas(total.dram_penalty_cycles),
             with_commas(total.dma_cycles), with_commas(total.accesses),
             fixed(total.energy_pj() / 1e6, 2)});
  std::cout << t.render();
  std::cout << "run total: " << with_commas(r.run.total_cycles)
            << " cycles, "
            << si_string(r.run.total_dynamic_energy_pj() * 1e-12, "J")
            << " dynamic\n";
  return 0;
}

int cmd_export(int argc, const char* const* argv) {
  ArgParser args("ftspm_tool export",
                 "write a workload out in the trace text format");
  args.add_option("scale", "trace scale divisor", "1");
  args.add_option("out", "output path ('-' = stdout)", "-");
  args.parse(argc, argv, 2);
  FTSPM_REQUIRE(args.positionals().size() == 1, "expected one workload name");
  const Workload w = resolve_workload(
      args.positionals()[0],
      static_cast<std::uint64_t>(args.option_int("scale")));
  if (args.option("out") == "-") {
    std::cout << serialize_workload(w);
  } else {
    save_workload(w, args.option("out"));
    std::cout << "wrote " << w.trace.size() << " events ("
              << with_commas(w.total_accesses()) << " accesses) to "
              << args.option("out") << "\n";
  }
  return 0;
}

int cmd_runs(int argc, const char* const* argv) {
  ArgParser args("ftspm_tool runs", "inspect the run ledger");
  args.add_option("last", "show only the last N runs (0 = all)", "0");
  args.parse(argc, argv, 2);
  FTSPM_REQUIRE(args.positionals().size() == 1 &&
                    args.positionals()[0] == "list",
                "expected `runs list`");
  const std::string path = ledger_path_or_default();
  // Lenient scan: a browsing command should list every run that did
  // parse, not die on the first truncated line (compare stays strict).
  const obs::LedgerScan scan = obs::scan_ledger(path);
  for (const std::string& warning : scan.warnings)
    std::cerr << "warning: " << warning << "\n";
  const std::vector<obs::LedgerRecord>& runs = scan.records;
  if (runs.empty()) {
    std::cout << "ledger " << path << " has no runs\n";
    return 0;
  }
  const std::uint64_t last =
      static_cast<std::uint64_t>(args.option_int("last"));
  const std::size_t first =
      last != 0 && last < runs.size() ? runs.size() - last : 0;
  AsciiTable t({"#", "Id", "Command", "Workload", "Seed", "Shards", "Jobs",
                "Counters", "Wall ms"});
  t.set_align(1, Align::Left);
  t.set_align(2, Align::Left);
  t.set_align(3, Align::Left);
  for (std::size_t i = first; i < runs.size(); ++i) {
    const obs::LedgerRecord& r = runs[i];
    t.add_row({std::to_string(i), r.id, r.command, r.workload,
               std::to_string(r.seed), std::to_string(r.shards),
               std::to_string(r.jobs), std::to_string(r.counters.size()),
               fixed(r.wall_ms, 1)});
  }
  std::cout << t.render();
  return 0;
}

int cmd_compare(int argc, const char* const* argv) {
  ArgParser args("ftspm_tool compare",
                 "diff two ledger runs; nonzero exit on regression");
  args.add_option("threshold",
                  "tolerated |relative delta| in percent (0 = exact)", "0");
  args.add_option("metric", "gate only this counter/metric (default: all)",
                  "");
  args.parse(argc, argv, 2);
  FTSPM_REQUIRE(args.positionals().size() == 2,
                "expected two run references (id or index)");
  const std::string path = ledger_path_or_default();
  const std::vector<obs::LedgerRecord> runs = obs::read_ledger(path);
  const obs::LedgerRecord* a = obs::find_run(runs, args.positionals()[0]);
  const obs::LedgerRecord* b = obs::find_run(runs, args.positionals()[1]);
  if (a == nullptr)
    throw InvalidArgument("run '" + args.positionals()[0] + "' not found in " +
                          path);
  if (b == nullptr)
    throw InvalidArgument("run '" + args.positionals()[1] + "' not found in " +
                          path);
  CompareOptions options;
  options.threshold_pct = args.option_double("threshold", 0.0, 1e6);
  options.metric = args.option("metric");
  const CompareReport report = compare_runs(*a, *b, options);
  std::cout << report.render();
  return report.regression ? 1 : 0;
}

/// The daemon a SIGINT/SIGTERM should drain, published by cmd_serve
/// before the handlers are installed. request_stop() is async-signal-
/// safe (one byte down the wake pipe), so the handler may call it.
std::atomic<serve::Server*> g_serve_daemon{nullptr};

void serve_signal_handler(int) {
  if (serve::Server* daemon = g_serve_daemon.load()) daemon->request_stop();
}

int cmd_serve(int argc, const char* const* argv) {
  ArgParser args("ftspm_tool serve",
                 "long-running campaign daemon (NDJSON over a socket)");
  args.add_option("socket", "unix-domain socket path to bind", "ftspm.sock");
  args.add_option("tcp", "also listen on 127.0.0.1:PORT (0 = unix only)",
                  "0");
  args.add_option("max-queue",
                  "admission queue bound; a full queue answers "
                  "error(overloaded)",
                  "16");
  args.add_option("max-connections",
                  "concurrent client connections before shedding", "64");
  args.add_option("max-frame-bytes", "per-request NDJSON frame cap",
                  "1048576");
  args.add_option("telemetry-out",
                  "append periodic NDJSON registry snapshots to FILE", "");
  args.add_option("telemetry-interval-ms",
                  "ms between telemetry snapshots (1000)", "1000");
  args.parse(argc, argv, 2);
  FTSPM_REQUIRE(args.positionals().empty(),
                "serve takes no positional arguments");

  serve::ServerConfig cfg;
  cfg.socket_path = args.option("socket");
  cfg.tcp_port = static_cast<std::uint16_t>(args.option_uint("tcp", 65535));
  cfg.max_queue = args.option_uint("max-queue", 1u << 20);
  FTSPM_REQUIRE(cfg.max_queue > 0, "--max-queue must be positive");
  cfg.max_connections = args.option_uint("max-connections", 65536);
  FTSPM_REQUIRE(cfg.max_connections > 0,
                "--max-connections must be positive");
  cfg.max_frame_bytes = static_cast<std::size_t>(
      args.option_uint("max-frame-bytes", 1u << 30));
  FTSPM_REQUIRE(cfg.max_frame_bytes >= 1024,
                "--max-frame-bytes must be at least 1024");
  cfg.telemetry_path = args.option("telemetry-out");
  cfg.telemetry_interval_ms = static_cast<std::uint32_t>(
      args.option_uint("telemetry-interval-ms", 3600u * 1000u));
  FTSPM_REQUIRE(cfg.telemetry_interval_ms > 0,
                "--telemetry-interval-ms must be positive");
  cfg.jobs = jobs_requested();
  if (g_session != nullptr) {
    cfg.ledger_path = g_session->options().ledger;
    // The daemon records request-lifecycle spans in wall-clock time;
    // the session's simulated-time sink would record nothing useful.
    cfg.trace_path = g_session->take_trace_out();
  }

  serve::Server server(cfg);
  server.start();
  g_serve_daemon.store(&server);
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  std::cerr << "serving on " << cfg.socket_path;
  if (cfg.tcp_port != 0)
    std::cerr << " and 127.0.0.1:" << server.bound_tcp_port();
  std::cerr << "  (jobs " << cfg.jobs << ", queue " << cfg.max_queue
            << "); SIGTERM drains and exits\n";
  server.wait();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_serve_daemon.store(nullptr);
  const serve::ServerStatus st = server.status();
  std::cerr << "daemon drained: " << st.completed << " completed, "
            << st.rejected_overload << " shed, " << st.cancelled
            << " cancelled, " << st.failed << " failed\n";
  if (!cfg.trace_path.empty())
    std::cerr << "wrote request trace to " << cfg.trace_path << "\n";
  if (!cfg.telemetry_path.empty())
    std::cerr << "wrote telemetry to " << cfg.telemetry_path << "\n";
  return 0;
}

/// `serve-status`: one-shot liveness/telemetry probe of a running
/// daemon — a status frame and a metrics frame over one connection.
/// Exit 2 when the daemon is unreachable, so scripts can distinguish
/// "daemon down" from "probe bug".
int cmd_serve_status(int argc, const char* const* argv) {
  ArgParser args("ftspm_tool serve-status",
                 "query a running daemon's status and metrics frames");
  args.add_option("socket", "daemon unix socket path", "ftspm.sock");
  args.add_option("tcp", "connect to 127.0.0.1:PORT instead", "0");
  args.add_flag("json", "emit the raw frames (status line, metrics line)");
  args.parse(argc, argv, 2);
  FTSPM_REQUIRE(args.positionals().empty(),
                "serve-status takes no positional arguments");
  const std::uint16_t tcp =
      static_cast<std::uint16_t>(args.option_uint("tcp", 65535));

  std::optional<serve::Client> client;
  try {
    client = tcp != 0 ? serve::Client::connect_tcp(tcp)
                      : serve::Client::connect_unix(args.option("socket"));
  } catch (const std::exception& e) {
    std::cerr << "serve-status: " << e.what() << "\n";
    return 2;
  }
  client->send_line(serve::status_request());
  client->send_line(serve::metrics_request());
  // The daemon answers a single connection's frames in request order.
  const JsonValue status = client->next_frame();
  const JsonValue metrics = client->next_frame();

  if (args.flag("json")) {
    std::cout << status.dump() << "\n" << metrics.dump() << "\n";
    return 0;
  }
  const auto num = [](const JsonValue& v, std::string_view key) {
    const JsonValue* f = v.find(key);
    return f != nullptr && f->is_number() ? f->number : 0.0;
  };
  const JsonValue* accepting = status.find("accepting");
  std::cout << "daemon "
            << (accepting != nullptr && accepting->is_bool() &&
                        accepting->boolean
                    ? "accepting"
                    : "draining")
            << "  (uptime " << fixed(num(metrics, "uptime_ms") / 1000.0, 1)
            << " s)\n"
            << "  queued " << num(status, "queued") << ", running "
            << num(status, "running") << " (max queue "
            << num(status, "max_queue") << ", jobs " << num(status, "jobs")
            << ")\n"
            << "  admitted " << num(status, "admitted") << ", completed "
            << num(status, "completed") << ", shed "
            << num(status, "rejected_overload") << ", cancelled "
            << num(status, "cancelled") << ", failed "
            << num(status, "failed") << "\n";
  if (const JsonValue* registry = metrics.find("registry")) {
    const JsonValue* gauges = registry->find("gauges");
    const JsonValue* depth =
        gauges != nullptr ? gauges->find("serve.queue_depth") : nullptr;
    if (depth != nullptr && depth->is_number())
      std::cout << "  queue depth gauge " << depth->number << "\n";
  }
  return 0;
}

int cmd_load(int argc, const char* const* argv) {
  ArgParser args("ftspm_tool load",
                 "YCSB-style load injector for a running serve daemon");
  args.add_option("socket", "daemon unix socket path", "ftspm.sock");
  args.add_option("tcp", "connect to 127.0.0.1:PORT instead", "0");
  args.add_option("connections", "concurrent client connections", "2");
  args.add_option("requests", "total requests across all connections",
                  "16");
  args.add_option("mix",
                  "request mix: name:weight[:strikes],... "
                  "(default: built-in small/medium/large)",
                  "");
  args.add_option("rate",
                  "open-loop arrival rate per connection in req/sec "
                  "(0 = closed loop)",
                  "0");
  args.add_option("seed", "mix RNG seed (reproducible request sequence)",
                  "1");
  args.add_option("fail-on-shed",
                  "exit 1 when the shed rate exceeds PCT percent "
                  "(-1 = never)",
                  "-1");
  args.add_flag("quick", "shrink the built-in mix for smoke tests");
  args.add_flag("json", "emit the machine-readable report");
  args.add_flag("csv", "emit the per-class CSV report");
  args.parse(argc, argv, 2);
  FTSPM_REQUIRE(args.positionals().empty(),
                "load takes no positional arguments");
  const double fail_on_shed = args.option_double("fail-on-shed", -1.0, 100.0);

  serve::LoadConfig cfg;
  cfg.socket_path = args.option("socket");
  cfg.tcp_port = static_cast<std::uint16_t>(args.option_uint("tcp", 65535));
  cfg.connections =
      static_cast<std::uint32_t>(args.option_uint("connections", 1024));
  FTSPM_REQUIRE(cfg.connections > 0, "--connections must be positive");
  cfg.requests = args.option_uint("requests", 1u << 20);
  cfg.rate = args.option_double("rate", 0.0, 1e9);
  cfg.seed = args.option_uint("seed");
  const std::string mix = args.option("mix");
  cfg.classes = mix.empty() ? serve::default_mix(args.flag("quick"))
                            : serve::parse_mix(mix);

  const serve::LoadReport report = serve::run_load(cfg);

  if (args.flag("json")) {
    std::cout << report.to_json() << "\n";
  } else if (args.flag("csv")) {
    std::cout << report.to_csv();
  } else {
    std::cout << "sent " << report.sent << ", completed " << report.completed
              << ", overloaded " << report.overloaded << " ("
              << fixed(report.shed_rate() * 100.0, 1) << "% shed), errors "
              << report.errors << "  (" << fixed(report.wall_ms, 1)
              << " ms wall)\n";
    for (const serve::ClassStats& c : report.classes) {
      std::cout << "  " << c.name << ": sent " << c.sent << ", completed "
                << c.completed << ", overloaded " << c.overloaded
                << ", p50 " << fixed(c.latency_ms.quantile(0.50), 2)
                << " ms, p95 " << fixed(c.latency_ms.quantile(0.95), 2)
                << " ms, p99 " << fixed(c.latency_ms.quantile(0.99), 2)
                << " ms\n";
    }
  }
  // A load run that saw transport-level errors (daemon died mid-run)
  // exits nonzero. Shed (overloaded) requests are expected behaviour
  // under pressure and do not fail the run by default; --fail-on-shed
  // turns the shed rate into a gate for CI-style smoke checks.
  if (report.errors > 0) return 1;
  if (fail_on_shed >= 0.0 && report.shed_rate() * 100.0 > fail_on_shed) {
    std::cerr << "shed rate " << fixed(report.shed_rate() * 100.0, 2)
              << "% exceeds --fail-on-shed " << fixed(fail_on_shed, 2)
              << "%\n";
    return 1;
  }
  return 0;
}

void print_usage(std::ostream& os) {
  os << "ftspm_tool — FTSPM reproduction driver\n"
        "commands:\n"
        "  list                     list available workloads\n"
        "  profile  <workload>      Table-I-style profile (--csv)\n"
        "  map      <workload>      MDA mapping (Table II)\n"
        "  simulate <workload>      one structure end to end\n"
        "  evaluate <workload>      all three structures\n"
        "  stats    <workload>      per-phase cycle/energy breakdown\n"
        "  schedule <workload>      on-line phase transfer commands\n"
        "  suite                    full 12-benchmark sweep\n"
        "  campaign                 Monte-Carlo strike campaign\n"
        "                           (--shards/--checkpoint/--resume;\n"
        "                           --recover/--scrub-interval for the\n"
        "                           live-array recovery mode;\n"
        "                           --sensitivity-out for the per-region\n"
        "                           fault heatmap grid; --json/--csv)\n"
        "  export   <workload>      dump the trace text format\n"
        "  report                   write all tables/figures as CSV\n"
        "  report   <run>           render one ledger run as HTML\n"
        "                           (--metrics/--sensitivity/--html/\n"
        "                           --out-csv)\n"
        "  report   trend           ledger trajectories (--csv)\n"
        "  report   saturation      knee chart from a saturation sweep\n"
        "                           artefact (--in/--html/--out-csv; see\n"
        "                           bench/saturation_sweep)\n"
        "  partition w1[:wt] w2...  multi-task SPM partitioning\n"
        "  reuse    <workload>      LRU reuse-distance analysis\n"
        "  runs list                list the run ledger (see --ledger;\n"
        "                           --last N for the tail)\n"
        "  compare  <runA> <runB>   diff two ledger runs; exits 1 on a\n"
        "                           regression (--threshold/--metric)\n"
        "  serve                    campaign daemon: NDJSON requests over\n"
        "                           a unix socket (--socket/--tcp/\n"
        "                           --max-queue/--telemetry-out;\n"
        "                           --jobs/--ledger/--trace-out apply;\n"
        "                           see docs/serving.md)\n"
        "  serve-status             one-shot status + metrics probe of a\n"
        "                           running daemon (--socket/--tcp/\n"
        "                           --json; exit 2 when unreachable)\n"
        "  load                     drive a running daemon with a YCSB-\n"
        "                           style mix (--connections/--requests/\n"
        "                           --mix/--rate/--fail-on-shed;\n"
        "                           --json/--csv report)\n"
        "  help                     print this message\n"
        "global options (any command, any position):\n"
        "  --trace-out FILE         Chrome trace-event JSON of the run\n"
        "  --metrics-out FILE       metrics registry snapshot as JSON\n"
        "  --events-out FILE        structured NDJSON event log\n"
        "  --heartbeat-out FILE     live NDJSON heartbeats (campaign)\n"
        "  --heartbeat-interval-ms N  ms between heartbeats (1000)\n"
        "  --ledger FILE            append this run to an NDJSON ledger\n"
        "                           (campaign/suite); also the file read\n"
        "                           by runs/compare (ledger.jsonl)\n"
        "  --run-id NAME            ledger record id (run-<index>)\n"
        "  --progress               progress on stderr (suite/report/\n"
        "                           campaign)\n"
        "  --jobs N                 worker threads for suite/report/\n"
        "                           campaign (1 = serial, 0 = auto)\n"
        "workloads: case_study, any suite benchmark, or a path to a\n"
        "           .trace file (see `export`).\n"
        "subcommand options are listed in this source file's header\n"
        "comment.\n";
}

int dispatch(int argc, const char* const* argv) {
  if (argc < 2) {
    print_usage(std::cerr);
    return 2;
  }
  GlobalOptions globals;
  const std::vector<std::string> rest =
      extract_global_options(argc, argv, globals);
  std::vector<const char*> rest_argv;
  rest_argv.reserve(rest.size());
  for (const std::string& s : rest) rest_argv.push_back(s.c_str());
  const int rest_argc = static_cast<int>(rest_argv.size());
  if (rest_argc < 2) {
    print_usage(std::cerr);
    return 2;
  }
  const std::string cmd = rest_argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    print_usage(std::cout);
    return 0;
  }

  ObsSession session(globals);
  g_session = &session;
  if (obs::EventLog* events = obs::current_event_log()) {
    events->emit("run_manifest", 0,
                 {obs::TraceArg::str("command", "ftspm_tool " + cmd),
                  obs::TraceArg::str("library_version", kLibraryVersion)});
  }
  const char* const* av = rest_argv.data();
  int rc = -1;
  if (cmd == "list") rc = cmd_list();
  else if (cmd == "profile") rc = cmd_profile(rest_argc, av);
  else if (cmd == "map") rc = cmd_map(rest_argc, av);
  else if (cmd == "simulate") rc = cmd_simulate(rest_argc, av);
  else if (cmd == "evaluate") rc = cmd_evaluate(rest_argc, av);
  else if (cmd == "stats") rc = cmd_stats(rest_argc, av);
  else if (cmd == "schedule") rc = cmd_schedule(rest_argc, av);
  else if (cmd == "suite") rc = cmd_suite(rest_argc, av);
  else if (cmd == "campaign") rc = cmd_campaign(rest_argc, av);
  else if (cmd == "export") rc = cmd_export(rest_argc, av);
  else if (cmd == "report") rc = cmd_report(rest_argc, av);
  else if (cmd == "partition") rc = cmd_partition(rest_argc, av);
  else if (cmd == "reuse") rc = cmd_reuse(rest_argc, av);
  else if (cmd == "runs") rc = cmd_runs(rest_argc, av);
  else if (cmd == "compare") rc = cmd_compare(rest_argc, av);
  else if (cmd == "serve") rc = cmd_serve(rest_argc, av);
  else if (cmd == "serve-status") rc = cmd_serve_status(rest_argc, av);
  else if (cmd == "load") rc = cmd_load(rest_argc, av);
  else {
    g_session = nullptr;
    std::cerr << "unknown command '" << cmd << "'\n";
    print_usage(std::cerr);
    return 2;
  }
  session.finish();
  g_session = nullptr;
  return rc;
}

}  // namespace
}  // namespace ftspm

int main(int argc, char** argv) {
  try {
    return ftspm::dispatch(argc, argv);
  } catch (const ftspm::InvalidArgument& e) {
    std::cerr << "error: " << e.what() << "\n";
    std::cerr << "run `ftspm_tool help` for usage\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
