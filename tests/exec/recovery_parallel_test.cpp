// Determinism contract of the sharded live-array recovery campaign:
// merged strike AND recovery counters (and the JSON report rendered
// from them) must be identical whatever --jobs or chunk size says.
#include "ftspm/exec/parallel_campaign.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ftspm/fault/injector.h"
#include "ftspm/fault/strike_model.h"
#include "ftspm/mem/technology_library.h"
#include "ftspm/report/json_report.h"
#include "ftspm/util/error.h"

namespace ftspm::exec {
namespace {

StrikeMultiplicityModel model() {
  return StrikeMultiplicityModel::for_node(40.0);
}

/// Mirrors parallel_campaign_test's surfaces() with the recovery-side
/// context attached; sub-unit occupancy leaves latent errors for the
/// scrub engine so every recovery counter moves.
std::vector<RecoveryRegion> recovery_regions() {
  const TechnologyLibrary lib;
  RecoveryRegion secded;
  secded.inject =
      InjectionRegion{RegionGeometry(2048, 8), ProtectionKind::SecDed, 0.6, 1};
  secded.tech = lib.secded_sram();
  secded.dirty_fraction = 0.25;
  secded.refetch_words = 32;
  secded.scrub = true;
  RecoveryRegion parity;
  parity.inject =
      InjectionRegion{RegionGeometry(1024, 1), ProtectionKind::Parity, 0.5, 1};
  parity.tech = lib.parity_sram();
  parity.dirty_fraction = 0.25;
  parity.refetch_words = 16;
  return {secded, parity};
}

RecoveryPolicy policy() {
  RecoveryPolicy p;
  p.recover = true;
  p.scrub_interval = 1'024;
  return p;
}

void expect_same(const RecoveryResult& a, const RecoveryResult& b) {
  EXPECT_EQ(a.strikes.strikes, b.strikes.strikes);
  EXPECT_EQ(a.strikes.masked, b.strikes.masked);
  EXPECT_EQ(a.strikes.dre, b.strikes.dre);
  EXPECT_EQ(a.strikes.due, b.strikes.due);
  EXPECT_EQ(a.strikes.sdc, b.strikes.sdc);
  EXPECT_EQ(a.recovery.demand_reads, b.recovery.demand_reads);
  EXPECT_EQ(a.recovery.corrections, b.recovery.corrections);
  EXPECT_EQ(a.recovery.scrub_passes, b.recovery.scrub_passes);
  EXPECT_EQ(a.recovery.scrub_words, b.recovery.scrub_words);
  EXPECT_EQ(a.recovery.scrub_corrections, b.recovery.scrub_corrections);
  EXPECT_EQ(a.recovery.refetches, b.recovery.refetches);
  EXPECT_EQ(a.recovery.unrecoverable, b.recovery.unrecoverable);
  EXPECT_EQ(a.recovery.sdc_reads, b.recovery.sdc_reads);
  EXPECT_EQ(a.recovery.recovery_cycles, b.recovery.recovery_cycles);
  EXPECT_EQ(a.recovery.recovery_energy_pj, b.recovery.recovery_energy_pj);
}

TEST(RecoveryParallelCampaignTest, OneShardReproducesTheSerialCampaign) {
  CampaignConfig cfg;
  cfg.strikes = 12'000;
  const RecoveryResult serial =
      run_recovery_campaign(recovery_regions(), model(), cfg, policy());

  for (std::uint32_t jobs : {1u, 2u}) {
    ExecConfig exec;
    exec.jobs = jobs;
    exec.shards = 1;
    const RecoveryShardedRun run = run_recovery_campaign_sharded(
        recovery_regions(), model(), cfg, policy(), exec);
    EXPECT_TRUE(run.complete);
    expect_same(run.merged, serial);
  }
}

TEST(RecoveryParallelCampaignTest, ResultsIdenticalAcrossJobCounts) {
  CampaignConfig cfg;
  cfg.strikes = 24'000;
  ExecConfig base;
  base.shards = 4;

  ExecConfig one = base, two = base, eight = base;
  one.jobs = 1;
  two.jobs = 2;
  eight.jobs = 8;
  const RecoveryShardedRun a = run_recovery_campaign_sharded(
      recovery_regions(), model(), cfg, policy(), one);
  const RecoveryShardedRun b = run_recovery_campaign_sharded(
      recovery_regions(), model(), cfg, policy(), two);
  const RecoveryShardedRun c = run_recovery_campaign_sharded(
      recovery_regions(), model(), cfg, policy(), eight);
  expect_same(a.merged, b.merged);
  expect_same(a.merged, c.merged);
  ASSERT_EQ(a.shard_results.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    expect_same(a.shard_results[i], b.shard_results[i]);
    expect_same(a.shard_results[i], c.shard_results[i]);
  }
  // The JSON report renders fixed-order fields from the merged
  // counters, so it must be byte-identical too (the CLI's --json
  // contract).
  const std::string ja = campaign_json(a.merged.strikes, &a.merged.recovery);
  const std::string jc = campaign_json(c.merged.strikes, &c.merged.recovery);
  EXPECT_EQ(ja, jc);
  // The split must exercise the recovery pipeline for this to mean
  // anything.
  EXPECT_GT(a.merged.recovery.corrections, 0u);
  EXPECT_GT(a.merged.recovery.scrub_corrections, 0u);
  EXPECT_GT(a.merged.recovery.refetches, 0u);
  EXPECT_GT(a.merged.recovery.unrecoverable, 0u);
}

TEST(RecoveryParallelCampaignTest, ChunkSizeNeverChangesResults) {
  CampaignConfig cfg;
  cfg.strikes = 9'000;
  ExecConfig coarse;
  coarse.shards = 2;
  ExecConfig fine = coarse;
  fine.chunk_strikes = 577;  // forces many oddly-aligned chunks
  const RecoveryShardedRun a = run_recovery_campaign_sharded(
      recovery_regions(), model(), cfg, policy(), coarse);
  const RecoveryShardedRun b = run_recovery_campaign_sharded(
      recovery_regions(), model(), cfg, policy(), fine);
  expect_same(a.merged, b.merged);
}

TEST(RecoveryParallelCampaignTest, InactivePolicyDelegatesToStaticSharding) {
  CampaignConfig cfg;
  cfg.strikes = 10'000;
  ExecConfig exec;
  exec.shards = 3;
  std::vector<InjectionRegion> inject;
  for (const RecoveryRegion& r : recovery_regions())
    inject.push_back(r.inject);
  const ShardedRun reference =
      run_campaign_sharded(inject, model(), cfg, exec);

  const RecoveryPolicy inactive;
  const RecoveryShardedRun run = run_recovery_campaign_sharded(
      recovery_regions(), model(), cfg, inactive, exec);
  EXPECT_EQ(run.merged.strikes.masked, reference.merged.masked);
  EXPECT_EQ(run.merged.strikes.dre, reference.merged.dre);
  EXPECT_EQ(run.merged.strikes.due, reference.merged.due);
  EXPECT_EQ(run.merged.strikes.sdc, reference.merged.sdc);
  EXPECT_EQ(run.merged.recovery.demand_reads, 0u);
  EXPECT_EQ(run.merged.recovery.recovery_cycles, 0u);
}

TEST(RecoveryParallelCampaignTest, CheckpointAndResumeAreRejected) {
  CampaignConfig cfg;
  cfg.strikes = 1'000;
  ExecConfig exec;
  exec.shards = 2;
  exec.checkpoint_path = "/tmp/ftspm_recovery_ckpt_reject.json";
  EXPECT_THROW(run_recovery_campaign_sharded(recovery_regions(), model(),
                                             cfg, policy(), exec),
               Error);
  ExecConfig resume;
  resume.shards = 2;
  resume.resume_path = "/tmp/ftspm_recovery_ckpt_reject.json";
  EXPECT_THROW(run_recovery_campaign_sharded(recovery_regions(), model(),
                                             cfg, policy(), resume),
               Error);
}

}  // namespace
}  // namespace ftspm::exec
