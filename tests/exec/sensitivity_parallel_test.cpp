// Jobs-invariance contract of the per-shard sensitivity grids: for a
// fixed shard count the merged grid is byte-identical across --jobs,
// a one-shard run reproduces the serial grid, and requesting a grid
// never changes the campaign counters (same RNG stream either way).
#include "ftspm/exec/parallel_campaign.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ftspm/fault/injector.h"
#include "ftspm/fault/recovery.h"
#include "ftspm/fault/sensitivity.h"
#include "ftspm/fault/strike_model.h"
#include "ftspm/mem/technology_library.h"
#include "ftspm/obs/metrics.h"

namespace ftspm::exec {
namespace {

std::vector<InjectionRegion> surfaces() {
  return {
      InjectionRegion{RegionGeometry(2048, 8), ProtectionKind::SecDed, 0.9,
                      1},
      InjectionRegion{RegionGeometry(1024, 1), ProtectionKind::Parity, 0.8,
                      1},
  };
}

std::vector<RecoveryRegion> recovery_regions() {
  const TechnologyLibrary lib;
  RecoveryRegion secded;
  secded.inject =
      InjectionRegion{RegionGeometry(2048, 8), ProtectionKind::SecDed, 0.6, 1};
  secded.tech = lib.secded_sram();
  secded.dirty_fraction = 0.25;
  secded.refetch_words = 32;
  secded.scrub = true;
  RecoveryRegion parity;
  parity.inject =
      InjectionRegion{RegionGeometry(1024, 1), ProtectionKind::Parity, 0.5, 1};
  parity.tech = lib.parity_sram();
  parity.dirty_fraction = 0.25;
  parity.refetch_words = 16;
  return {secded, parity};
}

StrikeMultiplicityModel model() {
  return StrikeMultiplicityModel::for_node(40.0);
}

void expect_same(const CampaignResult& a, const CampaignResult& b) {
  EXPECT_EQ(a.strikes, b.strikes);
  EXPECT_EQ(a.masked, b.masked);
  EXPECT_EQ(a.dre, b.dre);
  EXPECT_EQ(a.due, b.due);
  EXPECT_EQ(a.sdc, b.sdc);
}

TEST(SensitivityParallelTest, GridIsByteIdenticalAcrossJobCounts) {
  CampaignConfig cfg;
  cfg.strikes = 30'000;
  std::vector<std::string> csvs;
  std::vector<CampaignResult> merged;
  for (std::uint32_t jobs : {1u, 2u, 8u}) {
    ExecConfig exec;
    exec.shards = 4;
    exec.jobs = jobs;
    exec.sensitivity_buckets = 32;
    const ShardedRun run = run_campaign_sharded(surfaces(), model(), cfg,
                                                exec);
    ASSERT_TRUE(run.sensitivity.active());
    csvs.push_back(run.sensitivity.to_csv());
    merged.push_back(run.merged);
  }
  EXPECT_EQ(csvs[0], csvs[1]);
  EXPECT_EQ(csvs[0], csvs[2]);
  expect_same(merged[0], merged[1]);
  expect_same(merged[0], merged[2]);
}

TEST(SensitivityParallelTest, OneShardGridMatchesSerialRecording) {
  CampaignConfig cfg;
  cfg.strikes = 12'000;
  SensitivityGrid serial = make_sensitivity_grid(surfaces(), 32);
  run_campaign(surfaces(), model(), cfg, &serial);

  ExecConfig exec;
  exec.jobs = 2;
  exec.shards = 1;
  exec.sensitivity_buckets = 32;
  const ShardedRun run = run_campaign_sharded(surfaces(), model(), cfg,
                                              exec);
  ASSERT_TRUE(run.sensitivity.active());
  EXPECT_EQ(run.sensitivity.to_csv(), serial.to_csv());
}

TEST(SensitivityParallelTest, GridNeverPerturbsCountersAndSumsToThem) {
  CampaignConfig cfg;
  cfg.strikes = 20'000;
  ExecConfig plain;
  plain.shards = 3;
  plain.jobs = 2;
  ExecConfig with_grid = plain;
  with_grid.sensitivity_buckets = 16;

  const ShardedRun a = run_campaign_sharded(surfaces(), model(), cfg, plain);
  const ShardedRun b = run_campaign_sharded(surfaces(), model(), cfg,
                                            with_grid);
  EXPECT_FALSE(a.sensitivity.active());
  expect_same(a.merged, b.merged);
  // Every strike of the run landed in exactly one grid cell.
  expect_same(b.sensitivity.totals(), b.merged);
  ASSERT_EQ(b.sensitivity.region_count(), surfaces().size());
  for (std::size_t i = 0; i < surfaces().size(); ++i)
    EXPECT_EQ(b.sensitivity.regions()[i].physical_bits,
              surfaces()[i].geometry.physical_bits());
}

TEST(SensitivityParallelTest, RecoveryGridIsJobsInvariant) {
  CampaignConfig cfg;
  cfg.strikes = 12'000;
  RecoveryPolicy policy;
  policy.recover = true;
  policy.scrub_interval = 1'024;

  std::vector<std::string> csvs;
  for (std::uint32_t jobs : {1u, 2u, 8u}) {
    ExecConfig exec;
    exec.shards = 4;
    exec.jobs = jobs;
    exec.sensitivity_buckets = 32;
    const RecoveryShardedRun run = run_recovery_campaign_sharded(
        recovery_regions(), model(), cfg, policy, exec);
    ASSERT_TRUE(run.sensitivity.active());
    csvs.push_back(run.sensitivity.to_csv());
    expect_same(run.sensitivity.totals(), run.merged.strikes);
  }
  EXPECT_EQ(csvs[0], csvs[1]);
  EXPECT_EQ(csvs[0], csvs[2]);
}

TEST(SensitivityParallelTest, RecoveryDelegateKeepsTheGrid) {
  // With an inactive policy the recovery runner delegates to the
  // static campaign; the grid must ride through the delegation.
  CampaignConfig cfg;
  cfg.strikes = 8'000;
  ExecConfig exec;
  exec.shards = 2;
  exec.jobs = 2;
  exec.sensitivity_buckets = 16;
  const RecoveryShardedRun run = run_recovery_campaign_sharded(
      recovery_regions(), model(), cfg, RecoveryPolicy{}, exec);
  ASSERT_TRUE(run.sensitivity.active());
  expect_same(run.sensitivity.totals(), run.merged.strikes);
}

TEST(SensitivityParallelTest, LabelledMetricsSnapshotIsJobsInvariant) {
  // emit_sensitivity_metrics over the merged grid plus the campaign's
  // own labelled counters must be a pure function of (seed, strikes,
  // shards) — the full registry snapshot can't depend on --jobs.
  CampaignConfig cfg;
  cfg.strikes = 20'000;
  std::vector<std::string> snapshots;
  for (std::uint32_t jobs : {1u, 2u, 8u}) {
    obs::registry().clear();
    const obs::EnabledScope enable(true);
    ExecConfig exec;
    exec.shards = 4;
    exec.jobs = jobs;
    exec.sensitivity_buckets = 32;
    const ShardedRun run = run_campaign_sharded(surfaces(), model(), cfg,
                                                exec);
    emit_sensitivity_metrics(run.sensitivity, "static");
    snapshots.push_back(obs::registry().to_json());
  }
  obs::registry().clear();
  EXPECT_EQ(snapshots[0], snapshots[1]);
  EXPECT_EQ(snapshots[0], snapshots[2]);
  EXPECT_NE(snapshots[0].find("labelled_counters"), std::string::npos);
  EXPECT_NE(snapshots[0].find("campaign.bucket_strikes"), std::string::npos);
}

}  // namespace
}  // namespace ftspm::exec
