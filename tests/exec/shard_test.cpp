#include "ftspm/exec/shard.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "ftspm/util/error.h"
#include "ftspm/util/rng.h"

namespace ftspm::exec {
namespace {

std::string temp_path(const char* stem) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + stem + "." +
         std::to_string(::getpid());
}

TEST(ShardPlanTest, StrikesPartitionTheRootTotal) {
  CampaignConfig root;
  root.strikes = 10;
  const auto plan = make_shard_plan(root, 3);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].config.strikes, 4u);  // 10 % 3 extras go first
  EXPECT_EQ(plan[1].config.strikes, 3u);
  EXPECT_EQ(plan[2].config.strikes, 3u);
  std::uint64_t total = 0;
  for (const CampaignShard& s : plan) total += s.config.strikes;
  EXPECT_EQ(total, root.strikes);
  for (std::uint32_t i = 0; i < plan.size(); ++i)
    EXPECT_EQ(plan[i].index, i);
}

TEST(ShardPlanTest, SingleShardKeepsTheRootSeed) {
  CampaignConfig root;
  root.seed = 0xabcdef;
  const auto plan = make_shard_plan(root, 1);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].config.seed, root.seed);
}

TEST(ShardPlanTest, MultiShardSeedsAreDerivedStreams) {
  CampaignConfig root;
  root.seed = 0xabcdef;
  const auto plan = make_shard_plan(root, 4);
  for (std::uint32_t i = 0; i < 4; ++i)
    EXPECT_EQ(plan[i].config.seed, Rng::derive_stream_seed(root.seed, i));
}

TEST(ShardPlanTest, ProgressIsStrippedFromShardConfigs) {
  CampaignConfig root;
  root.progress_interval = 100;
  root.progress = [](std::uint64_t, std::uint64_t) {};
  for (const CampaignShard& s : make_shard_plan(root, 2)) {
    EXPECT_EQ(s.config.progress_interval, 0u);
    EXPECT_FALSE(static_cast<bool>(s.config.progress));
  }
}

TEST(ShardPlanTest, ZeroShardsIsRejected) {
  EXPECT_THROW(make_shard_plan(CampaignConfig{}, 0), InvalidArgument);
}

TEST(ShardMergeTest, CountersSumAcrossShards) {
  CampaignResult a{10, 4, 3, 2, 1};
  CampaignResult b{5, 2, 1, 1, 1};
  const CampaignResult m = merge_shard_results({a, b});
  EXPECT_EQ(m.strikes, 15u);
  EXPECT_EQ(m.masked, 6u);
  EXPECT_EQ(m.dre, 4u);
  EXPECT_EQ(m.due, 3u);
  EXPECT_EQ(m.sdc, 2u);
  EXPECT_EQ(merge_shard_results({}).strikes, 0u);
}

CampaignCheckpoint sample_checkpoint() {
  CampaignCheckpoint cp;
  // Deliberately above 2^53: a double round-trip would corrupt these.
  cp.root_seed = 0xdeadbeefcafef00dULL;
  cp.strikes = 1000;
  cp.shard_count = 2;
  cp.seed_salt = 0x7e3a11ce;
  cp.kind = "temporal";
  ShardCheckpoint s0;
  s0.index = 0;
  s0.strikes = 500;
  s0.done = 120;
  s0.partial = CampaignResult{120, 100, 10, 6, 4};
  s0.rng_state = {0xffffffffffffffffULL, 0x8000000000000001ULL, 7, 0};
  ShardCheckpoint s1;
  s1.index = 1;
  s1.strikes = 500;
  s1.done = 500;
  s1.partial = CampaignResult{500, 400, 50, 30, 20};
  s1.rng_state = {1, 2, 3, 4};
  cp.shards = {s0, s1};
  return cp;
}

TEST(CheckpointJsonTest, RoundTripPreservesEveryField) {
  const CampaignCheckpoint cp = sample_checkpoint();
  const CampaignCheckpoint back = checkpoint_from_json(checkpoint_to_json(cp));
  EXPECT_EQ(back.root_seed, cp.root_seed);
  EXPECT_EQ(back.strikes, cp.strikes);
  EXPECT_EQ(back.shard_count, cp.shard_count);
  EXPECT_EQ(back.seed_salt, cp.seed_salt);
  EXPECT_EQ(back.kind, cp.kind);
  ASSERT_EQ(back.shards.size(), cp.shards.size());
  for (std::size_t i = 0; i < cp.shards.size(); ++i) {
    EXPECT_EQ(back.shards[i].index, cp.shards[i].index);
    EXPECT_EQ(back.shards[i].strikes, cp.shards[i].strikes);
    EXPECT_EQ(back.shards[i].done, cp.shards[i].done);
    EXPECT_EQ(back.shards[i].partial.masked, cp.shards[i].partial.masked);
    EXPECT_EQ(back.shards[i].partial.dre, cp.shards[i].partial.dre);
    EXPECT_EQ(back.shards[i].partial.due, cp.shards[i].partial.due);
    EXPECT_EQ(back.shards[i].partial.sdc, cp.shards[i].partial.sdc);
    EXPECT_EQ(back.shards[i].partial.strikes, cp.shards[i].done);
    EXPECT_EQ(back.shards[i].rng_state, cp.shards[i].rng_state);
  }
}

TEST(CheckpointJsonTest, CompletenessTracksShardProgress) {
  CampaignCheckpoint cp = sample_checkpoint();
  EXPECT_FALSE(cp.complete());
  cp.shards[0].done = cp.shards[0].strikes;
  EXPECT_TRUE(cp.complete());
}

TEST(CheckpointJsonTest, RejectsMalformedDocuments) {
  EXPECT_THROW(checkpoint_from_json("[]"), Error);
  EXPECT_THROW(checkpoint_from_json("{\"version\":2}"), Error);
  // RNG words must survive as hex strings, not numbers.
  std::string doc = checkpoint_to_json(sample_checkpoint());
  const std::string needle = "\"0xffffffffffffffff\"";
  const auto pos = doc.find(needle);
  ASSERT_NE(pos, std::string::npos);
  doc.replace(pos, needle.size(), "1.8446744073709552e19");
  EXPECT_THROW(checkpoint_from_json(doc), Error);
}

TEST(CheckpointValidateTest, AcceptsItsOwnCampaign) {
  const CampaignCheckpoint cp = sample_checkpoint();
  CampaignConfig root;
  root.seed = cp.root_seed;
  root.strikes = cp.strikes;
  EXPECT_NO_THROW(cp.validate_against(root, 2, 0x7e3a11ce, "temporal"));
}

TEST(CheckpointValidateTest, RejectsMismatchedParameters) {
  const CampaignCheckpoint cp = sample_checkpoint();
  CampaignConfig root;
  root.seed = cp.root_seed;
  root.strikes = cp.strikes;
  CampaignConfig wrong_seed = root;
  wrong_seed.seed ^= 1;
  EXPECT_THROW(cp.validate_against(wrong_seed, 2, 0x7e3a11ce, "temporal"),
               Error);
  CampaignConfig wrong_strikes = root;
  wrong_strikes.strikes += 1;
  EXPECT_THROW(cp.validate_against(wrong_strikes, 2, 0x7e3a11ce, "temporal"),
               Error);
  EXPECT_THROW(cp.validate_against(root, 3, 0x7e3a11ce, "temporal"), Error);
  EXPECT_THROW(cp.validate_against(root, 2, 0, "temporal"), Error);
  EXPECT_THROW(cp.validate_against(root, 2, 0x7e3a11ce, "static"), Error);
}

TEST(CheckpointValidateTest, RejectsInconsistentShardCounters) {
  CampaignCheckpoint cp = sample_checkpoint();
  CampaignConfig root;
  root.seed = cp.root_seed;
  root.strikes = cp.strikes;
  cp.shards[0].partial.masked += 1;  // masked+dre+due+sdc != done
  EXPECT_THROW(cp.validate_against(root, 2, 0x7e3a11ce, "temporal"), Error);
}

TEST(CheckpointStateTest, SnapshotRestoreRoundTripsTheRng) {
  CampaignShardState state = begin_campaign_shard(0x1234);
  for (int i = 0; i < 41; ++i) state.rng.next_u64();
  state.done = 41;
  state.partial = CampaignResult{41, 40, 1, 0, 0};

  CampaignShardState restored =
      restore_shard_state(snapshot_shard_state(0, 100, state));
  EXPECT_EQ(restored.done, state.done);
  EXPECT_EQ(restored.partial.masked, state.partial.masked);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(restored.rng.next_u64(), state.rng.next_u64());
}

TEST(CheckpointFileTest, StoreLoadRoundTrip) {
  const std::string path = temp_path("ftspm_ckpt_test");
  const CampaignCheckpoint cp = sample_checkpoint();
  store_checkpoint(cp, path);
  const CampaignCheckpoint back = load_checkpoint(path);
  EXPECT_EQ(back.root_seed, cp.root_seed);
  EXPECT_EQ(back.shards[0].rng_state, cp.shards[0].rng_state);
  std::remove(path.c_str());
  EXPECT_THROW(load_checkpoint(path), Error);
}

}  // namespace
}  // namespace ftspm::exec
