#include "ftspm/exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ftspm::exec {
namespace {

TEST(ThreadPoolTest, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(default_jobs(), 1u);
  EXPECT_EQ(ThreadPool(0).size(), default_jobs());
  EXPECT_EQ(ThreadPool(3).size(), 3u);
}

TEST(ThreadPoolTest, ExecutesEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&] { ran.fetch_add(1); }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsTheQueue) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) pool.submit([&] { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, FutureRethrowsTaskException) {
  ThreadPool pool(2);
  std::future<void> f =
      pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, RunAllRethrowsFirstFailureInTaskOrder) {
  ThreadPool pool(4);
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] {});
  tasks.push_back([] { throw std::runtime_error("first"); });
  tasks.push_back([] {});
  tasks.push_back([] { throw std::runtime_error("second"); });
  try {
    pool.run_all(std::move(tasks));
    FAIL() << "run_all should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(ThreadPoolTest, RunAllWaitsForEveryTaskEvenAfterAFailure) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 16; ++i) tasks.push_back([&] { ran.fetch_add(1); });
  EXPECT_THROW(pool.run_all(std::move(tasks)), std::runtime_error);
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, BusyTimeAccumulatesWhileTasksRun) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 4; ++i)
    tasks.push_back(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(2)); });
  pool.run_all(std::move(tasks));
  EXPECT_GT(pool.total_busy_ns(), 0u);
  std::uint64_t summed = 0;
  for (std::uint32_t w = 0; w < pool.size(); ++w)
    summed += pool.worker_busy_ns(w);
  EXPECT_EQ(summed, pool.total_busy_ns());
}

}  // namespace
}  // namespace ftspm::exec
