#include "ftspm/exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace ftspm::exec {
namespace {

TEST(ThreadPoolTest, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(default_jobs(), 1u);
  EXPECT_EQ(ThreadPool(0).size(), default_jobs());
  EXPECT_EQ(ThreadPool(3).size(), 3u);
}

TEST(ThreadPoolTest, ExecutesEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&] { ran.fetch_add(1); }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsTheQueue) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) pool.submit([&] { ran.fetch_add(1); });
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, FutureRethrowsTaskException) {
  ThreadPool pool(2);
  std::future<void> f =
      pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, RunAllRethrowsFirstFailureInTaskOrder) {
  ThreadPool pool(4);
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] {});
  tasks.push_back([] { throw std::runtime_error("first"); });
  tasks.push_back([] {});
  tasks.push_back([] { throw std::runtime_error("second"); });
  try {
    pool.run_all(std::move(tasks));
    FAIL() << "run_all should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(ThreadPoolTest, RunAllWaitsForEveryTaskEvenAfterAFailure) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 16; ++i) tasks.push_back([&] { ran.fetch_add(1); });
  EXPECT_THROW(pool.run_all(std::move(tasks)), std::runtime_error);
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, MultipleProducersSubmitConcurrently) {
  // The serve daemon's scheduler is the first multi-producer user:
  // several connection threads submit onto one shared pool. Every task
  // must run exactly once and every future must become ready.
  ThreadPool pool(4);
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 200;
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures[kProducers];
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        futures[p].push_back(pool.submit([&] { ran.fetch_add(1); }));
    });
  for (std::thread& t : producers) t.join();
  for (auto& fs : futures)
    for (std::future<void>& f : fs) f.get();
  EXPECT_EQ(ran.load(), kProducers * kPerProducer);
}

TEST(ThreadPoolTest, MultipleProducersEachSeeOwnExceptions) {
  // Exceptions must route to the submitting producer's futures only —
  // one failing client cannot poison another client's tasks.
  ThreadPool pool(2);
  std::vector<std::thread> producers;
  std::atomic<int> ok_tasks{0};
  std::atomic<int> failures_seen{0};
  for (int p = 0; p < 4; ++p)
    producers.emplace_back([&, p] {
      std::vector<std::future<void>> fs;
      for (int i = 0; i < 50; ++i) {
        const bool fail = p % 2 == 0 && i % 10 == 0;
        fs.push_back(pool.submit([&, fail] {
          if (fail) throw std::runtime_error("producer failure");
          ok_tasks.fetch_add(1);
        }));
      }
      for (std::future<void>& f : fs) {
        try {
          f.get();
        } catch (const std::runtime_error&) {
          failures_seen.fetch_add(1);
        }
      }
    });
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(failures_seen.load(), 2 * 5);  // 2 failing producers × 5 each.
  EXPECT_EQ(ok_tasks.load(), 4 * 50 - 2 * 5);
}

TEST(ThreadPoolTest, RunAllExceptionOrderHoldsUnderQueuePressure) {
  // Saturate a small pool with slow tasks so later failures complete
  // before earlier ones are even dequeued; the rethrow must still pick
  // the first failure by *task order*, not completion order.
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i)
    tasks.push_back(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(5)); });
  tasks.push_back([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    throw std::runtime_error("slow-early");
  });
  for (int i = 0; i < 8; ++i) tasks.push_back([] {});
  tasks.push_back([] { throw std::runtime_error("fast-late"); });
  try {
    pool.run_all(std::move(tasks));
    FAIL() << "run_all should have thrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "slow-early");
  }
}

TEST(ThreadPoolTest, RunAllFromMultipleThreadsOnOneSharedPool) {
  // Two run_all batches interleaved on one pool (the daemon runs one
  // request's shards while another request's batch is being submitted).
  ThreadPool pool(4);
  std::atomic<int> a_ran{0};
  std::atomic<int> b_ran{0};
  std::thread a([&] {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 32; ++i) tasks.push_back([&] { a_ran.fetch_add(1); });
    pool.run_all(std::move(tasks));
  });
  std::thread b([&] {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 32; ++i) tasks.push_back([&] { b_ran.fetch_add(1); });
    pool.run_all(std::move(tasks));
  });
  a.join();
  b.join();
  EXPECT_EQ(a_ran.load(), 32);
  EXPECT_EQ(b_ran.load(), 32);
}

TEST(ThreadPoolTest, BusyTimeAccumulatesWhileTasksRun) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 4; ++i)
    tasks.push_back(
        [] { std::this_thread::sleep_for(std::chrono::milliseconds(2)); });
  pool.run_all(std::move(tasks));
  EXPECT_GT(pool.total_busy_ns(), 0u);
  std::uint64_t summed = 0;
  for (std::uint32_t w = 0; w < pool.size(); ++w)
    summed += pool.worker_busy_ns(w);
  EXPECT_EQ(summed, pool.total_busy_ns());
}

}  // namespace
}  // namespace ftspm::exec
